"""Columnar resilient-dataset abstraction.

An :class:`ArrayRDD` is a partitioned dataset of aligned 1-D NumPy
columns exposing the subset of the Spark RDD API the paper's algorithms
use: ``map_partitions``, ``sample`` (PGPBA's preferential-attachment
stage), ``distinct`` (PGSK's collision removal), ``union``,
``repartition``, ``collect`` and ``count``.

Evaluation is **lazy**: transformations only extend a lineage plan (one
:class:`~repro.engine.plan.Pipe` per partition); actions hand the plan to
:func:`~repro.engine.plan.fuse_and_run`, which pipelines each partition's
chain of narrow ops through a single fused executor task — no
intermediate RDD is ever materialized across all partitions.  Each fused
task times its operator segments separately with ``time.perf_counter``
and the measured per-stage costs are reported to the owning
:class:`~repro.engine.context.ClusterContext`, whose scheduler converts
them into simulated cluster time: the simulated clock sees the same
per-partition work no matter which backend ran it *and* no matter
whether the stages were fused (only the wall clock and the peak local
memory change).  ``ClusterContext(fusion=False)`` / ``REPRO_FUSION=off``
force every transformation immediately — the eager reference path.

Materialized partitions live in the context's
:class:`~repro.engine.storage.BlockStore` behind stable
:class:`~repro.engine.storage.BlockId` handles: the RDD itself only holds
block ids, and every data access goes through the store — which may keep
the block resident, spill it to disk under memory pressure, or stream it
from a file (``StorageLevel.DISK_ONLY``).  Spilled blocks reload
bit-identically, so the engine's digest guarantees hold under any memory
budget.  Blocks are reference counted (``union`` passthrough shares
them) and freed when the last referencing RDD is garbage collected.

``persist(level)`` pins an RDD: its first forcing materializes and
caches the partitions (breaking any fusion chain through it) and
registers the resident bytes with the metrics' driver-side memory meter
until ``unpersist()``.  ``StorageLevel.MEMORY_ONLY`` reproduces the
legacy never-evict pin; ``MEMORY_AND_DISK`` (default) may spill under a
budget; ``DISK_ONLY`` keeps partitions file-resident.  Forcing always
caches the forced RDD's own partitions, but *not* its lineage
intermediates — fork two lazy branches off one unforced RDD and the
shared prefix recomputes (and is re-charged to the simulated clock);
persist the branch point to avoid that, as the generators do at their
loop boundaries.

The "resilient" in the name is earned at the execution layer: every task
batch an action dispatches goes through
:func:`~repro.engine.executor.run_with_recovery`, so a failed or killed
task is retried from its captured anchor partitions — recomputing only
the lost partition's chain from its narrowest persisted or source
ancestor.  ``persist()`` doubles as a *volatile* recovery anchor (its
blocks live in executor memory, which the simulated failure loses, so a
retry re-charges the anchor bytes to ``recovery_recompute_bytes``);
:meth:`ArrayRDD.checkpoint` writes partitions **durably** through the
store and truncates lineage, so retries re-read the checkpoint file and
charge nothing for the anchor — strictly less recomputation under any
fault plan.
"""

from __future__ import annotations

import dataclasses
import heapq
import os
import time
import weakref
from typing import Callable, Iterator, Sequence

import numpy as np

from repro.engine.partitioner import split_count
from repro.engine.plan import PendingOp, Pipe, fuse_and_run
from repro.engine.storage import BlockId, SpilledBlockHandle, StorageLevel
from repro.engine.storage.codecs import (
    array_dtypes,
    iter_column_chunks,
    read_arrays,
)
from repro.engine.stream import resolve_extsort_chunk_rows

__all__ = ["ArrayRDD", "SHUFFLE_ENV_VAR", "resolve_shuffle"]

SHUFFLE_ENV_VAR = "REPRO_SHUFFLE"

_SHUFFLE_MODES = ("exchange", "extsort", "collect")


def resolve_shuffle(value: "str | None" = None) -> str:
    """Resolve the distinct() shuffle strategy: arg > env > 'exchange'."""

    if value is None:
        value = os.environ.get(SHUFFLE_ENV_VAR)
        if value is None:
            return "exchange"
    name = str(value).strip().lower()
    if not name:
        return "exchange"
    if name not in _SHUFFLE_MODES:
        raise ValueError(
            f"unknown shuffle {name!r}; expected one of: "
            + ", ".join(_SHUFFLE_MODES)
        )
    return name

Columns = tuple[np.ndarray, ...]


def _validate_partition(cols: Sequence[np.ndarray]) -> Columns:
    cols = tuple(np.asarray(c) for c in cols)
    if not cols:
        raise ValueError("a partition needs at least one column")
    n = cols[0].size
    for c in cols:
        if c.ndim != 1 or c.size != n:
            raise ValueError("partition columns must be aligned 1-D arrays")
    return cols


def _release_rdd(store, block_ids, metrics, rdd_id):
    """Finalizer: drop block references and any persist accounting when
    an RDD is garbage collected (so a forgotten ``unpersist()`` cannot
    leak driver-meter bytes forever)."""
    store.release_many(block_ids)
    metrics.release_persist(rdd_id)


class ArrayRDD:
    """Partitioned columnar dataset bound to a cluster context.

    ``task_multiplier`` decouples *real* partitions from *simulated* tasks:
    the paper's partition rule (2x executor cores x nodes) yields thousands
    of tiny partitions, which is faithful for Spark but wasteful for a
    local simulator.  Each real partition therefore stands for
    ``task_multiplier`` scheduler tasks — its measured cost is split evenly
    across them before the makespan model runs, so scaling behaviour is
    unchanged while the Python-side partition count stays small.

    Partitions are immutable once materialized, so the driver-side
    metadata views (``count``, ``partition_sizes``, ``partition_bytes``)
    are computed once and cached — PGPBA's growth loop polls them every
    iteration.  Metadata comes from the block store's per-block records,
    so none of these calls loads spilled data.  On a lazy RDD they are
    actions: they force the lineage.
    """

    def __init__(
        self, context, partitions: list[Columns], *, task_multiplier: int = 1
    ) -> None:
        if not partitions:
            raise ValueError("an RDD needs at least one partition")
        if task_multiplier < 1:
            raise ValueError("task_multiplier must be >= 1")
        parts = [_validate_partition(p) for p in partitions]
        width = len(parts[0])
        if any(len(p) != width for p in parts):
            raise ValueError("all partitions must have the same column count")
        self._init_shell(context, task_multiplier)
        self._known_columns = width
        self._adopt_results(parts)

    def _init_shell(
        self, context, task_multiplier: int, *, rdd_id: "int | None" = None
    ) -> None:
        self._ctx = context
        self.task_multiplier = task_multiplier
        self._id = rdd_id if rdd_id is not None else context._next_rdd_id()
        self._pipes: list[Pipe] | None = None
        self._blocks: list[BlockId] | None = None
        self._finalizer = None
        self._known_columns: int | None = None
        self._persisted = False
        self._checkpointed = False
        self._level = StorageLevel.MEMORY_AND_DISK
        self._cached_count: int | None = None
        self._cached_sizes: np.ndarray | None = None
        self._cached_bytes: np.ndarray | None = None

    @classmethod
    def _from_pipes(
        cls,
        context,
        pipes: list[Pipe],
        *,
        task_multiplier: int,
        n_columns: int | None,
    ) -> "ArrayRDD":
        rdd = cls.__new__(cls)
        rdd._init_shell(context, task_multiplier)
        rdd._pipes = pipes
        rdd._known_columns = n_columns
        return rdd

    @classmethod
    def _from_results(
        cls,
        context,
        results: list,
        *,
        task_multiplier: int,
        rdd_id: "int | None" = None,
    ) -> "ArrayRDD":
        """Build a materialized RDD from executor results: raw column
        tuples, :class:`SpilledBlockHandle` (task wrote the block file),
        or :class:`BlockId` (share an existing block by reference)."""
        rdd = cls.__new__(cls)
        rdd._init_shell(context, task_multiplier, rdd_id=rdd_id)
        rdd._adopt_results(results)
        return rdd

    def _adopt_results(self, results: list) -> None:
        """Register executor results as this RDD's blocks in the store."""
        store = self._ctx.storage
        blocks: list[BlockId] = []
        width: int | None = None
        for i, result in enumerate(results):
            if isinstance(result, BlockId):
                store.share(result)
                blocks.append(result)
                w = store.meta(result).n_columns
            elif isinstance(result, SpilledBlockHandle):
                block_id = BlockId(self._id, i)
                store.adopt(block_id, result, level=self._level)
                blocks.append(block_id)
                w = result.n_columns
            else:
                block_id = BlockId(self._id, i)
                store.put(block_id, result, level=self._level)
                blocks.append(block_id)
                w = len(result)
            if width is None:
                width = w
            elif w != width:
                raise ValueError(
                    "all partitions must have the same column count"
                )
        self._blocks = blocks
        self._pipes = None
        self._known_columns = width
        self._finalizer = weakref.finalize(
            self, _release_rdd, store, list(blocks), self._ctx.metrics,
            self._id,
        )

    def _release_now(self) -> None:
        """Eagerly drop this RDD's block references (internal use by the
        shuffle, which consumes its map side mid-exchange)."""
        if self._finalizer is not None:
            self._finalizer()
        self._blocks = None

    # ------------------------------------------------------------------
    # lineage plumbing
    # ------------------------------------------------------------------
    @property
    def _is_anchor(self) -> bool:
        """Materialized and persisted RDDs anchor fusion chains."""
        return self._blocks is not None or self._persisted

    def _as_pipes(self) -> list[Pipe]:
        if self._is_anchor:
            return [Pipe(self, i) for i in range(self.n_partitions)]
        return list(self._pipes)

    def _force(self) -> list[BlockId]:
        """Materialize this RDD (idempotent): run the fused plan, record
        each logical stage's measured costs, register the blocks."""
        if self._blocks is not None:
            return self._blocks
        results, stage_groups = fuse_and_run(
            self._ctx, self._pipes, target_id=self._id
        )
        for group in stage_groups:
            self._ctx._record_stage(
                group.op.stage,
                group.cpu_seconds,
                group.bytes_out,
                np.asarray(group.bytes_out, dtype=np.int64),
                multiplier=group.op.multiplier,
            )
        self._adopt_results(results)
        if self._persisted:
            self._ctx.metrics.register_persist(
                self._id, int(self.partition_bytes().sum())
            )
        return self._blocks

    def _partition(self, index: int) -> Columns:
        """Load one partition's columns through the store (an action)."""
        self._force()
        return self._ctx.storage.get(self._blocks[index])

    def _task_ref(self, index: int):
        """A picklable/forkable block reference for task closures."""
        self._force()
        return self._ctx.storage.task_ref(self._blocks[index])

    def persist(
        self, level: "StorageLevel | str | None" = None
    ) -> "ArrayRDD":
        """Pin this RDD: cache its partitions at first forcing (breaking
        any fusion chain through it) and account the resident bytes on
        the driver-side memory meter until :meth:`unpersist`.

        ``level`` picks where the pinned partitions live:
        ``MEMORY_ONLY`` never evicts (the legacy behaviour),
        ``MEMORY_AND_DISK`` (default) spills under the context's memory
        budget and reloads transparently, ``DISK_ONLY`` keeps them
        file-resident.  Idempotent: re-persisting (same or different
        level) re-levels the blocks without double-counting bytes.
        """
        level = (
            StorageLevel.MEMORY_AND_DISK
            if level is None
            else StorageLevel.coerce(level)
        )
        self._persisted = True
        self._level = level
        if self._blocks is not None:
            store = self._ctx.storage
            for block_id in self._blocks:
                store.set_level(block_id, level)
            # register_persist overwrites the same key, so repeated
            # persist() calls can never drift the accounting.
            self._ctx.metrics.register_persist(
                self._id, int(self.partition_bytes().sum())
            )
        return self

    def unpersist(self) -> "ArrayRDD":
        """Release the persist accounting (idempotent) and make the
        blocks evictable again.  The partition data itself is freed by
        block reference counting once nothing downstream shares it."""
        if self._persisted:
            self._persisted = False
            self._level = StorageLevel.MEMORY_AND_DISK
            self._ctx.metrics.release_persist(self._id)
            if self._blocks is not None:
                store = self._ctx.storage
                for block_id in self._blocks:
                    store.set_level(block_id, StorageLevel.MEMORY_AND_DISK)
        return self

    def checkpoint(self) -> "ArrayRDD":
        """Write this RDD's partitions durably through the block store
        and truncate lineage (an action: forces first).

        Unlike ``persist()`` — whose blocks live in (simulated) executor
        memory and are lost with a worker, so a downstream retry
        re-charges the anchor bytes — a checkpointed block is a file
        that survives worker loss: ``run_with_recovery`` restarts a lost
        downstream task by re-reading the checkpoint, and
        ``recovery_recompute_bytes`` charges only the re-run operator
        chain, never the anchor.  Reads stream from the checkpoint file
        (the recovery path *is* the read path, keeping digests honest).
        """
        self._force()
        store = self._ctx.storage
        for block_id in self._blocks:
            store.checkpoint_block(block_id)
        self._checkpointed = True
        return self

    @property
    def is_persisted(self) -> bool:
        return self._persisted

    @property
    def is_checkpointed(self) -> bool:
        return self._checkpointed

    @property
    def is_materialized(self) -> bool:
        return self._blocks is not None

    @property
    def storage_level(self) -> StorageLevel:
        return self._level

    # ------------------------------------------------------------------
    @property
    def context(self):
        return self._ctx

    @property
    def n_partitions(self) -> int:
        return (
            len(self._blocks)
            if self._blocks is not None
            else len(self._pipes)
        )

    @property
    def n_columns(self) -> int:
        if self._known_columns is None:
            self._force()
        return self._known_columns

    @property
    def _parts(self) -> "list[Columns] | None":
        """Loaded partition list (legacy view used by tests/diagnostics).

        ``None`` while lazy; loading goes through the store, so spilled
        blocks are pulled back transparently.
        """
        if self._blocks is None:
            return None
        return [self._partition(i) for i in range(len(self._blocks))]

    def count(self) -> int:
        if self._cached_count is None:
            self._cached_count = int(self.partition_sizes().sum())
        return self._cached_count

    def partition_sizes(self) -> np.ndarray:
        """Row count per partition (an action on a lazy RDD).

        Served from block metadata — never loads spilled data.  Cached
        and returned read-only: partitions never change after
        materialization.
        """
        if self._cached_sizes is None:
            self._force()
            store = self._ctx.storage
            sizes = np.asarray(
                [store.meta(b).rows for b in self._blocks], dtype=np.int64
            )
            sizes.flags.writeable = False
            self._cached_sizes = sizes
        return self._cached_sizes

    def partition_bytes(self) -> np.ndarray:
        if self._cached_bytes is None:
            self._force()
            store = self._ctx.storage
            nbytes = np.asarray(
                [store.meta(b).nbytes for b in self._blocks], dtype=np.int64
            )
            nbytes.flags.writeable = False
            self._cached_bytes = nbytes
        return self._cached_bytes

    def collect(self) -> Columns:
        """Concatenate all partitions into driver-side column arrays."""
        self._force()
        n_cols = self.n_columns
        chunks: list[list[np.ndarray]] = [[] for _ in range(n_cols)]
        for i in range(self.n_partitions):
            part = self._partition(i)
            for j in range(n_cols):
                chunks[j].append(part[j])
        return tuple(np.concatenate(chunks[j]) for j in range(n_cols))

    # ------------------------------------------------------------------
    def map_partitions(
        self,
        fn: Callable[[Columns, int], Sequence[np.ndarray]],
        *,
        stage: str = "map_partitions",
        bytes_hint: Sequence[int] | np.ndarray | None = None,
        stream: bool = False,
    ) -> "ArrayRDD":
        """Apply ``fn(columns, partition_index) -> columns`` per partition.

        A narrow transformation: it extends the lineage plan and returns
        immediately; the fused task chain runs (concurrently, on the
        context's executor backend) when an action forces the result.
        This is the workhorse all other transformations build on.

        ``bytes_hint`` — optional per-partition output-byte estimates for
        the coalescing planner; only needed when the op *grows* its data
        far beyond the anchor (generate stages on empty anchors most of
        all).  Purely a dispatch-grain weight, never simulated cost.

        ``stream=True`` declares that ``fn`` returns an *iterator of
        column chunks* rather than one column tuple: under a memory
        budget a terminal streaming op writes each chunk through the
        block store as it is produced (bounded task memory), otherwise
        the chunks are concatenated — bit-identical results either way.
        """
        op = PendingOp(
            fn=fn,
            stage=stage,
            n_tasks=self.n_partitions,
            multiplier=self.task_multiplier,
            bytes_hint=(
                None
                if bytes_hint is None
                else tuple(int(b) for b in bytes_hint)
            ),
            stream=stream,
        )
        if self._is_anchor:
            pipes = [
                Pipe(self, i, ((op, i),)) for i in range(self.n_partitions)
            ]
        else:
            pipes = [
                Pipe(p.base, p.index, p.ops + ((op, i),))
                for i, p in enumerate(self._pipes)
            ]
        out = ArrayRDD._from_pipes(
            self._ctx,
            pipes,
            task_multiplier=self.task_multiplier,
            n_columns=None,
        )
        if not self._ctx.fusion_enabled:
            out._force()
        return out

    def sample(
        self, fraction: float, *, seed: int = 0, stage: str = "sample"
    ) -> "ArrayRDD":
        """Uniform row sample of ``fraction * count`` rows per partition.

        ``fraction > 1`` samples with replacement, as Spark's
        ``RDD.sample(withReplacement=True)`` — PGPBA runs with fraction up
        to 2 in the paper's performance experiments.
        """
        if fraction <= 0:
            raise ValueError("fraction must be positive")
        replace = fraction > 1.0

        def _sample(cols: Columns, pidx: int) -> Columns:
            n = cols[0].size
            # ceil guarantees forward progress: any positive fraction on a
            # non-empty partition yields at least one row (PGPBA's clamped
            # final iteration relies on this to terminate).
            k = int(np.ceil(fraction * n))
            if n == 0 or k == 0:
                return tuple(c[:0] for c in cols)
            rng = np.random.default_rng((seed, pidx))
            if replace or k > n:
                idx = rng.integers(0, n, size=k)
            else:
                idx = rng.choice(n, size=k, replace=False)
            return tuple(c[idx] for c in cols)

        return self.map_partitions(_sample, stage=stage)

    def distinct(
        self, *, key_columns: tuple[int, int] | int = 0,
        stage: str = "distinct",
        shuffle: "str | None" = None,
    ) -> "ArrayRDD":
        """Remove duplicate rows, keying on one int column or a pair.

        Modelled as Spark's two-phase distinct: a map-side per-partition
        de-duplication (a narrow op — it fuses with whatever chain
        produced its input), then a hash shuffle so equal keys land in
        the same partition, then a reduce-side unique.  The shuffle is a
        fusion barrier: it forces the map side and returns a
        materialized RDD.

        ``shuffle`` defaults to the context's strategy
        (``ClusterContext(shuffle=)`` / ``REPRO_SHUFFLE``, normally
        ``"exchange"``).  ``"exchange"`` is a real hash exchange: every
        map task buckets its rows by ``hash(key) % n_partitions`` on the
        executor and the reduce-side unique runs per-partition on the
        executor.  Without a memory budget the driver concatenates
        per-destination buckets in memory (peak driver memory is
        O(largest partition), not O(dataset)); with a budget the map
        tasks write their buckets as **file shuffle segments** through
        the block store and the reduce tasks read their slots back, so
        no stage ever holds more than one partition in memory and a
        10^7-row distinct runs under a fixed budget.
        ``shuffle="extsort"`` replaces the reduce-side hash bucket with
        an external merge sort: map tasks write key-sorted,
        codec-compressed runs (one per destination) and reduce tasks
        stream a ``heapq.merge`` k-way merge over the run chunk
        iterators, keeping first occurrences — peak reduce memory is
        bounded by chunk size x runs plus the distinct survivors, never
        the full duplicate-laden bucket.  Its output (rows *and* row
        order) is byte-identical to the exchange path.
        ``shuffle="collect"`` keeps the legacy collect-everything path
        (used by the memory benchmarks as the comparison baseline).
        The shuffle is charged to the simulated clock via the reduce
        stage's measured cost plus a serial ``:driver`` component.
        """
        if isinstance(key_columns, int):
            key_cols: tuple[int, ...] = (key_columns,)
        else:
            key_cols = tuple(key_columns)
        shuffle = (
            resolve_shuffle(shuffle)
            if shuffle is not None
            else getattr(self._ctx, "shuffle_strategy", "exchange")
        )

        n_parts = self.n_partitions
        map_side = self.map_partitions(
            lambda cols, i: _unique_rows(cols, key_cols),
            stage=f"{stage}:map",
        )
        rdd_id: int | None = None
        if shuffle in ("exchange", "extsort"):
            map_side._force()
            # The exchange consumes the map side: its blocks are released
            # as soon as every map task has re-bucketed its input.
            shuffle_fn = (
                _exchange_shuffle if shuffle == "exchange" else _extsort_shuffle
            )
            results, task_cpu, driver_cpu, rdd_id = shuffle_fn(
                self._ctx, map_side, key_cols, n_parts
            )
            del map_side
        else:
            map_side._force()
            results, task_cpu, driver_cpu = _collect_shuffle(
                map_side, key_cols, n_parts
            )
        rdd = ArrayRDD._from_results(
            self._ctx,
            results,
            task_multiplier=self.task_multiplier,
            rdd_id=rdd_id,
        )
        # The simulated cost model is calibrated independently of the
        # local data path: of the total measured shuffle work, 75%
        # parallelises across reducers and 25% is the serial
        # coordination/merge component that does not shrink with cluster
        # size — the reason PGSK's strong scaling sits below PGPBA's in
        # the paper's Fig. 12.  (In real Spark the serial share is driver
        # scheduling and merge coordination, which the local concat time
        # alone would underestimate.)
        elapsed = sum(task_cpu) + driver_cpu
        per_task = 0.75 * elapsed / max(1, n_parts)
        self._ctx._record_stage(
            f"{stage}:reduce",
            [per_task] * n_parts,
            list(rdd.partition_bytes()),
            rdd.partition_bytes(),
            multiplier=self.task_multiplier,
        )
        self._ctx._record_stage(
            f"{stage}:driver", [0.25 * elapsed], [0], None
        )
        return rdd

    def union(self, other: "ArrayRDD") -> "ArrayRDD":
        """Concatenate partition lists (no data movement, like Spark).

        Lazy and free: each side contributes its pipes (or anchor
        partitions by reference) and keeps its own pending chain — the
        column-count check runs when both widths are already known,
        otherwise at materialization.
        """
        if (
            self._known_columns is not None
            and other._known_columns is not None
            and self._known_columns != other._known_columns
        ):
            raise ValueError("union requires matching column counts")
        width = self._known_columns or other._known_columns
        out = ArrayRDD._from_pipes(
            self._ctx,
            self._as_pipes() + other._as_pipes(),
            task_multiplier=max(self.task_multiplier, other.task_multiplier),
            n_columns=width
            if (self._known_columns and other._known_columns)
            else None,
        )
        if not self._ctx.fusion_enabled:
            out._force()
        return out

    def repartition(self, n_partitions: int, *, stage: str = "repartition") -> "ArrayRDD":
        """Rebalance rows into ``n_partitions`` near-equal partitions.

        A range exchange (and therefore a fusion barrier): the driver
        only *plans* (computes per-destination source slices); the
        per-destination load/slice/concatenate work runs as executor
        tasks against block references, and — under a memory budget —
        each task writes its output straight to a block file.  Row order
        (and therefore the output) is identical to concatenating
        everything and ``np.array_split``-ing it, without ever
        materialising the full dataset in the driver.
        """
        if n_partitions < 1:
            raise ValueError("need at least one partition")
        self._force()
        t0 = time.perf_counter()
        sizes = self.partition_sizes()
        src_off = np.concatenate(([0], np.cumsum(sizes)))
        total = int(src_off[-1])
        bounds = np.concatenate(
            ([0], np.cumsum(split_count(total, n_partitions)))
        )
        pieces: list[list[tuple[int, int, int]]] = []
        for p in range(n_partitions):
            lo, hi = int(bounds[p]), int(bounds[p + 1])
            mine: list[tuple[int, int, int]] = []
            if hi > lo:
                s = int(np.searchsorted(src_off, lo, side="right")) - 1
                while s < self.n_partitions and src_off[s] < hi:
                    a = max(lo, int(src_off[s])) - int(src_off[s])
                    b = min(hi, int(src_off[s + 1])) - int(src_off[s])
                    if b > a:
                        mine.append((s, a, b))
                    s += 1
            pieces.append(mine)
        refs = {
            s: self._task_ref(s)
            for s in sorted({c[0] for mine in pieces for c in mine})
        }
        template_ref = (
            self._task_ref(0) if any(not mine for mine in pieces) else None
        )
        plan_seconds = time.perf_counter() - t0
        n_cols = self.n_columns
        store = self._ctx.storage
        writer = store.block_writer() if store.spill_task_outputs else None
        rdd_id = self._ctx._next_rdd_id()

        def _make_task(mine: list[tuple[int, int, int]], p: int):
            out_name = (
                writer.name_for(BlockId(rdd_id, p))
                if writer is not None
                else None
            )

            def _task():
                if writer is not None:
                    # Budgeted: stream source slices straight into the
                    # output block file, one source at a time — peak
                    # task memory is one source partition plus the
                    # codec's chunk buffers, never the full destination.
                    out = writer.open_chunked(out_name)
                    elapsed = 0.0
                    if not mine:
                        template = template_ref.load()
                        t0 = time.perf_counter()
                        out.append_columns(tuple(c[:0] for c in template))
                        elapsed += time.perf_counter() - t0
                    for s, a, b in mine:
                        src = refs[s].load()
                        t0 = time.perf_counter()
                        out.append_columns(tuple(c[a:b] for c in src))
                        elapsed += time.perf_counter() - t0
                        del src
                    return out.close(), elapsed
                loaded = [(refs[s].load(), a, b) for s, a, b in mine]
                if not loaded and template_ref is not None:
                    template = template_ref.load()
                t0 = time.perf_counter()
                if not loaded:
                    cols = tuple(c[:0] for c in template)
                elif len(loaded) == 1:
                    src, a, b = loaded[0]
                    cols = tuple(c[a:b] for c in src)
                else:
                    cols = tuple(
                        np.concatenate([src[j][a:b] for src, a, b in loaded])
                        for j in range(n_cols)
                    )
                elapsed = time.perf_counter() - t0
                return cols, elapsed

            return _task

        outs = self._ctx.run_tasks(
            [_make_task(mine, p) for p, mine in enumerate(pieces)]
        )
        results = [out[0] for out in outs]
        # Fold the (tiny, index-only) driver planning cost into the tasks
        # so the stage structure matches the pre-exchange accounting.
        cpu = [out[1] + plan_seconds / n_partitions for out in outs]
        rdd = ArrayRDD._from_results(
            self._ctx,
            results,
            task_multiplier=self.task_multiplier,
            rdd_id=rdd_id,
        )
        self._ctx._record_stage(
            stage,
            cpu,
            list(rdd.partition_bytes()),
            rdd.partition_bytes(),
            multiplier=self.task_multiplier,
        )
        return rdd

    def reduce_columns(
        self, fn: Callable[[Columns], np.ndarray], *, stage: str = "reduce"
    ) -> np.ndarray:
        """Per-partition reduction followed by a driver-side concat.

        ``fn`` maps a partition to a (possibly scalar-like) array; the
        results are concatenated, mirroring ``RDD.mapPartitions().collect()``
        driver aggregation.  An action: forces the lineage first.
        """
        self._force()
        refs = [self._task_ref(i) for i in range(self.n_partitions)]

        def _make_task(ref):
            def _task():
                part = ref.load()
                t0 = time.perf_counter()
                out = np.atleast_1d(np.asarray(fn(part)))
                return out, time.perf_counter() - t0

            return _task

        results = self._ctx.run_tasks([_make_task(r) for r in refs])
        outs = [r[0] for r in results]
        cpu = [r[1] for r in results]
        self._ctx._record_stage(
            stage, cpu, [o.nbytes for o in outs], None,
            multiplier=self.task_multiplier,
        )
        return np.concatenate(outs)


# ----------------------------------------------------------------------
# shuffle machinery
# ----------------------------------------------------------------------

# SplitMix64's multiplier: decorrelates the destination from low-order
# key-bit patterns so contiguous vertex ids spread over all reducers.
_HASH_MULT = np.uint64(0x9E3779B97F4A7C15)


def _hash_keys(cols: Columns, key_cols: tuple[int, ...]) -> np.ndarray:
    """Uint64 row hash for shuffle routing.

    Wraparound is deliberate and harmless: the hash only decides which
    reducer sees a row, and every path (any backend, any partitioning)
    computes it identically.  Exactness for de-duplication comes from
    :func:`_unique_rows`, never from this hash.
    """
    key = cols[key_cols[0]].astype(np.uint64)
    for kc in key_cols[1:]:
        key = key * _HASH_MULT + cols[kc].astype(np.uint64)
    return key


def _route(cols: Columns, key_cols: tuple[int, ...], n_parts: int):
    """Stable per-destination row ordering for the hash exchange: the
    identical routing runs in the in-memory and file-segment paths, so
    the reduce side sees the same rows in the same order either way."""
    dest = (_hash_keys(cols, key_cols) % np.uint64(n_parts)).astype(np.int64)
    order = np.argsort(dest, kind="stable")
    splits = np.searchsorted(dest[order], np.arange(n_parts + 1))
    return order, splits


def _exchange_shuffle(
    ctx, map_side: "ArrayRDD", key_cols: tuple[int, ...], n_parts: int
):
    """Hash-exchange + reduce-side unique without a driver collect.

    Returns ``(results, per_task_cpu, driver_cpu, rdd_id)`` — raw
    measured seconds; the caller applies the calibrated parallel/serial
    cost split.  ``results`` are column tuples (in-memory path) or
    :class:`SpilledBlockHandle` (budgeted path); ``rdd_id`` is the block
    namespace the outputs were written under.

    Without a memory budget, map-side bucketing and reduce-side unique
    both run on the executor and the driver only concatenates
    per-destination buckets, releasing buffers as eagerly as the
    dataflow allows.  With a budget, every map task writes its buckets
    to one ``.npz`` shuffle segment through the block store and every
    reduce task streams its slots back from the segment files — the
    dataset never transits driver memory at all, and on the processes
    backend the exchange moves bytes via files instead of shm pickles.
    """
    store = ctx.storage
    n_src = map_side.n_partitions
    n_cols = map_side.n_columns
    rdd_id = ctx._next_rdd_id()

    if store.spill_task_outputs:
        shuffle_id = store.new_shuffle_id()
        seg_writer = store.shuffle_writer()
        refs = [map_side._task_ref(i) for i in range(n_src)]

        def _make_segment_task(ref, mi: int):
            name = f"ex{shuffle_id}-m{mi}{seg_writer.extension}"

            def _task():
                cols = ref.load()
                t0 = time.perf_counter()
                order, splits = _route(cols, key_cols, n_parts)
                named = {}
                for p in range(n_parts):
                    sel = order[splits[p]:splits[p + 1]]
                    for j, c in enumerate(cols):
                        named[f"d{p}c{j}"] = c[sel]
                elapsed = time.perf_counter() - t0
                return seg_writer.write_arrays(name, named), elapsed

            return _task

        outs = ctx.run_tasks(
            [_make_segment_task(r, mi) for mi, r in enumerate(refs)]
        )
        map_cpu = [o[1] for o in outs]
        seg_infos = [o[0] for o in outs]
        seg_paths = [info.path for info in seg_infos]
        seg_disk = int(sum(info.disk_bytes for info in seg_infos))
        seg_logical = int(sum(info.logical_bytes for info in seg_infos))
        store.track_shuffle_segments(
            seg_disk,
            seg_logical,
            n_src,
            sum(info.seconds for info in seg_infos),
        )
        refs = None
        map_side._release_now()  # segments now hold the data

        block_writer = store.block_writer()

        def _make_reduce_task(p: int):
            out_name = block_writer.name_for(BlockId(rdd_id, p))
            slot_names = [f"d{p}c{j}" for j in range(n_cols)]

            def _task():
                t0 = time.perf_counter()
                per_col: list[list[np.ndarray]] = [[] for _ in range(n_cols)]
                for path in seg_paths:
                    slots = read_arrays(path, slot_names)
                    for j in range(n_cols):
                        per_col[j].append(slots[j])
                cols = tuple(
                    np.concatenate(per_col[j]) for j in range(n_cols)
                )
                out = _unique_rows(cols, key_cols)
                elapsed = time.perf_counter() - t0
                return block_writer.write(out_name, out), elapsed

            return _task

        reduced = ctx.run_tasks(
            [_make_reduce_task(p) for p in range(n_parts)]
        )
        for path in seg_paths:
            try:
                os.unlink(path)
            except OSError:
                pass
        store.untrack_shuffle_segments(seg_disk, seg_logical)
        results = [r[0] for r in reduced]
        task_cpu = [map_cpu[p] + reduced[p][1] for p in range(n_parts)]
        return results, task_cpu, 0.0, rdd_id

    refs = [map_side._task_ref(i) for i in range(n_src)]

    def _make_bucket_task(ref):
        def _task():
            cols = ref.load()
            t0 = time.perf_counter()
            order, splits = _route(cols, key_cols, n_parts)
            # Fancy indexing copies, so every bucket owns its rows and the
            # driver can free it independently of its siblings.
            buckets = [
                tuple(c[order[splits[p]:splits[p + 1]]] for c in cols)
                for p in range(n_parts)
            ]
            return buckets, time.perf_counter() - t0

        return _task

    bucket_outs = ctx.run_tasks([_make_bucket_task(r) for r in refs])
    bucket_cpu = [r[1] for r in bucket_outs]
    bucketed: list[list[Columns]] = [r[0] for r in bucket_outs]
    del bucket_outs
    refs = None
    map_side._release_now()  # map-side blocks are consumed; free them now

    t0 = time.perf_counter()
    gathered: list[Columns] = []
    for p in range(n_parts):
        gathered.append(
            tuple(
                np.concatenate([src[p][j] for src in bucketed])
                for j in range(n_cols)
            )
        )
        for src in bucketed:
            src[p] = None  # this destination's buckets are merged; free
    driver_seconds = time.perf_counter() - t0
    del bucketed

    def _make_unique_task(cols: Columns):
        def _task():
            t0 = time.perf_counter()
            out = _unique_rows(cols, key_cols)
            return out, time.perf_counter() - t0

        return _task

    reduced = ctx.run_tasks([_make_unique_task(g) for g in gathered])
    out_parts = [r[0] for r in reduced]
    task_cpu = [bucket_cpu[p] + reduced[p][1] for p in range(n_parts)]
    return out_parts, task_cpu, driver_seconds, rdd_id


# Global first-occurrence positions pack (map_index, local_index) into
# one int64: map index in the high bits, routed-row index in the low 44.
# Ascending pos is exactly the order the exchange reduce would see after
# concatenating map segments, which is what makes the two paths emit
# byte-identical partitions.
_EXTSORT_POS_SHIFT = np.int64(44)


def _run_row_iter(
    path: str, n_cols: int, key_cols: tuple[int, ...]
) -> Iterator[tuple]:
    """Stream one sorted run as ``(key..., pos, values...)`` tuples.

    Reads one chunk per column at a time (chunks are row-aligned across
    a run's columns by construction), so resident bytes per run are one
    chunk per column — the k-way merge's memory bound.  Values are
    converted via ``tolist`` to native Python scalars: comparisons in
    ``heapq.merge`` get cheaper and int64/float64 round-trip exactly.
    """

    iters = [iter_column_chunks(path, f"c{j}") for j in range(n_cols + 1)]
    for chunks in zip(*iters):
        lists = [c.tolist() for c in chunks]
        key_lists = [lists[kc] for kc in key_cols]
        pos_list = lists[n_cols]
        yield from zip(*key_lists, pos_list, *lists[:n_cols])


def _extsort_shuffle(
    ctx, map_side: "ArrayRDD", key_cols: tuple[int, ...], n_parts: int
):
    """External merge-sort shuffle + streaming first-occurrence dedup.

    Same contract as :func:`_exchange_shuffle` (and byte-identical
    output), different memory shape: map tasks route rows with the
    identical ``_route`` hash, key-sort each destination's slice
    (stable, so equal keys stay in first-occurrence order), attach the
    packed global position, and write one codec-compressed sorted run
    per destination in bounded chunks.  Reduce tasks never concatenate
    a bucket: ``heapq.merge`` streams the k runs in ``(key, pos)``
    order, the first row of every equal-key group (= the globally
    first occurrence, because pos is the concatenation order) survives,
    and survivors are re-sorted by pos so the output rows and row order
    match the hash-exchange reduce exactly.  Peak reduce memory is
    O(chunk_rows x columns x runs) for the merge plus the distinct
    survivors — duplicates are dropped on the fly and never buffered.
    """
    store = ctx.storage
    n_src = map_side.n_partitions
    n_cols = map_side.n_columns
    rdd_id = ctx._next_rdd_id()
    chunk_rows = resolve_extsort_chunk_rows()
    shuffle_id = store.new_shuffle_id()
    seg_writer = store.shuffle_writer()
    if seg_writer.codec == "raw":
        # The memory bound requires chunked reads on the merge side, and
        # the raw .npz container cannot deliver them (numpy loads members
        # whole).  Runs are shuffle-internal temporaries, so quietly use
        # the uncompressed chunked .blk container instead; spilled
        # *output* blocks still honour the configured codec.
        seg_writer = dataclasses.replace(seg_writer, codec="mmap")
    spill_outputs = store.spill_task_outputs
    refs = [map_side._task_ref(i) for i in range(n_src)]

    def _run_name(mi: int, p: int) -> str:
        return f"es{shuffle_id}-m{mi}-d{p}{seg_writer.extension}"

    def _make_run_task(ref, mi: int):
        names = [_run_name(mi, p) for p in range(n_parts)]

        def _task():
            cols = ref.load()
            t0 = time.perf_counter()
            order, splits = _route(cols, key_cols, n_parts)
            base = np.int64(mi) << _EXTSORT_POS_SHIFT
            runs = []
            for p in range(n_parts):
                sel = order[splits[p]:splits[p + 1]]
                rows = tuple(c[sel] for c in cols)
                pos = base + np.arange(sel.size, dtype=np.int64)
                if len(key_cols) == 1:
                    sort_idx = np.argsort(rows[key_cols[0]], kind="stable")
                else:
                    # primary key first: lexsort keys are last-significant
                    sort_idx = np.lexsort(
                        (rows[key_cols[1]], rows[key_cols[0]])
                    )
                runs.append(
                    (tuple(r[sort_idx] for r in rows), pos[sort_idx])
                )
            elapsed = time.perf_counter() - t0
            infos = []
            for p, (rows, pos) in enumerate(runs):
                run_writer = seg_writer.open_chunked(names[p])
                if pos.size == 0:
                    # register dtypes so the reduce side can reconstruct
                    # empty columns exactly
                    run_writer.append_columns(
                        tuple(r[:0] for r in rows) + (pos[:0],)
                    )
                else:
                    for lo in range(0, pos.size, chunk_rows):
                        hi = lo + chunk_rows
                        run_writer.append_columns(
                            tuple(r[lo:hi] for r in rows) + (pos[lo:hi],)
                        )
                infos.append(run_writer.close())
            return infos, elapsed

        return _task

    outs = ctx.run_tasks(
        [_make_run_task(r, mi) for mi, r in enumerate(refs)]
    )
    map_cpu = [o[1] for o in outs]
    run_paths = [[info.path for info in o[0]] for o in outs]
    seg_disk = int(sum(i.disk_bytes for o in outs for i in o[0]))
    seg_logical = int(sum(i.nbytes for o in outs for i in o[0]))
    seg_seconds = sum(i.codec_seconds for o in outs for i in o[0])
    store.track_shuffle_segments(
        seg_disk, seg_logical, n_src * n_parts, seg_seconds
    )
    refs = None
    map_side._release_now()  # sorted runs now hold the data

    block_writer = store.block_writer() if spill_outputs else None
    n_key = len(key_cols)

    def _make_merge_task(p: int):
        paths = [run_paths[mi][p] for mi in range(n_src)]
        out_name = (
            block_writer.name_for(BlockId(rdd_id, p))
            if block_writer is not None
            else None
        )

        def _task():
            t0 = time.perf_counter()
            dtypes = array_dtypes(paths[0])
            survivors: list[list] = [[] for _ in range(n_cols)]
            keep_pos: list[int] = []
            prev = None
            merged = heapq.merge(
                *(_run_row_iter(path, n_cols, key_cols) for path in paths)
            )
            for item in merged:
                key = item[:n_key]
                if key != prev:
                    prev = key
                    keep_pos.append(item[n_key])
                    vals = item[n_key + 1:]
                    for j in range(n_cols):
                        survivors[j].append(vals[j])
            # Ascending pos == the exchange's concatenated row order.
            order = np.argsort(
                np.asarray(keep_pos, dtype=np.int64), kind="stable"
            )
            cols = tuple(
                np.asarray(survivors[j], dtype=dtypes[f"c{j}"])[order]
                for j in range(n_cols)
            )
            elapsed = time.perf_counter() - t0
            if block_writer is not None:
                return block_writer.write(out_name, cols), elapsed
            return cols, elapsed

        return _task

    reduced = ctx.run_tasks([_make_merge_task(p) for p in range(n_parts)])
    for per_map in run_paths:
        for path in per_map:
            try:
                os.unlink(path)
            except OSError:
                pass
    store.untrack_shuffle_segments(seg_disk, seg_logical)
    results = [r[0] for r in reduced]
    task_cpu = [map_cpu[p] + reduced[p][1] for p in range(n_parts)]
    return results, task_cpu, 0.0, rdd_id


def _collect_shuffle(
    map_side: "ArrayRDD", key_cols: tuple[int, ...], n_parts: int
) -> tuple[list[Columns], list[float], float]:
    """Legacy shuffle: collect the whole dataset into the driver, route by
    key hash, unique per destination.  O(dataset) driver memory; kept as
    the baseline the engine benchmarks compare the exchange path against.

    Returns ``(partitions, per_task_cpu, driver_cpu)`` with all measured
    work in the task list; the caller applies the calibrated
    parallel/serial cost split.
    """
    t0 = time.perf_counter()
    all_cols = map_side.collect()
    dest = (_hash_keys(all_cols, key_cols) % np.uint64(n_parts)).astype(
        np.int64
    )
    parts: list[Columns] = []
    for p in range(n_parts):
        mask = dest == p
        sub = tuple(c[mask] for c in all_cols)
        parts.append(_unique_rows(sub, key_cols))
    elapsed = time.perf_counter() - t0
    return parts, [elapsed], 0.0


# ----------------------------------------------------------------------
# exact row de-duplication
# ----------------------------------------------------------------------

# a * span + b packing is exact only while it fits int64; beyond that we
# fall back to a (slower) lexicographic unique over the stacked columns.
_INT64_MAX = np.iinfo(np.int64).max


def _unique_rows(cols: Columns, key_cols: tuple[int, ...]) -> Columns:
    if cols[0].size == 0:
        return cols
    if len(key_cols) == 1:
        _, idx = np.unique(cols[key_cols[0]], return_index=True)
    else:
        idx = _unique_pair_index(
            cols[key_cols[0]], cols[key_cols[1]]
        )
    idx.sort()
    return tuple(c[idx] for c in cols)


def _unique_pair_index(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """First-occurrence indices of distinct ``(a, b)`` pairs, exactly.

    Fast path: pack the pair into one int64 key when the bounds prove
    ``a * span + b`` cannot overflow (Python-int arithmetic, so the check
    itself cannot wrap).  Otherwise — vertex ids near 2^32 with large
    spans used to wrap silently here — stack the columns and take a
    row-wise unique, which is exact for any magnitude.
    """
    a = np.asarray(a)
    b = np.asarray(b)
    if (
        np.issubdtype(a.dtype, np.integer)
        and np.issubdtype(b.dtype, np.integer)
    ):
        b_min, b_max = int(b.min()), int(b.max())
        a_min, a_max = int(a.min()), int(a.max())
        if a_min >= 0 and b_min >= 0:
            span = b_max + 1
            if a_max * span + b_max <= _INT64_MAX:
                packed = a.astype(np.int64) * np.int64(span) + b.astype(
                    np.int64
                )
                _, idx = np.unique(packed, return_index=True)
                return idx
    stacked = np.stack(
        [np.asarray(a), np.asarray(b)], axis=1
    )
    _, idx = np.unique(stacked, axis=0, return_index=True)
    return idx
