"""Tests for the streaming (online) detector."""

import numpy as np
import pytest

from repro.core.pipeline import packets_from
from repro.detect import DetectionThresholds, OnlineDetector
from repro.netflow import FlowTable, assemble_flows
from repro.trace import attacks, synthesize_seed_packets
from repro.trace.hosts import ipv4

WINDOW = 5.0


def sorted_records(frames):
    frames = sorted(frames, key=lambda f: f[0])
    records = list(assemble_flows(packets_from(frames)))
    records.sort(key=lambda r: r.start_time)
    return records


@pytest.fixture(scope="module")
def background():
    return synthesize_seed_packets(duration=20.0, session_rate=40, seed=9)


@pytest.fixture(scope="module")
def thresholds(background):
    table = FlowTable.from_records(sorted_records(background))
    return DetectionThresholds.fit_normal(
        {k: table[k] for k in FlowTable.COLUMN_NAMES},
        window_seconds=WINDOW,
    )


class TestStreaming:
    def test_detects_attack_mid_stream(self, background, thresholds):
        victim = ipv4(10, 2, 0, 3)
        gt = attacks.syn_flood(
            attacker_ip=ipv4(203, 0, 113, 5), victim_ip=victim,
            start_time=1_000_008.0, duration=4.0,
        )
        records = sorted_records(list(background) + gt.frames)
        detector = OnlineDetector(thresholds, window_seconds=WINDOW)
        alerts = list(detector.run(records))
        syn_alerts = [
            a for a in alerts
            if "syn" in a.detection.kind and a.detection.ip == victim
        ]
        assert syn_alerts
        # The alarm fires while the attack is in flight or shortly after,
        # never before it started.
        assert all(a.time >= gt.start_time for a in syn_alerts)
        assert min(a.time for a in syn_alerts) <= gt.end_time + 2 * WINDOW

    def test_clean_stream_quiet(self, background, thresholds):
        records = sorted_records(background)
        detector = OnlineDetector(thresholds, window_seconds=WINDOW)
        assert list(detector.run(records)) == []

    def test_cooldown_suppresses_repeats(self, background, thresholds):
        victim = ipv4(10, 2, 0, 3)
        gt = attacks.syn_flood(
            attacker_ip=ipv4(203, 0, 113, 5), victim_ip=victim,
            start_time=1_000_006.0, duration=10.0, n_packets=6000,
        )
        records = sorted_records(list(background) + gt.frames)

        def count_alerts(cooldown):
            det = OnlineDetector(
                thresholds, window_seconds=WINDOW,
                cooldown_seconds=cooldown,
            )
            return sum(
                1 for a in det.run(records)
                if "syn" in a.detection.kind and a.detection.ip == victim
            )

        assert count_alerts(1e9) == 1
        assert count_alerts(0.0) >= count_alerts(1e9)

    def test_window_evicts_old_flows(self, background, thresholds):
        records = sorted_records(background)
        detector = OnlineDetector(thresholds, window_seconds=2.0)
        for r in records:
            detector.process(r)
        in_window = [
            r for r in records
            if r.start_time >= records[-1].start_time - 10 * 2.0
        ]
        # The deque can only hold flows near the stream head.
        assert detector.window_size <= len(in_window)
        assert detector.flows_processed == len(records)

    def test_flush_evaluates_tail(self, thresholds):
        gt = attacks.syn_flood(
            attacker_ip=1, victim_ip=2, start_time=100.0, duration=1.0,
        )
        records = sorted_records(gt.frames)
        detector = OnlineDetector(thresholds, window_seconds=WINDOW)
        mid = [d for r in records for d in detector.process(r)]
        tail = detector.flush()
        kinds = {a.detection.kind for a in mid + tail}
        assert any("syn" in k or k == "host_scan" for k in kinds)

    def test_flush_empty(self, thresholds):
        assert OnlineDetector(thresholds).flush() == []

    def test_flush_never_double_reports(self, background, thresholds):
        """A drain must not re-raise alarms the hop evaluations already
        emitted — even with cooldown 0, where nothing else suppresses
        the repeat."""
        gt = attacks.syn_flood(
            attacker_ip=ipv4(203, 0, 113, 5), victim_ip=ipv4(10, 2, 0, 3),
            start_time=1_000_008.0, duration=4.0,
        )
        records = sorted_records(list(background) + gt.frames)
        detector = OnlineDetector(
            thresholds, window_seconds=WINDOW, cooldown_seconds=0.0
        )
        mid = [d for r in records for d in detector.process(r)]
        assert mid, "attack should alert before the drain"
        mid_keys = {
            (a.detection.kind, a.detection.ip, a.detection.direction)
            for a in mid
        }
        flushed = detector.flush()
        flushed_keys = {
            (a.detection.kind, a.detection.ip, a.detection.direction)
            for a in flushed
        }
        assert not (mid_keys & flushed_keys)

    def test_flush_sorted_and_idempotent(self, background, thresholds):
        gt = attacks.udp_flood(
            attacker_ip=ipv4(203, 0, 113, 8), victim_ip=ipv4(10, 2, 0, 5),
            start_time=1_000_015.0,
        )
        records = sorted_records(list(background) + gt.frames)
        detector = OnlineDetector(
            thresholds, window_seconds=WINDOW, cooldown_seconds=0.0
        )
        for r in records:
            detector.process(r)
        flushed = detector.flush()
        times = [a.time for a in flushed]
        assert times == sorted(times)
        keys = [
            (a.detection.kind, a.detection.ip, a.detection.direction)
            for a in flushed
        ]
        assert len(keys) == len(set(keys))
        # A second drain without new records reports nothing new.
        assert detector.flush() == []

    def test_validation(self):
        with pytest.raises(ValueError):
            OnlineDetector(window_seconds=0)
        with pytest.raises(ValueError):
            OnlineDetector(hop_seconds=0)
        with pytest.raises(ValueError):
            OnlineDetector(cooldown_seconds=-1)

    def test_matches_windowed_batch_on_same_stream(
        self, background, thresholds
    ):
        """Streaming with hop == window reproduces the batch windowed
        detector's alarm set (same logic, same aggregation)."""
        from repro.detect import NetflowAnomalyDetector

        gt = attacks.udp_flood(
            attacker_ip=ipv4(203, 0, 113, 8),
            victim_ip=ipv4(10, 2, 0, 5), start_time=1_000_007.0,
        )
        records = sorted_records(list(background) + gt.frames)
        table = FlowTable.from_records(records)
        batch = NetflowAnomalyDetector(thresholds).detect_windowed(
            {k: table[k] for k in FlowTable.COLUMN_NAMES},
            window_seconds=WINDOW,
        )
        batch_kinds = {(d.kind, d.ip) for d in batch}

        stream = OnlineDetector(
            thresholds, window_seconds=WINDOW, hop_seconds=WINDOW,
            cooldown_seconds=0.0,
        )
        stream_kinds = {
            (a.detection.kind, a.detection.ip)
            for a in stream.run(records)
        }
        # Streaming windows are phase-shifted relative to batch windows, so
        # demand overlap on the attack alarms rather than equality.
        attack_alarms = {
            k for k in batch_kinds if k[1] in (gt.victim_ips[0],
                                               gt.attacker_ips[0])
        }
        assert attack_alarms & stream_kinds
