"""Array partitioning helpers.

``split_array`` / ``split_count`` fix *logical* partition boundaries: the
same ``(total, n_partitions)`` always produces the same split, so stage
re-execution (recovery, another backend, another budget) lands every row
in the same partition.  ``chunk_weights`` works on the other side of the
two-clock boundary: it groups logical partitions into the *physical*
executor tasks the coalescer dispatches, without ever moving a row
between partitions.
"""

from __future__ import annotations

import numpy as np

__all__ = ["split_array", "split_count", "chunk_weights"]


def split_array(arr: np.ndarray, n_partitions: int) -> list[np.ndarray]:
    """Split a 1-D array into ``n_partitions`` contiguous, near-equal views.

    Views, not copies: the engine only copies when a transformation
    actually produces new data.

    When ``n_partitions > len(arr)`` the trailing partitions are empty.
    The split itself keeps them (callers rely on the ``n_partitions``
    length contract), but the plan layer prunes empty partitions before
    task emission — they run inline in the driver instead of becoming
    real scheduled tasks (see :func:`repro.engine.plan.fuse_and_run`).
    """
    if n_partitions < 1:
        raise ValueError("need at least one partition")
    return list(np.array_split(arr, n_partitions))


def chunk_weights(
    weights, target: int, *, min_chunks: int = 1
) -> list[list[int]]:
    """Group consecutive positions into chunks of ~``target`` total weight.

    Returns a list of position groups covering ``range(len(weights))`` in
    order; every group is non-empty.  The number of chunks is
    ``min(len(weights), max(min_chunks, ceil(total / target)))`` and the
    boundaries are placed at the balanced cumulative-weight quotas, so the
    grouping is a pure function of ``(weights, target, min_chunks)`` —
    deterministic and backend-independent, which keeps the coalesced task
    composition (and therefore any fault-injection coordinates keyed on
    it) identical on every executor backend.
    """
    if target < 1:
        raise ValueError("target weight must be >= 1")
    if min_chunks < 1:
        raise ValueError("min_chunks must be >= 1")
    n = len(weights)
    if n == 0:
        return []
    cum = np.cumsum(np.asarray(weights, dtype=np.float64))
    total = float(cum[-1])
    n_chunks = min(n, max(min_chunks, int(np.ceil(total / target)) or 1))
    bounds = [0]
    for c in range(1, n_chunks):
        cut = int(np.searchsorted(cum, total * c / n_chunks, side="left")) + 1
        cut = max(cut, bounds[-1] + 1)  # at least one position per chunk
        cut = min(cut, n - (n_chunks - c))  # leave positions for the rest
        bounds.append(cut)
    bounds.append(n)
    return [
        list(range(bounds[c], bounds[c + 1])) for c in range(n_chunks)
    ]


def split_count(total: int, n_partitions: int) -> np.ndarray:
    """Distribute ``total`` work items over partitions as evenly as
    possible (used to parallelise "generate N edges" stages that have no
    input data, like the PGSK descent)."""
    if n_partitions < 1:
        raise ValueError("need at least one partition")
    if total < 0:
        raise ValueError("total must be non-negative")
    base = total // n_partitions
    counts = np.full(n_partitions, base, dtype=np.int64)
    counts[: total - base * n_partitions] += 1
    return counts
