"""Unit tests for repro.graph.property_graph."""

import numpy as np
import pytest

from repro.graph import PropertyGraph


def tri_multigraph():
    """0->1 (x2), 1->2, 2->0, plus a self loop at 2."""
    return PropertyGraph(
        n_vertices=3,
        src=np.array([0, 0, 1, 2, 2]),
        dst=np.array([1, 1, 2, 0, 2]),
        edge_properties={"W": np.array([1.0, 2.0, 3.0, 4.0, 5.0])},
    )


class TestValidation:
    def test_endpoint_out_of_range(self):
        with pytest.raises(ValueError, match="out of range"):
            PropertyGraph(2, np.array([0]), np.array([5]))

    def test_negative_endpoint(self):
        with pytest.raises(ValueError, match="non-negative"):
            PropertyGraph(2, np.array([-1]), np.array([0]))

    def test_mismatched_endpoints(self):
        with pytest.raises(ValueError, match="matching 1-D"):
            PropertyGraph(2, np.array([0, 1]), np.array([0]))

    def test_bad_edge_property_length(self):
        with pytest.raises(ValueError, match="edge property"):
            PropertyGraph(
                2, np.array([0]), np.array([1]),
                edge_properties={"X": np.array([1, 2])},
            )

    def test_bad_vertex_property_length(self):
        with pytest.raises(ValueError, match="vertex property"):
            PropertyGraph(
                2, np.array([0]), np.array([1]),
                vertex_properties={"ID": np.array([1, 2, 3])},
            )

    def test_empty(self):
        g = PropertyGraph.empty()
        assert g.n_vertices == 0 and g.n_edges == 0


class TestDegrees:
    def test_out_degrees_count_parallel(self):
        g = tri_multigraph()
        assert g.out_degrees().tolist() == [2, 1, 2]

    def test_in_degrees_count_parallel(self):
        g = tri_multigraph()
        assert g.in_degrees().tolist() == [1, 2, 2]

    def test_total_degree_sum_is_twice_edges(self):
        g = tri_multigraph()
        assert g.degrees().sum() == 2 * g.n_edges

    def test_isolated_vertex_zero(self):
        g = PropertyGraph(4, np.array([0]), np.array([1]))
        assert g.degrees()[3] == 0


class TestSimpleProjection:
    def test_distinct_pairs_dedupe(self):
        g = tri_multigraph()
        s, d = g.distinct_edge_pairs()
        pairs = set(zip(s.tolist(), d.tolist()))
        assert pairs == {(0, 1), (1, 2), (2, 0), (2, 2)}

    def test_multiplicities(self):
        g = tri_multigraph()
        counts = sorted(g.edge_multiplicities().tolist())
        assert counts == [1, 1, 1, 2]

    def test_simple_graph_strips_properties(self):
        simple = tri_multigraph().simple_graph()
        assert simple.n_edges == 4
        assert simple.edge_properties == {}

    def test_empty_graph(self):
        g = PropertyGraph.empty()
        s, d = g.distinct_edge_pairs()
        assert s.size == 0
        assert g.edge_multiplicities().size == 0


class TestTransforms:
    def test_reversed(self):
        g = tri_multigraph()
        r = g.reversed()
        assert np.array_equal(r.src, g.dst)
        assert np.array_equal(r.dst, g.src)
        assert r.edge_properties.keys() == g.edge_properties.keys()

    def test_select_edges_mask(self):
        g = tri_multigraph()
        sub = g.select_edges(np.array([True, False, True, False, False]))
        assert sub.n_edges == 2
        assert sub.edge_properties["W"].tolist() == [1.0, 3.0]

    def test_select_edges_index(self):
        g = tri_multigraph()
        sub = g.select_edges(np.array([4, 0]))
        assert sub.src.tolist() == [2, 0]

    def test_sample_edges_size(self, rng):
        g = tri_multigraph()
        idx = g.sample_edges(0.5, rng)
        assert idx.size == 3  # ceil(0.5 * 5)

    def test_sample_edges_with_replacement_when_over_one(self, rng):
        g = tri_multigraph()
        idx = g.sample_edges(2.0, rng)
        assert idx.size == 10

    def test_sample_edges_bad_fraction(self, rng):
        with pytest.raises(ValueError):
            tri_multigraph().sample_edges(0.0, rng)


class TestAdjacencyExport:
    def test_sparse_weighted_multiplicity(self):
        g = tri_multigraph()
        m = g.to_sparse_adjacency()
        assert m[0, 1] == 2.0
        assert m[2, 2] == 1.0

    def test_sparse_unweighted(self):
        g = tri_multigraph()
        m = g.to_sparse_adjacency(weighted=False)
        assert m[0, 1] == 1.0

    def test_networkx_roundtrip(self):
        g = tri_multigraph()
        nxg = g.to_networkx()
        assert nxg.number_of_edges() == 5
        back = PropertyGraph.from_networkx(nxg)
        assert back.n_edges == 5
        assert np.array_equal(
            np.sort(back.degrees()), np.sort(g.degrees())
        )

    def test_networkx_refuses_huge(self):
        g = tri_multigraph()
        with pytest.raises(ValueError, match="refusing"):
            g.to_networkx(max_edges=2)


class TestPersistence:
    def test_npz_roundtrip(self, tmp_path):
        g = tri_multigraph()
        path = tmp_path / "g.npz"
        g.save_npz(path)
        back = PropertyGraph.load_npz(path)
        assert back.n_vertices == g.n_vertices
        assert np.array_equal(back.src, g.src)
        assert np.array_equal(back.dst, g.dst)
        assert np.allclose(back.edge_properties["W"], g.edge_properties["W"])

    def test_npz_with_vertex_properties(self, tmp_path):
        g = PropertyGraph(
            2, np.array([0]), np.array([1]),
            vertex_properties={"ID": np.array([100, 200])},
        )
        path = tmp_path / "g.npz"
        g.save_npz(path)
        back = PropertyGraph.load_npz(path)
        assert back.vertex_properties["ID"].tolist() == [100, 200]


class TestMisc:
    def test_iter_edges(self):
        g = tri_multigraph()
        edges = list(g.iter_edges())
        assert len(edges) == 5
        assert edges[0] == (0, 1, {"W": 1.0})

    def test_memory_bytes_positive(self):
        assert tri_multigraph().memory_bytes() > 0

    def test_from_edge_list_infers_vertices(self):
        g = PropertyGraph.from_edge_list([0, 3], [1, 2])
        assert g.n_vertices == 4
