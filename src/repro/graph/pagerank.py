"""PageRank by sparse power iteration.

The veracity evaluation (Fig. 7 of the paper) compares the seed's and the
synthetic graph's PageRank distributions.  One iteration is a single sparse
transposed mat-vec plus dangling-mass redistribution; convergence is checked
in L1 as in the original formulation (Page et al., 1999).
"""

from __future__ import annotations

import numpy as np

from repro.graph.property_graph import PropertyGraph

__all__ = ["pagerank", "pagerank_distribution"]


def pagerank(
    graph: PropertyGraph,
    *,
    damping: float = 0.85,
    tol: float = 1e-10,
    max_iter: int = 200,
    weighted: bool = True,
) -> np.ndarray:
    """PageRank vector of every vertex (sums to 1).

    Parameters
    ----------
    damping:
        Teleportation damping factor, 0 < damping < 1.
    tol:
        L1 convergence threshold between sweeps.
    weighted:
        When True, parallel edges contribute multiplicity-proportional
        transition weight — matching the property-graph multi-set semantics.
    """
    if not 0.0 < damping < 1.0:
        raise ValueError("damping must lie in (0, 1)")
    n = graph.n_vertices
    if n == 0:
        return np.empty(0, dtype=np.float64)
    if graph.n_edges == 0:
        return np.full(n, 1.0 / n)

    from scipy import sparse

    adj = graph.to_sparse_adjacency(weighted=weighted)  # row = src
    out_weight = np.asarray(adj.sum(axis=1)).ravel()
    dangling = out_weight == 0
    inv_out = np.zeros(n, dtype=np.float64)
    inv_out[~dangling] = 1.0 / out_weight[~dangling]
    # Row-normalised transition matrix P; we iterate r <- r P.
    trans = sparse.diags(inv_out) @ adj
    trans = trans.T.tocsr()  # so each sweep is one csr mat-vec: trans @ r

    r = np.full(n, 1.0 / n)
    teleport = (1.0 - damping) / n
    for _ in range(max_iter):
        dangling_mass = r[dangling].sum()
        new_r = damping * (trans @ r) + damping * dangling_mass / n + teleport
        err = np.abs(new_r - r).sum()
        r = new_r
        if err < tol:
            break
    # Normalise away accumulated float drift.
    r /= r.sum()
    return r


def pagerank_distribution(
    graph: PropertyGraph, **kwargs
) -> np.ndarray:
    """Convenience wrapper returning the raw PageRank sample vector used by
    the veracity scoring (one value per vertex)."""
    return pagerank(graph, **kwargs)
