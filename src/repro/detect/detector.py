"""The Fig. 4 detection flow chart.

Destination-based patterns are checked first (DoS/DDoS, SYN flood, host
scan all concentrate on a victim), then source-based patterns (network
scans and flooding *sources*), exactly as the paper's §IV narrative walks
the chart.  All rules are vectorised comparisons over the aggregated
pattern arrays; one pass classifies every detection IP at once.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.detect.patterns import (
    TrafficPatterns,
    build_traffic_patterns,
    iter_windows,
)
from repro.detect.thresholds import DetectionThresholds
from repro.netflow.attributes import Protocol

__all__ = ["Detection", "NetflowAnomalyDetector"]

_FLOOD_KIND_BY_PROTOCOL = {
    int(Protocol.TCP): "tcp_flood",
    int(Protocol.UDP): "udp_flood",
    int(Protocol.ICMP): "icmp_flood",
}


@dataclass(frozen=True)
class Detection:
    """One raised alarm.

    ``ip`` is the detection IP the pattern was keyed on: the *victim* for
    destination-based detections, the *attacker* for source-based ones.
    """

    kind: str
    ip: int
    direction: str
    evidence: dict = field(default_factory=dict, compare=False)


class NetflowAnomalyDetector:
    """Threshold detector over aggregated traffic patterns."""

    def __init__(self, thresholds: DetectionThresholds | None = None) -> None:
        self.thresholds = thresholds or DetectionThresholds()

    # ------------------------------------------------------------------
    def detect(self, flow_columns) -> list[Detection]:
        """Run the full flow chart over a flow table / column mapping."""
        dst = build_traffic_patterns(flow_columns, direction="destination")
        src = build_traffic_patterns(flow_columns, direction="source")
        return self.detect_destination(dst) + self.detect_source(src)

    def detect_windowed(
        self, flow_columns, *, window_seconds: float
    ) -> list[Detection]:
        """Run the flow chart per START_TIME window and de-duplicate.

        Attacks are bursts; windowing keeps a ten-second scan from being
        averaged away by a victim's day of normal traffic.  The window
        length must match the one the thresholds were calibrated with
        (:meth:`DetectionThresholds.fit_normal`'s ``window_seconds``).
        """
        seen: set[tuple[str, int, str]] = set()
        out: list[Detection] = []
        for _, cols in iter_windows(flow_columns, window_seconds):
            for det in self.detect(cols):
                key = (det.kind, det.ip, det.direction)
                if key not in seen:
                    seen.add(key)
                    out.append(det)
        return out

    # ------------------------------------------------------------------
    def detect_destination(
        self, patterns: TrafficPatterns
    ) -> list[Detection]:
        """Destination-based branch of Fig. 4.

        * many small flows + starving ACK/SYN ratio + few ports → TCP SYN
          flood; with many distinct sources → DDoS variant;
        * many small flows + many destination ports → host scanning;
        * high total bandwidth + high packet count → protocol flood.
        """
        t = self.thresholds
        out: list[Detection] = []
        many_small = (
            (patterns.n_flows > t.nf_t)
            & (patterns.avg_flow_size < t.fs_lt)
            & (patterns.avg_packets < t.np_lt)
        )
        ratio = patterns.ack_syn_ratio()
        # Port diversity splits the two many-small-flow signatures: a SYN
        # flood hammers one service (few ports, counting the victim's
        # legitimate background), a host scan sweeps the port space.
        syn_flood = many_small & (ratio < t.sa_t) & (
            patterns.n_distinct_ports <= t.dp_ht
        )
        host_scan = many_small & (patterns.n_distinct_ports > t.dp_ht)
        flood = (
            (patterns.sum_flow_size > t.fs_ht)
            & (patterns.sum_packets > t.np_ht)
            & ~syn_flood
        )
        dominant = patterns.dominant_protocol()
        distributed = patterns.n_distinct_peers > t.sip_t
        for i in np.flatnonzero(syn_flood):
            kind = "ddos_syn_flood" if distributed[i] else "syn_flood"
            out.append(self._make(kind, patterns, int(i)))
        for i in np.flatnonzero(host_scan):
            out.append(self._make("host_scan", patterns, int(i)))
        for i in np.flatnonzero(flood):
            kind = _FLOOD_KIND_BY_PROTOCOL[int(dominant[i])]
            out.append(self._make(kind, patterns, int(i)))
        return out

    def detect_source(self, patterns: TrafficPatterns) -> list[Detection]:
        """Source-based branch of Fig. 4.

        * many small flows toward many distinct destinations on few ports →
          network scanning;
        * very high outbound volume from one host → flooding source.
        """
        t = self.thresholds
        out: list[Detection] = []
        many_small = (
            (patterns.n_flows > t.nf_t)
            & (patterns.avg_flow_size < t.fs_lt)
            & (patterns.avg_packets < t.np_lt)
        )
        net_scan = (
            many_small
            & (patterns.n_distinct_peers > t.dip_t)
            & (patterns.n_distinct_ports <= t.dp_lt)
        )
        flood_src = (
            (patterns.sum_flow_size > t.fs_ht)
            & (patterns.sum_packets > t.np_ht)
            & ~net_scan
        )
        dominant = patterns.dominant_protocol()
        for i in np.flatnonzero(net_scan):
            out.append(self._make("network_scan", patterns, int(i)))
        for i in np.flatnonzero(flood_src):
            kind = _FLOOD_KIND_BY_PROTOCOL[int(dominant[i])]
            out.append(self._make(f"{kind}_source", patterns, int(i)))
        return out

    # ------------------------------------------------------------------
    @staticmethod
    def _make(kind: str, p: TrafficPatterns, i: int) -> Detection:
        return Detection(
            kind=kind,
            ip=int(p.ips[i]),
            direction=p.direction,
            evidence={
                "n_flows": int(p.n_flows[i]),
                "n_distinct_peers": int(p.n_distinct_peers[i]),
                "n_distinct_ports": int(p.n_distinct_ports[i]),
                "avg_flow_size": float(p.avg_flow_size[i]),
                "avg_packets": float(p.avg_packets[i]),
                "sum_flow_size": float(p.sum_flow_size[i]),
                "sum_packets": float(p.sum_packets[i]),
                "syn_count": int(p.syn_count[i]),
                "ack_count": int(p.ack_count[i]),
            },
        )
