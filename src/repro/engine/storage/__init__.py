"""Disk-backed block storage for the Map-Reduce engine.

The paper runs PGPBA/PGSK on a 110-node Spark cluster because edge
multisets outgrow one machine's RAM; this package is the local engine's
answer: a :class:`BlockStore` that owns every materialized partition
behind a stable :class:`BlockId`, keeps resident bytes under a
configurable memory budget by LRU-spilling serialized blocks to a spill
directory, transparently reloads them on access, and provides durable
checkpoint files that truncate lineage for fault recovery.  See
DESIGN.md §8 for the block lifecycle and budget semantics.
"""

from repro.engine.storage.blocks import (
    MEMORY_BUDGET_ENV_VAR,
    SPILL_DIR_ENV_VAR,
    BlockId,
    BlockStore,
    BlockWriter,
    SpilledBlockHandle,
    StorageLevel,
    StorageStats,
    load_block_file,
    parse_size,
    resolve_memory_budget,
    resolve_spill_dir,
)

__all__ = [
    "MEMORY_BUDGET_ENV_VAR",
    "SPILL_DIR_ENV_VAR",
    "BlockId",
    "BlockStore",
    "BlockWriter",
    "SpilledBlockHandle",
    "StorageLevel",
    "StorageStats",
    "load_block_file",
    "parse_size",
    "resolve_memory_budget",
    "resolve_spill_dir",
]
