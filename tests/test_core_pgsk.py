"""Tests for the PGSK generator (Fig. 3)."""

import numpy as np
import pytest

from repro.core import PGSK
from repro.engine import ClusterContext
from repro.kronecker import InitiatorMatrix
from repro.netflow.attributes import NETFLOW_EDGE_ATTRIBUTES


@pytest.fixture
def small_ctx():
    return ClusterContext(n_nodes=2, executor_cores=2, partition_multiplier=1)


@pytest.fixture(scope="module")
def fitted(seed_graph):
    """KronFit once for the whole module (it is the slow step)."""
    return PGSK(seed=0, kronfit_iterations=12, kronfit_swaps=40).fit_initiator(
        seed_graph
    )


class TestGeneration:
    def test_reaches_approximate_size(
        self, seed_graph, seed_analysis, small_ctx, fitted
    ):
        target = 4 * seed_graph.n_edges
        res = PGSK(seed=1).generate(
            seed_graph, seed_analysis, target,
            context=small_ctx, initiator=fitted,
        )
        # PGSK sizing is coarse (exponential levels x stochastic
        # duplication); the paper itself only matches sizes approximately.
        assert res.graph.n_edges == pytest.approx(target, rel=0.5)
        assert res.algorithm == "PGSK"

    def test_can_generate_smaller_than_seed(
        self, seed_graph, seed_analysis, small_ctx, fitted
    ):
        """The paper: "the PGSK can generate graphs which are smaller than
        the seed graph" (Fig. 6 discussion)."""
        res = PGSK(seed=2).generate(
            seed_graph, seed_analysis, 100,
            context=small_ctx, initiator=fitted,
        )
        assert res.graph.n_edges < seed_graph.n_edges

    def test_vertex_count_power_of_initiator(
        self, seed_graph, seed_analysis, small_ctx, fitted
    ):
        res = PGSK(seed=3).generate(
            seed_graph, seed_analysis, 2 * seed_graph.n_edges,
            context=small_ctx, initiator=fitted,
        )
        k = res.extra["k"]
        assert res.graph.n_vertices == 2 ** k

    def test_deduplicate_limits_parallel_edges(
        self, seed_graph, seed_analysis, fitted
    ):
        """With dedup, multiplicities come only from the duplication stage;
        without it, descent collisions add extra parallel edges."""
        target = 2 * seed_graph.n_edges

        def max_mult(dedup):
            ctx = ClusterContext(
                n_nodes=1, executor_cores=2, partition_multiplier=1
            )
            res = PGSK(
                seed=4, deduplicate=dedup, generate_properties=False
            ).generate(
                seed_graph, seed_analysis, target,
                context=ctx, initiator=fitted,
            )
            return res.graph.edge_multiplicities().max()

        assert max_mult(False) >= max_mult(True)

    def test_duplication_distribution_choice(
        self, seed_graph, seed_analysis, small_ctx, fitted
    ):
        res_mult = PGSK(
            seed=5, duplication="multiplicity", generate_properties=False
        ).generate(
            seed_graph, seed_analysis, 2 * seed_graph.n_edges,
            context=small_ctx, initiator=fitted,
        )
        ctx2 = ClusterContext(
            n_nodes=2, executor_cores=2, partition_multiplier=1
        )
        res_deg = PGSK(
            seed=5, duplication="out_degree", generate_properties=False
        ).generate(
            seed_graph, seed_analysis, 2 * seed_graph.n_edges,
            context=ctx2, initiator=fitted,
        )
        # Out-degree duplication uses a heavier distribution than edge
        # multiplicity, so its multigraph has (weakly) larger multiplicity.
        assert (
            res_deg.graph.edge_multiplicities().mean()
            >= res_mult.graph.edge_multiplicities().mean()
        )

    def test_bad_duplication_rejected(self):
        with pytest.raises(ValueError):
            PGSK(duplication="bogus")

    def test_bad_size_rejected(self, seed_graph, seed_analysis):
        with pytest.raises(ValueError):
            PGSK().generate(seed_graph, seed_analysis, 0)


class TestProperties:
    def test_all_nine_attributes(self, seed_graph, seed_analysis,
                                 small_ctx, fitted):
        res = PGSK(seed=6).generate(
            seed_graph, seed_analysis, 2 * seed_graph.n_edges,
            context=small_ctx, initiator=fitted,
        )
        for name in NETFLOW_EDGE_ATTRIBUTES:
            assert name in res.graph.edge_properties
            assert len(res.graph.edge_properties[name]) == res.graph.n_edges

    def test_property_support_from_seed(
        self, seed_graph, seed_analysis, small_ctx, fitted
    ):
        res = PGSK(seed=7).generate(
            seed_graph, seed_analysis, 2 * seed_graph.n_edges,
            context=small_ctx, initiator=fitted,
        )
        seed_states = set(
            np.unique(seed_graph.edge_properties["STATE"]).tolist()
        )
        out_states = set(
            np.unique(res.graph.edge_properties["STATE"]).tolist()
        )
        assert out_states <= seed_states


class TestDeterminism:
    def test_deterministic_given_seed(
        self, seed_graph, seed_analysis, fitted
    ):
        def run():
            ctx = ClusterContext(
                n_nodes=2, executor_cores=2, partition_multiplier=1
            )
            return PGSK(seed=42).generate(
                seed_graph, seed_analysis, 2 * seed_graph.n_edges,
                context=ctx, initiator=fitted,
            )

        a, b = run(), run()
        assert np.array_equal(a.graph.src, b.graph.src)
        assert np.array_equal(
            a.graph.edge_properties["DURATION"],
            b.graph.edge_properties["DURATION"],
        )

    def test_fit_initiator_plausible(self, fitted):
        assert fitted.size == 2
        assert 1.0 < fitted.edge_weight_sum < 4.0
        # Scale-free fits are core-periphery: theta_00 dominates.
        assert fitted.theta[0, 0] == fitted.theta.max()

    def test_metrics_recorded(self, seed_graph, seed_analysis, small_ctx,
                              fitted):
        res = PGSK(seed=8).generate(
            seed_graph, seed_analysis, 2 * seed_graph.n_edges,
            context=small_ctx, initiator=fitted,
        )
        assert res.structure_seconds > 0
        assert res.property_seconds > 0
        assert res.extra["rounds"] >= 1
        assert res.extra["distinct_target"] >= 1
