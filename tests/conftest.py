"""Shared fixtures: expensive artifacts built once per session."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.pipeline import build_seed
from repro.trace.synthesizer import synthesize_seed_packets


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def seed_packets():
    """A small deterministic synthetic capture (shared, read-only)."""
    return synthesize_seed_packets(
        duration=10.0, session_rate=40.0, n_clients=80, n_servers=20, seed=7
    )


@pytest.fixture(scope="session")
def seed_bundle(seed_packets):
    """Seed flow table + property graph + analysis (Fig. 1 output)."""
    return build_seed(seed_packets)


@pytest.fixture(scope="session")
def seed_graph(seed_bundle):
    return seed_bundle.graph


@pytest.fixture(scope="session")
def seed_analysis(seed_bundle):
    return seed_bundle.analysis
