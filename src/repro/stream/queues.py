"""Bounded inter-stage queues with blocking-put backpressure.

:class:`BoundedQueue` wraps :class:`queue.Queue` with the three things
the pipeline needs beyond the stdlib:

* **metered backpressure** — a full queue blocks the producer (that *is*
  the backpressure mechanism); every stall is counted and timed so
  :class:`~repro.stream.stats.StreamStats` can report where the pipeline
  is producer- or consumer-bound;
* **depth high-water tracking** — the maximum observed occupancy, which
  the streaming benchmark asserts never exceeds the configured capacity
  (the bounded-memory proof);
* **abortable blocking** — both :meth:`put` and :meth:`get` poll an
  abort event so a crashed stage can never deadlock its neighbours
  against a full (or empty) queue.

``CLOSE`` is the end-of-stream sentinel: a producer puts it exactly once
after its last real item; a consumer receiving it drains, forwards its
own ``CLOSE`` downstream, and exits.
"""

from __future__ import annotations

import queue
import threading
import time

__all__ = ["CLOSE", "BoundedQueue", "PipelineAborted"]

# End-of-stream sentinel (identity-compared).
CLOSE = object()

_POLL_SECONDS = 0.05


class PipelineAborted(RuntimeError):
    """Raised out of a blocking queue operation when the pipeline aborts
    (another stage failed or the run was cancelled)."""


class BoundedQueue:
    """A capacity-bounded FIFO connecting two pipeline stages."""

    def __init__(self, capacity: int, *, name: str = "") -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.name = name
        self._q: queue.Queue = queue.Queue(maxsize=capacity)
        self._lock = threading.Lock()
        self._puts = 0
        self._stall_count = 0
        self._stall_seconds = 0.0
        self._depth_high_water = 0

    # ------------------------------------------------------------------
    def put(self, item, abort: threading.Event) -> None:
        """Enqueue, blocking (with backpressure metering) while full."""
        try:
            self._q.put_nowait(item)
        except queue.Full:
            t0 = time.perf_counter()
            while True:
                if abort.is_set():
                    raise PipelineAborted(
                        f"queue {self.name!r}: pipeline aborted during put"
                    )
                try:
                    self._q.put(item, timeout=_POLL_SECONDS)
                    break
                except queue.Full:
                    continue
            stalled = time.perf_counter() - t0
            with self._lock:
                self._stall_count += 1
                self._stall_seconds += stalled
        depth = self._q.qsize()
        with self._lock:
            self._puts += 1
            if depth > self._depth_high_water:
                self._depth_high_water = depth

    def get(self, abort: threading.Event):
        """Dequeue, blocking until an item (or ``CLOSE``) arrives."""
        while True:
            if abort.is_set():
                raise PipelineAborted(
                    f"queue {self.name!r}: pipeline aborted during get"
                )
            try:
                return self._q.get(timeout=_POLL_SECONDS)
            except queue.Empty:
                continue

    def close(self, abort: threading.Event) -> None:
        """Signal end-of-stream to the consumer."""
        self.put(CLOSE, abort)

    # ------------------------------------------------------------------
    @property
    def puts(self) -> int:
        with self._lock:
            return self._puts

    @property
    def stall_count(self) -> int:
        with self._lock:
            return self._stall_count

    @property
    def stall_seconds(self) -> float:
        with self._lock:
            return self._stall_seconds

    @property
    def depth_high_water(self) -> int:
        with self._lock:
            return self._depth_high_water
