"""Concurrent query server with an epoch-keyed LRU result cache.

A :class:`QueryServer` wraps one :class:`~repro.serve.snapshot.GraphSnapshot`
and executes :class:`Query` objects — declarative descriptions of the
four query families — either one at a time (:meth:`QueryServer.execute`)
or as concurrent batches over a thread pool
(:meth:`QueryServer.run_batch`).  The snapshot is read-only numpy, so
worker threads share it without locks; results are memoized in an LRU
cache keyed by ``(snapshot epoch, canonical query fingerprint)``, which
makes regeneration (a new graph, a new snapshot, a new epoch) an
implicit cache invalidation: :meth:`QueryServer.swap` installs the new
snapshot and drops every stale entry.

Batched execution is deterministic: each query is a pure function of the
snapshot, so a batch returns byte-identical results at any thread count,
cached or not, and identical to calling the ``repro.queries`` functions
directly on the same graph.

:class:`ServerStats` reports the serving-side picture — per-family
latency percentiles, cache hit ratio and queries/second — alongside the
engine's SimulationMetrics.
"""

from __future__ import annotations

import os
import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro.graph.property_graph import PropertyGraph
from repro.queries.edge_queries import EdgeFilter, filter_edges
from repro.queries.node_queries import (
    degree_top_k,
    neighbors,
    vertex_by_host_id,
)
from repro.queries.path_queries import (
    k_hop_neighborhood,
    reachable_within,
    shortest_path_length,
)
from repro.queries.subgraph_queries import (
    fan_in_motif,
    fan_out_motif,
    host_pair_aggregate,
)
from repro.serve.snapshot import GraphSnapshot

__all__ = [
    "Query",
    "QueryServer",
    "ServerStats",
    "FamilyStats",
    "resolve_query_threads",
    "resolve_query_cache_size",
    "QUERY_THREADS_ENV_VAR",
    "QUERY_CACHE_ENV_VAR",
    "FAMILIES",
]

QUERY_THREADS_ENV_VAR = "REPRO_QUERY_THREADS"
QUERY_CACHE_ENV_VAR = "REPRO_QUERY_CACHE"

FAMILIES = ("node", "edge", "path", "subgraph")


def resolve_query_threads(threads: int | None = None) -> int:
    """Worker threads for batched queries: explicit argument, then the
    ``REPRO_QUERY_THREADS`` environment variable, then the CPU count."""
    if threads is None:
        env = os.environ.get(QUERY_THREADS_ENV_VAR)
        threads = int(env) if env else (os.cpu_count() or 1)
    if threads < 1:
        raise ValueError(f"threads must be >= 1, got {threads}")
    return threads


def resolve_query_cache_size(cache_size: int | None = None) -> int:
    """Result-cache capacity (entries): explicit argument, then the
    ``REPRO_QUERY_CACHE`` environment variable, then 1024.  0 disables
    caching."""
    if cache_size is None:
        env = os.environ.get(QUERY_CACHE_ENV_VAR)
        cache_size = int(env) if env else 1024
    if cache_size < 0:
        raise ValueError(f"cache_size must be >= 0, got {cache_size}")
    return cache_size


# ----------------------------------------------------------------------
# queries
# ----------------------------------------------------------------------
def _canon(value):
    """Canonical, hashable, repr-stable form of one parameter value."""
    if isinstance(value, np.generic):
        value = value.item()
    if isinstance(value, dict):
        return tuple(
            sorted((str(k), _canon(v)) for k, v in value.items())
        )
    if isinstance(value, (list, tuple)):
        return tuple(_canon(v) for v in value)
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(f"unsupported query parameter {value!r}")


@dataclass(frozen=True)
class Query:
    """One declarative query: an op name plus canonical parameters.

    Build via the family constructors (:meth:`neighbors`,
    :meth:`edge_filter`, :meth:`k_hop`, ...).  ``params`` is a sorted
    tuple of ``(name, value)`` pairs, so equal queries always share one
    :meth:`fingerprint` — the result-cache key.
    """

    op: str
    family: str
    params: tuple

    @classmethod
    def _make(cls, op: str, family: str, **params) -> "Query":
        canon = tuple(
            sorted((name, _canon(value)) for name, value in params.items())
        )
        return cls(op=op, family=family, params=canon)

    def fingerprint(self) -> str:
        """Canonical cache key (stable across processes and runs)."""
        return f"{self.op}{self.params!r}"

    def kwargs(self) -> dict:
        return dict(self.params)

    # -- node ----------------------------------------------------------
    @classmethod
    def neighbors(cls, vertex: int, *, direction: str = "both") -> "Query":
        return cls._make(
            "neighbors", "node", vertex=vertex, direction=direction
        )

    @classmethod
    def degree_top_k(cls, k: int, *, kind: str = "total") -> "Query":
        return cls._make("degree_top_k", "node", k=k, kind=kind)

    @classmethod
    def host_lookup(cls, host_id: int) -> "Query":
        return cls._make("host_lookup", "node", host_id=host_id)

    # -- edge ----------------------------------------------------------
    @classmethod
    def edge_filter(
        cls, *, equals: dict | None = None, ranges: dict | None = None
    ) -> "Query":
        return cls._make(
            "edge_filter", "edge",
            equals=equals or {}, ranges=ranges or {},
        )

    # -- path ----------------------------------------------------------
    @classmethod
    def k_hop(cls, source: int, k: int) -> "Query":
        return cls._make("k_hop", "path", source=source, k=k)

    @classmethod
    def shortest_path(cls, source: int, target: int) -> "Query":
        return cls._make(
            "shortest_path", "path", source=source, target=target
        )

    @classmethod
    def reachable(
        cls, source: int, *, max_hops: int | None = None
    ) -> "Query":
        return cls._make(
            "reachable", "path", source=source, max_hops=max_hops
        )

    # -- subgraph ------------------------------------------------------
    @classmethod
    def fan_out(cls, min_distinct_destinations: int) -> "Query":
        return cls._make(
            "fan_out", "subgraph",
            min_distinct_destinations=min_distinct_destinations,
        )

    @classmethod
    def fan_in(cls, min_distinct_sources: int) -> "Query":
        return cls._make(
            "fan_in", "subgraph",
            min_distinct_sources=min_distinct_sources,
        )

    @classmethod
    def pair_aggregate(cls) -> "Query":
        return cls._make("pair_aggregate", "subgraph")


def _run_edge_filter(snap: GraphSnapshot, p: dict):
    # equals/ranges were canonicalized to sorted (name, value) tuples.
    flt = EdgeFilter(equals=dict(p["equals"]), ranges=dict(p["ranges"]))
    return filter_edges(snap, flt)


_OPS: dict[str, callable] = {
    "neighbors": lambda s, p: neighbors(
        s, p["vertex"], direction=p["direction"]
    ),
    "degree_top_k": lambda s, p: degree_top_k(s, p["k"], kind=p["kind"]),
    "host_lookup": lambda s, p: vertex_by_host_id(s, p["host_id"]),
    "edge_filter": _run_edge_filter,
    "k_hop": lambda s, p: k_hop_neighborhood(s, p["source"], p["k"]),
    "shortest_path": lambda s, p: shortest_path_length(
        s, p["source"], p["target"]
    ),
    "reachable": lambda s, p: reachable_within(
        s, p["source"], max_hops=p["max_hops"]
    ),
    "fan_out": lambda s, p: fan_out_motif(
        s, p["min_distinct_destinations"]
    ),
    "fan_in": lambda s, p: fan_in_motif(s, p["min_distinct_sources"]),
    "pair_aggregate": lambda s, p: host_pair_aggregate(s),
}


# ----------------------------------------------------------------------
# statistics
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FamilyStats:
    """Latency profile of one query family."""

    n_queries: int
    p50_ms: float
    p99_ms: float
    mean_ms: float
    queries_per_second: float


@dataclass(frozen=True)
class ServerStats:
    """One server's cumulative serving report.

    ``queries_per_second`` divides total queries by the *batch wall
    clock* (concurrent batches overlap latencies); the per-family rates
    divide each family's count by its summed latency, i.e. the serial
    throughput of that family.
    """

    epoch: int
    n_queries: int
    cache_hits: int
    cache_misses: int
    wall_seconds: float
    families: dict[str, FamilyStats]

    @property
    def hit_ratio(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def queries_per_second(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.n_queries / self.wall_seconds

    def summary(self) -> str:
        """Human-readable block (families with no queries are skipped)."""
        lines = [
            f"epoch {self.epoch}: {self.n_queries} queries in "
            f"{self.wall_seconds * 1e3:.2f} ms "
            f"({self.queries_per_second:,.0f} q/s), "
            f"cache {self.cache_hits} hits / {self.cache_misses} misses "
            f"({self.hit_ratio:.1%})"
        ]
        for family in FAMILIES:
            fs = self.families.get(family)
            if fs is None or fs.n_queries == 0:
                continue
            lines.append(
                f"  {family:<9} n={fs.n_queries:<6} "
                f"p50={fs.p50_ms:8.3f} ms  p99={fs.p99_ms:8.3f} ms  "
                f"{fs.queries_per_second:12,.0f} q/s"
            )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# server
# ----------------------------------------------------------------------
class QueryServer:
    """Serve batched queries over an immutable graph snapshot.

    Parameters
    ----------
    graph:
        A :class:`PropertyGraph` (its memoized snapshot is used) or a
        prebuilt :class:`GraphSnapshot`.
    threads:
        Default worker-thread count for :meth:`run_batch` (default: the
        ``REPRO_QUERY_THREADS`` environment variable, then CPU count).
    cache_size:
        LRU result-cache capacity in entries; 0 disables caching
        (default: ``REPRO_QUERY_CACHE``, then 1024).
    """

    def __init__(
        self,
        graph: PropertyGraph | GraphSnapshot,
        *,
        threads: int | None = None,
        cache_size: int | None = None,
    ) -> None:
        self._snapshot = graph.snapshot()
        self.threads = resolve_query_threads(threads)
        self.cache_size = resolve_query_cache_size(cache_size)
        self._cache: OrderedDict[tuple, object] = OrderedDict()
        self._lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self.reset_stats()

    # ------------------------------------------------------------------
    @property
    def snapshot(self) -> GraphSnapshot:
        return self._snapshot

    @property
    def epoch(self) -> int:
        return self._snapshot.epoch

    def swap(self, graph: PropertyGraph | GraphSnapshot) -> GraphSnapshot:
        """Install a regenerated graph.  The new snapshot's epoch
        invalidates every cached result from previous epochs."""
        snap = graph.snapshot()
        with self._lock:
            self._snapshot = snap
            stale = [k for k in self._cache if k[0] != snap.epoch]
            for key in stale:
                del self._cache[key]
        return snap

    # ------------------------------------------------------------------
    def execute(self, query: Query):
        """Run one query through the cache; returns its result."""
        result, seconds = self._execute(query, self._snapshot)
        with self._stats_lock:
            self._wall_seconds += seconds
        return result

    def run_batch(
        self, queries, *, threads: int | None = None
    ) -> list:
        """Execute a batch concurrently; results keep submission order.

        Results are byte-identical to serial execution: every query is
        a pure function of the snapshot."""
        queries = list(queries)
        threads = self.threads if threads is None else threads
        if threads < 1:
            raise ValueError(f"threads must be >= 1, got {threads}")
        snap = self._snapshot
        t0 = time.perf_counter()
        if threads == 1 or len(queries) <= 1:
            results = [self._execute(q, snap)[0] for q in queries]
        else:
            with ThreadPoolExecutor(
                max_workers=min(threads, len(queries))
            ) as pool:
                results = list(
                    pool.map(lambda q: self._execute(q, snap)[0], queries)
                )
        wall = time.perf_counter() - t0
        with self._stats_lock:
            self._wall_seconds += wall
        return results

    # ------------------------------------------------------------------
    def _execute(self, query: Query, snap: GraphSnapshot):
        runner = _OPS.get(query.op)
        if runner is None:
            raise ValueError(f"unknown query op {query.op!r}")
        t0 = time.perf_counter()
        key = (snap.epoch, query.fingerprint())
        hit = False
        if self.cache_size:
            with self._lock:
                if key in self._cache:
                    result = self._cache[key]
                    self._cache.move_to_end(key)
                    hit = True
        if not hit:
            result = runner(snap, query.kwargs())
            if self.cache_size:
                with self._lock:
                    self._cache[key] = result
                    self._cache.move_to_end(key)
                    while len(self._cache) > self.cache_size:
                        self._cache.popitem(last=False)
        seconds = time.perf_counter() - t0
        with self._stats_lock:
            if hit:
                self._hits += 1
            else:
                self._misses += 1
            self._latencies[query.family].append(seconds)
        return result, seconds

    # ------------------------------------------------------------------
    def cache_info(self) -> dict:
        with self._lock, self._stats_lock:
            hits, misses = self._hits, self._misses
            size = len(self._cache)
        total = hits + misses
        return {
            "size": size,
            "capacity": self.cache_size,
            "hits": hits,
            "misses": misses,
            "hit_ratio": hits / total if total else 0.0,
        }

    def stats(self) -> ServerStats:
        """Freeze the cumulative counters into a report."""
        with self._stats_lock:
            families = {}
            n_queries = 0
            for family, lat in self._latencies.items():
                n = len(lat)
                n_queries += n
                if n == 0:
                    families[family] = FamilyStats(0, 0.0, 0.0, 0.0, 0.0)
                    continue
                arr = np.asarray(lat, dtype=np.float64)
                total = float(arr.sum())
                families[family] = FamilyStats(
                    n_queries=n,
                    p50_ms=float(np.percentile(arr, 50)) * 1e3,
                    p99_ms=float(np.percentile(arr, 99)) * 1e3,
                    mean_ms=float(arr.mean()) * 1e3,
                    queries_per_second=(n / total) if total > 0 else 0.0,
                )
            return ServerStats(
                epoch=self._snapshot.epoch,
                n_queries=n_queries,
                cache_hits=self._hits,
                cache_misses=self._misses,
                wall_seconds=self._wall_seconds,
                families=families,
            )

    def reset_stats(self) -> None:
        with self._stats_lock:
            self._hits = 0
            self._misses = 0
            self._wall_seconds = 0.0
            self._latencies: dict[str, list[float]] = {
                family: [] for family in FAMILIES
            }
