"""Table I / Fig. 4 — the Netflow anomaly-detection approach.

Table I defines the threshold parameters; Fig. 4 the detection flow chart.
The paper presents the approach without a quantitative evaluation, noting
the thresholds are network-driven and can be tuned with PSO.  This bench
makes that concrete: it calibrates Table I thresholds on attack-free
traffic, injects every attack class of Section IV, and reports per-class
detection plus precision/recall/F1 — including a PSO-tuned variant and a
threshold-sensitivity sweep.
"""

from __future__ import annotations

from conftest import save_series
from repro.core.pipeline import packets_from
from repro.detect import (
    DetectionThresholds,
    NetflowAnomalyDetector,
    evaluate_detections,
    tune_thresholds,
)
from repro.netflow import FlowTable, assemble_flows
from repro.trace import attacks, synthesize_seed_packets
from repro.trace.hosts import ipv4

WINDOW = 5.0


def _table(frames):
    frames = sorted(frames, key=lambda f: f[0])
    return FlowTable.from_records(
        list(assemble_flows(packets_from(frames)))
    )


def _cols(table):
    return {k: table[k] for k in FlowTable.COLUMN_NAMES}


def build_scenario():
    background = synthesize_seed_packets(
        duration=20.0, session_rate=40, seed=9
    )
    t0 = 1_000_005.0
    atk = [
        attacks.syn_flood(
            attacker_ip=ipv4(203, 0, 113, 5),
            victim_ip=ipv4(10, 2, 0, 3), start_time=t0,
        ),
        attacks.host_scan(
            attacker_ip=ipv4(203, 0, 113, 6),
            victim_ip=ipv4(10, 2, 0, 4), start_time=t0 + 2,
        ),
        attacks.network_scan(
            attacker_ip=ipv4(203, 0, 113, 7),
            subnet_base=ipv4(10, 1, 0, 0), start_time=t0 + 4,
        ),
        attacks.udp_flood(
            attacker_ip=ipv4(203, 0, 113, 8),
            victim_ip=ipv4(10, 2, 0, 5), start_time=t0 + 6,
        ),
        attacks.icmp_flood(
            attacker_ip=ipv4(203, 0, 113, 9),
            victim_ip=ipv4(10, 2, 0, 6), start_time=t0 + 8,
        ),
        attacks.ddos_syn_flood(
            attacker_ips=tuple(
                ipv4(203, 0, 113, 20 + j) for j in range(8)
            ),
            victim_ip=ipv4(10, 2, 0, 7), start_time=t0 + 10,
        ),
    ]
    frames = list(background)
    for a in atk:
        frames.extend(a.frames)
    return _table(background), _table(frames), atk


def run_table1():
    clean, mixed, atk = build_scenario()
    fitted = DetectionThresholds.fit_normal(
        _cols(clean), window_seconds=WINDOW
    )
    detector = NetflowAnomalyDetector(fitted)
    found = detector.detect_windowed(_cols(mixed), window_seconds=WINDOW)
    report = evaluate_detections(found, atk)
    clean_alarms = detector.detect_windowed(
        _cols(clean), window_seconds=WINDOW
    )

    per_class = []
    for a in atk:
        detected = a.kind in report.detected_attacks
        per_class.append([a.kind, "yes" if detected else "NO"])

    sensitivity = []
    for scale in (0.5, 1.0, 2.0, 4.0):
        th = fitted.scaled(scale)
        rep = evaluate_detections(
            NetflowAnomalyDetector(th).detect_windowed(
                _cols(mixed), window_seconds=WINDOW
            ),
            atk,
        )
        sensitivity.append([scale, rep.precision, rep.recall, rep.f1])
    return fitted, report, clean_alarms, per_class, sensitivity, mixed, atk


def test_table1_detection_quality(benchmark):
    (fitted, report, clean_alarms, per_class, sensitivity,
     mixed, atk) = run_table1()
    save_series(
        "table1_per_class",
        "Table I/Fig. 4: per-attack-class detection (calibrated thresholds)",
        ["attack", "detected"],
        per_class,
    )
    save_series(
        "table1_summary",
        "Table I/Fig. 4: detection quality summary",
        ["metric", "value"],
        [
            ["precision", report.precision],
            ["recall", report.recall],
            ["f1", report.f1],
            ["clean_traffic_alarms", len(clean_alarms)],
        ],
    )
    save_series(
        "table1_sensitivity",
        "Table I sensitivity: uniform threshold scaling vs P/R/F1",
        ["scale", "precision", "recall", "f1"],
        sensitivity,
    )
    assert report.recall == 1.0
    assert report.precision >= 0.8
    assert len(clean_alarms) == 0

    def op():
        det = NetflowAnomalyDetector(fitted)
        return det.detect_windowed(_cols(mixed), window_seconds=WINDOW)

    benchmark.pedantic(op, rounds=3, iterations=1)


def test_table1_pso_tuning(benchmark):
    """The paper's PSO suggestion: tuned thresholds reach at least the
    calibrated F1 starting from generic defaults."""
    _, mixed, atk = build_scenario()
    base = DetectionThresholds()
    f1_default = evaluate_detections(
        NetflowAnomalyDetector(base).detect_windowed(
            _cols(mixed), window_seconds=WINDOW
        ),
        atk,
    ).f1
    tuned, result = tune_thresholds(
        _cols(mixed), atk, n_particles=12, n_iterations=12, seed=3
    )
    f1_tuned = evaluate_detections(
        NetflowAnomalyDetector(tuned).detect_windowed(
            _cols(mixed), window_seconds=WINDOW
        ),
        atk,
    ).f1
    save_series(
        "table1_pso",
        "Table I: PSO threshold tuning (whole-capture objective)",
        ["variant", "f1"],
        [["default thresholds", f1_default],
         ["PSO-tuned", f1_tuned],
         ["PSO objective best", result.best_value]],
    )
    assert f1_tuned >= f1_default

    def op():
        return evaluate_detections(
            NetflowAnomalyDetector(tuned).detect(_cols(mixed)), atk
        )

    benchmark.pedantic(op, rounds=3, iterations=1)
