"""Tests for the shared benchmark harness utilities."""

import numpy as np
import pytest

from repro.bench import (
    SweepPoint,
    cached_seed,
    default_cluster,
    format_table,
    run_sweep,
)
from repro.bench.tables import print_series


class TestFormatTable:
    def test_alignment_and_rules(self):
        out = format_table(["a", "bb"], [[1, 2.5], [30, 0.125]])
        lines = out.splitlines()
        assert len(lines) == 4
        # all rows share one width
        assert len({len(line) for line in lines}) == 1

    def test_float_formatting(self):
        out = format_table(["x"], [[1e-9], [0.0], [123456.0]])
        assert "1e-09" in out.replace("1.000e-09", "1e-09") or "e-09" in out
        assert "0" in out
        assert "e+05" in out

    def test_empty_rows(self):
        out = format_table(["a", "b"], [])
        assert "a" in out and "b" in out

    def test_print_series(self, capsys):
        print_series("demo", ["x"], [[1]])
        out = capsys.readouterr().out
        assert "== demo ==" in out
        assert "1" in out


class TestSweep:
    def test_run_sweep_collects_points(self):
        pts = run_sweep([1, 2, 3], lambda p: {"sq": float(p * p)},
                        label="n")
        assert [p.parameter for p in pts] == [1.0, 2.0, 3.0]
        assert pts[2].values["sq"] == 9.0
        assert isinstance(pts[0], SweepPoint)


class TestSeedCache:
    def test_cached_seed_is_cached(self):
        a = cached_seed()
        b = cached_seed()
        assert a is b

    def test_cached_seed_shape(self):
        b = cached_seed()
        assert b.graph.n_edges > 500
        assert b.analysis.n_edges == b.graph.n_edges

    def test_parameterised_seed_differs(self):
        a = cached_seed()
        c = cached_seed(duration=10.0, session_rate=30.0)
        assert c.graph.n_edges != a.graph.n_edges


class TestDefaultCluster:
    def test_paper_configuration(self):
        ctx = default_cluster()
        assert ctx.n_nodes == 60
        assert ctx.scheduler.executor_cores == 12
        assert ctx.default_partitions == 2 * 12 * 60

    def test_override(self):
        ctx = default_cluster(n_nodes=10)
        assert ctx.n_nodes == 10
