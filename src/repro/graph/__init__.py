"""Directed property-multigraph substrate.

The paper formalises a property-graph as ``G = (V, E, Dv, De)`` where ``E``
is a *multi-set* of directed edges and ``Dv`` / ``De`` attach attribute
records to vertices and edges.  :class:`~repro.graph.property_graph.PropertyGraph`
realises that model with columnar NumPy storage — one int64 array per edge
endpoint and one array per attribute — so a ten-million-edge graph is a
handful of contiguous arrays rather than ten million Python objects.
"""

from repro.graph.property_graph import PropertyGraph
from repro.graph.builder import GraphBuilder
from repro.graph.analytics import (
    degree_distribution,
    in_degree_distribution,
    out_degree_distribution,
    weakly_connected_components,
    global_clustering_coefficient,
)
from repro.graph.pagerank import pagerank
from repro.graph.centrality import approximate_betweenness
from repro.graph import io

__all__ = [
    "PropertyGraph",
    "GraphBuilder",
    "degree_distribution",
    "in_degree_distribution",
    "out_degree_distribution",
    "weakly_connected_components",
    "global_clustering_coefficient",
    "pagerank",
    "approximate_betweenness",
    "io",
]
