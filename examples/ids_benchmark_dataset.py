#!/usr/bin/env python3
"""Generate an IDS-benchmark dataset, exactly what the paper's suite is for.

A next-generation (graph-based) IDS benchmark needs a large, realistic
property-graph dataset.  This example plays the benchmark-provider role:

1. Build a seed from a synthetic capture.
2. Generate two large synthetic datasets — one per algorithm (PGPBA and
   PGSK) — on a simulated 16-node cluster.
3. Report size, veracity, generation cost and memory (the four qualities a
   benchmark datasheet quotes: volume, velocity, veracity; variety comes
   from the nine Netflow attributes).
4. Export both datasets as attribute-bearing edge lists plus compressed
   NumPy archives that a system under test can load.

Run:  python examples/ids_benchmark_dataset.py [output_dir]
"""

import sys
from pathlib import Path

from repro import (
    PGPBA,
    PGSK,
    ClusterContext,
    build_seed,
    evaluate_veracity,
)
from repro.graph.io import write_edge_list
from repro.trace import synthesize_seed_packets

SCALE = 30  # synthetic size as a multiple of the seed


def datasheet(name, seed_graph, result, report) -> str:
    lines = [
        f"dataset          : {name}",
        f"edges (volume)   : {result.graph.n_edges}",
        f"vertices         : {result.graph.n_vertices}",
        f"attributes       : {sorted(result.graph.edge_properties)}",
        f"gen time (sim)   : {result.total_seconds * 1e3:.1f} ms on "
        f"{result.n_nodes} nodes",
        f"throughput       : {result.edges_per_second:,.0f} edges/s "
        "(velocity)",
        f"peak node memory : {result.peak_node_memory_bytes / 2**20:.1f} MiB",
        f"degree veracity  : {report.degree_score:.3e}",
        f"pagerank veracity: {report.pagerank_score:.3e}",
        f"degree shape KS  : {report.degree_ks:.3f}",
    ]
    return "\n".join("  " + line for line in lines)


def main() -> None:
    out_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("dataset_out")
    out_dir.mkdir(parents=True, exist_ok=True)

    print("building seed ...")
    seed = build_seed(
        synthesize_seed_packets(duration=25.0, session_rate=60, seed=13)
    )
    print(
        f"  seed: {seed.graph.n_edges} flows between "
        f"{seed.graph.n_vertices} hosts"
    )
    target = SCALE * seed.graph.n_edges

    generators = {
        "pgpba": PGPBA(fraction=0.3, seed=2),
        "pgsk": PGSK(seed=2, kronfit_iterations=12, kronfit_swaps=40),
    }
    for name, gen in generators.items():
        print(f"\ngenerating {name.upper()} dataset ({target} edges) ...")
        ctx = ClusterContext(n_nodes=16, executor_cores=12)
        result = gen.generate(seed.graph, seed.analysis, target, context=ctx)
        report = evaluate_veracity(seed.graph, result.graph)
        print(datasheet(name, seed.graph, result, report))

        tsv = out_dir / f"{name}_edges.tsv"
        npz = out_dir / f"{name}_graph.npz"
        write_edge_list(result.graph, tsv)
        result.graph.save_npz(npz)
        print(f"  wrote {tsv} and {npz}")

    print(f"\nall datasets in {out_dir.resolve()}")


if __name__ == "__main__":
    main()
