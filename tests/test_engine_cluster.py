"""Cluster executor: socket daemons, heartbeats, remote block fetch.

Contracts under test:

* **Wire protocol** — address parsing, length-prefixed frame round-trips
  (in-band meta + out-of-band buffers), and the handshake's version gate.
* **Loss detection** — a mute daemon trips the heartbeat timeout; a
  SIGKILLed daemon is detected and its in-flight work recovered through
  the ordinary lineage machinery, byte-identical to a serial run.
* **Remote block fetch** — a worker missing a shuffle segment on local
  disk pulls it from a peer daemon; the fetched file is byte-identical
  to the original, and a genuine miss stays a miss.
* **Operator ergonomics** — an unreachable address fails fast with an
  error naming the bad ``REPRO_WORKERS`` entry.
"""

from __future__ import annotations

import hashlib
import os
import signal
import socket
import threading
import time

import numpy as np
import pytest

from repro.engine import ClusterContext
from repro.engine.cluster import (
    BlockFetcher,
    ClusterExecutor,
    launch_worker,
    resolve_cluster_workers,
    shutdown_worker,
    sockets_available,
)
from repro.engine.executor import WorkerDied, available_backends
from repro.engine.netproto import (
    PROTOCOL_VERSION,
    ProtocolError,
    client_handshake,
    connect,
    parse_address,
    recv_message,
    send_message,
)

pytestmark = pytest.mark.skipif(
    not sockets_available(), reason="loopback sockets unavailable"
)


def digest(arrays) -> str:
    h = hashlib.sha256()
    for a in arrays:
        h.update(np.ascontiguousarray(a).tobytes())
    return h.hexdigest()


# ----------------------------------------------------------------------
# netproto: addresses, framing, handshake
# ----------------------------------------------------------------------
class TestNetProto:
    def test_parse_address_tcp_and_unix(self):
        assert parse_address("127.0.0.1:9000") == ("tcp", "127.0.0.1", 9000)
        assert parse_address("unix:/tmp/x.sock") == ("unix", "/tmp/x.sock")

    @pytest.mark.parametrize("bad", ["", "nohost", "host:notaport", ":-1"])
    def test_parse_address_rejects(self, bad):
        with pytest.raises(ValueError):
            parse_address(bad)

    def test_frame_roundtrip_with_buffers(self):
        a, b = socket.socketpair()
        try:
            payload = np.arange(1000, dtype=np.int64).tobytes()
            wire, raw = send_message(a, ("run", {"k": 1}), [payload, b"tail"])
            assert raw > len(payload)
            obj, buffers, received, received_raw = recv_message(b)
            assert obj == ("run", {"k": 1})
            assert bytes(buffers[0]) == payload
            assert bytes(buffers[1]) == b"tail"
            assert received == wire
            assert received_raw == raw
        finally:
            a.close()
            b.close()

    def test_clean_eof_is_none_and_midframe_eof_raises(self):
        a, b = socket.socketpair()
        a.close()
        try:
            assert recv_message(b) is None
        finally:
            b.close()
        a, b = socket.socketpair()
        a.sendall(b"\x00\x00")  # torn header
        a.close()
        try:
            with pytest.raises(ConnectionError):
                recv_message(b)
        finally:
            b.close()

    def test_resolve_cluster_workers_parsing(self):
        assert resolve_cluster_workers("h1:1, h2:2") == ["h1:1", "h2:2"]
        assert resolve_cluster_workers(["h1:1", " h2:2 "]) == ["h1:1", "h2:2"]
        with pytest.raises(ValueError, match="REPRO_WORKERS"):
            resolve_cluster_workers([], required=True)
        with pytest.raises(ValueError):
            resolve_cluster_workers("not-an-address")


# ----------------------------------------------------------------------
# Daemon lifecycle + handshake gate (real subprocess daemons)
# ----------------------------------------------------------------------
class TestDaemonHandshake:
    def test_launch_announce_shutdown(self, tmp_path):
        proc, addr = launch_worker(roots=(tmp_path,))
        try:
            host, port = addr.rsplit(":", 1)
            assert int(port) > 0
            assert shutdown_worker(addr)
            assert proc.wait(timeout=10) == 0
        finally:
            if proc.poll() is None:
                proc.kill()

    def test_version_mismatch_rejected(self):
        proc, addr = launch_worker()
        try:
            sock = connect(addr)
            try:
                send_message(sock, ("hello", PROTOCOL_VERSION + 999, {}))
                obj, _buffers, _n, _raw = recv_message(sock)
                assert obj[0] == "hello-err"
                assert "protocol version mismatch" in obj[1]
            finally:
                sock.close()
            # The daemon survives a rejected peer and still serves a
            # well-versioned one.
            sock = connect(addr)
            try:
                info = client_handshake(
                    sock, {"role": "driver", "peers": []}
                )
                assert info["pid"] == proc.pid
            finally:
                sock.close()
        finally:
            shutdown_worker(addr)
            try:
                proc.wait(timeout=10)
            except Exception:
                proc.kill()

    def test_client_handshake_raises_protocolerror(self):
        proc, addr = launch_worker()
        try:
            sock = socket.create_connection(tuple(parse_address(addr)[1:]))
            try:
                send_message(sock, ("hello", -1, {}))
                with pytest.raises(ProtocolError, match="version mismatch"):
                    # Re-drive the client side manually: the daemon
                    # already rejected, so the reply is hello-err.
                    obj, _b, _n, _raw = recv_message(sock)
                    raise ProtocolError(obj[1])
            finally:
                sock.close()
        finally:
            shutdown_worker(addr)
            try:
                proc.wait(timeout=10)
            except Exception:
                proc.kill()


# ----------------------------------------------------------------------
# Heartbeat timeout: a handshaking-but-mute peer is declared lost
# ----------------------------------------------------------------------
def _mute_worker(server: socket.socket, stop: threading.Event) -> None:
    """Accept one driver, complete the handshake, then read frames
    forever without ever replying — not even to pings."""
    server.settimeout(10.0)
    try:
        conn, _ = server.accept()
    except OSError:
        return
    try:
        conn.settimeout(10.0)
        if recv_message(conn) is None:
            return
        send_message(
            conn, ("hello-ok", PROTOCOL_VERSION, {"pid": 0, "roots": 0})
        )
        while not stop.is_set():
            try:
                if recv_message(conn) is None:
                    return
            except (ConnectionError, OSError):
                return
    finally:
        conn.close()


class TestHeartbeat:
    def test_mute_worker_times_out(self):
        server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        server.bind(("127.0.0.1", 0))
        server.listen(1)
        addr = "127.0.0.1:%d" % server.getsockname()[1]
        stop = threading.Event()
        thread = threading.Thread(
            target=_mute_worker, args=(server, stop), daemon=True
        )
        thread.start()
        ex = ClusterExecutor(
            [addr], heartbeat_interval=0.05, heartbeat_timeout=0.4
        )
        try:
            started = time.monotonic()
            outcomes = ex.run_outcomes(
                [lambda k=k: k for k in range(4)]
            )
            elapsed = time.monotonic() - started
            assert all(
                isinstance(o.error, WorkerDied) for o in outcomes
            )
            assert any(
                "heartbeat timeout" in str(o.error) or "lost" in str(o.error)
                for o in outcomes
            )
            assert ex.workers_lost == 1
            assert elapsed < 10.0  # detected by heartbeat, not a hang
        finally:
            stop.set()
            ex.close()
            server.close()
            thread.join(timeout=5)

    def test_heartbeat_knobs_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_HEARTBEAT_SECONDS", "0.25")
        monkeypatch.setenv("REPRO_HEARTBEAT_TIMEOUT", "2.5")
        ex = ClusterExecutor(["127.0.0.1:65000"])
        try:
            assert ex.heartbeat_interval == 0.25
            assert ex.heartbeat_timeout == 2.5
        finally:
            ex.close()
        monkeypatch.setenv("REPRO_HEARTBEAT_SECONDS", "-1")
        with pytest.raises(ValueError):
            ClusterExecutor(["127.0.0.1:65000"])


# ----------------------------------------------------------------------
# Daemon loss mid-batch: lineage recovery, byte-identical results
# ----------------------------------------------------------------------
class TestDaemonLossRecovery:
    def _pipeline(self, ctx):
        data = np.arange(60_000, dtype=np.int64)

        def slow(cols, i):
            time.sleep(0.05)
            return tuple((c * 7 + i) % 9973 for c in cols)

        return (
            ctx.parallelize([data], n_partitions=8)
            .map_partitions(slow)
            .distinct()
            .collect()
        )

    def test_sigkill_mid_batch_recovers_byte_identical(self):
        with ClusterContext(
            executor="serial", n_nodes=2, executor_cores=2
        ) as ctx:
            ref = digest(list(self._pipeline(ctx)))
            ref_stages = [
                (r.stage, r.partition, r.node, r.bytes_out)
                for r in ctx.metrics.tasks
            ]

        procs, addrs = [], []
        for _ in range(2):
            proc, addr = launch_worker()
            procs.append(proc)
            addrs.append(addr)
        try:
            with ClusterContext(
                executor="cluster", workers=addrs, n_nodes=2,
                executor_cores=2, retry_backoff_seconds=0.0,
            ) as ctx:
                killer = threading.Timer(
                    0.2, procs[0].send_signal, (signal.SIGKILL,)
                )
                killer.start()
                try:
                    got = digest(list(self._pipeline(ctx)))
                finally:
                    killer.cancel()
                got_stages = [
                    (r.stage, r.partition, r.node, r.bytes_out)
                    for r in ctx.metrics.tasks
                ]
                assert ctx.executor.workers_lost >= 1
            assert got == ref
            assert got_stages == ref_stages
        finally:
            for addr in addrs:
                shutdown_worker(addr)
            for proc in procs:
                try:
                    proc.wait(timeout=10)
                except Exception:
                    proc.kill()

    def test_unreachable_worker_names_the_address(self):
        # Port 1 on loopback refuses immediately; the error must tell
        # the operator which configured entry is bad.
        ex = ClusterExecutor(["127.0.0.1:1"], connect_timeout=2.0)
        try:
            with pytest.raises(RuntimeError, match=r"127\.0\.0\.1:1"):
                ex.run_outcomes([lambda k=k: k for k in range(2)])
        finally:
            ex.close()


# ----------------------------------------------------------------------
# Remote block fetch: peer pull equals local read
# ----------------------------------------------------------------------
class TestRemoteFetch:
    def test_fetch_matches_original_and_misses_stay_misses(self, tmp_path):
        served = tmp_path / "served"
        local = tmp_path / "local"
        served.mkdir()
        local.mkdir()
        blob = np.arange(30_000, dtype=np.int64).tobytes()
        (served / "shuffle_0_3.blk").write_bytes(blob)

        proc, addr = launch_worker(roots=(served,))
        fetcher = BlockFetcher([addr])
        try:
            target = local / "shuffle_0_3.blk"
            assert fetcher(target) is True
            assert target.read_bytes() == blob
            assert fetcher.fetched == 1
            assert fetcher.fetched_bytes == len(blob)
            # A segment no daemon has stays missing.
            assert fetcher(local / "nope.blk") is False
            assert fetcher.misses == 1
            assert not (local / "nope.blk").exists()
        finally:
            fetcher.close()
            shutdown_worker(addr)
            try:
                proc.wait(timeout=10)
            except Exception:
                proc.kill()

    def test_resolver_feeds_codec_reads(self, tmp_path):
        """read_named_file on a path that is only present on a peer
        daemon returns bytes identical to reading the original directly
        (the driver-relayed baseline)."""
        from repro.engine.storage import (
            load_block_file,
            set_missing_file_resolver,
            write_block_file,
        )

        served = tmp_path / "served"
        local = tmp_path / "local"
        served.mkdir()
        local.mkdir()
        cols = (np.arange(5000, dtype=np.int64), np.ones(5000))
        write_block_file(str(served / "block_7.npz"), cols)
        direct = load_block_file(str(served / "block_7.npz"))

        proc, addr = launch_worker(roots=(served,))
        fetcher = BlockFetcher([addr])
        previous = set_missing_file_resolver(fetcher)
        try:
            fetched = load_block_file(str(local / "block_7.npz"))
            assert all(
                np.array_equal(a, b) for a, b in zip(fetched, direct)
            )
            assert len(fetched) == len(direct)
            assert (
                (local / "block_7.npz").read_bytes()
                == (served / "block_7.npz").read_bytes()
            )
        finally:
            set_missing_file_resolver(previous)
            fetcher.close()
            shutdown_worker(addr)
            try:
                proc.wait(timeout=10)
            except Exception:
                proc.kill()


# ----------------------------------------------------------------------
# Registry + equivalence smoke (the matrix runs the full sweep)
# ----------------------------------------------------------------------
class TestClusterEquivalence:
    def test_cluster_is_a_registered_backend(self):
        assert "cluster" in available_backends()

    def test_digest_and_transport_match_serial(self, cluster_daemons):
        def run(backend, **kw):
            with ClusterContext(
                executor=backend, n_nodes=2, executor_cores=2, **kw
            ) as ctx:
                data = np.arange(40_000, dtype=np.int64)
                out = (
                    ctx.parallelize([data], n_partitions=6)
                    .map_partitions(lambda c, i: ((c[0] * 31 + i) % 997,))
                    .distinct()
                    .collect()
                )
                return digest(list(out)), ctx.metrics.transport_breakdown()

        ref, _ = run("serial")
        got, transport = run("cluster", workers=list(cluster_daemons))
        assert got == ref
        assert transport["network_bytes"] > 0
        assert transport["round_trips"] > 0

    def test_env_workers_pick_up_daemons(self, cluster_daemons):
        assert os.environ["REPRO_WORKERS"] == ",".join(cluster_daemons)
        with ClusterContext(
            executor="cluster", n_nodes=2, executor_cores=2
        ) as ctx:
            assert ctx.executor.name == "cluster"
            assert tuple(ctx.executor.addresses) == tuple(cluster_daemons)
