"""Fig. 11 — per-node memory usage of PGPBA and PGSK vs graph size.

Paper: worker memory is nearly flat (~10 GB/node of platform overhead) for
graphs up to ~1e8 edges, then grows linearly up to ~300 GB/node at 2e10
edges.

Here: the simulated memory meter reproduces both regions — the constant
platform-overhead floor for small graphs and linear growth once the data
dominates.  Scale: the simulator's overhead floor is 256 MB/node.
"""

from __future__ import annotations

import numpy as np

from conftest import save_series
from repro.bench import default_cluster
from repro.core import PGPBA, PGSK

FACTORS = (2, 8, 32, 128, 512, 2048)


def run_fig11(seed_graph, seed_analysis):
    pgsk = PGSK(seed=11, kronfit_iterations=8, kronfit_swaps=30)
    initiator = pgsk.fit_initiator(seed_graph)
    rows = []
    for factor in FACTORS:
        target = factor * seed_graph.n_edges
        res_ba = PGPBA(fraction=2.0, seed=11).generate(
            seed_graph, seed_analysis, target, context=default_cluster()
        )
        res_sk = pgsk.generate(
            seed_graph, seed_analysis, target,
            context=default_cluster(), initiator=initiator,
        )
        rows.append(
            [
                target,
                res_ba.peak_node_memory_bytes / 2**20,
                res_sk.peak_node_memory_bytes / 2**20,
            ]
        )
    return rows


def test_fig11_memory_usage(benchmark, seed_graph, seed_analysis):
    rows = run_fig11(seed_graph, seed_analysis)
    save_series(
        "fig11",
        "Fig. 11: peak worker memory (MiB/node, simulated) vs graph size",
        ["target_edges", "PGPBA_MiB_per_node", "PGSK_MiB_per_node"],
        rows,
    )
    floor = 1.0  # NodeSpec.memory_overhead_bytes in MiB
    # Left region: small graphs sit at the platform-overhead floor.
    assert rows[0][1] <= floor * 1.5
    # Right region: memory grows with graph size and clearly leaves the
    # floor at the largest size.
    mems_ba = [r[1] for r in rows]
    assert mems_ba[-1] > 2.0 * floor  # clearly out of the flat region
    assert mems_ba[-1] > mems_ba[0]
    assert all(b >= a - 1e-6 for a, b in zip(mems_ba, mems_ba[1:]))

    def op():
        ctx = default_cluster()
        PGPBA(fraction=2.0, seed=12).generate(
            seed_graph, seed_analysis, 8 * seed_graph.n_edges, context=ctx
        )
        return ctx.metrics.peak_node_memory_bytes

    benchmark.pedantic(op, rounds=1, iterations=1)
