"""Packet-to-flow assembly with a TCP connection state machine.

This is the Bro-IDS stand-in in the seed pipeline (Fig. 1): it consumes a
time-ordered packet stream and emits one :class:`NetflowRecord` per TCP
connection / UDP stream / ICMP exchange, with bidirectional byte and packet
counters and a Bro-style connection state.

Flow keying
-----------
A flow is identified by the canonical 5-tuple; the *originator* is the
endpoint that sent the first packet observed for the tuple.  TCP flows end
on connection teardown (FIN handshake or RST) or idle timeout; UDP/ICMP
flows end on idle timeout only.  A (src, dst, sport, dport, proto) tuple may
therefore yield several successive flows — which is precisely what makes the
property graph a *multi*graph.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.netflow.attributes import Protocol, TcpState
from repro.netflow.record import NetflowRecord
from repro.pcap.packet import (
    PROTO_ICMP,
    PROTO_TCP,
    PROTO_UDP,
    ParsedPacket,
    TcpFlags,
)

__all__ = ["FlowAssembler", "assemble_flows"]

_PROTOCOL_OF = {
    PROTO_TCP: Protocol.TCP,
    PROTO_UDP: Protocol.UDP,
    PROTO_ICMP: Protocol.ICMP,
}


@dataclass
class _FlowState:
    """Mutable accumulator for one in-progress flow."""

    src_ip: int
    dst_ip: int
    protocol: Protocol
    src_port: int
    dst_port: int
    first_ts: float
    last_ts: float
    out_bytes: int = 0
    in_bytes: int = 0
    out_pkts: int = 0
    in_pkts: int = 0
    syn_count: int = 0
    ack_count: int = 0
    # TCP handshake/teardown tracking
    orig_syn: bool = False
    resp_synack: bool = False
    established: bool = False
    orig_fin: bool = False
    resp_fin: bool = False
    orig_rst: bool = False
    resp_rst: bool = False
    midstream: bool = field(default=False)

    def record(self) -> NetflowRecord:
        return NetflowRecord(
            src_ip=self.src_ip,
            dst_ip=self.dst_ip,
            protocol=self.protocol,
            src_port=self.src_port,
            dst_port=self.dst_port,
            start_time=self.first_ts,
            duration_ms=max(0.0, (self.last_ts - self.first_ts) * 1e3),
            out_bytes=self.out_bytes,
            in_bytes=self.in_bytes,
            out_pkts=self.out_pkts,
            in_pkts=self.in_pkts,
            state=self._tcp_state(),
            syn_count=self.syn_count,
            ack_count=self.ack_count,
        )

    def _tcp_state(self) -> TcpState:
        """Collapse the observed handshake into a Bro-style conn_state."""
        if self.protocol is not Protocol.TCP:
            return TcpState.NONE
        if self.midstream and not self.orig_syn:
            return TcpState.OTH
        if not self.orig_syn:
            return TcpState.OTH
        if self.resp_rst and not self.established:
            return TcpState.REJ
        if not self.established:
            if self.orig_fin:
                return TcpState.SH
            return TcpState.S0
        if self.orig_rst:
            return TcpState.RSTO
        if self.resp_rst:
            return TcpState.RSTR
        if self.orig_fin and self.resp_fin:
            return TcpState.SF
        return TcpState.S1


class FlowAssembler:
    """Streaming packet → flow converter.

    Parameters
    ----------
    idle_timeout:
        Seconds of inactivity after which a flow is expired.  Bro's default
        UDP inactivity timeout is 60 s; the same value works for this model.
    max_flow_duration:
        Hard cap: flows older than this are force-expired even when active,
        bounding state for pathological long-lived connections.
    """

    def __init__(
        self,
        *,
        idle_timeout: float = 60.0,
        max_flow_duration: float = 3600.0,
    ) -> None:
        if idle_timeout <= 0 or max_flow_duration <= 0:
            raise ValueError("timeouts must be positive")
        self._idle_timeout = idle_timeout
        self._max_duration = max_flow_duration
        self._flows: dict[tuple, _FlowState] = {}
        self._clock = float("-inf")

    # ------------------------------------------------------------------
    @staticmethod
    def _key(pkt: ParsedPacket) -> tuple:
        """Direction-agnostic flow key: ordered endpoint pair + protocol."""
        a = (pkt.src_ip, pkt.src_port)
        b = (pkt.dst_ip, pkt.dst_port)
        lo, hi = (a, b) if a <= b else (b, a)
        return (lo, hi, pkt.transport)

    def process(self, pkt: ParsedPacket) -> list[NetflowRecord]:
        """Feed one packet; returns any flows expired by time progression."""
        if pkt.transport not in _PROTOCOL_OF:
            return []
        expired = self._expire(pkt.timestamp)
        key = self._key(pkt)
        state = self._flows.get(key)
        if state is None:
            state = _FlowState(
                src_ip=pkt.src_ip,
                dst_ip=pkt.dst_ip,
                protocol=_PROTOCOL_OF[pkt.transport],
                src_port=pkt.src_port,
                dst_port=pkt.dst_port,
                first_ts=pkt.timestamp,
                last_ts=pkt.timestamp,
            )
            if pkt.transport == PROTO_TCP and not (
                pkt.tcp_flags & TcpFlags.SYN
            ):
                state.midstream = True
            self._flows[key] = state
        self._update(state, pkt)
        if self._teardown_complete(state, pkt):
            del self._flows[key]
            expired.append(state.record())
        return expired

    def flush(self) -> list[NetflowRecord]:
        """Expire and return everything still open (end of capture)."""
        out = [s.record() for s in self._flows.values()]
        self._flows.clear()
        return out

    # ------------------------------------------------------------------
    def _expire(self, now: float) -> list[NetflowRecord]:
        self._clock = max(self._clock, now)
        if not self._flows:
            return []
        dead = [
            k
            for k, s in self._flows.items()
            if now - s.last_ts > self._idle_timeout
            or now - s.first_ts > self._max_duration
        ]
        out = []
        for k in dead:
            out.append(self._flows.pop(k).record())
        return out

    def _update(self, state: _FlowState, pkt: ParsedPacket) -> None:
        state.last_ts = max(state.last_ts, pkt.timestamp)
        outbound = (
            pkt.src_ip == state.src_ip and pkt.src_port == state.src_port
        )
        if outbound:
            state.out_pkts += 1
            state.out_bytes += pkt.payload_len
        else:
            state.in_pkts += 1
            state.in_bytes += pkt.payload_len
        if pkt.transport != PROTO_TCP:
            return
        flags = pkt.tcp_flags
        if flags & TcpFlags.SYN:
            state.syn_count += 1
            if outbound and not (flags & TcpFlags.ACK):
                state.orig_syn = True
            if not outbound and (flags & TcpFlags.ACK):
                state.resp_synack = True
        if flags & TcpFlags.ACK:
            state.ack_count += 1
            if outbound and state.resp_synack:
                state.established = True
        if flags & TcpFlags.FIN:
            if outbound:
                state.orig_fin = True
            else:
                state.resp_fin = True
        if flags & TcpFlags.RST:
            if outbound:
                state.orig_rst = True
            else:
                state.resp_rst = True

    @staticmethod
    def _teardown_complete(state: _FlowState, pkt: ParsedPacket) -> bool:
        if state.protocol is not Protocol.TCP:
            return False
        if state.orig_rst or state.resp_rst:
            return True
        # Close on the final ACK after both FINs.
        return (
            state.orig_fin
            and state.resp_fin
            and bool(pkt.tcp_flags & TcpFlags.ACK)
            and not (pkt.tcp_flags & TcpFlags.FIN)
        )


def assemble_flows(
    packets: Iterable[ParsedPacket],
    *,
    idle_timeout: float = 60.0,
    max_flow_duration: float = 3600.0,
) -> Iterator[NetflowRecord]:
    """Run the assembler over a packet iterable, yielding flows as they
    close, then everything left open at the end."""
    assembler = FlowAssembler(
        idle_timeout=idle_timeout, max_flow_duration=max_flow_duration
    )
    for pkt in packets:
        yield from assembler.process(pkt)
    yield from assembler.flush()
