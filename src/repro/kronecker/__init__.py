"""Kronecker graph substrate.

Implements the three pieces PGSK (Fig. 3 of the paper) needs:

* :class:`~repro.kronecker.initiator.InitiatorMatrix` — the stochastic
  initiator ``Theta`` whose Kronecker powers define edge probabilities.
* :func:`~repro.kronecker.kronfit.kronfit` — maximum-likelihood fitting of
  a 2x2 initiator to an observed graph (gradient ascent over ``Theta``
  alternated with Metropolis sampling over the node permutation), following
  Leskovec et al., JMLR 2010.
* :func:`~repro.kronecker.expand.stochastic_kronecker_edges` — edge
  placement by recursive descent, the O(|E|) generation step, including the
  collision-and-``distinct()`` loop the paper's Map-Reduce implementation
  performs.
"""

from repro.kronecker.initiator import InitiatorMatrix
from repro.kronecker.expand import (
    deterministic_kronecker_adjacency,
    stochastic_kronecker_edges,
)
from repro.kronecker.kronfit import kronfit, kronecker_log_likelihood

__all__ = [
    "InitiatorMatrix",
    "deterministic_kronecker_adjacency",
    "stochastic_kronecker_edges",
    "kronfit",
    "kronecker_log_likelihood",
]
