#!/usr/bin/env python3
"""Section IV end-to-end: detect injected attacks in Netflow traffic.

1. Synthesize clean enterprise traffic and calibrate the Table I threshold
   parameters from it ("training must be used to set the threshold values
   based on the parameters of each target network").
2. Inject the five attack classes of Fig. 4: TCP SYN flood, host scan,
   network scan, UDP flood, ICMP flood — plus a distributed SYN flood.
3. Run the windowed detector and score precision / recall / F1 against the
   injected ground truth.
4. Re-tune the thresholds with Particle Swarm Optimization (the paper's
   suggestion) and compare.

Run:  python examples/attack_detection.py
"""

from repro.core.pipeline import packets_from
from repro.detect import (
    DetectionThresholds,
    NetflowAnomalyDetector,
    evaluate_detections,
    tune_thresholds,
)
from repro.netflow import FlowTable, assemble_flows
from repro.trace import attacks, synthesize_seed_packets
from repro.trace.hosts import ipv4

WINDOW = 5.0


def to_table(frames):
    frames = sorted(frames, key=lambda f: f[0])
    return FlowTable.from_records(list(assemble_flows(packets_from(frames))))


def cols(table):
    return {k: table[k] for k in FlowTable.COLUMN_NAMES}


def main() -> None:
    print("synthesizing 20 s of clean traffic ...")
    background = synthesize_seed_packets(
        duration=20.0, session_rate=40, seed=9
    )
    clean = to_table(background)
    print(f"  {len(clean)} clean flows")

    print("injecting attacks ...")
    t0 = 1_000_005.0
    ground_truth = [
        attacks.syn_flood(
            attacker_ip=ipv4(203, 0, 113, 5),
            victim_ip=ipv4(10, 2, 0, 3), start_time=t0,
        ),
        attacks.host_scan(
            attacker_ip=ipv4(203, 0, 113, 6),
            victim_ip=ipv4(10, 2, 0, 4), start_time=t0 + 2,
        ),
        attacks.network_scan(
            attacker_ip=ipv4(203, 0, 113, 7),
            subnet_base=ipv4(10, 1, 0, 0), start_time=t0 + 4,
        ),
        attacks.udp_flood(
            attacker_ip=ipv4(203, 0, 113, 8),
            victim_ip=ipv4(10, 2, 0, 5), start_time=t0 + 6,
        ),
        attacks.icmp_flood(
            attacker_ip=ipv4(203, 0, 113, 9),
            victim_ip=ipv4(10, 2, 0, 6), start_time=t0 + 8,
        ),
        attacks.ddos_syn_flood(
            attacker_ips=tuple(ipv4(203, 0, 113, 20 + j) for j in range(8)),
            victim_ip=ipv4(10, 2, 0, 7), start_time=t0 + 10,
        ),
    ]
    frames = list(background)
    for a in ground_truth:
        frames.extend(a.frames)
        print(f"  + {a.kind} against {len(a.victim_ips)} victim(s)")
    mixed = to_table(frames)
    print(f"  {len(mixed)} flows total")

    print("\ncalibrating Table I thresholds on the clean traffic ...")
    thresholds = DetectionThresholds.fit_normal(
        cols(clean), window_seconds=WINDOW
    )
    print(f"  {thresholds}")

    print("\nrunning the Fig. 4 windowed detector ...")
    detector = NetflowAnomalyDetector(thresholds)
    found = detector.detect_windowed(cols(mixed), window_seconds=WINDOW)
    for det in found:
        print(
            f"  ALARM {det.kind:<18} {det.direction:<11} ip={det.ip} "
            f"(flows={det.evidence['n_flows']})"
        )
    report = evaluate_detections(found, ground_truth)
    print(
        f"\n  precision={report.precision:.2f} recall={report.recall:.2f} "
        f"f1={report.f1:.2f}"
    )
    if report.missed_attacks:
        print(f"  missed: {report.missed_attacks}")

    false_alarms = detector.detect_windowed(
        cols(clean), window_seconds=WINDOW
    )
    print(f"  alarms on clean traffic: {len(false_alarms)}")

    print("\nPSO threshold tuning (whole-capture objective) ...")
    tuned, result = tune_thresholds(
        cols(mixed), ground_truth, n_particles=12, n_iterations=15, seed=3
    )
    tuned_found = NetflowAnomalyDetector(tuned).detect_windowed(
        cols(mixed), window_seconds=WINDOW
    )
    tuned_report = evaluate_detections(tuned_found, ground_truth)
    print(
        f"  tuned f1={tuned_report.f1:.2f} "
        f"(objective best {result.best_value:.2f})"
    )


if __name__ == "__main__":
    main()
