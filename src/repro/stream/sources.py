"""Stream sources: live synthetic traffic and capture replay.

A source yields :class:`Batch` objects — micro-batches of either parsed
packets (``kind="packets"``) or already-assembled Netflow records
(``kind="records"``).  Packet batches flow through the windowed flow
assembler; record batches skip assembly and go straight to windowing.

* :class:`TraceSource` — wraps :class:`~repro.trace.TraceSynthesizer`
  plus any number of :mod:`repro.trace.attacks` ground truths, merging
  background and attack frames into one time-sorted stream.  The exact
  frame sequence is exposed via :meth:`TraceSource.frames` so a batch
  reference run can consume the identical input (the byte-identity
  contract).
* :class:`ReplaySource` — replays a capture file: ``.pcap`` files are
  parsed packet-by-packet (the same code path a SMIA-2011 capture would
  take); ``.npz`` files are treated as saved
  :class:`~repro.netflow.record.FlowTable` archives and replayed as
  record batches sorted by flow start time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Sequence

from repro.netflow.record import FlowTable
from repro.pcap.packet import parse_ethernet_ipv4_packet
from repro.pcap.reader import PcapReader
from repro.trace.attacks import AttackGroundTruth
from repro.trace.synthesizer import TimedFrame, TraceSynthesizer

__all__ = ["Batch", "TraceSource", "ReplaySource", "DEFAULT_BATCH_PACKETS"]

DEFAULT_BATCH_PACKETS = 256


@dataclass(frozen=True)
class Batch:
    """One micro-batch of source events."""

    kind: str  # "packets" | "records"
    items: tuple

    def __len__(self) -> int:
        return len(self.items)


def _chunked(items, size: int):
    for i in range(0, len(items), size):
        yield items[i : i + size]


@dataclass
class TraceSource:
    """Synthesizes background traffic + timed attacks as a packet stream.

    Parameters
    ----------
    synthesizer:
        Background-traffic generator (a default enterprise mix when
        omitted).
    duration:
        Seconds of background traffic to synthesize.
    attacks:
        Injected :class:`AttackGroundTruth` instances; their frames are
        merged time-sorted into the background and their timings are
        matched against detections by the pipeline's sink.
    batch_packets:
        Micro-batch granularity (packets per queue item).
    start_time:
        Stream epoch of the first background session.
    """

    synthesizer: TraceSynthesizer | None = None
    duration: float = 30.0
    attacks: Sequence[AttackGroundTruth] = ()
    batch_packets: int = DEFAULT_BATCH_PACKETS
    start_time: float = 1_000_000.0
    _frames: list[TimedFrame] | None = field(
        default=None, init=False, repr=False
    )

    def __post_init__(self) -> None:
        if self.synthesizer is None:
            self.synthesizer = TraceSynthesizer()
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if self.batch_packets < 1:
            raise ValueError("batch_packets must be >= 1")

    # ------------------------------------------------------------------
    def frames(self) -> list[TimedFrame]:
        """The merged, time-sorted frame stream (memoized).

        This is the exact input sequence; a batch reference run over the
        same list reproduces the streamed detections byte-for-byte.
        """
        if self._frames is None:
            merged = list(
                self.synthesizer.generate(
                    self.duration, start_time=self.start_time
                )
            )
            for gt in self.attacks:
                merged.extend(gt.frames)
            merged.sort(key=lambda f: f[0])
            self._frames = merged
        return self._frames

    def batches(self) -> Iterator[Batch]:
        """Parse frames and yield packet micro-batches."""
        pending = []
        for ts, frame in self.frames():
            pkt = parse_ethernet_ipv4_packet(frame, timestamp=ts)
            if pkt is None:
                continue
            pending.append(pkt)
            if len(pending) >= self.batch_packets:
                yield Batch(kind="packets", items=tuple(pending))
                pending = []
        if pending:
            yield Batch(kind="packets", items=tuple(pending))


@dataclass
class ReplaySource:
    """Replays a saved capture: a ``.pcap`` packet trace or a ``.npz``
    flow-table archive (``FlowTable.save_npz`` output)."""

    path: str | Path
    batch_packets: int = DEFAULT_BATCH_PACKETS

    def __post_init__(self) -> None:
        self.path = Path(self.path)
        if self.batch_packets < 1:
            raise ValueError("batch_packets must be >= 1")
        suffix = self.path.suffix.lower()
        if suffix not in (".pcap", ".npz"):
            raise ValueError(
                f"unsupported replay source {self.path} "
                "(expected .pcap or .npz)"
            )

    def batches(self) -> Iterator[Batch]:
        if self.path.suffix.lower() == ".pcap":
            yield from self._pcap_batches()
        else:
            yield from self._npz_batches()

    def _pcap_batches(self) -> Iterator[Batch]:
        pending = []
        with PcapReader(self.path) as reader:
            for pkt in reader.parsed_packets():
                pending.append(pkt)
                if len(pending) >= self.batch_packets:
                    yield Batch(kind="packets", items=tuple(pending))
                    pending = []
        if pending:
            yield Batch(kind="packets", items=tuple(pending))

    def _npz_batches(self) -> Iterator[Batch]:
        table = FlowTable.load_npz(self.path)
        records = sorted(table.records(), key=lambda r: r.start_time)
        for chunk in _chunked(records, self.batch_packets):
            yield Batch(kind="records", items=tuple(chunk))
