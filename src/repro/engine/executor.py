"""Pluggable local execution backends for the Map-Reduce engine.

The engine keeps two clocks.  The *simulated* clock (Fig. 8-12) is driven
by per-partition CPU costs measured *inside* each task with
``time.perf_counter`` and fed to the :class:`~repro.engine.scheduler.
ClusterScheduler` makespan model — it is independent of how the partition
tasks are actually executed.  The *wall* clock is whatever the hardware
delivers, and that is what this module accelerates: an
:class:`Executor` runs a batch of independent partition tasks and returns
their results in task order, so any backend can stand behind
``ArrayRDD.map_partitions`` without changing observable behaviour.

Three backends are provided:

``serial``
    The original driver-loop behaviour; the default, and the reference
    for determinism.
``threads``
    ``concurrent.futures.ThreadPoolExecutor``.  The hot kernels are NumPy
    calls (``np.unique``, ``np.repeat``, ``np.concatenate``, RNG fills)
    which release the GIL, so threads give real parallelism without any
    serialisation cost.
``processes``
    A fork-based process pool.  Tasks are *inherited* by the forked
    workers (copy-on-write), never pickled; result arrays travel back
    through ``multiprocessing.shared_memory`` segments so a
    multi-hundred-MB partition costs one memcpy instead of a pickle
    round-trip.  Requires the ``fork`` start method (Linux/macOS).

Every RNG stream in the engine is keyed by ``(seed, partition_index)``
and results are gathered in partition order, so all three backends
produce bit-identical datasets for identical seeds (tested).

Selection: ``ClusterContext(executor="threads", local_workers=8)``, or
the environment variables ``REPRO_EXECUTOR`` / ``REPRO_LOCAL_WORKERS``
when the constructor arguments are left unset.
"""

from __future__ import annotations

import multiprocessing as mp
import os
from concurrent.futures import ThreadPoolExecutor
from multiprocessing import shared_memory
from typing import Any, Callable, Sequence

import numpy as np

__all__ = [
    "Executor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "make_executor",
    "available_backends",
    "resolve_backend",
    "default_workers",
    "EXECUTOR_ENV_VAR",
    "WORKERS_ENV_VAR",
]

EXECUTOR_ENV_VAR = "REPRO_EXECUTOR"
WORKERS_ENV_VAR = "REPRO_LOCAL_WORKERS"

Task = Callable[[], Any]


def default_workers() -> int:
    """Worker count when none is configured: one per visible CPU."""
    return max(1, os.cpu_count() or 1)


class Executor:
    """Runs a batch of independent zero-argument tasks, preserving order.

    ``run`` returns results positionally aligned with ``tasks`` no matter
    in which order the backend completes them — the determinism contract
    the RDD layer relies on.
    """

    name = "abstract"

    def __init__(self, workers: int | None = None) -> None:
        workers = default_workers() if workers is None else int(workers)
        if workers < 1:
            raise ValueError("local_workers must be >= 1")
        self.workers = workers

    def run(self, tasks: Sequence[Task]) -> list[Any]:
        raise NotImplementedError

    def close(self) -> None:
        """Release pooled resources (idempotent)."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}(workers={self.workers})"


class SerialExecutor(Executor):
    """The original behaviour: run every task in the driver loop."""

    name = "serial"

    def run(self, tasks: Sequence[Task]) -> list[Any]:
        return [task() for task in tasks]


class ThreadExecutor(Executor):
    """Thread-pool backend; parallel because the kernels release the GIL."""

    name = "threads"

    def __init__(self, workers: int | None = None) -> None:
        super().__init__(workers)
        self._pool: ThreadPoolExecutor | None = None

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="repro-exec"
            )
        return self._pool

    def run(self, tasks: Sequence[Task]) -> list[Any]:
        if len(tasks) <= 1 or self.workers == 1:
            return [task() for task in tasks]
        return list(self._ensure_pool().map(lambda task: task(), tasks))

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


# ----------------------------------------------------------------------
# Process backend: fork-inherited tasks, shared-memory result transport.
# ----------------------------------------------------------------------

# Forked workers read the task batch from this module global instead of
# receiving pickled closures (most of the engine's task closures capture
# un-picklable local functions and large partition arrays; fork shares
# both copy-on-write).
_FORK_TASKS: Sequence[Task] | None = None

# Arrays smaller than this ride the normal pickle channel; the fixed cost
# of creating/opening a shared-memory segment only pays off above it.
_SHM_MIN_BYTES = 1 << 16


class _ShmArray:
    """Pickle-cheap handle to an ndarray parked in shared memory."""

    __slots__ = ("segment", "shape", "dtype")

    def __init__(self, segment: str, shape: tuple, dtype: str) -> None:
        self.segment = segment
        self.shape = shape
        self.dtype = dtype

    def __getstate__(self):
        return (self.segment, self.shape, self.dtype)

    def __setstate__(self, state):
        self.segment, self.shape, self.dtype = state


def _pack(obj: Any) -> Any:
    """Swap large ndarrays in a result tree for shared-memory handles."""
    if isinstance(obj, np.ndarray) and obj.nbytes >= _SHM_MIN_BYTES:
        seg = shared_memory.SharedMemory(create=True, size=obj.nbytes)
        np.ndarray(obj.shape, obj.dtype, buffer=seg.buf)[...] = obj
        handle = _ShmArray(seg.name, obj.shape, obj.dtype.str)
        seg.close()
        return handle
    if isinstance(obj, tuple):
        return tuple(_pack(o) for o in obj)
    if isinstance(obj, list):
        return [_pack(o) for o in obj]
    if isinstance(obj, dict):
        return {k: _pack(v) for k, v in obj.items()}
    return obj


def _unpack(obj: Any) -> Any:
    """Materialise shared-memory handles back into driver-owned arrays."""
    if isinstance(obj, _ShmArray):
        seg = shared_memory.SharedMemory(name=obj.segment)
        try:
            arr = np.ndarray(
                obj.shape, np.dtype(obj.dtype), buffer=seg.buf
            ).copy()
        finally:
            seg.close()
            seg.unlink()
        return arr
    if isinstance(obj, tuple):
        return tuple(_unpack(o) for o in obj)
    if isinstance(obj, list):
        return [_unpack(o) for o in obj]
    if isinstance(obj, dict):
        return {k: _unpack(v) for k, v in obj.items()}
    return obj


def _fork_worker(index: int) -> Any:
    return _pack(_FORK_TASKS[index]())


class ProcessExecutor(Executor):
    """Fork-based process pool with shared-memory result transport."""

    name = "processes"

    def __init__(self, workers: int | None = None) -> None:
        super().__init__(workers)
        if "fork" not in mp.get_all_start_methods():
            raise ValueError(
                "the 'processes' backend needs the fork start method "
                "(unavailable on this platform); use 'threads' instead"
            )

    def run(self, tasks: Sequence[Task]) -> list[Any]:
        if len(tasks) <= 1 or self.workers == 1:
            return [task() for task in tasks]
        global _FORK_TASKS
        # Start the resource tracker *before* forking so parent and
        # workers share one tracker: segments registered by a worker at
        # create are unregistered by the driver's unlink, and nothing is
        # reported leaked.
        from multiprocessing import resource_tracker

        resource_tracker.ensure_running()
        ctx = mp.get_context("fork")
        _FORK_TASKS = tasks
        try:
            # A fresh pool per batch: workers must fork *after* the task
            # batch is installed so they inherit it. chunksize=1 keeps
            # long-tail partitions from serialising behind short ones.
            with ctx.Pool(processes=min(self.workers, len(tasks))) as pool:
                packed = pool.map(
                    _fork_worker, range(len(tasks)), chunksize=1
                )
        finally:
            _FORK_TASKS = None
        return [_unpack(p) for p in packed]


# ----------------------------------------------------------------------
_BACKENDS: dict[str, type[Executor]] = {
    SerialExecutor.name: SerialExecutor,
    ThreadExecutor.name: ThreadExecutor,
    ProcessExecutor.name: ProcessExecutor,
}


def available_backends() -> tuple[str, ...]:
    return tuple(_BACKENDS)


def resolve_backend(name: str | None = None) -> str:
    """Resolve a backend name: explicit argument > env var > ``serial``."""
    if name is None:
        name = os.environ.get(EXECUTOR_ENV_VAR) or SerialExecutor.name
    name = name.strip().lower()
    if name not in _BACKENDS:
        raise ValueError(
            f"unknown executor backend {name!r}; "
            f"choose from {', '.join(_BACKENDS)}"
        )
    return name


def _resolve_workers(workers: int | None) -> int | None:
    if workers is not None:
        return workers
    env = os.environ.get(WORKERS_ENV_VAR)
    if env:
        try:
            return int(env)
        except ValueError as exc:
            raise ValueError(
                f"{WORKERS_ENV_VAR} must be an integer, got {env!r}"
            ) from exc
    return None


def make_executor(
    name: str | None = None, workers: int | None = None
) -> Executor:
    """Instantiate a backend; ``None`` arguments fall back to the
    ``REPRO_EXECUTOR`` / ``REPRO_LOCAL_WORKERS`` environment variables,
    then to ``serial`` with one worker per CPU."""
    return _BACKENDS[resolve_backend(name)](_resolve_workers(workers))
