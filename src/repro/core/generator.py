"""Shared generator types: seed analysis, the property model, results.

``SeedAnalysis`` is the output of the Fig. 1 analysis step — everything a
generator needs to know about the seed, and nothing else.  ``PropertyModel``
implements the attribute decoration common to both algorithms (Fig. 2
lines 15-20 == Fig. 3 lines 13-18; the paper notes "the function for the
generation of the properties is the same in both synthesis methods").
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graph.property_graph import PropertyGraph
from repro.netflow.attributes import (
    CONDITIONING_ATTRIBUTE,
    NETFLOW_EDGE_ATTRIBUTES,
)
from repro.stats.conditional import ConditionalDistribution
from repro.stats.empirical import EmpiricalDistribution

__all__ = ["SeedAnalysis", "PropertyModel", "GenerationResult"]


@dataclass(frozen=True)
class PropertyModel:
    """The Netflow attribute model extracted from the seed.

    ``anchor`` is the unconditional p(IN_BYTES); ``conditionals`` maps every
    other attribute ``a`` to p(a | IN_BYTES).  ``marginals`` keeps the
    unconditional distribution of every attribute, used when conditional
    sampling is disabled (the ablation knob in DESIGN.md).
    """

    anchor: EmpiricalDistribution
    conditionals: dict[str, ConditionalDistribution]
    marginals: dict[str, EmpiricalDistribution]

    @classmethod
    def fit(
        cls, edge_properties: dict[str, np.ndarray], *, n_bins: int = 16
    ) -> "PropertyModel":
        """Fit the model from seed edge-attribute columns."""
        missing = [
            a for a in NETFLOW_EDGE_ATTRIBUTES if a not in edge_properties
        ]
        if missing:
            raise ValueError(f"seed lacks Netflow attributes: {missing}")
        anchor_col = np.asarray(edge_properties[CONDITIONING_ATTRIBUTE])
        anchor = EmpiricalDistribution.from_samples(anchor_col)
        conditionals: dict[str, ConditionalDistribution] = {}
        marginals: dict[str, EmpiricalDistribution] = {}
        for name in NETFLOW_EDGE_ATTRIBUTES:
            col = np.asarray(edge_properties[name])
            marginals[name] = EmpiricalDistribution.from_samples(col)
            if name != CONDITIONING_ATTRIBUTE:
                conditionals[name] = ConditionalDistribution.fit(
                    anchor_col, col, n_bins=n_bins
                )
        return cls(anchor=anchor, conditionals=conditionals,
                   marginals=marginals)

    def sample_columns(
        self,
        n_edges: int,
        rng: np.random.Generator,
        *,
        conditional: bool = True,
    ) -> dict[str, np.ndarray]:
        """Draw all nine attribute columns for ``n_edges`` edges.

        With ``conditional=True`` the anchor attribute is drawn first and
        every other attribute conditions on it, preserving the seed's
        attribute couplings (big flows have many packets, long durations).
        """
        cols: dict[str, np.ndarray] = {}
        anchor_vals = self.anchor.sample(n_edges, rng)
        cols[CONDITIONING_ATTRIBUTE] = anchor_vals
        for name in NETFLOW_EDGE_ATTRIBUTES:
            if name == CONDITIONING_ATTRIBUTE:
                continue
            if conditional:
                cols[name] = self.conditionals[name].sample(anchor_vals, rng)
            else:
                cols[name] = self.marginals[name].sample(n_edges, rng)
        return cols


@dataclass(frozen=True)
class SeedAnalysis:
    """Everything the generators consume about a seed graph (Fig. 1 output).

    ``multiplicity`` is the distribution of parallel-edge counts per
    distinct vertex pair — what PGSK's duplication stage samples by default
    (the figure labels this input "outDegree"; see DESIGN.md).
    """

    n_vertices: int
    n_edges: int
    in_degree: EmpiricalDistribution
    out_degree: EmpiricalDistribution
    multiplicity: EmpiricalDistribution
    properties: PropertyModel

    @classmethod
    def from_graph(
        cls, graph: PropertyGraph, *, n_bins: int = 16
    ) -> "SeedAnalysis":
        if graph.n_edges == 0:
            raise ValueError("seed graph has no edges to analyse")
        # Degree distributions exclude isolated vertices: a grown vertex
        # must attach at least one edge, so degree 0 is not a valid target.
        in_deg = graph.in_degrees()
        out_deg = graph.out_degrees()
        in_dist = EmpiricalDistribution.from_samples(in_deg[in_deg > 0])
        out_dist = EmpiricalDistribution.from_samples(out_deg[out_deg > 0])
        props = {
            name: np.asarray(col)
            for name, col in graph.edge_properties.items()
            if name in NETFLOW_EDGE_ATTRIBUTES
        }
        return cls(
            n_vertices=graph.n_vertices,
            n_edges=graph.n_edges,
            in_degree=in_dist,
            out_degree=out_dist,
            multiplicity=EmpiricalDistribution.from_samples(
                graph.edge_multiplicities()
            ),
            properties=PropertyModel.fit(props, n_bins=n_bins),
        )


@dataclass
class GenerationResult:
    """Output of one generator run.

    ``structure_seconds`` / ``property_seconds`` are *simulated* cluster
    times for the two phases — the split behind the paper's Fig. 10
    property-overhead observation (~50% for PGPBA, ~30% for PGSK).
    ``peak_node_memory_bytes`` feeds Fig. 11.
    """

    graph: PropertyGraph
    algorithm: str
    structure_seconds: float
    property_seconds: float
    peak_node_memory_bytes: int
    n_nodes: int
    iterations: int
    extra: dict = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        return self.structure_seconds + self.property_seconds

    @property
    def edges_per_second(self) -> float:
        """Throughput including property decoration (Fig. 10's metric)."""
        if self.total_seconds <= 0:
            return float("inf")
        return self.graph.n_edges / self.total_seconds

    @property
    def structure_edges_per_second(self) -> float:
        if self.structure_seconds <= 0:
            return float("inf")
        return self.graph.n_edges / self.structure_seconds

    @property
    def property_overhead(self) -> float:
        """property_seconds / structure_seconds, the Fig. 10 overhead."""
        if self.structure_seconds <= 0:
            return 0.0
        return self.property_seconds / self.structure_seconds
