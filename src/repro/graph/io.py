"""Edge-list and CSV interchange for property graphs.

The released CSB suite stores generated graphs as attribute-bearing edge
lists; we mirror that with a tab-separated text format plus the compressed
NumPy archive on :class:`PropertyGraph` itself.
"""

from __future__ import annotations

import io as _io
from pathlib import Path

import numpy as np

from repro.graph.property_graph import PropertyGraph

__all__ = ["write_edge_list", "read_edge_list"]

_HEADER_PREFIX = "# repro-edge-list v1"


def write_edge_list(graph: PropertyGraph, path) -> None:
    """Write ``src<TAB>dst[<TAB>prop...]`` with a self-describing header.

    Float properties are written with full repr precision; integer and
    string properties round-trip exactly.
    """
    path = Path(path)
    names = sorted(graph.edge_properties)
    with path.open("w", encoding="utf-8") as fh:
        fh.write(f"{_HEADER_PREFIX}\n")
        fh.write(f"# n_vertices={graph.n_vertices}\n")
        fh.write("# columns=src\tdst" + "".join(f"\t{n}" for n in names) + "\n")
        cols = [graph.edge_properties[n] for n in names]
        # Build the body with numpy's savetxt-style batching via an in-memory
        # buffer per chunk to keep the Python loop per-row cost low.
        chunk = 65536
        for start in range(0, graph.n_edges, chunk):
            stop = min(start + chunk, graph.n_edges)
            buf = _io.StringIO()
            s = graph.src[start:stop]
            d = graph.dst[start:stop]
            pieces = [s.astype(str), d.astype(str)]
            for col in cols:
                pieces.append(np.asarray(col[start:stop]).astype(str))
            rows = np.stack(pieces, axis=1)
            for row in rows:
                buf.write("\t".join(row))
                buf.write("\n")
            fh.write(buf.getvalue())


def read_edge_list(path) -> PropertyGraph:
    """Read a file produced by :func:`write_edge_list`.

    Property columns are parsed as int64 when every entry is integral,
    else float64, else kept as strings.
    """
    path = Path(path)
    with path.open("r", encoding="utf-8") as fh:
        header = fh.readline().strip()
        if not header.startswith(_HEADER_PREFIX):
            raise ValueError(f"{path} is not a repro edge list")
        nv_line = fh.readline().strip()
        if not nv_line.startswith("# n_vertices="):
            raise ValueError("missing n_vertices header line")
        n_vertices = int(nv_line.split("=", 1)[1])
        col_line = fh.readline().strip()
        if not col_line.startswith("# columns="):
            raise ValueError("missing columns header line")
        columns = col_line.split("=", 1)[1].split("\t")
        body = fh.read()
    if body.strip():
        raw = np.genfromtxt(
            _io.StringIO(body), delimiter="\t", dtype=str, ndmin=2
        )
    else:
        raw = np.empty((0, len(columns)), dtype=str)
    if raw.shape[1] != len(columns):
        raise ValueError(
            f"row width {raw.shape[1]} != header width {len(columns)}"
        )
    src = raw[:, 0].astype(np.int64)
    dst = raw[:, 1].astype(np.int64)
    props: dict[str, np.ndarray] = {}
    for j, name in enumerate(columns[2:], start=2):
        col = raw[:, j]
        props[name] = _parse_column(col)
    return PropertyGraph(
        n_vertices=n_vertices, src=src, dst=dst, edge_properties=props
    )


def _parse_column(col: np.ndarray) -> np.ndarray:
    """Best-effort dtype recovery: int64, then float64, then str."""
    try:
        as_float = col.astype(np.float64)
    except ValueError:
        return col.astype("U32")
    if col.size and np.all(as_float == np.round(as_float)):
        # Only call it integral if the text contained no '.' markers.
        if not any("." in c or "e" in c or "E" in c for c in col[: min(64, col.size)]):
            return as_float.astype(np.int64)
    return as_float
