"""Unit tests for the Kronecker substrate: initiator, expansion, KronFit."""

import numpy as np
import pytest

from repro.kronecker import (
    InitiatorMatrix,
    deterministic_kronecker_adjacency,
    kronecker_log_likelihood,
    kronfit,
    stochastic_kronecker_edges,
)
from repro.kronecker.expand import descend_batch


class TestInitiator:
    def test_classic_valid(self):
        init = InitiatorMatrix.classic()
        assert init.size == 2
        assert init.edge_weight_sum == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ValueError, match="square"):
            InitiatorMatrix(np.ones((2, 3)))
        with pytest.raises(ValueError, match="0, 1"):
            InitiatorMatrix(np.array([[1.5, 0.5], [0.5, 0.1]]))
        with pytest.raises(ValueError, match="0, 1"):
            InitiatorMatrix(np.array([[0.0, 0.5], [0.5, 0.1]]))
        with pytest.raises(ValueError, match="2x2"):
            InitiatorMatrix(np.array([[0.5]]))

    def test_expected_edges_exponential(self):
        init = InitiatorMatrix.classic()
        assert init.expected_edges(3) == pytest.approx(8.0)
        assert init.n_vertices(3) == 8

    def test_levels_for_edges(self):
        init = InitiatorMatrix.classic()  # sum = 2 -> doubling per level
        assert init.levels_for_edges(8) == 3
        assert init.levels_for_edges(9) == 4
        assert init.levels_for_edges(1) == 1

    def test_levels_rejects_shrinking_initiator(self):
        init = InitiatorMatrix(np.full((2, 2), 0.2))
        with pytest.raises(ValueError, match="cannot grow"):
            init.levels_for_edges(100)

    def test_descent_probabilities_normalised(self):
        p = InitiatorMatrix.classic().descent_probabilities()
        assert p.sum() == pytest.approx(1.0)

    def test_normalized_to_sum(self):
        init = InitiatorMatrix.classic().normalized_to_sum(1.5)
        assert init.edge_weight_sum == pytest.approx(1.5)


class TestDeterministicExpansion:
    def test_kron_power_shape(self):
        base = np.array([[1, 1], [0, 1]])
        out = deterministic_kronecker_adjacency(base, 3)
        assert out.shape == (8, 8)

    def test_edge_count_multiplies(self):
        base = np.array([[1, 1], [0, 1]])
        out = deterministic_kronecker_adjacency(base, 2)
        assert out.sum() == base.sum() ** 2

    def test_k1_is_identityish(self):
        base = np.array([[1, 0], [1, 1]])
        assert np.array_equal(
            deterministic_kronecker_adjacency(base, 1), base
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            deterministic_kronecker_adjacency(np.ones((2, 3)), 2)
        with pytest.raises(ValueError):
            deterministic_kronecker_adjacency(np.ones((2, 2)), 0)


class TestStochasticExpansion:
    def test_vertex_range(self, rng):
        init = InitiatorMatrix.classic()
        src, dst = descend_batch(init, 5, 1000, rng)
        assert src.min() >= 0 and src.max() < 32
        assert dst.min() >= 0 and dst.max() < 32

    def test_deduplicated_output_distinct(self, rng):
        init = InitiatorMatrix.classic()
        src, dst = stochastic_kronecker_edges(init, 8, rng, n_edges=200)
        keys = src * 256 + dst
        assert np.unique(keys).size == keys.size == 200

    def test_without_dedup_keeps_collisions(self):
        init = InitiatorMatrix(np.array([[0.99, 0.9], [0.9, 0.8]]))
        rng = np.random.default_rng(0)
        src, dst = stochastic_kronecker_edges(
            init, 3, rng, n_edges=500, deduplicate=False
        )
        keys = src * 8 + dst
        assert np.unique(keys).size < keys.size  # tiny space -> collisions

    def test_default_target_expected_edges(self, rng):
        init = InitiatorMatrix.classic()
        src, _ = stochastic_kronecker_edges(init, 10, rng)
        assert src.size == int(round(init.expected_edges(10)))

    def test_dense_core_bias(self):
        """Cell (0,0) dominance concentrates edges on low vertex ids."""
        init = InitiatorMatrix(np.array([[0.9, 0.3], [0.3, 0.1]]))
        rng = np.random.default_rng(1)
        src, dst = descend_batch(init, 8, 20_000, rng)
        low = (src < 128).mean()
        assert low > 0.5  # low-id half gets well over half the edges

    def test_overflow_guard(self, rng):
        init = InitiatorMatrix.classic()
        with pytest.raises(ValueError, match="too many"):
            stochastic_kronecker_edges(init, 40, rng, n_edges=10)

    def test_zero_batch(self, rng):
        s, d = descend_batch(InitiatorMatrix.classic(), 3, 0, rng)
        assert s.size == 0 and d.size == 0

    def test_bad_args(self, rng):
        with pytest.raises(ValueError):
            stochastic_kronecker_edges(
                InitiatorMatrix.classic(), 0, rng
            )
        with pytest.raises(ValueError):
            stochastic_kronecker_edges(
                InitiatorMatrix.classic(), 3, rng, n_edges=0
            )


class TestKronFit:
    def test_recovers_initiator_scale(self):
        true = InitiatorMatrix(np.array([[0.9, 0.5], [0.5, 0.15]]))
        rng = np.random.default_rng(3)
        src, dst = stochastic_kronecker_edges(true, 10, rng)
        res = kronfit(src, dst, 1024, n_iterations=50,
                      swaps_per_iteration=80)
        assert res.initiator.edge_weight_sum == pytest.approx(
            true.edge_weight_sum, abs=0.15
        )
        # Core-periphery structure recovered: theta_00 clearly largest.
        t = res.initiator.theta
        assert t[0, 0] > t[1, 1]
        assert t[0, 0] == pytest.approx(0.9, abs=0.15)

    def test_likelihood_prefers_true_theta(self):
        true = InitiatorMatrix(np.array([[0.9, 0.5], [0.5, 0.15]]))
        rng = np.random.default_rng(5)
        src, dst = stochastic_kronecker_edges(true, 9, rng)
        ll_true = kronecker_log_likelihood(src, dst, true.theta, 9)
        ll_flat = kronecker_log_likelihood(
            src, dst, np.full((2, 2), 0.51), 9
        )
        assert ll_true > ll_flat

    def test_ll_improves_over_initial(self):
        true = InitiatorMatrix(np.array([[0.85, 0.45], [0.45, 0.25]]))
        rng = np.random.default_rng(6)
        src, dst = stochastic_kronecker_edges(true, 9, rng)
        start = InitiatorMatrix(np.full((2, 2), 0.5))
        res = kronfit(
            src, dst, 512, initial=start, n_iterations=40,
            swaps_per_iteration=50,
        )
        ll_start = kronecker_log_likelihood(src, dst, start.theta, 9)
        assert res.log_likelihood > ll_start

    def test_padding_to_power_of_two(self):
        rng = np.random.default_rng(1)
        src = rng.integers(0, 700, 2000)
        dst = rng.integers(0, 700, 2000)
        res = kronfit(src, dst, 700, n_iterations=3, swaps_per_iteration=5)
        assert res.n_vertices_padded == 1024
        assert res.k == 10

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            kronfit(np.array([]), np.array([]), 4)

    def test_diagnostics_populated(self):
        rng = np.random.default_rng(2)
        src = rng.integers(0, 64, 300)
        dst = rng.integers(0, 64, 300)
        res = kronfit(src, dst, 64, n_iterations=4, swaps_per_iteration=20)
        assert 0.0 <= res.swap_acceptance_rate <= 1.0
        assert res.iterations == 4
        assert np.isfinite(res.log_likelihood)
