"""Unit tests for repro.stats.powerlaw."""

import numpy as np
import pytest

from repro.stats import fit_power_law, sample_power_law


class TestSampling:
    def test_respects_x_min(self, rng):
        s = sample_power_law(2.5, 10_000, rng, x_min=3)
        assert s.min() >= 3

    def test_respects_x_max(self, rng):
        s = sample_power_law(2.0, 10_000, rng, x_min=1, x_max=50)
        assert s.max() <= 50

    def test_integer_output(self, rng):
        s = sample_power_law(2.5, 100, rng)
        assert np.issubdtype(s.dtype, np.integer)

    def test_heavier_tail_for_smaller_alpha(self, rng):
        light = sample_power_law(3.5, 50_000, rng)
        heavy = sample_power_law(1.8, 50_000, rng)
        assert heavy.mean() > light.mean()

    def test_alpha_must_exceed_one(self, rng):
        with pytest.raises(ValueError):
            sample_power_law(1.0, 10, rng)

    def test_bad_x_min(self, rng):
        with pytest.raises(ValueError):
            sample_power_law(2.0, 10, rng, x_min=0)

    def test_zero_size(self, rng):
        assert sample_power_law(2.0, 0, rng).size == 0


class TestFitting:
    def test_recovers_alpha(self):
        # The Clauset continuous-approximation MLE is accurate for
        # x_min >= 2 (at x_min=1 the approximation is known to bias low).
        rng = np.random.default_rng(42)
        s = sample_power_law(2.5, 50_000, rng, x_min=2)
        fit = fit_power_law(s, x_min=2)
        assert fit.alpha == pytest.approx(2.5, abs=0.15)

    def test_xmin_sweep_finds_cutoff(self):
        rng = np.random.default_rng(7)
        # Power law only above 5: uniform noise below.
        tail = sample_power_law(2.2, 20_000, rng, x_min=5)
        noise = rng.integers(1, 5, size=5_000)
        fit = fit_power_law(np.concatenate([tail, noise]))
        assert 3 <= fit.x_min <= 8
        assert fit.alpha == pytest.approx(2.2, abs=0.3)

    def test_ks_distance_small_for_true_model(self):
        rng = np.random.default_rng(3)
        s = sample_power_law(2.8, 30_000, rng, x_min=2)
        fit = fit_power_law(s, x_min=2)
        assert fit.ks_distance < 0.05

    def test_pmf_sums_to_one_over_tail(self):
        rng = np.random.default_rng(5)
        s = sample_power_law(2.5, 10_000, rng)
        fit = fit_power_law(s, x_min=1)
        ks = np.arange(1, 20_000)
        assert fit.pmf(ks).sum() == pytest.approx(1.0, abs=1e-3)

    def test_pmf_zero_below_cutoff(self):
        rng = np.random.default_rng(5)
        s = sample_power_law(2.5, 5_000, rng, x_min=4)
        fit = fit_power_law(s, x_min=4)
        assert fit.pmf([1, 2, 3]).sum() == 0.0

    def test_too_few_samples_rejected(self):
        with pytest.raises(ValueError):
            fit_power_law(np.array([3]))

    def test_n_tail_reported(self):
        rng = np.random.default_rng(9)
        s = sample_power_law(2.0, 1_000, rng, x_min=1)
        fit = fit_power_law(s, x_min=2)
        assert fit.n_tail == int((s >= 2).sum())
