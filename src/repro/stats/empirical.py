"""Empirical (data-driven) probability distributions with O(log n) sampling.

An :class:`EmpiricalDistribution` is built from observed samples (e.g. the
in-degree sequence of a seed graph, or the OUT_BYTES column of a Netflow
table).  Sampling uses inverse-CDF lookup against the cumulative weights,
which vectorises to a single ``np.searchsorted`` call — drawing ten million
variates is a few array operations, never a Python loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["EmpiricalDistribution"]


@dataclass(frozen=True)
class EmpiricalDistribution:
    """A discrete distribution over the distinct values seen in the data.

    Parameters
    ----------
    values:
        Sorted 1-D array of distinct support values (any numeric dtype).
    probabilities:
        Matching array of probabilities, summing to 1.

    Use :meth:`from_samples` or :meth:`from_counts` rather than the raw
    constructor; they validate and normalise the inputs.
    """

    values: np.ndarray
    probabilities: np.ndarray
    _cdf: np.ndarray = field(repr=False, compare=False, default=None)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_samples(cls, samples: np.ndarray) -> "EmpiricalDistribution":
        """Build from raw observations; ties are aggregated into weights."""
        samples = np.asarray(samples)
        if samples.ndim != 1:
            raise ValueError(f"samples must be 1-D, got shape {samples.shape}")
        if samples.size == 0:
            raise ValueError("cannot build a distribution from zero samples")
        values, counts = np.unique(samples, return_counts=True)
        return cls.from_counts(values, counts)

    @classmethod
    def from_counts(
        cls, values: np.ndarray, counts: np.ndarray
    ) -> "EmpiricalDistribution":
        """Build from a (value, count-or-weight) table."""
        values = np.asarray(values)
        counts = np.asarray(counts, dtype=np.float64)
        if values.shape != counts.shape or values.ndim != 1:
            raise ValueError(
                f"values {values.shape} and counts {counts.shape} must be "
                "matching 1-D arrays"
            )
        if values.size == 0:
            raise ValueError("cannot build a distribution with empty support")
        if np.any(counts < 0):
            raise ValueError("counts must be non-negative")
        total = counts.sum()
        if total <= 0:
            raise ValueError("counts must not all be zero")
        order = np.argsort(values, kind="stable")
        values = values[order]
        probs = counts[order] / total
        # Drop zero-probability atoms so the support is exact.
        keep = probs > 0
        values, probs = values[keep], probs[keep]
        cdf = np.cumsum(probs)
        cdf[-1] = 1.0  # guard against float drift at the top
        dist = cls(values=values, probabilities=probs)
        object.__setattr__(dist, "_cdf", cdf)
        return dist

    @classmethod
    def degenerate(cls, value) -> "EmpiricalDistribution":
        """A point mass at ``value`` (useful for constant attributes)."""
        return cls.from_counts(np.asarray([value]), np.asarray([1.0]))

    def __post_init__(self) -> None:
        if self._cdf is None:
            cdf = np.cumsum(self.probabilities)
            cdf[-1] = 1.0
            object.__setattr__(self, "_cdf", cdf)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def support_size(self) -> int:
        return int(self.values.size)

    def pmf(self, x) -> np.ndarray:
        """Probability mass at each element of ``x`` (0 outside support)."""
        x = np.atleast_1d(np.asarray(x))
        idx = np.searchsorted(self.values, x)
        idx = np.clip(idx, 0, self.values.size - 1)
        hit = self.values[idx] == x
        out = np.where(hit, self.probabilities[idx], 0.0)
        return out

    def cdf(self, x) -> np.ndarray:
        """P(X <= x), vectorised."""
        x = np.atleast_1d(np.asarray(x))
        idx = np.searchsorted(self.values, x, side="right")
        out = np.where(idx > 0, self._cdf[np.maximum(idx - 1, 0)], 0.0)
        return out

    def quantile(self, q) -> np.ndarray:
        """Inverse CDF: smallest support value v with P(X <= v) >= q."""
        q = np.atleast_1d(np.asarray(q, dtype=np.float64))
        if np.any((q < 0) | (q > 1)):
            raise ValueError("quantiles must lie in [0, 1]")
        idx = np.searchsorted(self._cdf, q, side="left")
        idx = np.clip(idx, 0, self.values.size - 1)
        return self.values[idx]

    def mean(self) -> float:
        return float(np.dot(self.values.astype(np.float64), self.probabilities))

    def var(self) -> float:
        m = self.mean()
        second = np.dot(
            np.square(self.values.astype(np.float64)), self.probabilities
        )
        return float(second - m * m)

    def entropy(self) -> float:
        """Shannon entropy in nats."""
        p = self.probabilities
        return float(-np.sum(p * np.log(p)))

    # ------------------------------------------------------------------
    # sampling
    # ------------------------------------------------------------------
    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``size`` i.i.d. variates; one searchsorted, no Python loop."""
        if size < 0:
            raise ValueError("size must be non-negative")
        if size == 0:
            return self.values[:0].copy()
        u = rng.random(size)
        idx = np.searchsorted(self._cdf, u, side="right")
        idx = np.clip(idx, 0, self.values.size - 1)
        return self.values[idx]

    def sample_one(self, rng: np.random.Generator):
        """Draw a single variate (scalar convenience wrapper)."""
        return self.sample(1, rng)[0]

    # ------------------------------------------------------------------
    # transforms
    # ------------------------------------------------------------------
    def truncated(self, low=None, high=None) -> "EmpiricalDistribution":
        """Restrict the support to ``[low, high]`` and renormalise."""
        mask = np.ones(self.values.size, dtype=bool)
        if low is not None:
            mask &= self.values >= low
        if high is not None:
            mask &= self.values <= high
        if not mask.any():
            raise ValueError("truncation removed the entire support")
        return EmpiricalDistribution.from_counts(
            self.values[mask], self.probabilities[mask]
        )

    def mixed_with(
        self, other: "EmpiricalDistribution", weight: float
    ) -> "EmpiricalDistribution":
        """Mixture ``(1-weight)*self + weight*other``."""
        if not 0.0 <= weight <= 1.0:
            raise ValueError("weight must lie in [0, 1]")
        values = np.concatenate([self.values, other.values])
        probs = np.concatenate(
            [(1.0 - weight) * self.probabilities, weight * other.probabilities]
        )
        # from_counts aggregates duplicate atoms via sort order; sum ties first.
        uniq, inverse = np.unique(values, return_inverse=True)
        agg = np.zeros(uniq.size, dtype=np.float64)
        np.add.at(agg, inverse, probs)
        return EmpiricalDistribution.from_counts(uniq, agg)

    def __len__(self) -> int:
        return self.support_size
