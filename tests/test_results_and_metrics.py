"""Focused tests for result types and simulation metrics accounting."""

import numpy as np
import pytest

from repro.core.generator import GenerationResult
from repro.engine.metrics import SimulationMetrics, TaskRecord
from repro.graph import PropertyGraph


def small_graph():
    return PropertyGraph(2, np.array([0]), np.array([1]))


class TestGenerationResult:
    def _result(self, structure=2.0, props=1.0):
        return GenerationResult(
            graph=small_graph(),
            algorithm="X",
            structure_seconds=structure,
            property_seconds=props,
            peak_node_memory_bytes=100,
            n_nodes=4,
            iterations=3,
        )

    def test_total_and_overhead(self):
        r = self._result()
        assert r.total_seconds == 3.0
        assert r.property_overhead == pytest.approx(0.5)

    def test_throughputs(self):
        r = self._result()
        assert r.edges_per_second == pytest.approx(1 / 3.0)
        assert r.structure_edges_per_second == pytest.approx(0.5)

    def test_zero_time_guards(self):
        r = self._result(structure=0.0, props=0.0)
        assert r.edges_per_second == float("inf")
        assert r.property_overhead == 0.0

    def test_extra_dict_default(self):
        assert self._result().extra == {}


class TestSimulationMetrics:
    def test_record_stage_accumulates(self):
        m = SimulationMetrics(n_nodes=2)
        recs = [
            TaskRecord("s", 0, 0, 0.5, 10),
            TaskRecord("s", 1, 1, 0.25, 20),
        ]
        m.record_stage(recs, stage_makespan=0.5, overhead=0.1)
        assert m.simulated_seconds == pytest.approx(0.6)
        assert m.platform_overhead_seconds == pytest.approx(0.1)
        assert m.node_busy_seconds.tolist() == [0.5, 0.25]
        assert m.n_tasks == 2

    def test_settle_memory_tracks_peak(self):
        m = SimulationMetrics(n_nodes=2)
        m.settle_memory(np.array([100, 300]))
        m.settle_memory(np.array([200, 50]))
        assert m.node_peak_bytes.tolist() == [200, 300]
        assert m.node_resident_bytes.tolist() == [200, 50]
        assert m.peak_node_memory_bytes == 300
        assert m.mean_node_memory_bytes == pytest.approx(250.0)

    def test_settle_memory_shape_checked(self):
        m = SimulationMetrics(n_nodes=2)
        with pytest.raises(ValueError, match="per-node"):
            m.settle_memory(np.array([1, 2, 3]))

    def test_utilisation_zero_without_time(self):
        m = SimulationMetrics(n_nodes=2)
        assert m.utilisation() == 0.0

    def test_utilisation_full_when_all_busy(self):
        m = SimulationMetrics(n_nodes=1)
        m.record_stage(
            [TaskRecord("s", 0, 0, 1.0, 0)], stage_makespan=1.0, overhead=0.0
        )
        assert m.utilisation() == pytest.approx(1.0)


class TestSeedAnalysisEdges:
    def test_from_graph_requires_netflow_attrs(self):
        from repro.core.generator import SeedAnalysis

        bare = PropertyGraph(2, np.array([0]), np.array([1]))
        with pytest.raises(ValueError, match="lacks"):
            SeedAnalysis.from_graph(bare)

    def test_degree_means_positive(self, seed_analysis):
        assert seed_analysis.in_degree.mean() >= 1.0
        assert seed_analysis.out_degree.mean() >= 1.0
        assert seed_analysis.multiplicity.mean() >= 1.0

    def test_counts_match_graph(self, seed_graph, seed_analysis):
        assert seed_analysis.n_vertices == seed_graph.n_vertices
        assert seed_analysis.n_edges == seed_graph.n_edges
