"""Fig. 8 — single-node throughput vs number of executor cores.

Paper: on one 20-core Shadow II node, generation throughput for both PGPBA
and PGSK rises with ``total-executor-cores`` up to 12 and then plateaus —
"there is no performance increase in using the remaining cores".  That
study fixed the 12-cores-per-node rule used by every other experiment.

Here: the simulated node reproduces the saturation (memory-bandwidth
contention model in :class:`repro.engine.scheduler.NodeSpec`).
"""

from __future__ import annotations

from conftest import save_series
from repro.core import PGPBA, PGSK
from repro.engine import ClusterContext

CORES = (1, 2, 4, 8, 12, 16, 20)
TARGET_FACTOR = 20


def _throughput(
    generator, seed_graph, seed_analysis, cores, repeats=3, **kwargs
):
    """Median over repeats: simulated cost carries real measurement noise
    (each task's CPU time is measured with perf_counter), so a single run
    can wobble ~10% — the paper's plots average multiple runs too."""
    samples = []
    for _ in range(repeats):
        ctx = ClusterContext(
            n_nodes=1, executor_cores=cores, partition_multiplier=2
        )
        res = generator.generate(
            seed_graph, seed_analysis, TARGET_FACTOR * seed_graph.n_edges,
            context=ctx, **kwargs,
        )
        samples.append(res.graph.n_edges / res.total_seconds)
    samples.sort()
    return samples[len(samples) // 2]


def run_fig8(seed_graph, seed_analysis):
    pgsk = PGSK(seed=8, kronfit_iterations=8, kronfit_swaps=30)
    initiator = pgsk.fit_initiator(seed_graph)
    rows = []
    for cores in CORES:
        tp_ba = _throughput(
            PGPBA(fraction=0.5, seed=8), seed_graph, seed_analysis, cores
        )
        tp_sk = _throughput(
            pgsk, seed_graph, seed_analysis, cores, initiator=initiator
        )
        rows.append([cores, tp_ba, tp_sk])
    return rows


def test_fig8_single_node_throughput(benchmark, seed_graph, seed_analysis):
    rows = run_fig8(seed_graph, seed_analysis)
    save_series(
        "fig8",
        "Fig. 8: single-node throughput (edges/s, simulated) vs executor cores",
        ["cores", "PGPBA_eps", "PGSK_eps"],
        rows,
    )
    by_cores = {r[0]: (r[1], r[2]) for r in rows}
    for idx in (0, 1):  # both generators
        # Rising region: 12 cores clearly beats 4.
        assert by_cores[12][idx] > 1.5 * by_cores[4][idx]
        # Plateau: 16 and 20 cores give no systematic improvement
        # (15% slack absorbs wall-clock measurement noise).
        assert by_cores[16][idx] <= 1.15 * by_cores[12][idx]
        assert by_cores[20][idx] <= 1.15 * by_cores[12][idx]

    def op():
        ctx = ClusterContext(n_nodes=1, executor_cores=12)
        return PGPBA(fraction=1.0, seed=9).generate(
            seed_graph, seed_analysis, 4 * seed_graph.n_edges, context=ctx
        )

    benchmark.pedantic(op, rounds=1, iterations=1)
