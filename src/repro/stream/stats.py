"""Streaming-pipeline metrics.

One :class:`StreamStats` per run, frozen at drain time:

* per-stage event counts, busy seconds and sustained events/sec (events
  are packets for the source and assembly stages, flows for the graph
  stage, flows + alarms for the sink);
* per-queue depth high-water and backpressure stalls (count + blocked
  seconds) — the queue high-water can never exceed the configured
  capacity, which is the pipeline's bounded-memory guarantee;
* window accounting (windows emitted, late flows) and end-to-end window
  latency percentiles, measured from the wall-clock instant a window
  closes in the assembly stage to the instant the detection sink
  finishes evaluating it.

:meth:`StreamStats.rows` renders ``repro engine-info``-style
``(name, value)`` rows; :meth:`StreamStats.summary` joins them for the
``repro stream`` CLI.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["QueueStats", "StageStats", "StreamStats"]


@dataclass(frozen=True)
class QueueStats:
    """Occupancy and backpressure profile of one inter-stage queue."""

    name: str
    capacity: int
    puts: int
    depth_high_water: int
    backpressure_stalls: int
    stall_seconds: float


@dataclass(frozen=True)
class StageStats:
    """Throughput profile of one pipeline stage."""

    name: str
    events_in: int
    events_out: int
    batches_in: int
    batches_out: int
    busy_seconds: float

    @property
    def events_per_second(self) -> float:
        """Sustained rate while the stage was actually computing."""
        if self.busy_seconds <= 0:
            return 0.0
        return self.events_in / self.busy_seconds


@dataclass(frozen=True)
class StreamStats:
    """The whole run's metrics block."""

    wall_seconds: float
    stages: tuple[StageStats, ...]
    queues: tuple[QueueStats, ...]
    windows: int
    late_flows: int
    packets: int
    flows: int
    detections: int
    window_latency_p50_ms: float
    window_latency_p99_ms: float
    window_latency_mean_ms: float

    @classmethod
    def build(
        cls,
        *,
        wall_seconds: float,
        stages,
        queues,
        windows: int,
        late_flows: int,
        packets: int,
        flows: int,
        detections: int,
        window_latencies,
    ) -> "StreamStats":
        lat = np.asarray(list(window_latencies), dtype=np.float64)
        if lat.size:
            p50 = float(np.percentile(lat, 50)) * 1e3
            p99 = float(np.percentile(lat, 99)) * 1e3
            mean = float(lat.mean()) * 1e3
        else:
            p50 = p99 = mean = 0.0
        return cls(
            wall_seconds=wall_seconds,
            stages=tuple(stages),
            queues=tuple(queues),
            windows=windows,
            late_flows=late_flows,
            packets=packets,
            flows=flows,
            detections=detections,
            window_latency_p50_ms=p50,
            window_latency_p99_ms=p99,
            window_latency_mean_ms=mean,
        )

    # ------------------------------------------------------------------
    @property
    def events_per_second(self) -> float:
        """Headline sustained rate: source events over the run wall."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.packets / self.wall_seconds

    def queue(self, name: str) -> QueueStats:
        for q in self.queues:
            if q.name == name:
                return q
        raise KeyError(name)

    def stage(self, name: str) -> StageStats:
        for s in self.stages:
            if s.name == name:
                return s
        raise KeyError(name)

    # ------------------------------------------------------------------
    def rows(self) -> list[tuple[str, str]]:
        """``repro engine-info``-style (name, value) rows."""
        out = [
            ("wall clock", f"{self.wall_seconds:.3f} s"),
            ("events/sec", f"{self.events_per_second:,.0f} packets/s"),
            ("packets", f"{self.packets:,}"),
            ("flows", f"{self.flows:,}"),
            ("windows", f"{self.windows:,} ({self.late_flows} late flows)"),
            ("detections", f"{self.detections:,}"),
            (
                "window latency",
                f"p50={self.window_latency_p50_ms:.2f} ms  "
                f"p99={self.window_latency_p99_ms:.2f} ms  "
                f"mean={self.window_latency_mean_ms:.2f} ms",
            ),
        ]
        for s in self.stages:
            out.append(
                (
                    f"stage {s.name}",
                    f"{s.events_in:,} in / {s.events_out:,} out, "
                    f"busy {s.busy_seconds:.3f} s "
                    f"({s.events_per_second:,.0f} ev/s)",
                )
            )
        for q in self.queues:
            out.append(
                (
                    f"queue {q.name}",
                    f"depth high-water {q.depth_high_water}/{q.capacity}, "
                    f"{q.backpressure_stalls} stalls "
                    f"({q.stall_seconds:.3f} s blocked)",
                )
            )
        return out

    def summary(self) -> str:
        return "\n".join(
            f"{name:<22}: {value}" for name, value in self.rows()
        )
