"""Host population model.

An enterprise network has many clients and few servers, and server
popularity is heavy-tailed (a handful of servers take most connections).
Sampling servers from a Zipf law is what ultimately gives the seed graph
its scale-free in-degree distribution — the property the BA and Kronecker
generators are designed to preserve.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["HostPopulation", "ipv4"]


def ipv4(a: int, b: int, c: int, d: int) -> int:
    """Dotted-quad to int."""
    for octet in (a, b, c, d):
        if not 0 <= octet <= 255:
            raise ValueError(f"invalid octet {octet}")
    return (a << 24) | (b << 16) | (c << 8) | d


@dataclass
class HostPopulation:
    """Clients and servers of the simulated network.

    Parameters
    ----------
    n_clients, n_servers:
        Sizes of the two pools.  Addresses are allocated from 10.1.0.0/16
        (clients) and 10.2.0.0/16 (servers).
    server_zipf_exponent:
        Exponent of the Zipf popularity law over servers; ~1.2 gives a
        realistic enterprise skew.
    external_fraction:
        Fraction of sessions that target an "internet" host drawn uniformly
        from 198.18.0.0/16 instead of an internal server, adding the long
        tail of rarely-contacted destinations real traces show.
    """

    n_clients: int = 200
    n_servers: int = 40
    server_zipf_exponent: float = 1.2
    external_fraction: float = 0.15
    clients: np.ndarray = field(init=False)
    servers: np.ndarray = field(init=False)
    _server_cdf: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.n_clients < 1 or self.n_servers < 1:
            raise ValueError("need at least one client and one server")
        if not 0.0 <= self.external_fraction < 1.0:
            raise ValueError("external_fraction must lie in [0, 1)")
        base_c = ipv4(10, 1, 0, 0)
        base_s = ipv4(10, 2, 0, 0)
        self.clients = base_c + 1 + np.arange(self.n_clients, dtype=np.int64)
        self.servers = base_s + 1 + np.arange(self.n_servers, dtype=np.int64)
        ranks = np.arange(1, self.n_servers + 1, dtype=np.float64)
        weights = ranks ** (-self.server_zipf_exponent)
        self._server_cdf = np.cumsum(weights / weights.sum())

    # ------------------------------------------------------------------
    def sample_clients(self, size: int, rng: np.random.Generator) -> np.ndarray:
        """Uniform client draw — every workstation is equally chatty."""
        idx = rng.integers(0, self.n_clients, size=size)
        return self.clients[idx]

    def sample_servers(self, size: int, rng: np.random.Generator) -> np.ndarray:
        """Zipf-weighted server draw (heavy-tailed popularity)."""
        u = rng.random(size)
        idx = np.searchsorted(self._server_cdf, u, side="right")
        idx = np.clip(idx, 0, self.n_servers - 1)
        return self.servers[idx]

    def sample_destinations(
        self, size: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Mix of internal servers and external internet hosts."""
        dests = self.sample_servers(size, rng)
        if self.external_fraction > 0:
            ext_mask = rng.random(size) < self.external_fraction
            n_ext = int(ext_mask.sum())
            if n_ext:
                ext_base = ipv4(198, 18, 0, 0)
                dests = dests.copy()
                dests[ext_mask] = ext_base + rng.integers(
                    1, 65535, size=n_ext
                )
        return dests

    def random_unused_address(self, rng: np.random.Generator) -> int:
        """An address outside both pools (attack sources, dark space)."""
        return int(ipv4(203, 0, 113, 0) + rng.integers(1, 255))
