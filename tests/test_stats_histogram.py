"""Unit tests for repro.stats.histogram."""

import numpy as np
import pytest

from repro.stats import (
    aligned_euclidean_distance,
    log_binned_histogram,
    normalized_distribution,
)
from repro.stats.histogram import kolmogorov_smirnov_distance


class TestNormalizedDistribution:
    def test_sums_to_one(self):
        _, freq = normalized_distribution(np.array([1, 1, 2, 5]))
        assert freq.sum() == pytest.approx(1.0)

    def test_support_sorted_unique(self):
        sup, _ = normalized_distribution(np.array([5, 1, 5, 2]))
        assert sup.tolist() == [1, 2, 5]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            normalized_distribution(np.array([]))


class TestLogBinned:
    def test_density_sums_to_one(self):
        vals = np.logspace(0, 3, 500)
        _, dens = log_binned_histogram(vals, n_bins=20)
        assert dens.sum() == pytest.approx(1.0)

    def test_centers_are_geometric_means(self):
        centers, _ = log_binned_histogram(
            np.array([1.0, 10.0, 100.0]), n_bins=2, vmin=1.0, vmax=100.0
        )
        assert centers[0] == pytest.approx(np.sqrt(1 * 10))
        assert centers[1] == pytest.approx(np.sqrt(10 * 100))

    def test_nonpositive_dropped(self):
        centers, dens = log_binned_histogram(
            np.array([-1.0, 0.0, 1.0, 10.0]), n_bins=4
        )
        assert dens.sum() == pytest.approx(1.0)

    def test_all_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            log_binned_histogram(np.array([0.0, -5.0]))

    def test_constant_values_ok(self):
        _, dens = log_binned_histogram(np.full(10, 3.0), n_bins=5)
        assert dens.sum() == pytest.approx(1.0)


class TestAlignedEuclidean:
    def test_identical_distributions_zero(self):
        a = np.array([1, 2, 2, 3])
        assert aligned_euclidean_distance(a, a.copy()) == pytest.approx(0.0)

    def test_symmetry(self):
        a = np.array([1, 1, 2])
        b = np.array([2, 3, 3])
        assert aligned_euclidean_distance(a, b) == pytest.approx(
            aligned_euclidean_distance(b, a)
        )

    def test_disjoint_supports_bounded(self):
        a = np.array([1, 1])
        b = np.array([2, 2])
        # norm = sqrt(1 + 1), support = 2
        assert aligned_euclidean_distance(a, b) == pytest.approx(
            np.sqrt(2) / 2
        )

    def test_larger_support_gives_smaller_score(self):
        # The paper's key behaviour: scores decrease as the synthetic
        # dataset grows (Figs. 6-7), because the union support grows.
        seed = np.array([1, 2, 3])
        small = np.array([10, 11])
        big = np.arange(10, 200)
        assert aligned_euclidean_distance(seed, big) < aligned_euclidean_distance(
            seed, small
        )

    def test_binned_mode(self):
        a = np.random.default_rng(0).lognormal(0, 1, 500)
        b = np.random.default_rng(1).lognormal(0, 1, 500)
        d_same = aligned_euclidean_distance(a, b, n_bins=20)
        c = np.random.default_rng(2).lognormal(3, 1, 500)
        d_diff = aligned_euclidean_distance(a, c, n_bins=20)
        assert d_same < d_diff


class TestKS:
    def test_identical_zero(self):
        a = np.array([1.0, 2.0, 3.0])
        assert kolmogorov_smirnov_distance(a, a) == 0.0

    def test_disjoint_is_one(self):
        assert kolmogorov_smirnov_distance(
            np.array([1.0, 2.0]), np.array([10.0, 11.0])
        ) == pytest.approx(1.0)

    def test_bounded(self):
        rng = np.random.default_rng(0)
        d = kolmogorov_smirnov_distance(rng.random(100), rng.random(100))
        assert 0.0 <= d <= 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            kolmogorov_smirnov_distance(np.array([]), np.array([1.0]))
