"""Disk-backed block storage for the Map-Reduce engine.

The paper runs PGPBA/PGSK on a 110-node Spark cluster because edge
multisets outgrow one machine's RAM; this package is the local engine's
answer: a :class:`BlockStore` that owns every materialized partition
behind a stable :class:`BlockId`, keeps resident bytes under a
configurable memory budget by LRU-spilling serialized blocks to a spill
directory, transparently reloads them on access, and provides durable
checkpoint files that truncate lineage for fault recovery.  Block files
are written through a pluggable codec (``codecs.py``): raw ``.npz``,
chunk-compressed zlib/lzma columnar containers, or uncompressed
memory-mapped read-back.  See DESIGN.md §8 for the block lifecycle and
budget semantics and §10 for the codec layer.
"""

from repro.engine.storage.blocks import (
    MEMORY_BUDGET_ENV_VAR,
    SPILL_DIR_ENV_VAR,
    BlockId,
    BlockStore,
    BlockWriter,
    ChunkedBlockWriter,
    SpilledBlockHandle,
    StorageLevel,
    StorageStats,
    load_block_file,
    parse_size,
    resolve_memory_budget,
    resolve_spill_dir,
    write_block_file,
)
from repro.engine.storage.codecs import (
    BLOCK_CODEC_ENV_VAR,
    CODEC_CHUNK_BYTES_ENV_VAR,
    CODECS,
    DEFAULT_CODEC,
    BlockCodec,
    WriteInfo,
    get_codec,
    iter_column_chunks,
    read_block_file,
    read_named_file,
    resolve_block_codec,
    resolve_codec_chunk_bytes,
    set_missing_file_resolver,
)

__all__ = [
    "BLOCK_CODEC_ENV_VAR",
    "CODEC_CHUNK_BYTES_ENV_VAR",
    "CODECS",
    "DEFAULT_CODEC",
    "MEMORY_BUDGET_ENV_VAR",
    "SPILL_DIR_ENV_VAR",
    "BlockCodec",
    "BlockId",
    "BlockStore",
    "BlockWriter",
    "ChunkedBlockWriter",
    "SpilledBlockHandle",
    "StorageLevel",
    "StorageStats",
    "WriteInfo",
    "get_codec",
    "iter_column_chunks",
    "load_block_file",
    "parse_size",
    "read_block_file",
    "read_named_file",
    "resolve_block_codec",
    "resolve_codec_chunk_bytes",
    "resolve_memory_budget",
    "resolve_spill_dir",
    "set_missing_file_resolver",
    "write_block_file",
]
