"""Netflow substrate.

The paper maps Netflow data onto property-graphs: hosts become vertices,
TCP connections / UDP streams become edges carrying nine attributes
(PROTOCOL, SRC_PORT, DEST_PORT, DURATION, OUT_BYTES, IN_BYTES, OUT_PKTS,
IN_PKTS, STATE).  In the original system Bro IDS performed the packet→flow
conversion; :class:`~repro.netflow.flow_assembler.FlowAssembler` is our
from-scratch equivalent, including a TCP connection state machine producing
Bro-style connection states.
"""

from repro.netflow.attributes import (
    Protocol,
    TcpState,
    NETFLOW_EDGE_ATTRIBUTES,
)
from repro.netflow.record import NetflowRecord, FlowTable
from repro.netflow.flow_assembler import FlowAssembler, assemble_flows
from repro.netflow.mapping import flow_table_to_property_graph
from repro.netflow import codec

__all__ = [
    "Protocol",
    "TcpState",
    "NETFLOW_EDGE_ATTRIBUTES",
    "NetflowRecord",
    "FlowTable",
    "FlowAssembler",
    "assemble_flows",
    "flow_table_to_property_graph",
    "codec",
]
