"""Traffic-pattern aggregation (the graph-leveraging step of Fig. 4).

The detector's first move is to "aggregate the network traffic by either
the same destination or the source IP".  On a property graph this is a
group-by over edge endpoints; here it is a fully vectorised pass: one
``np.unique(..., return_inverse=True)`` to label the groups, then
``np.bincount`` reductions for every aggregate, including distinct-count
aggregates computed by de-duplicating (group, value) pairs first.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.netflow.attributes import Protocol

__all__ = ["TrafficPatterns", "build_traffic_patterns", "iter_windows"]

_REQUIRED = (
    "SRC_IP", "DST_IP", "DEST_PORT", "OUT_BYTES", "IN_BYTES",
    "OUT_PKTS", "IN_PKTS", "PROTOCOL", "SYN_COUNT", "ACK_COUNT",
)


@dataclass(frozen=True)
class TrafficPatterns:
    """Per-detection-IP aggregates, aligned arrays indexed by group.

    ``direction`` is "destination" (grouped by DST_IP; ``n_distinct_peers``
    counts distinct sources — the paper's N(S_IP)) or "source" (grouped by
    SRC_IP; ``n_distinct_peers`` counts distinct destinations — N(D_IP)).
    """

    direction: str
    ips: np.ndarray                # the detection IPs (group keys)
    n_flows: np.ndarray            # N(flow)
    n_distinct_peers: np.ndarray   # N(S_IP) or N(D_IP)
    n_distinct_ports: np.ndarray   # N(D_port)
    sum_flow_size: np.ndarray      # Sum(flowSize), bytes
    avg_flow_size: np.ndarray      # Avg(flowSize)
    sum_packets: np.ndarray        # Sum(nPacket)
    avg_packets: np.ndarray        # Avg(nPacket)
    syn_count: np.ndarray          # N(SYN)
    ack_count: np.ndarray          # N(ACK)
    tcp_flows: np.ndarray
    udp_flows: np.ndarray
    icmp_flows: np.ndarray

    def __len__(self) -> int:
        return int(self.ips.size)

    def ack_syn_ratio(self) -> np.ndarray:
        """N(ACK)/N(SYN) with SYN-less groups mapped to a high ratio
        (no handshake pressure -> not a SYN flood candidate)."""
        syn = self.syn_count.astype(np.float64)
        out = np.full(syn.shape, np.inf)
        has = syn > 0
        out[has] = self.ack_count[has] / syn[has]
        return out

    def dominant_protocol(self) -> np.ndarray:
        """Protocol code carrying the most flows per group."""
        stack = np.stack([self.tcp_flows, self.udp_flows, self.icmp_flows])
        codes = np.asarray(
            [int(Protocol.TCP), int(Protocol.UDP), int(Protocol.ICMP)],
            dtype=np.int64,
        )
        return codes[np.argmax(stack, axis=0)]


def _distinct_per_group(
    group_idx: np.ndarray, values: np.ndarray, n_groups: int
) -> np.ndarray:
    """Count distinct ``values`` per group via pair de-duplication."""
    if group_idx.size == 0:
        return np.zeros(n_groups, dtype=np.int64)
    pairs = np.stack([group_idx, values.astype(np.int64)], axis=1)
    uniq = np.unique(pairs, axis=0)
    return np.bincount(uniq[:, 0], minlength=n_groups)


def build_traffic_patterns(
    flow_columns: dict[str, np.ndarray], *, direction: str
) -> TrafficPatterns:
    """Aggregate flow columns into per-IP traffic patterns.

    ``flow_columns`` is any mapping providing the Netflow columns (a
    :class:`~repro.netflow.record.FlowTable` works, as does the dict from
    :func:`~repro.netflow.mapping.property_graph_to_flow_columns`).
    """
    if direction not in ("destination", "source"):
        raise ValueError("direction must be 'destination' or 'source'")
    missing = [c for c in _REQUIRED if _get(flow_columns, c) is None]
    if missing:
        raise ValueError(f"flow columns missing: {missing}")

    key_col = "DST_IP" if direction == "destination" else "SRC_IP"
    peer_col = "SRC_IP" if direction == "destination" else "DST_IP"
    keys = np.asarray(_get(flow_columns, key_col), dtype=np.int64)
    ips, group_idx = np.unique(keys, return_inverse=True)
    n = ips.size

    def summed(col: np.ndarray) -> np.ndarray:
        return np.bincount(
            group_idx, weights=col.astype(np.float64), minlength=n
        )

    proto_all = np.asarray(_get(flow_columns, "PROTOCOL"), dtype=np.int64)
    flow_size = (
        np.asarray(_get(flow_columns, "OUT_BYTES"), dtype=np.float64)
        + np.asarray(_get(flow_columns, "IN_BYTES"), dtype=np.float64)
    )
    pkts = (
        np.asarray(_get(flow_columns, "OUT_PKTS"), dtype=np.float64)
        + np.asarray(_get(flow_columns, "IN_PKTS"), dtype=np.float64)
    )
    n_flows = np.bincount(group_idx, minlength=n).astype(np.int64)
    safe = np.maximum(n_flows, 1).astype(np.float64)

    proto = proto_all

    def proto_flows(code: int) -> np.ndarray:
        return np.bincount(
            group_idx, weights=(proto == code).astype(np.float64),
            minlength=n,
        ).astype(np.int64)

    return TrafficPatterns(
        direction=direction,
        ips=ips,
        n_flows=n_flows,
        n_distinct_peers=_distinct_per_group(
            group_idx,
            np.asarray(_get(flow_columns, peer_col)),
            n,
        ),
        # ICMP has no ports (the DEST_PORT column carries echo sequence
        # numbers there), so port diversity is counted on TCP/UDP only —
        # otherwise an ICMP flood masquerades as a port scan.
        n_distinct_ports=_distinct_per_group(
            group_idx[proto_all != int(Protocol.ICMP)],
            np.asarray(_get(flow_columns, "DEST_PORT"))[
                proto_all != int(Protocol.ICMP)
            ],
            n,
        ),
        sum_flow_size=summed(flow_size),
        avg_flow_size=summed(flow_size) / safe,
        sum_packets=summed(pkts),
        avg_packets=summed(pkts) / safe,
        syn_count=summed(
            np.asarray(_get(flow_columns, "SYN_COUNT"), dtype=np.float64)
        ).astype(np.int64),
        ack_count=summed(
            np.asarray(_get(flow_columns, "ACK_COUNT"), dtype=np.float64)
        ).astype(np.int64),
        tcp_flows=proto_flows(int(Protocol.TCP)),
        udp_flows=proto_flows(int(Protocol.UDP)),
        icmp_flows=proto_flows(int(Protocol.ICMP)),
    )


def _get(columns, name: str):
    """Mapping-or-FlowTable column access."""
    try:
        return columns[name]
    except (KeyError, IndexError):
        return None


def iter_windows(
    flow_columns, window_seconds: float
) -> list[tuple[float, dict[str, np.ndarray]]]:
    """Slice flow columns into START_TIME windows.

    Attacks are bursts; aggregating a whole capture dilutes a ten-second
    scan into a victim's day of legitimate traffic.  Both calibration and
    detection therefore operate per window, mirroring the interval reports
    a Netflow monitor emits.  Returns ``(window_start, columns)`` pairs.
    """
    if window_seconds <= 0:
        raise ValueError("window_seconds must be positive")
    times = _get(flow_columns, "START_TIME")
    if times is None:
        raise ValueError("flow columns lack START_TIME; cannot window")
    times = np.asarray(times, dtype=np.float64)
    if times.size == 0:
        return []
    names = [
        n for n in
        ("SRC_IP", "DST_IP", "PROTOCOL", "SRC_PORT", "DEST_PORT",
         "START_TIME", "DURATION", "OUT_BYTES", "IN_BYTES", "OUT_PKTS",
         "IN_PKTS", "STATE", "SYN_COUNT", "ACK_COUNT")
        if _get(flow_columns, n) is not None
    ]
    t0 = float(times.min())
    idx = ((times - t0) // window_seconds).astype(np.int64)
    out: list[tuple[float, dict[str, np.ndarray]]] = []
    for w in np.unique(idx):
        mask = idx == w
        out.append(
            (
                t0 + float(w) * window_seconds,
                {n: np.asarray(_get(flow_columns, n))[mask] for n in names},
            )
        )
    return out
