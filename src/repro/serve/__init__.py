"""Concurrent query serving over generated property graphs.

The paper frames the generated datasets as the input to a benchmark whose
workload is "queries on nodes, edges, paths, and sub-graphs".  This
package makes a generated graph *servable* the way a deployed graph IDS
would serve it:

* :class:`GraphSnapshot` — an immutable, index-accelerated view of one
  :class:`~repro.graph.property_graph.PropertyGraph`: out- and in-CSR
  adjacency over the simple-graph projection, degree arrays, and sorted
  per-attribute indexes for the equality columns the Netflow filters pin
  (PROTOCOL, DEST_PORT, STATE) plus the host-ID vertex column — all
  built once at snapshot time.
* :class:`QueryServer` — executes batched :class:`Query` objects
  concurrently over a thread pool (the snapshot is read-only numpy, so
  workers share it without locks) with an LRU result cache keyed by a
  canonical query fingerprint and invalidated by snapshot epoch when the
  graph is regenerated.
* :class:`ServerStats` — per-family latency percentiles, cache hit
  ratio and queries/second, reported alongside the engine's
  SimulationMetrics.
"""

from repro.serve.snapshot import GraphSnapshot, SortedIndex
from repro.serve.server import (
    FamilyStats,
    Query,
    QueryServer,
    ServerStats,
    resolve_query_threads,
)

__all__ = [
    "GraphSnapshot",
    "SortedIndex",
    "Query",
    "QueryServer",
    "ServerStats",
    "FamilyStats",
    "resolve_query_threads",
]
