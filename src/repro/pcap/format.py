"""Binary layout of the classic libpcap capture file.

Reference: the de-facto libpcap file format — a 24-byte global header
followed by (16-byte record header, packet bytes) pairs.  Both byte orders
are supported on read (magic ``0xa1b2c3d4`` vs byte-swapped
``0xd4c3b2a1``); writes always use the native little-endian microsecond
variant, which every tool accepts.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

__all__ = [
    "MAGIC_USEC",
    "MAGIC_USEC_SWAPPED",
    "LINKTYPE_ETHERNET",
    "PcapGlobalHeader",
    "PcapRecordHeader",
]

MAGIC_USEC = 0xA1B2C3D4
MAGIC_USEC_SWAPPED = 0xD4C3B2A1
LINKTYPE_ETHERNET = 1

_GLOBAL_FMT = "IHHiIII"  # magic, major, minor, thiszone, sigfigs, snaplen, network
_RECORD_FMT = "IIII"  # ts_sec, ts_usec, incl_len, orig_len
GLOBAL_HEADER_LEN = struct.calcsize("<" + _GLOBAL_FMT)
RECORD_HEADER_LEN = struct.calcsize("<" + _RECORD_FMT)


@dataclass(frozen=True)
class PcapGlobalHeader:
    """The 24-byte file header."""

    snaplen: int = 65535
    network: int = LINKTYPE_ETHERNET
    version_major: int = 2
    version_minor: int = 4
    thiszone: int = 0
    sigfigs: int = 0

    def pack(self) -> bytes:
        return struct.pack(
            "<" + _GLOBAL_FMT,
            MAGIC_USEC,
            self.version_major,
            self.version_minor,
            self.thiszone,
            self.sigfigs,
            self.snaplen,
            self.network,
        )

    @classmethod
    def unpack(cls, data: bytes) -> tuple["PcapGlobalHeader", str]:
        """Parse the header; returns ``(header, endianness)`` where the
        endianness character ('<' or '>') must be used for record headers."""
        if len(data) < GLOBAL_HEADER_LEN:
            raise ValueError(
                f"truncated pcap global header: {len(data)} bytes"
            )
        (magic,) = struct.unpack("<I", data[:4])
        if magic == MAGIC_USEC:
            endian = "<"
        elif magic == MAGIC_USEC_SWAPPED:
            endian = ">"
        else:
            raise ValueError(f"not a pcap file (magic 0x{magic:08x})")
        fields = struct.unpack(endian + _GLOBAL_FMT, data[:GLOBAL_HEADER_LEN])
        _, major, minor, thiszone, sigfigs, snaplen, network = fields
        header = cls(
            snaplen=snaplen,
            network=network,
            version_major=major,
            version_minor=minor,
            thiszone=thiszone,
            sigfigs=sigfigs,
        )
        return header, endian


@dataclass(frozen=True)
class PcapRecordHeader:
    """The 16-byte per-packet record header."""

    ts_sec: int
    ts_usec: int
    incl_len: int
    orig_len: int

    @property
    def timestamp(self) -> float:
        return self.ts_sec + self.ts_usec * 1e-6

    @classmethod
    def from_timestamp(
        cls, timestamp: float, incl_len: int, orig_len: int | None = None
    ) -> "PcapRecordHeader":
        sec = int(timestamp)
        usec = int(round((timestamp - sec) * 1e6))
        if usec >= 1_000_000:
            sec += 1
            usec -= 1_000_000
        return cls(
            ts_sec=sec,
            ts_usec=usec,
            incl_len=incl_len,
            orig_len=orig_len if orig_len is not None else incl_len,
        )

    def pack(self) -> bytes:
        return struct.pack(
            "<" + _RECORD_FMT,
            self.ts_sec,
            self.ts_usec,
            self.incl_len,
            self.orig_len,
        )

    @classmethod
    def unpack(cls, data: bytes, endian: str = "<") -> "PcapRecordHeader":
        if len(data) < RECORD_HEADER_LEN:
            raise ValueError(
                f"truncated pcap record header: {len(data)} bytes"
            )
        ts_sec, ts_usec, incl_len, orig_len = struct.unpack(
            endian + _RECORD_FMT, data[:RECORD_HEADER_LEN]
        )
        return cls(ts_sec, ts_usec, incl_len, orig_len)
