"""Property-Graph Stochastic Kronecker (PGSK) — Fig. 3 of the paper.

Pipeline:

1. Collapse the seed multigraph to a simple graph ``Gp`` (lines 1-5, the
   hashed de-duplication; :meth:`PropertyGraph.distinct_edge_pairs`).
2. ``KronFit`` a 2x2 stochastic initiator to ``Gp`` (line 6).
3. Expand by stochastic recursive descent to the desired size (line 7),
   executed as Map tasks that independently place edges and a
   ``distinct()`` reduce that drops probabilistic collisions, exactly as
   the §III-B Spark implementation describes.
4. Re-expand to a multigraph by duplicating every edge with a sampled
   multiplicity (lines 9-12).
5. Decorate all edges with Netflow attributes (lines 13-18).

Because the expected edge count of a depth-k descent is ``(sum Theta)^k``
and the classic fit has ``sum Theta ~ 2``, PGSK's output size roughly
doubles per extra level — the paper's stated exponential growth rate, and
the reason PGSK can also produce graphs *smaller* than the seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.generator import GenerationResult, SeedAnalysis
from repro.core.pgpba import _decorate
from repro.engine.context import ClusterContext
from repro.engine.storage import StorageLevel
from repro.engine.stream import iter_repeat_chunks
from repro.graph.property_graph import PropertyGraph
from repro.kronecker.expand import descend_batch_chunks
from repro.kronecker.initiator import InitiatorMatrix
from repro.kronecker.kronfit import kronfit

__all__ = ["PGSK"]


@dataclass
class PGSK:
    """Configured PGSK generator.

    Parameters
    ----------
    duplication:
        Distribution used for the multigraph re-expansion (Fig. 3 line 10):
        ``"multiplicity"`` samples the seed's parallel-edge multiplicity
        (the semantically faithful choice); ``"out_degree"`` samples the
        seed out-degree distribution, matching the figure's literal label.
        DESIGN.md lists this as an ablation.
    deduplicate:
        Run the ``distinct()`` collision-removal loop (the paper's
        behaviour).  Off, collisions stay as parallel edges.
    kronfit_iterations, kronfit_swaps:
        Effort knobs for the fitting stage.
    storage_level:
        Where the persisted loop-carried edge sets live
        (:class:`~repro.engine.StorageLevel` or its string name); the
        default ``memory_and_disk`` spills under the context's memory
        budget, ``disk_only`` keeps them file-resident.
    """

    duplication: str = "multiplicity"
    conditional_properties: bool = True
    generate_properties: bool = True
    deduplicate: bool = True
    kronfit_iterations: int = 30
    kronfit_swaps: int = 100
    max_rounds: int = 64
    seed: int = 0
    storage_level: "StorageLevel | str" = StorageLevel.MEMORY_AND_DISK

    def __post_init__(self) -> None:
        if self.duplication not in ("multiplicity", "out_degree"):
            raise ValueError(
                "duplication must be 'multiplicity' or 'out_degree'"
            )
        self.storage_level = StorageLevel.coerce(self.storage_level)

    # ------------------------------------------------------------------
    def fit_initiator(self, seed_graph: PropertyGraph) -> InitiatorMatrix:
        """Lines 1-6: simple-graph projection + KronFit."""
        s, d = seed_graph.distinct_edge_pairs()
        result = kronfit(
            s,
            d,
            seed_graph.n_vertices,
            n_iterations=self.kronfit_iterations,
            swaps_per_iteration=self.kronfit_swaps,
            rng=np.random.default_rng(self.seed),
        )
        return result.initiator

    def generate(
        self,
        seed_graph: PropertyGraph,
        analysis: SeedAnalysis,
        desired_size: int,
        *,
        context: ClusterContext | None = None,
        initiator: InitiatorMatrix | None = None,
    ) -> GenerationResult:
        """Produce a synthetic property graph of ~``desired_size`` edges.

        ``desired_size`` counts *final multigraph* edges; the distinct-edge
        target is scaled down by the mean duplication factor.  Pass a
        pre-fitted ``initiator`` to skip KronFit (the benchmarks do, so the
        timed region matches the paper's generation-only measurements).
        """
        if desired_size < 1:
            raise ValueError("desired_size must be >= 1")
        ctx = context or ClusterContext(n_nodes=1)

        if initiator is None:
            initiator = self.fit_initiator(seed_graph)

        dup_dist = (
            analysis.multiplicity
            if self.duplication == "multiplicity"
            else analysis.out_degree
        )
        mean_dup = max(dup_dist.mean(), 1.0)
        distinct_target = max(1, int(round(desired_size / mean_dup)))
        k = initiator.levels_for_edges(distinct_target)
        n_vertices = initiator.n_vertices(k)

        start_clock = ctx.metrics.simulated_seconds

        # --- expansion: Map tasks descend independently, distinct() drops
        # collisions, loop until the target number of distinct edges.
        edges = None
        have = 0
        rounds = 0
        remaining = distinct_target
        while have < distinct_target and rounds < self.max_rounds:
            rounds += 1
            batch_size = max(16, int(np.ceil(remaining * 1.05)))
            rng_tag = (self.seed, k, rounds)

            def _descend(count, pidx, _tag=rng_tag):
                # Chunked descent is bit-identical to one whole-batch
                # draw (see descend_batch_chunks); streaming it lets a
                # budgeted run flush each window through the spill codec
                # instead of materialising the partition's edge arrays.
                rng = np.random.default_rng((*_tag, pidx))
                yield from descend_batch_chunks(initiator, k, count, rng)

            batch = ctx.generate(
                batch_size, _descend, stage="kron:descend", stream=True
            )
            merged = batch if edges is None else edges.union(batch)
            if self.deduplicate:
                merged = merged.distinct(
                    key_columns=(0, 1), stage="kron:distinct"
                )
            if edges is not None:
                edges.unpersist()
            # Pin the loop-carried edge set: the next round's union (and
            # the duplication pass after the loop) read the cached
            # partitions instead of replaying the descent lineage, and
            # the driver-side memory meter sees what stays resident.
            edges = merged.persist(self.storage_level)
            have = edges.count()
            remaining = distinct_target - have
        if edges is None:
            raise RuntimeError("PGSK expansion produced no edges")
        if self.deduplicate and have > distinct_target:
            surplus_rng = np.random.default_rng((self.seed, 13))
            s, d = edges.collect()[:2]
            keep = surplus_rng.choice(
                s.size, size=distinct_target, replace=False
            )
            keep.sort()
            edges.unpersist()
            edges = ctx.parallelize([s[keep], d[keep]])

        # --- duplication: lines 9-12, one partitioned pass.
        dup_seed = (self.seed, 17)

        def _duplicate(cols, pidx):
            # Multiplicities are drawn whole (same RNG stream as the
            # materialised version); only the np.repeat expansion is
            # chunked, so output is bit-identical while peak memory
            # stays bounded by the emit-chunk size.
            s, d = cols
            rng = np.random.default_rng((*dup_seed, pidx))
            n = dup_dist.sample(s.size, rng).astype(np.int64)
            n = np.maximum(n, 1)
            yield from iter_repeat_chunks((s, d), n)

        distinct_edges = edges
        # Persist the multigraph: both the property-decoration pass and
        # the final collect read it, and without the pin the second
        # reader would re-run the duplication stage.  Duplication
        # multiplies every distinct edge by ~mean_dup parallel copies;
        # hint that expansion so the coalescer weighs these chains by
        # their output, not the smaller distinct-edge anchor.
        dup_hint = (
            distinct_edges.partition_bytes() * mean_dup
        ).astype(np.int64)
        edges = distinct_edges.map_partitions(
            _duplicate, stage="kron:duplicate", bytes_hint=dup_hint,
            stream=True,
        ).persist(self.storage_level)
        # Force now so the duplication stage is charged to the structure
        # clock (not the property clock) exactly as on the eager path.
        edges.count()
        distinct_edges.unpersist()

        structure_clock = ctx.metrics.simulated_seconds

        prop_cols: dict[str, np.ndarray] = {}
        if self.generate_properties:
            prop_cols = _decorate(
                ctx,
                edges,
                analysis,
                conditional=self.conditional_properties,
                seed=self.seed,
            )
        end_clock = ctx.metrics.simulated_seconds

        src, dst = edges.collect()[:2]
        edges.unpersist()
        graph = PropertyGraph(
            n_vertices=n_vertices,
            src=src,
            dst=dst,
            edge_properties=prop_cols,
        )
        return GenerationResult(
            graph=graph,
            algorithm="PGSK",
            structure_seconds=structure_clock - start_clock,
            property_seconds=end_clock - structure_clock,
            peak_node_memory_bytes=ctx.metrics.peak_node_memory_bytes,
            n_nodes=ctx.n_nodes,
            iterations=k,
            extra={
                "k": k,
                "rounds": rounds,
                "initiator": initiator.theta.tolist(),
                "distinct_target": distinct_target,
                "executor": ctx.executor.name,
                "local_workers": ctx.executor.workers,
            },
        )
