#!/usr/bin/env python3
"""Online (streaming) intrusion detection — the paper's §VI outlook.

Flows stream into the detector one at a time, as a live Netflow exporter
would deliver them; the sliding-window detector raises alarms while the
attack is still in flight, reporting the paper's headline metric: the
time-to-detection.

Run:  python examples/streaming_detection.py
"""

from repro.core.pipeline import _packets_from
from repro.detect import DetectionThresholds, OnlineDetector
from repro.netflow import FlowTable, assemble_flows
from repro.trace import attacks, synthesize_seed_packets
from repro.trace.hosts import ipv4

WINDOW = 5.0


def main() -> None:
    print("synthesizing clean traffic + two timed attacks ...")
    background = synthesize_seed_packets(
        duration=30.0, session_rate=40, seed=17
    )
    flood = attacks.syn_flood(
        attacker_ip=ipv4(203, 0, 113, 5),
        victim_ip=ipv4(10, 2, 0, 2),
        start_time=1_000_008.0,
        duration=4.0,
    )
    scan = attacks.host_scan(
        attacker_ip=ipv4(203, 0, 113, 6),
        victim_ip=ipv4(10, 2, 0, 3),
        start_time=1_000_018.0,
        duration=6.0,
    )
    frames = sorted(
        background + flood.frames + scan.frames, key=lambda f: f[0]
    )
    records = list(assemble_flows(_packets_from(frames)))
    records.sort(key=lambda r: r.start_time)
    print(f"  {len(records)} flows to stream")

    print("calibrating thresholds on the clean prefix ...")
    clean = FlowTable.from_records(
        list(assemble_flows(_packets_from(background)))
    )
    thresholds = DetectionThresholds.fit_normal(
        {k: clean[k] for k in FlowTable.COLUMN_NAMES},
        window_seconds=WINDOW,
    )

    detector = OnlineDetector(
        thresholds, window_seconds=WINDOW, cooldown_seconds=30.0
    )
    t_start = records[0].start_time
    print("\nstreaming ... (stream-time alarms)")
    attack_starts = {
        "syn": flood.start_time,
        "scan": scan.start_time,
    }
    for alert in detector.run(records):
        det = alert.detection
        rel = alert.time - t_start
        latency = ""
        if "syn" in det.kind:
            latency = (
                f"  [{alert.time - attack_starts['syn']:.1f}s after "
                "flood onset]"
            )
        elif det.kind == "host_scan":
            latency = (
                f"  [{alert.time - attack_starts['scan']:.1f}s after "
                "scan onset]"
            )
        print(
            f"  t=+{rel:5.1f}s  {det.kind:<14} ({det.direction}) "
            f"ip={det.ip}{latency}"
        )
    print(f"\nprocessed {detector.flows_processed} flows")


if __name__ == "__main__":
    main()
