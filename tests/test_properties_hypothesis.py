"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.graph import PropertyGraph
from repro.kronecker import InitiatorMatrix
from repro.kronecker.expand import descend_batch
from repro.pcap.format import PcapRecordHeader
from repro.pcap.packet import (
    PROTO_ICMP,
    PROTO_TCP,
    PROTO_UDP,
    TcpFlags,
    build_ethernet_ipv4_packet,
    parse_ethernet_ipv4_packet,
)
from repro.stats import EmpiricalDistribution
from repro.stats.histogram import (
    aligned_euclidean_distance,
    kolmogorov_smirnov_distance,
)

# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------

int_samples = hnp.arrays(
    dtype=np.int64,
    shape=st.integers(1, 200),
    elements=st.integers(-1000, 1000),
)

positive_samples = hnp.arrays(
    dtype=np.int64,
    shape=st.integers(1, 200),
    elements=st.integers(1, 500),
)


@st.composite
def edge_lists(draw):
    n_vertices = draw(st.integers(1, 50))
    n_edges = draw(st.integers(0, 200))
    src = draw(
        hnp.arrays(np.int64, n_edges, elements=st.integers(0, n_vertices - 1))
    )
    dst = draw(
        hnp.arrays(np.int64, n_edges, elements=st.integers(0, n_vertices - 1))
    )
    return n_vertices, src, dst


# ---------------------------------------------------------------------------
# EmpiricalDistribution invariants
# ---------------------------------------------------------------------------


class TestEmpiricalInvariants:
    @given(int_samples)
    def test_probabilities_sum_to_one(self, samples):
        d = EmpiricalDistribution.from_samples(samples)
        np.testing.assert_allclose(d.probabilities.sum(), 1.0, rtol=1e-9)

    @given(int_samples)
    def test_support_sorted_and_unique(self, samples):
        d = EmpiricalDistribution.from_samples(samples)
        assert np.all(np.diff(d.values) > 0)

    @given(int_samples, st.integers(0, 2**32 - 1))
    def test_samples_live_on_support(self, samples, seed):
        d = EmpiricalDistribution.from_samples(samples)
        out = d.sample(64, np.random.default_rng(seed))
        assert np.isin(out, d.values).all()

    @given(int_samples)
    def test_cdf_monotone(self, samples):
        d = EmpiricalDistribution.from_samples(samples)
        grid = np.linspace(samples.min() - 1, samples.max() + 1, 50)
        c = d.cdf(grid)
        assert np.all(np.diff(c) >= -1e-12)
        assert 0.0 <= c[0] and c[-1] <= 1.0 + 1e-12

    @given(int_samples, st.floats(0.0, 1.0))
    def test_quantile_cdf_inverse(self, samples, q):
        d = EmpiricalDistribution.from_samples(samples)
        v = d.quantile([q])[0]
        assert d.cdf([v])[0] >= q - 1e-12

    @given(int_samples)
    def test_mean_within_range(self, samples):
        d = EmpiricalDistribution.from_samples(samples)
        assert samples.min() <= d.mean() <= samples.max()
        assert d.var() >= -1e-9


# ---------------------------------------------------------------------------
# distance metrics
# ---------------------------------------------------------------------------


class TestMetricInvariants:
    @given(positive_samples, positive_samples)
    def test_euclidean_symmetric_nonnegative(self, a, b):
        d_ab = aligned_euclidean_distance(a, b)
        d_ba = aligned_euclidean_distance(b, a)
        assert d_ab >= 0
        np.testing.assert_allclose(d_ab, d_ba, rtol=1e-9)

    @given(positive_samples)
    def test_euclidean_identity(self, a):
        assert aligned_euclidean_distance(a, a.copy()) == 0.0

    @given(positive_samples, positive_samples)
    def test_ks_bounded(self, a, b):
        d = kolmogorov_smirnov_distance(a, b)
        assert 0.0 <= d <= 1.0


# ---------------------------------------------------------------------------
# PropertyGraph invariants
# ---------------------------------------------------------------------------


class TestGraphInvariants:
    @given(edge_lists())
    def test_degree_sums_equal_edge_count(self, data):
        n, src, dst = data
        g = PropertyGraph(n, src, dst)
        assert g.in_degrees().sum() == g.n_edges
        assert g.out_degrees().sum() == g.n_edges

    @given(edge_lists())
    def test_simple_projection_bounds(self, data):
        n, src, dst = data
        g = PropertyGraph(n, src, dst)
        s, d = g.distinct_edge_pairs()
        assert s.size <= g.n_edges
        mult = g.edge_multiplicities()
        assert mult.sum() == g.n_edges
        assert mult.size == s.size

    @given(edge_lists())
    def test_multiplicity_reconstruction(self, data):
        n, src, dst = data
        g = PropertyGraph(n, src, dst)
        s, d = g.distinct_edge_pairs()
        mult = g.edge_multiplicities()
        rebuilt = PropertyGraph(n, np.repeat(s, mult), np.repeat(d, mult))
        assert np.array_equal(
            np.sort(rebuilt.src * n + rebuilt.dst),
            np.sort(g.src * n + g.dst),
        )

    @given(edge_lists())
    def test_reverse_swaps_degrees(self, data):
        n, src, dst = data
        g = PropertyGraph(n, src, dst)
        r = g.reversed()
        assert np.array_equal(g.in_degrees(), r.out_degrees())

    @given(edge_lists())
    @settings(max_examples=25)
    def test_npz_roundtrip(self, data):
        import io

        n, src, dst = data
        g = PropertyGraph(n, src, dst)
        buf = io.BytesIO()
        g.save_npz(buf)
        buf.seek(0)
        back = PropertyGraph.load_npz(buf)
        assert back.n_vertices == n
        assert np.array_equal(back.src, src)


# ---------------------------------------------------------------------------
# packet codec roundtrip
# ---------------------------------------------------------------------------


class TestPacketInvariants:
    @given(
        st.integers(0, 2**32 - 1),
        st.integers(0, 2**32 - 1),
        st.sampled_from([PROTO_TCP, PROTO_UDP, PROTO_ICMP]),
        st.integers(0, 65535),
        st.integers(0, 65535),
        st.integers(0, 1400),
        st.integers(0, 63),
    )
    @settings(max_examples=200)
    def test_build_parse_roundtrip(
        self, src_ip, dst_ip, proto, sport, dport, payload, flag_bits
    ):
        frame = build_ethernet_ipv4_packet(
            src_ip=src_ip, dst_ip=dst_ip, protocol=proto,
            src_port=sport, dst_port=dport,
            tcp_flags=TcpFlags(flag_bits), payload_len=payload,
        )
        p = parse_ethernet_ipv4_packet(frame)
        assert p is not None
        assert p.src_ip == src_ip
        assert p.dst_ip == dst_ip
        assert p.transport == proto
        assert p.src_port == sport
        assert p.dst_port == dport
        assert p.payload_len == payload
        if proto == PROTO_TCP:
            assert p.tcp_flags == TcpFlags(flag_bits)

    @given(st.floats(0, 2**31, allow_nan=False), st.integers(0, 65535))
    def test_record_header_timestamp(self, ts, length):
        r = PcapRecordHeader.from_timestamp(ts, incl_len=length)
        assert abs(r.timestamp - ts) < 1e-5
        assert 0 <= r.ts_usec < 1_000_000


# ---------------------------------------------------------------------------
# Kronecker descent invariants
# ---------------------------------------------------------------------------


class TestKroneckerInvariants:
    @given(
        st.integers(1, 10),
        st.integers(1, 500),
        st.integers(0, 2**32 - 1),
    )
    def test_descent_in_range(self, k, n_edges, seed):
        init = InitiatorMatrix.classic()
        src, dst = descend_batch(
            init, k, n_edges, np.random.default_rng(seed)
        )
        assert src.size == dst.size == n_edges
        limit = 2**k
        assert src.min(initial=0) >= 0 and src.max(initial=0) < limit
        assert dst.min(initial=0) >= 0 and dst.max(initial=0) < limit

    @given(
        hnp.arrays(
            np.float64, (2, 2), elements=st.floats(0.05, 1.0)
        ),
        st.integers(1, 8),
    )
    def test_expected_edges_consistent(self, theta, k):
        init = InitiatorMatrix(theta)
        np.testing.assert_allclose(
            init.expected_edges(k), theta.sum() ** k, rtol=1e-9
        )
