"""Shared fixtures: expensive artifacts built once per session, plus the
loopback worker daemons that back the ``cluster`` executor in every
backend-parametrized test."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core.pipeline import build_seed
from repro.trace.synthesizer import synthesize_seed_packets


@pytest.fixture(scope="session")
def cluster_daemons():
    """Two loopback worker daemons on ephemeral ports; ``REPRO_WORKERS``
    points at them for the rest of the session so
    ``ClusterContext(executor="cluster")`` works without explicit
    addresses.  Tests that kill daemons must launch their own."""
    from repro.engine.cluster import (
        launch_worker,
        shutdown_worker,
        sockets_available,
    )

    if not sockets_available():
        pytest.skip("loopback sockets unavailable in this environment")
    procs, addrs = [], []
    try:
        for _ in range(2):
            proc, addr = launch_worker()
            procs.append(proc)
            addrs.append(addr)
    except Exception as exc:  # pragma: no cover - environment-dependent
        for proc in procs:
            proc.kill()
        pytest.skip(f"cannot launch cluster worker daemons: {exc}")
    previous = os.environ.get("REPRO_WORKERS")
    os.environ["REPRO_WORKERS"] = ",".join(addrs)
    yield tuple(addrs)
    if previous is None:
        os.environ.pop("REPRO_WORKERS", None)
    else:
        os.environ["REPRO_WORKERS"] = previous
    for addr in addrs:
        shutdown_worker(addr)
    for proc in procs:
        try:
            proc.wait(timeout=10)
        except Exception:  # pragma: no cover - stuck daemon
            proc.kill()


@pytest.fixture(autouse=True)
def _cluster_backend_guard(request):
    """Give every test parametrized with the ``cluster`` backend live
    loopback daemons (or a clean skip when sockets are unavailable)."""
    callspec = getattr(request.node, "callspec", None)
    if callspec is None:
        return
    if any(
        isinstance(value, str) and value == "cluster"
        for value in callspec.params.values()
    ):
        request.getfixturevalue("cluster_daemons")


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def seed_packets():
    """A small deterministic synthetic capture (shared, read-only)."""
    return synthesize_seed_packets(
        duration=10.0, session_rate=40.0, n_clients=80, n_servers=20, seed=7
    )


@pytest.fixture(scope="session")
def seed_bundle(seed_packets):
    """Seed flow table + property graph + analysis (Fig. 1 output)."""
    return build_seed(seed_packets)


@pytest.fixture(scope="session")
def seed_graph(seed_bundle):
    return seed_bundle.graph


@pytest.fixture(scope="session")
def seed_analysis(seed_bundle):
    return seed_bundle.analysis
