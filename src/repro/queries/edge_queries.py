"""Edge-level queries: attribute-filtered flow selection.

An :class:`EdgeFilter` is a conjunction of per-attribute predicates over
the Netflow edge columns — the property-graph equivalent of a Netflow
query like "all TCP flows to port 445 in state S0 moving fewer than 100
bytes" (a scan signature).  Evaluation is one boolean mask pass.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graph.property_graph import PropertyGraph

__all__ = ["EdgeFilter", "filter_edges"]


@dataclass(frozen=True)
class EdgeFilter:
    """Conjunctive predicate over edge attributes.

    ``equals`` pins attributes to exact values; ``ranges`` bounds them with
    inclusive ``(low, high)`` intervals (either side may be None).
    """

    equals: dict = field(default_factory=dict)
    ranges: dict = field(default_factory=dict)

    def mask(self, graph: PropertyGraph) -> np.ndarray:
        """Boolean edge mask; raises on unknown attributes."""
        out = np.ones(graph.n_edges, dtype=bool)
        for name, value in self.equals.items():
            col = graph.edge_properties.get(name)
            if col is None:
                raise KeyError(f"edge attribute {name!r} not present")
            out &= np.asarray(col) == value
        for name, (low, high) in self.ranges.items():
            col = graph.edge_properties.get(name)
            if col is None:
                raise KeyError(f"edge attribute {name!r} not present")
            col = np.asarray(col)
            if low is not None:
                out &= col >= low
            if high is not None:
                out &= col <= high
        return out


def filter_edges(graph: PropertyGraph, flt: EdgeFilter) -> PropertyGraph:
    """Sub-multigraph of the edges matching ``flt`` (vertices preserved)."""
    return graph.select_edges(flt.mask(graph))
