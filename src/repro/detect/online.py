"""Online (streaming) intrusion detection — the paper's §VI future work.

:class:`OnlineDetector` consumes Netflow records as they close, maintains
a sliding time window of recent flows, and re-runs the Fig. 4 flow-chart
detector every ``hop_seconds`` of stream time.  Alarms for the same
(kind, ip, direction) are suppressed for ``cooldown_seconds`` so a
sustained attack raises one alert, not one per hop.

The window is a ring of column buffers: appends are O(1) amortised and
each evaluation materialises the live slice as plain NumPy columns for the
batch detector — streaming reuses the exact same detection logic that the
offline pipeline runs.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterable, Iterator

import numpy as np

from repro.detect.detector import Detection, NetflowAnomalyDetector
from repro.detect.thresholds import DetectionThresholds
from repro.netflow.record import FlowTable, NetflowRecord

__all__ = ["OnlineDetector", "TimedDetection"]


@dataclass(frozen=True)
class TimedDetection:
    """A detection plus the stream time at which it fired."""

    time: float
    detection: Detection


class OnlineDetector:
    """Sliding-window streaming detector.

    Parameters
    ----------
    thresholds:
        Table I parameters (calibrate offline on attack-free traffic with
        the same ``window_seconds``).
    window_seconds:
        Length of the sliding window the patterns aggregate over.
    hop_seconds:
        How often (in stream time) the window is re-evaluated; defaults to
        half the window.
    cooldown_seconds:
        Re-alert suppression horizon per (kind, ip, direction).
    """

    def __init__(
        self,
        thresholds: DetectionThresholds | None = None,
        *,
        window_seconds: float = 5.0,
        hop_seconds: float | None = None,
        cooldown_seconds: float = 30.0,
    ) -> None:
        if window_seconds <= 0:
            raise ValueError("window_seconds must be positive")
        hop = hop_seconds if hop_seconds is not None else window_seconds / 2
        if hop <= 0:
            raise ValueError("hop_seconds must be positive")
        if cooldown_seconds < 0:
            raise ValueError("cooldown_seconds must be non-negative")
        self._detector = NetflowAnomalyDetector(thresholds)
        self.window_seconds = window_seconds
        self.hop_seconds = hop
        self.cooldown_seconds = cooldown_seconds
        self._window: deque[NetflowRecord] = deque()
        self._next_eval: float | None = None
        self._last_alert: dict[tuple, float] = {}
        self.flows_processed = 0

    # ------------------------------------------------------------------
    @property
    def window_size(self) -> int:
        return len(self._window)

    def process(self, record: NetflowRecord) -> list[TimedDetection]:
        """Feed one flow (records must arrive in start_time order).

        Returns the alarms newly raised by any window evaluations that the
        stream time advanced past.
        """
        now = record.start_time
        self.flows_processed += 1
        if self._next_eval is None:
            self._next_eval = now + self.hop_seconds
        out: list[TimedDetection] = []
        while self._next_eval is not None and now >= self._next_eval:
            out.extend(self._evaluate(self._next_eval))
            self._next_eval += self.hop_seconds
        self._window.append(record)
        return out

    def flush(self) -> list[TimedDetection]:
        """Drain: run every pending evaluation plus a final tail pass.

        The result is sorted by detection time and de-duplicated — both
        within the flush and against every ``(kind, ip, direction)``
        already alerted during the stream — so a drain never
        double-reports an attack the hop evaluations caught, even with
        ``cooldown_seconds=0``.  Calling :meth:`flush` twice without new
        records is a no-op the second time.
        """
        if not self._window:
            return []
        end = max(r.start_time for r in self._window) + 1e-9
        already = set(self._last_alert)
        out: list[TimedDetection] = []
        while self._next_eval is not None and self._next_eval < end:
            out.extend(self._evaluate(self._next_eval))
            self._next_eval += self.hop_seconds
        out.extend(self._evaluate(end))
        out.sort(key=lambda a: a.time)  # stable: keeps eval order on ties
        seen: set[tuple] = set()
        deduped: list[TimedDetection] = []
        for alert in out:
            det = alert.detection
            key = (det.kind, det.ip, det.direction)
            if key in already or key in seen:
                continue
            seen.add(key)
            deduped.append(alert)
        return deduped

    def run(
        self, records: Iterable[NetflowRecord]
    ) -> Iterator[TimedDetection]:
        """Convenience driver over a record iterable."""
        for record in records:
            yield from self.process(record)
        yield from self.flush()

    # ------------------------------------------------------------------
    def _evaluate(self, now: float) -> list[TimedDetection]:
        horizon = now - self.window_seconds
        while self._window and self._window[0].start_time < horizon:
            self._window.popleft()
        if not self._window:
            return []
        table = FlowTable.from_records(list(self._window))
        cols = {k: table[k] for k in FlowTable.COLUMN_NAMES}
        out: list[TimedDetection] = []
        for det in self._detector.detect(cols):
            key = (det.kind, det.ip, det.direction)
            last = self._last_alert.get(key)
            if last is not None and now - last < self.cooldown_seconds:
                continue
            self._last_alert[key] = now
            out.append(TimedDetection(time=now, detection=det))
        return out
