"""Fig. 5 — comparison of the degree distributions.

Paper: the ~2 M-edge seed vs PGPBA (1.15 B edges) and PGSK (1.34 B edges);
all three normalized degree distributions share the same shape, with the
synthetic curves shifted down-left by the ~3-orders-of-magnitude size gap
and PGSK showing extra spikes from its replicated Kronecker structure.

Here: the ~2 k-edge seed vs ~100x-larger synthetic graphs.  The bench emits
the log-binned normalized degree distributions of all three graphs and
checks the shape agreement (KS distance of size-normalised degrees).
"""

from __future__ import annotations

import numpy as np

from conftest import save_series
from repro.bench import default_cluster
from repro.core import PGPBA, PGSK
from repro.stats.histogram import (
    kolmogorov_smirnov_distance,
    log_binned_histogram,
)

SIZE_FACTOR = 100


def _normalized_degrees(graph) -> np.ndarray:
    deg = graph.degrees().astype(np.float64)
    return deg / deg.sum()


def run_fig5(seed_graph, seed_analysis):
    target = SIZE_FACTOR * seed_graph.n_edges
    pgpba = PGPBA(fraction=0.1, seed=1).generate(
        seed_graph, seed_analysis, target, context=default_cluster()
    )
    pgsk_gen = PGSK(seed=1, kronfit_iterations=10, kronfit_swaps=40)
    pgsk = pgsk_gen.generate(
        seed_graph, seed_analysis, target, context=default_cluster()
    )

    curves = {}
    all_nd = {
        "seed": _normalized_degrees(seed_graph),
        "PGPBA": _normalized_degrees(pgpba.graph),
        "PGSK": _normalized_degrees(pgsk.graph),
    }
    lo = min(v[v > 0].min() for v in all_nd.values())
    hi = max(v.max() for v in all_nd.values())
    for name, nd in all_nd.items():
        centers, dens = log_binned_histogram(
            nd, n_bins=24, vmin=lo, vmax=hi
        )
        curves[name] = (centers, dens)

    rows = []
    centers = curves["seed"][0]
    for j, c in enumerate(centers):
        rows.append(
            [
                float(c),
                float(curves["seed"][1][j]),
                float(curves["PGPBA"][1][j]),
                float(curves["PGSK"][1][j]),
            ]
        )
    shape = {
        name: kolmogorov_smirnov_distance(
            all_nd["seed"] * seed_graph.n_vertices,
            nd * (pgpba.graph.n_vertices if name == "PGPBA"
                  else pgsk.graph.n_vertices),
        )
        for name, nd in all_nd.items()
        if name != "seed"
    }
    return rows, shape, pgpba, pgsk


def test_fig5_degree_distribution(benchmark, seed_graph, seed_analysis):
    rows, shape, pgpba, pgsk = run_fig5(seed_graph, seed_analysis)
    save_series(
        "fig5",
        "Fig. 5: normalized degree distributions (log-binned density)",
        ["norm_degree_bin", "seed", "PGPBA", "PGSK"],
        rows,
    )
    save_series(
        "fig5_shape",
        "Fig. 5 shape check: KS distance of size-normalised degrees vs seed",
        ["generator", "ks_vs_seed", "edges"],
        [
            ["PGPBA", shape["PGPBA"], pgpba.graph.n_edges],
            ["PGSK", shape["PGSK"], pgsk.graph.n_edges],
        ],
    )
    # Shape agreement: both synthetic distributions track the seed.
    assert shape["PGPBA"] < 0.75
    assert shape["PGSK"] < 0.75

    # Timed representative operation: one PGPBA growth at 10x.
    def op():
        return PGPBA(fraction=0.5, seed=2).generate(
            seed_graph, seed_analysis, 10 * seed_graph.n_edges,
            context=default_cluster(),
        )

    benchmark.pedantic(op, rounds=1, iterations=1)
