"""Query-serving benchmark: indexed snapshots, result cache, QPS at scale.

The complete IDS benchmark measures not just dataset generation but the
serving side: how fast the four query families answer over a generated
dataset.  This bench generates PGPBA datasets at 10^6 and 10^7 edges and
tracks, via the ``query_serving`` section of
``benchmarks/results/BENCH_engine.json``:

* the mixed :class:`~repro.queries.QueryWorkload` against an inline
  re-implementation of the **pre-snapshot baseline** (per-query scipy CSR
  rebuilds for the path family, full-column boolean scans for the edge
  family, endpoint-column scans for neighbourhoods) versus the same
  workload through the prebuilt :class:`~repro.serve.GraphSnapshot`,
  with the steady-state speedup and the snapshot build cost;
* :class:`~repro.serve.QueryServer` batch QPS and per-family p50/p99
  latency at 1, 2 and 4 worker threads, cold cache versus warm cache,
  with a digest proving every thread count and cache state returned the
  byte-identical results (also identical to the baseline);
* the indexed-versus-scan edge-filter row: the workload's Netflow
  filters answered via the sorted attribute indexes versus the
  full-column boolean scan.

``REPRO_BENCH_SMOKE=1`` shrinks to one CI-sized run (~30 s);
``REPRO_BENCH_QUERY_EDGES`` overrides the size list directly, e.g.
``REPRO_BENCH_QUERY_EDGES=1000000,10000000``.

Run directly (``PYTHONPATH=src python benchmarks/bench_query_serving.py``)
or via pytest like the figure benches.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from pathlib import Path

import numpy as np

from repro.bench import cached_seed, default_cluster, format_table, measure_wall
from repro.core import PGPBA
from repro.graph import PropertyGraph
from repro.queries import QueryWorkload
from repro.queries.path_queries import _expand
from repro.queries.subgraph_queries import PairAggregate
from repro.serve import QueryServer

RESULTS_DIR = Path(__file__).parent / "results"
JSON_PATH = RESULTS_DIR / "BENCH_engine.json"

WORKLOAD_QUERIES = 20
WORKLOAD_HOPS = 2
WORKLOAD_SEED = 43
CACHE_SIZE = 4096


def _sizes() -> list[int]:
    override = os.environ.get("REPRO_BENCH_QUERY_EDGES")
    if override:
        return [int(s) for s in override.split(",") if s.strip()]
    if os.environ.get("REPRO_BENCH_SMOKE"):
        return [100_000]
    return [1_000_000, 10_000_000]


def _thread_matrix() -> tuple[int, ...]:
    if os.environ.get("REPRO_BENCH_SMOKE"):
        return (1, 2)
    return (1, 2, 4)


# ----------------------------------------------------------------------
# result digests: byte-identity across thread counts and cache states
# ----------------------------------------------------------------------
def _update(h, value) -> None:
    if isinstance(value, np.ndarray):
        h.update(str(value.dtype).encode())
        h.update(np.ascontiguousarray(value).tobytes())
    elif isinstance(value, PropertyGraph):
        _update(h, value.src)
        _update(h, value.dst)
        for name in sorted(value.edge_properties):
            h.update(name.encode())
            _update(h, np.asarray(value.edge_properties[name]))
    elif isinstance(value, PairAggregate):
        for f in ("src", "dst", "n_flows", "total_bytes", "total_packets"):
            _update(h, getattr(value, f))
    else:
        h.update(repr(value).encode())


def result_digest(results) -> str:
    """Order-sensitive digest over a batch's results."""
    h = hashlib.sha256()
    for r in results:
        _update(h, r)
    return h.hexdigest()[:16]


# ----------------------------------------------------------------------
# pre-snapshot baseline (the implementations this PR replaced)
# ----------------------------------------------------------------------
def run_baseline_workload(graph, workload: QueryWorkload):
    """The workload mix as served before the snapshot layer existed.

    Node neighbourhoods scan the endpoint columns, degree ranking
    recomputes ``bincount`` degrees, edge filters evaluate full-column
    boolean masks, every path query rebuilds the scipy CSR adjacency
    from scratch, and the motifs re-project the simple graph per call.
    Results are collected in :meth:`QueryWorkload.build_queries` order so
    the digest is comparable with the server's.
    """
    targets, ports, has_props = workload._draw(graph)
    results: list = []
    timings: dict[str, float] = {}

    t0 = time.perf_counter()
    for v in targets:
        out = np.unique(graph.dst[graph.src == int(v)])
        inc = np.unique(graph.src[graph.dst == int(v)])
        results.append(np.unique(np.concatenate([out, inc])))
    deg = graph.degrees()
    k = min(10, graph.n_vertices)
    top = np.argpartition(deg, -k)[-k:]
    results.append(top[np.argsort(-deg[top], kind="stable")])
    timings["node"] = time.perf_counter() - t0

    t0 = time.perf_counter()
    if has_props:
        for port in ports:
            flt = workload._edge_filter(int(port))
            results.append(graph.select_edges(flt.mask(graph)))
    timings["edge"] = time.perf_counter() - t0

    t0 = time.perf_counter()
    for v in targets:
        adj = graph.simple_graph().to_sparse_adjacency(weighted=False)
        seen = np.zeros(graph.n_vertices, dtype=bool)
        seen[int(v)] = True
        frontier = np.asarray([int(v)], dtype=np.int64)
        for _ in range(workload.k_hops):
            nxt = _expand(adj.indptr, adj.indices, frontier)
            nxt = np.unique(nxt[~seen[nxt]])
            if nxt.size == 0:
                break
            seen[nxt] = True
            frontier = nxt
        results.append(np.flatnonzero(seen))
    timings["path"] = time.perf_counter() - t0

    t0 = time.perf_counter()
    s, _ = graph.distinct_edge_pairs()
    results.append(
        np.flatnonzero(np.bincount(s, minlength=graph.n_vertices) >= 10)
    )
    _, d = graph.distinct_edge_pairs()
    results.append(
        np.flatnonzero(np.bincount(d, minlength=graph.n_vertices) >= 10)
    )
    if has_props:
        key = graph.src * np.int64(graph.n_vertices) + graph.dst
        uniq, inverse, counts = np.unique(
            key, return_inverse=True, return_counts=True
        )
        sums = {}
        for pair in (("OUT_BYTES", "IN_BYTES"), ("OUT_PKTS", "IN_PKTS")):
            sums[pair] = np.bincount(
                inverse,
                weights=(
                    np.asarray(
                        graph.edge_properties[pair[0]], dtype=np.float64
                    )
                    + np.asarray(
                        graph.edge_properties[pair[1]], dtype=np.float64
                    )
                ),
                minlength=uniq.size,
            ).astype(np.int64)
        results.append(
            PairAggregate(
                src=(uniq // graph.n_vertices).astype(np.int64),
                dst=(uniq % graph.n_vertices).astype(np.int64),
                n_flows=counts.astype(np.int64),
                total_bytes=sums[("OUT_BYTES", "IN_BYTES")],
                total_packets=sums[("OUT_PKTS", "IN_PKTS")],
            )
        )
    timings["subgraph"] = time.perf_counter() - t0
    return results, timings


# ----------------------------------------------------------------------
def _family_stats(stats) -> dict:
    return {
        family: {
            "n_queries": fs.n_queries,
            "p50_ms": round(fs.p50_ms, 4),
            "p99_ms": round(fs.p99_ms, 4),
            "queries_per_second": round(fs.queries_per_second, 1),
        }
        for family, fs in stats.families.items()
        if fs.n_queries
    }


def run_indexed_vs_scan(graph, workload: QueryWorkload, repeats: int) -> dict:
    """The workload's Netflow edge filters: sorted-index probes versus
    full-column boolean scans (identical selections by construction)."""
    snap = graph.snapshot()
    filters = [workload._edge_filter(p) for p in (22, 53, 80, 443)]
    for flt in filters:  # selections must agree before timing
        assert np.array_equal(
            flt.selection(snap), np.flatnonzero(flt.mask(graph))
        )
    _, indexed = measure_wall(
        lambda: [
            flt.selection(snap) for _ in range(repeats) for flt in filters
        ]
    )
    _, scan = measure_wall(
        lambda: [
            np.flatnonzero(flt.mask(graph))
            for _ in range(repeats)
            for flt in filters
        ]
    )
    return {
        "n_filters": len(filters),
        "repeats": repeats,
        "indexed_seconds": round(indexed, 4),
        "scan_seconds": round(scan, 4),
        "speedup": round(scan / max(indexed, 1e-9), 3),
    }


def run_size(seed_bundle, size: int) -> dict:
    """All serving measurements for one generated dataset size."""
    workload = QueryWorkload(
        n_queries=WORKLOAD_QUERIES, k_hops=WORKLOAD_HOPS, seed=WORKLOAD_SEED
    )
    with default_cluster() as ctx:
        result, gen_wall = measure_wall(
            lambda: PGPBA(fraction=2.0, seed=11).generate(
                seed_bundle.graph, seed_bundle.analysis, size, context=ctx
            )
        )
    graph = result.graph

    # Pre-snapshot baseline first: it must not touch graph.snapshot().
    (baseline_results, baseline_timings) = run_baseline_workload(
        graph, workload
    )
    baseline_seconds = float(sum(baseline_timings.values()))
    digests = {"baseline": result_digest(baseline_results)}

    snap, build_seconds = measure_wall(graph.snapshot)
    report = workload.run(graph)
    workload_seconds = report.total_seconds

    batch = workload.build_queries(graph)
    threads_out: list[dict] = []
    for threads in _thread_matrix():
        server = QueryServer(graph, threads=threads, cache_size=CACHE_SIZE)
        cold_results, cold_wall = measure_wall(
            lambda: server.run_batch(batch)
        )
        cold_stats = server.stats()
        warm_results, warm_wall = measure_wall(
            lambda: server.run_batch(batch)
        )
        digests[f"threads={threads}:cold"] = result_digest(cold_results)
        digests[f"threads={threads}:warm"] = result_digest(warm_results)
        threads_out.append(
            {
                "threads": threads,
                "cold_wall_seconds": round(cold_wall, 4),
                "cold_qps": round(len(batch) / max(cold_wall, 1e-9), 1),
                "warm_wall_seconds": round(warm_wall, 4),
                "warm_qps": round(len(batch) / max(warm_wall, 1e-9), 1),
                "warm_over_cold": round(cold_wall / max(warm_wall, 1e-9), 3),
                "cache_hit_ratio": round(
                    server.cache_info()["hit_ratio"], 3
                ),
                "families": _family_stats(cold_stats),
            }
        )
    # An uncached serial pass: cache state must not change results.
    uncached = QueryServer(graph, threads=1, cache_size=0)
    digests["uncached"] = result_digest(uncached.run_batch(batch))

    repeats = 2 if size >= 5_000_000 else 5
    indexed_vs_scan = run_indexed_vs_scan(graph, workload, repeats)
    return {
        "target_edges": size,
        "edges": int(graph.n_edges),
        "n_vertices": int(graph.n_vertices),
        "generation_wall_seconds": round(gen_wall, 4),
        "snapshot_build_seconds": round(build_seconds, 4),
        "snapshot_memory_bytes": int(snap.memory_bytes()),
        "batch_queries": len(batch),
        "baseline_seconds": round(baseline_seconds, 4),
        "baseline_seconds_by_family": {
            k: round(v, 4) for k, v in baseline_timings.items()
        },
        "workload_seconds": round(workload_seconds, 4),
        "workload_seconds_by_family": {
            k: round(v, 4) for k, v in report.seconds_by_family.items()
        },
        "speedup_vs_baseline": round(
            baseline_seconds / max(workload_seconds, 1e-9), 3
        ),
        "speedup_including_build": round(
            baseline_seconds
            / max(workload_seconds + build_seconds, 1e-9),
            3,
        ),
        "threads": threads_out,
        "digests": digests,
        "digests_match": len(set(digests.values())) == 1,
        "indexed_vs_scan": indexed_vs_scan,
    }


def run_query_serving(seed_bundle) -> dict:
    section = {
        "workload": {
            "n_queries": WORKLOAD_QUERIES,
            "k_hops": WORKLOAD_HOPS,
            "seed": WORKLOAD_SEED,
            "cache_size": CACHE_SIZE,
        },
        "cpu_count": os.cpu_count(),
        "sizes": [run_size(seed_bundle, size) for size in _sizes()],
    }

    # Read-modify-write: this section rides alongside the engine report.
    RESULTS_DIR.mkdir(exist_ok=True)
    report = {}
    if JSON_PATH.exists():
        report = json.loads(JSON_PATH.read_text())
    report["query_serving"] = section
    JSON_PATH.write_text(json.dumps(report, indent=2) + "\n")

    for entry in section["sizes"]:
        print(
            f"\n== query serving at {entry['edges']:,} edges "
            f"(snapshot build {entry['snapshot_build_seconds']:.3f} s, "
            f"{entry['snapshot_memory_bytes'] / 2**20:.1f} MiB) ==\n"
            f"baseline workload : {entry['baseline_seconds']:.3f} s\n"
            f"snapshot workload : {entry['workload_seconds']:.3f} s "
            f"({entry['speedup_vs_baseline']:.1f}x, "
            f"{entry['speedup_including_build']:.1f}x incl. build)"
        )
        rows = [
            [
                t["threads"],
                f"{t['cold_wall_seconds']:.4f}",
                f"{t['cold_qps']:,.0f}",
                f"{t['warm_wall_seconds']:.4f}",
                f"{t['warm_qps']:,.0f}",
                f"{t['warm_over_cold']:.1f}x",
                f"{t['cache_hit_ratio']:.2f}",
            ]
            for t in entry["threads"]
        ]
        print(
            format_table(
                [
                    "threads", "cold s", "cold q/s", "warm s",
                    "warm q/s", "warm/cold", "hit ratio",
                ],
                rows,
            )
        )
        fam_rows = [
            [f, fs["n_queries"], f"{fs['p50_ms']:.3f}",
             f"{fs['p99_ms']:.3f}", f"{fs['queries_per_second']:,.0f}"]
            for f, fs in entry["threads"][0]["families"].items()
        ]
        print(
            format_table(
                ["family", "n", "p50 ms", "p99 ms", "q/s"], fam_rows
            )
        )
        ivs = entry["indexed_vs_scan"]
        print(
            f"edge filters indexed: {ivs['indexed_seconds']:.4f} s, "
            f"scan: {ivs['scan_seconds']:.4f} s "
            f"({ivs['speedup']:.1f}x), "
            f"digests match: {entry['digests_match']}"
        )
    print(f"\nwritten to {JSON_PATH}")
    return section


# ----------------------------------------------------------------------
def test_query_serving(benchmark, seed_bundle):
    section = run_query_serving(seed_bundle)
    smoke = bool(os.environ.get("REPRO_BENCH_SMOKE"))
    for entry in section["sizes"]:
        # Byte-identity: every thread count, cached or not, and the
        # pre-snapshot baseline all produced the same results.
        assert entry["digests_match"], (
            f"results diverged at {entry['target_edges']:,}: "
            f"{entry['digests']}"
        )
        # The tentpole speedup: the served workload beats the pre-PR
        # baseline >= 5x at 10^6 edges and above.
        floor = 2.0 if entry["target_edges"] < 1_000_000 else 5.0
        assert entry["speedup_vs_baseline"] >= floor, (
            f"expected >= {floor}x over the pre-snapshot baseline at "
            f"{entry['target_edges']:,} edges, got "
            f"{entry['speedup_vs_baseline']:.2f}x"
        )
        # Warm cache serves the identical batch >= 2x faster than cold.
        serial = next(t for t in entry["threads"] if t["threads"] == 1)
        assert serial["warm_over_cold"] >= 2.0, (
            f"expected >= 2x warm-cache win, got "
            f"{serial['warm_over_cold']:.2f}x"
        )
        assert serial["cache_hit_ratio"] > 0
        for t in entry["threads"]:
            fams = t["families"]
            assert set(fams) == {"node", "edge", "path", "subgraph"}
            for fs in fams.values():
                assert fs["n_queries"] > 0
                assert fs["p50_ms"] <= fs["p99_ms"]
        ivs = entry["indexed_vs_scan"]
        assert ivs["indexed_seconds"] > 0 and ivs["scan_seconds"] > 0
        if not smoke and entry["target_edges"] >= 1_000_000:
            assert ivs["speedup"] >= 1.0, (
                "sorted-index probes should not lose to full scans at "
                f"{entry['target_edges']:,} edges: {ivs['speedup']:.2f}x"
            )

    entry = section["sizes"][0]
    graph_queries = entry["batch_queries"]
    assert graph_queries > 0

    benchmark.pedantic(
        lambda: run_indexed_vs_scan(
            # Re-time the cheapest measurement as the tracked op.
            _rebuild_small(seed_bundle),
            QueryWorkload(
                n_queries=WORKLOAD_QUERIES, seed=WORKLOAD_SEED
            ),
            repeats=2,
        ),
        rounds=1,
        iterations=1,
    )


def _rebuild_small(seed_bundle):
    with default_cluster() as ctx:
        return PGPBA(fraction=2.0, seed=11).generate(
            seed_bundle.graph, seed_bundle.analysis, 50_000, context=ctx
        ).graph


if __name__ == "__main__":
    run_query_serving(cached_seed())
