"""Shared machinery for the figure-reproduction benchmarks.

Two clocks matter here and must not be conflated: ``result.total_seconds``
is *simulated* cluster time (what Figs. 8-12 plot, identical across
executor backends), while :func:`measure_wall` times *real* elapsed
seconds on this machine (what the executor backends accelerate).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Any, Callable, Iterable

from repro.core.pipeline import SeedBundle, build_seed
from repro.engine.context import ClusterContext
from repro.trace.synthesizer import synthesize_seed_packets

__all__ = [
    "cached_seed",
    "default_cluster",
    "run_sweep",
    "SweepPoint",
    "measure_wall",
    "clock_report",
]


@lru_cache(maxsize=4)
def cached_seed(
    *,
    duration: float = 30.0,
    session_rate: float = 60.0,
    n_clients: int = 150,
    n_servers: int = 30,
    seed: int = 7,
) -> SeedBundle:
    """Build (once per parameter set) the seed bundle every bench shares.

    The default yields a seed graph of a few thousand edges — the scaled
    stand-in for the paper's 1.94 M-edge SMIA 2011 seed.
    """
    packets = synthesize_seed_packets(
        duration=duration,
        session_rate=session_rate,
        n_clients=n_clients,
        n_servers=n_servers,
        seed=seed,
    )
    return build_seed(packets)


def default_cluster(
    *,
    n_nodes: int = 60,
    executor_cores: int = 12,
    executor: str | None = None,
    local_workers: int | None = None,
    memory_budget_bytes: int | str | None = None,
    spill_dir: str | None = None,
) -> ClusterContext:
    """The paper's standard configuration: 60 nodes, 12 cores each,
    partitions = 2x executor cores.  ``executor`` / ``local_workers``
    select the real execution backend (default: serial, or the
    ``REPRO_EXECUTOR`` environment override); ``memory_budget_bytes`` /
    ``spill_dir`` bound the driver-resident block bytes (default:
    unlimited, or the ``REPRO_MEMORY_BUDGET`` / ``REPRO_SPILL_DIR``
    environment overrides)."""
    return ClusterContext(
        n_nodes=n_nodes,
        executor_cores=executor_cores,
        partition_multiplier=2,
        executor=executor,
        local_workers=local_workers,
        memory_budget_bytes=memory_budget_bytes,
        spill_dir=spill_dir,
    )


def measure_wall(fn: Callable[[], Any]) -> tuple[Any, float]:
    """Run ``fn`` once and return ``(result, wall_seconds)``."""
    t0 = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - t0


def clock_report(result, wall_seconds: float) -> dict[str, float]:
    """Both clocks for one :class:`~repro.core.generator.GenerationResult`:
    real elapsed seconds next to the simulated-cluster seconds the figure
    benchmarks plot."""
    return {
        "wall_seconds": float(wall_seconds),
        "simulated_seconds": float(result.total_seconds),
        "edges": float(result.graph.n_edges),
        "wall_edges_per_second": (
            result.graph.n_edges / wall_seconds
            if wall_seconds > 0
            else float("inf")
        ),
        "simulated_edges_per_second": float(result.edges_per_second),
    }


@dataclass
class SweepPoint:
    """One measured point of a parameter sweep."""

    label: str
    parameter: float
    values: dict[str, float] = field(default_factory=dict)


def run_sweep(
    parameters: Iterable,
    fn: Callable[..., dict[str, float]],
    *,
    label: str = "x",
) -> list[SweepPoint]:
    """Evaluate ``fn(parameter)`` per sweep point, collecting metric dicts."""
    points: list[SweepPoint] = []
    for p in parameters:
        values = fn(p)
        points.append(SweepPoint(label=label, parameter=float(p), values=values))
    return points
