"""Wire protocol for the cluster backend (DESIGN.md §12, §14).

The "cluster" executor promotes the pool backend's pipe protocol to
sockets: the driver speaks to standalone ``repro worker`` daemons over
TCP or unix-domain sockets, and this module defines the only thing both
sides must agree on — the framing, the handshake, the negotiated wire
codec, and the heartbeat/pipelining knobs.  The *content* of the frames
is exactly the pool protocol (``("run", blob, descriptors)`` batches,
in-order ``("ok"/"err", key, ...)`` replies); sockets merely
length-prefix it.

Frame layout (one frame per message, all integers big-endian)::

    u32 n_buffers | u64 meta_len | meta
    | (u8 codec_id | u64 wire_len | u64 raw_len | buf) * n_buffers

``meta`` is a stdlib-pickle blob of a small control tuple (the task
payload inside a ``"run"`` meta is itself a cloudpickle blob produced by
the driver, so the daemon never needs to unpickle closures) and is never
compressed — it stays small by construction.  The out-of-band ``buf``
sections carry pickle protocol-5 buffers — the same large array buffers
the pool backend parks in shared-memory arenas ride the socket in frame
order instead.  Each buffer carries its own codec id (0 = raw, 1 = zlib,
2 = lzma — the PR 6 block-codec registry's compressors), so a receiver
never needs out-of-band agreement to decode a frame: mixed peers always
interoperate, the negotiated codec only decides what a *sender* tries.
A sender compresses a buffer only when it is at least
:data:`WIRE_COMPRESS_MIN_BYTES` long **and** compression actually shrank
it; incompressible buffers ship raw under codec id 0.

Handshake: the connecting side sends ``("hello", PROTOCOL_VERSION,
config)``; the daemon answers ``("hello-ok", PROTOCOL_VERSION, info)``
or ``("hello-err", reason)`` and closes.  ``config`` is a plain dict;
the driver uses it to announce its role, its peer list (for the
worker-to-worker block-fetch tier), its spill roots (which the daemon
then agrees to serve), its in-flight dispatch window (``max_inflight``,
which sizes the daemon's task-arena ring) and the wire codec it wants
(``wire_codec``).  The daemon echoes the codec it agreed to in the
``hello-ok`` info dict — a daemon that doesn't know the requested codec
agrees to ``"off"`` and the link still works, just uncompressed.

Heartbeats: the driver pings every busy worker every
``heartbeat_interval`` seconds and declares a worker dead after
``heartbeat_timeout`` seconds of silence (``REPRO_HEARTBEAT_SECONDS`` /
``REPRO_HEARTBEAT_TIMEOUT``).  The daemon answers pings from its event
loop even while its task child computes — and while large frames are
being decompressed off-loop — so a long task never trips the timeout;
only a hung or dead peer does.
"""

from __future__ import annotations

import asyncio
import os
import pickle
import socket
import struct
from typing import Any, Iterable, Sequence

__all__ = [
    "PROTOCOL_VERSION",
    "HEARTBEAT_INTERVAL_ENV_VAR",
    "HEARTBEAT_TIMEOUT_ENV_VAR",
    "MAX_INFLIGHT_ENV_VAR",
    "WIRE_CODEC_ENV_VAR",
    "DEFAULT_HEARTBEAT_INTERVAL",
    "DEFAULT_HEARTBEAT_TIMEOUT",
    "DEFAULT_MAX_INFLIGHT",
    "DEFAULT_WIRE_CODEC",
    "WIRE_CODECS",
    "WIRE_COMPRESS_MIN_BYTES",
    "ProtocolError",
    "parse_address",
    "format_address",
    "connect",
    "build_frame",
    "decode_buffers",
    "send_message",
    "recv_message",
    "a_send_message",
    "a_recv_message",
    "a_recv_frame",
    "client_handshake",
    "negotiate_wire_codec",
    "resolve_heartbeat_interval",
    "resolve_heartbeat_timeout",
    "resolve_max_inflight",
    "resolve_wire_codec",
]

PROTOCOL_VERSION = 2

HEARTBEAT_INTERVAL_ENV_VAR = "REPRO_HEARTBEAT_SECONDS"
HEARTBEAT_TIMEOUT_ENV_VAR = "REPRO_HEARTBEAT_TIMEOUT"
MAX_INFLIGHT_ENV_VAR = "REPRO_MAX_INFLIGHT"
WIRE_CODEC_ENV_VAR = "REPRO_WIRE_CODEC"
DEFAULT_HEARTBEAT_INTERVAL = 0.5
DEFAULT_HEARTBEAT_TIMEOUT = 15.0
DEFAULT_MAX_INFLIGHT = 2
DEFAULT_WIRE_CODEC = "zlib"

# Sender-side codecs a buffer may be compressed with on the wire.  The
# names (and the compressors behind them) come from the block-codec
# registry (storage/codecs.py) so wire and disk compression stay one
# implementation; "off" ships every buffer raw.
WIRE_CODECS = ("off", "zlib", "lzma")
_WIRE_CODEC_IDS = {"off": 0, "zlib": 1, "lzma": 2}
_WIRE_CODEC_NAMES = {i: name for name, i in _WIRE_CODEC_IDS.items()}

# Buffers below this size ship raw even under a negotiated codec: the
# syscall/framing cost dominates and zlib on tiny payloads often grows
# them.  Matches the pool arena's out-of-band threshold so "large enough
# to go out-of-band" and "large enough to compress" are the same notion.
WIRE_COMPRESS_MIN_BYTES = 1 << 14

_HEADER = struct.Struct(">IQ")
_BUF_HEADER = struct.Struct(">BQQ")  # codec_id, wire_len, raw_len

# Sanity bound on any single length field: a corrupt or hostile peer
# must not make the receiver allocate petabytes.
MAX_FRAME_BYTES = 1 << 40


class ProtocolError(RuntimeError):
    """Handshake or framing violation on a cluster connection."""


# ----------------------------------------------------------------------
# Addresses
# ----------------------------------------------------------------------

def parse_address(spec: str) -> tuple:
    """Parse a worker address: ``host:port`` (TCP) or ``unix:/path``.

    Returns ``("tcp", host, port)`` or ``("unix", path)``.
    """
    spec = spec.strip()
    if not spec:
        raise ValueError("empty worker address")
    if spec.startswith("unix:"):
        path = spec[len("unix:"):]
        if not path:
            raise ValueError(f"unix worker address needs a path: {spec!r}")
        return ("unix", path)
    host, sep, port_text = spec.rpartition(":")
    if not sep or not host:
        raise ValueError(
            f"worker address {spec!r} is not 'host:port' or 'unix:/path'"
        )
    try:
        port = int(port_text)
    except ValueError as exc:
        raise ValueError(
            f"worker address {spec!r} has a non-integer port"
        ) from exc
    if not 0 <= port <= 65535:
        raise ValueError(f"worker address {spec!r} port out of range")
    return ("tcp", host, port)


def format_address(addr: tuple) -> str:
    if addr[0] == "unix":
        return f"unix:{addr[1]}"
    return f"{addr[1]}:{addr[2]}"


def connect(spec: str, timeout: float | None = 10.0) -> socket.socket:
    """Open a blocking socket to a worker address spec.

    The timeout stays armed on the returned socket so the follow-up
    :func:`client_handshake` cannot block forever against a peer whose
    port accepts but never answers (e.g. a SIGKILLed daemon whose
    orphaned child still holds the listening fd).  A successful
    handshake disarms it."""
    addr = parse_address(spec)
    if addr[0] == "unix":
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(timeout)
        sock.connect(addr[1])
    else:
        sock = socket.create_connection((addr[1], addr[2]), timeout=timeout)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        sock.settimeout(timeout)
    return sock


# ----------------------------------------------------------------------
# Frame building (shared by the blocking and asyncio senders)
# ----------------------------------------------------------------------

def _wire_compress(codec: str, view: memoryview) -> bytes:
    from .storage.codecs import _compress

    return _compress(codec, view)


def _wire_decompress(codec_id: int, payload: bytes, raw_len: int) -> bytes:
    from .storage.codecs import _decompress

    name = _WIRE_CODEC_NAMES.get(codec_id)
    if name is None:
        raise ProtocolError(f"unknown wire codec id {codec_id}")
    try:
        return _decompress(name, payload, raw_len)
    except Exception as exc:  # noqa: BLE001 - corrupt frame
        raise ProtocolError(f"corrupt compressed buffer: {exc}") from exc


def build_frame(
    obj: Any, buffers: Sequence = (), codec: str = "off"
) -> "tuple[list, int, int]":
    """Serialize one message into writable parts.

    Returns ``(parts, wire_bytes, raw_bytes)`` where ``raw_bytes`` is
    what the frame would have cost with compression off.  Pure function
    of its inputs and safe to call off the event loop (the daemon builds
    large reply frames in a thread so heartbeat pongs stay prompt).
    """
    meta = pickle.dumps(obj, protocol=5)
    parts: list = [_HEADER.pack(len(buffers), len(meta)), meta]
    wire = raw = _HEADER.size + len(meta)
    want = _WIRE_CODEC_IDS.get(codec, 0)
    for buf in buffers:
        view = memoryview(buf)
        if view.ndim != 1 or view.format != "B":
            view = view.cast("B")
        nbytes = view.nbytes
        used, payload, payload_len = 0, view, nbytes
        if want and nbytes >= WIRE_COMPRESS_MIN_BYTES:
            packed = _wire_compress(codec, view)
            if len(packed) < nbytes:
                used, payload, payload_len = want, packed, len(packed)
        parts.append(_BUF_HEADER.pack(used, payload_len, nbytes))
        parts.append(payload)
        wire += _BUF_HEADER.size + payload_len
        raw += _BUF_HEADER.size + nbytes
    return parts, wire, raw


def decode_buffers(
    entries: "Iterable[tuple[int, bytes, int]]",
) -> "list[bytes]":
    """Decompress received ``(codec_id, payload, raw_len)`` buffer
    entries into raw bytes.  Codec id 0 is a passthrough with a length
    check.  CPU-bound for compressed entries — the daemon runs it in a
    thread so its event loop keeps answering pings."""
    return [
        _wire_decompress(codec_id, payload, raw_len)
        for codec_id, payload, raw_len in entries
    ]


# ----------------------------------------------------------------------
# Blocking-socket framing (driver / fetch-client side)
# ----------------------------------------------------------------------

def send_message(
    sock: socket.socket,
    obj: Any,
    buffers: Sequence = (),
    codec: str = "off",
) -> "tuple[int, int]":
    """Send one framed message; returns ``(wire_bytes, raw_bytes)``."""
    parts, wire, raw = build_frame(obj, buffers, codec)
    for part in parts:
        sock.sendall(part)
    return wire, raw


def _recv_exact(sock: socket.socket, n: int, *, at_boundary: bool) -> bytes | None:
    """Read exactly ``n`` bytes; ``None`` on a clean EOF at a message
    boundary, :class:`ConnectionError` on EOF mid-frame."""
    data = bytearray(n)
    view = memoryview(data)
    got = 0
    while got < n:
        read = sock.recv_into(view[got:])
        if read == 0:
            if got == 0 and at_boundary:
                return None
            raise ConnectionError("peer closed the connection mid-frame")
        got += read
    return bytes(data)


def recv_message(
    sock: socket.socket,
) -> "tuple[Any, list[bytes], int, int] | None":
    """Receive one framed message.

    Returns ``(obj, buffers, wire_bytes, raw_bytes)`` — buffers already
    decompressed — or ``None`` on clean EOF.
    """
    head = _recv_exact(sock, _HEADER.size, at_boundary=True)
    if head is None:
        return None
    n_buffers, meta_len = _HEADER.unpack(head)
    if meta_len > MAX_FRAME_BYTES:
        raise ProtocolError(f"oversized frame ({meta_len} bytes)")
    meta = _recv_exact(sock, meta_len, at_boundary=False)
    wire = raw = _HEADER.size + meta_len
    buffers: list[bytes] = []
    for _ in range(n_buffers):
        head = _recv_exact(sock, _BUF_HEADER.size, at_boundary=False)
        codec_id, payload_len, raw_len = _BUF_HEADER.unpack(head)
        if payload_len > MAX_FRAME_BYTES or raw_len > MAX_FRAME_BYTES:
            raise ProtocolError(f"oversized buffer ({raw_len} bytes)")
        payload = _recv_exact(sock, payload_len, at_boundary=False)
        buffers.append(_wire_decompress(codec_id, payload, raw_len))
        wire += _BUF_HEADER.size + payload_len
        raw += _BUF_HEADER.size + raw_len
    return pickle.loads(meta), buffers, wire, raw


# ----------------------------------------------------------------------
# Asyncio framing (daemon side)
# ----------------------------------------------------------------------

async def a_send_message(
    writer: asyncio.StreamWriter,
    obj: Any,
    buffers: Sequence = (),
    codec: str = "off",
) -> "tuple[int, int]":
    """Asyncio twin of :func:`send_message`.

    All ``write`` calls happen before the single ``drain`` await, so a
    frame is appended to the transport buffer atomically — concurrent
    senders on one writer (result pump vs. pong replies) can never
    interleave mid-frame.
    """
    parts, wire, raw = build_frame(obj, buffers, codec)
    for part in parts:
        writer.write(bytes(part) if isinstance(part, memoryview) else part)
    await writer.drain()
    return wire, raw


async def _a_read_exact(
    reader: asyncio.StreamReader, n: int, *, at_boundary: bool
) -> bytes | None:
    try:
        return await reader.readexactly(n)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial and at_boundary:
            return None
        raise ConnectionError("peer closed the connection mid-frame") from exc


async def a_recv_frame(
    reader: asyncio.StreamReader,
) -> "tuple[Any, list[tuple[int, bytes, int]], int, int] | None":
    """Receive one frame *without* decompressing its buffers.

    Returns ``(obj, entries, wire_bytes, raw_bytes)`` with ``entries``
    as ``(codec_id, payload, raw_len)`` tuples for a later
    :func:`decode_buffers` — the daemon defers that to a worker thread
    so a multi-megabyte decompression never stalls heartbeat pongs.
    ``None`` on clean EOF.
    """
    head = await _a_read_exact(reader, _HEADER.size, at_boundary=True)
    if head is None:
        return None
    n_buffers, meta_len = _HEADER.unpack(head)
    if meta_len > MAX_FRAME_BYTES:
        raise ProtocolError(f"oversized frame ({meta_len} bytes)")
    meta = await _a_read_exact(reader, meta_len, at_boundary=False)
    wire = raw = _HEADER.size + meta_len
    entries: list[tuple[int, bytes, int]] = []
    for _ in range(n_buffers):
        head = await _a_read_exact(reader, _BUF_HEADER.size, at_boundary=False)
        codec_id, payload_len, raw_len = _BUF_HEADER.unpack(head)
        if payload_len > MAX_FRAME_BYTES or raw_len > MAX_FRAME_BYTES:
            raise ProtocolError(f"oversized buffer ({raw_len} bytes)")
        payload = await _a_read_exact(reader, payload_len, at_boundary=False)
        entries.append((codec_id, payload, raw_len))
        wire += _BUF_HEADER.size + payload_len
        raw += _BUF_HEADER.size + raw_len
    return pickle.loads(meta), entries, wire, raw


async def a_recv_message(
    reader: asyncio.StreamReader,
) -> "tuple[Any, list[bytes], int, int] | None":
    """Asyncio twin of :func:`recv_message` (buffers decompressed
    inline; use :func:`a_recv_frame` to defer that)."""
    frame = await a_recv_frame(reader)
    if frame is None:
        return None
    obj, entries, wire, raw = frame
    return obj, decode_buffers(entries), wire, raw


# ----------------------------------------------------------------------
# Handshake
# ----------------------------------------------------------------------

def client_handshake(sock: socket.socket, config: dict) -> dict:
    """Run the connecting side of the handshake; returns the worker's
    info dict (which echoes the agreed ``wire_codec``).  Raises
    :class:`ProtocolError` on rejection or version mismatch (the daemon
    rejects before looking at the config)."""
    send_message(sock, ("hello", PROTOCOL_VERSION, dict(config)))
    reply = recv_message(sock)
    if reply is None:
        raise ProtocolError("worker closed the connection during handshake")
    obj, _buffers, _wire, _raw = reply
    if not isinstance(obj, tuple) or not obj:
        raise ProtocolError(f"malformed handshake reply: {obj!r}")
    if obj[0] == "hello-err":
        raise ProtocolError(f"worker rejected handshake: {obj[1]}")
    if obj[0] != "hello-ok" or len(obj) < 3:
        raise ProtocolError(f"malformed handshake reply: {obj!r}")
    if obj[1] != PROTOCOL_VERSION:
        raise ProtocolError(
            f"protocol version mismatch: worker speaks {obj[1]}, "
            f"driver speaks {PROTOCOL_VERSION}"
        )
    # Handshake done: disarm the connect timeout — from here on the
    # socket is select()-driven (driver loop) or request/response with
    # its own timeout discipline (fetch client).
    sock.settimeout(None)
    return obj[2]


def negotiate_wire_codec(requested: "str | None") -> str:
    """Server-side half of codec negotiation: agree to a codec this
    build knows, fall back to ``"off"`` for anything else (per-buffer
    codec ids keep mixed peers interoperable either way)."""
    name = str(requested or "off").strip().lower()
    return name if name in WIRE_CODECS else "off"


# ----------------------------------------------------------------------
# Transport knobs
# ----------------------------------------------------------------------

def _resolve_seconds(value, env_var: str, default: float) -> float:
    if value is None:
        env = os.environ.get(env_var)
        if env is None or not env.strip():
            return default
        try:
            value = float(env)
        except ValueError as exc:
            raise ValueError(
                f"{env_var} must be a number of seconds, got {env!r}"
            ) from exc
    value = float(value)
    if value <= 0:
        raise ValueError(f"{env_var} must be > 0, got {value!r}")
    return value


def resolve_heartbeat_interval(value: "float | None" = None) -> float:
    """Seconds between pings to a busy worker: explicit argument >
    ``REPRO_HEARTBEAT_SECONDS`` > 0.5."""
    return _resolve_seconds(
        value, HEARTBEAT_INTERVAL_ENV_VAR, DEFAULT_HEARTBEAT_INTERVAL
    )


def resolve_heartbeat_timeout(value: "float | None" = None) -> float:
    """Seconds of silence before a busy worker is declared dead:
    explicit argument > ``REPRO_HEARTBEAT_TIMEOUT`` > 15."""
    return _resolve_seconds(
        value, HEARTBEAT_TIMEOUT_ENV_VAR, DEFAULT_HEARTBEAT_TIMEOUT
    )


def resolve_max_inflight(value: "int | str | None" = None) -> int:
    """Dispatch pipeline depth — batches in flight per cluster link:
    explicit argument > ``REPRO_MAX_INFLIGHT`` > 2.  1 restores the
    strict stop-and-wait dispatch of the pre-pipelined transport."""
    if value is None:
        env = os.environ.get(MAX_INFLIGHT_ENV_VAR)
        if env is None or not env.strip():
            return DEFAULT_MAX_INFLIGHT
        value = env
    try:
        window = int(str(value).strip())
    except ValueError as exc:
        raise ValueError(
            f"{MAX_INFLIGHT_ENV_VAR} must be an integer >= 1, got {value!r}"
        ) from exc
    if window < 1:
        raise ValueError(
            f"{MAX_INFLIGHT_ENV_VAR} must be >= 1, got {window}"
        )
    return window


def resolve_wire_codec(value: "str | None" = None) -> str:
    """Wire codec a sender proposes/uses for large out-of-band buffers:
    explicit argument > ``REPRO_WIRE_CODEC`` > ``zlib``.  One of
    ``off`` / ``zlib`` / ``lzma``."""
    if value is None:
        env = os.environ.get(WIRE_CODEC_ENV_VAR)
        if env is None or not env.strip():
            return DEFAULT_WIRE_CODEC
        value = env
    name = str(value).strip().lower()
    if name in ("none", "raw", "0", "false"):
        name = "off"
    if name not in WIRE_CODECS:
        raise ValueError(
            f"{WIRE_CODEC_ENV_VAR} must be one of {'/'.join(WIRE_CODECS)}, "
            f"got {value!r}"
        )
    return name
