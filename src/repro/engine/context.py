"""Cluster context: the driver the generators talk to.

A :class:`ClusterContext` binds an RDD workload to a simulated cluster
(:class:`~repro.engine.scheduler.ClusterScheduler`): it creates partitioned
datasets, receives per-partition cost measurements from every
transformation, and accumulates :class:`~repro.engine.metrics.SimulationMetrics`
— simulated makespan, per-node memory, task counts — which the Fig. 8-12
benchmarks read.

Configuration mirrors the paper's Spark knobs: ``n_nodes`` (10-60 in the
experiments), ``executor_cores`` per node (the ``total-executor-cores``
study of Fig. 8 found 12 optimal), and ``partition_multiplier`` (the paper
found 2x-4x the executor-core count best).

Orthogonally to the *simulated* cluster, ``executor`` / ``local_workers``
pick the *real* execution backend partition tasks run on (see
:mod:`repro.engine.executor`): simulated metrics are identical across
backends because each task measures its own CPU cost; only wall-clock
time changes.  Two further knobs shape the *physical* task grain without
touching the simulated series: ``target_partition_bytes`` (plan-level
coalescing of small partition chains into ~target-sized executor tasks,
``REPRO_TARGET_PARTITION_BYTES``, 0/"off" disables) and ``task_batch``
(tasks per pool-backend IPC round, ``REPRO_TASK_BATCH``, 0 = adaptive).

Every task batch is dispatched through the lineage-recovery layer
(:func:`repro.engine.executor.run_with_recovery`): failed tasks are
retried up to ``max_task_retries`` times with exponential backoff,
recomputing only the lost partition's fused chain from its anchor
(source or ``persist()``-ed) partitions.  A seeded
:class:`~repro.engine.faults.FaultPlan` — ``fault_plan=`` argument, the
``REPRO_FAULTS`` environment variable, or the CLI ``--faults`` flag —
deterministically injects task failures, worker deaths and stragglers to
exercise that path; ``speculation=True`` additionally re-executes
stragglers with first-result-wins.  Recovery affects wall clock and the
``metrics`` recovery counters only, never the simulated series.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Sequence

import numpy as np

from repro.engine.executor import (
    Executor,
    RecoveryStats,
    SpeculationPolicy,
    make_executor,
    run_with_recovery,
)
from repro.engine.faults import (
    FaultPlan,
    resolve_max_task_retries,
    resolve_speculation,
)
from repro.engine.metrics import SimulationMetrics
from repro.engine.partitioner import split_array, split_count
from repro.engine.plan import resolve_fusion, resolve_target_partition_bytes
from repro.engine.rdd import ArrayRDD, Columns, resolve_shuffle
from repro.engine.scheduler import ClusterScheduler, NodeSpec
from repro.engine.storage import BlockStore

__all__ = ["ClusterContext"]


class ClusterContext:
    """Driver for the simulated Map-Reduce cluster."""

    def __init__(
        self,
        *,
        n_nodes: int = 1,
        executor_cores: int = 12,
        partition_multiplier: int = 2,
        node: NodeSpec | None = None,
        per_stage_overhead: float = 0.0005,
        per_task_overhead: float = 0.00005,
        per_byte_cost: float = 5e-8,
        max_real_partitions: int = 32,
        executor: str | Executor | None = None,
        local_workers: int | None = None,
        workers: "Sequence[str] | str | None" = None,
        task_batch: int | None = None,
        fusion: bool | None = None,
        target_partition_bytes: int | str | None = None,
        fault_plan: FaultPlan | dict | str | None = None,
        max_task_retries: int | None = None,
        retry_backoff_seconds: float = 0.01,
        speculation: bool | SpeculationPolicy | None = None,
        memory_budget_bytes: int | str | None = None,
        spill_dir: str | None = None,
        block_codec: str | None = None,
        shuffle: str | None = None,
    ) -> None:
        if partition_multiplier < 1:
            raise ValueError("partition_multiplier must be >= 1")
        if max_real_partitions < 1:
            raise ValueError("max_real_partitions must be >= 1")
        self.scheduler = ClusterScheduler(
            n_nodes,
            executor_cores,
            node,
            per_stage_overhead=per_stage_overhead,
            per_task_overhead=per_task_overhead,
            per_byte_cost=per_byte_cost,
        )
        self.partition_multiplier = partition_multiplier
        self.max_real_partitions = max_real_partitions
        # Lazy evaluation + stage fusion switch: explicit argument >
        # REPRO_FUSION env var > on.  Off, every transformation forces
        # immediately (the eager reference path); the simulated metrics
        # are identical either way, only wall clock / local peak memory
        # change.
        self.fusion_enabled = resolve_fusion(fusion)
        # Physical task grain: coalesce small partition chains into
        # ~target-sized executor tasks at plan time (explicit argument >
        # REPRO_TARGET_PARTITION_BYTES env var > 4 MiB; 0 disables).
        # Purely a dispatch optimisation — the simulated stage records
        # are identical either way (asserted in tests).
        self.target_partition_bytes = resolve_target_partition_bytes(
            target_partition_bytes
        )
        self.metrics = SimulationMetrics(n_nodes=n_nodes)
        # ``workers`` is the cluster backend's daemon address list
        # (falls back to REPRO_WORKERS); ``local_workers`` sizes the
        # in-host backends.  Both can be passed — only the selected
        # backend reads its one.
        if isinstance(executor, Executor):
            self.executor = executor
        else:
            self.executor = make_executor(
                executor,
                local_workers,
                task_batch=task_batch,
                cluster_workers=workers,
            )
        # Fault tolerance: explicit arguments > REPRO_FAULTS /
        # REPRO_MAX_TASK_RETRIES / REPRO_SPECULATION env vars > defaults
        # (no injection, 3 retries, no speculation).
        self.fault_plan = FaultPlan.resolve(fault_plan)
        self.max_task_retries = resolve_max_task_retries(max_task_retries)
        if retry_backoff_seconds < 0:
            raise ValueError("retry_backoff_seconds must be >= 0")
        self.retry_backoff_seconds = retry_backoff_seconds
        if isinstance(speculation, SpeculationPolicy):
            self.speculation: SpeculationPolicy | None = speculation
        else:
            self.speculation = (
                SpeculationPolicy() if resolve_speculation(speculation) else None
            )
        # Monotone batch counter keying each dispatched batch into the
        # fault plan's deterministic decision stream.
        self._batch_ids = itertools.count()
        # Disk-backed block storage: explicit arguments >
        # REPRO_MEMORY_BUDGET / REPRO_SPILL_DIR env vars > defaults
        # (unlimited memory, system tempdir).  Every materialized
        # partition lives here behind a BlockId; under a budget the
        # store LRU-spills blocks to disk and tasks write their outputs
        # as block files directly.  Monotone RDD ids key the blocks (and
        # the persist accounting — id() reuse can never alias entries).
        # Block codec: explicit argument > REPRO_BLOCK_CODEC > "raw".
        # Every spill / shuffle-segment / checkpoint file the context
        # writes goes through this codec; reads sniff the file format,
        # so mixed-codec spill directories are still readable.
        self.storage = BlockStore(
            memory_budget_bytes=memory_budget_bytes,
            spill_dir=spill_dir,
            codec=block_codec,
        )
        # distinct() shuffle strategy: explicit argument > REPRO_SHUFFLE
        # > "exchange".  "extsort" swaps the reduce-side hash bucket for
        # the external merge sort (byte-identical output).
        self.shuffle_strategy = resolve_shuffle(shuffle)
        self._rdd_ids = itertools.count()
        self.metrics.attach_storage(self.storage.stats)
        self.metrics.attach_transport(
            getattr(self.executor, "transport", None)
        )
        # The cluster backend advertises the session spill root to its
        # worker daemons so spill blocks and shuffle segments written
        # under it are fetchable worker-to-worker by file name.
        register_spill_root = getattr(
            self.executor, "register_spill_root", None
        )
        if register_spill_root is not None:
            register_spill_root(self.storage.ensure_spill_root())

    def _next_rdd_id(self) -> int:
        return next(self._rdd_ids)

    # ------------------------------------------------------------------
    def run_tasks(
        self,
        tasks: Sequence[Callable[[], Any]],
        *,
        emitted: int | None = None,
    ) -> list[Any]:
        """Dispatch a batch of partition tasks on the executor backend,
        with lineage-based retry of failed tasks (and deterministic fault
        injection when a plan is configured).

        ``emitted`` is the *logical* task count this batch stands for —
        the coalescing planner passes the pre-coalescing number so the
        ``tasks_emitted`` / ``tasks_dispatched`` counters expose the
        dispatch reduction; plain batches leave it unset (1:1).
        """
        self.metrics.tasks_emitted += (
            len(tasks) if emitted is None else emitted
        )
        self.metrics.tasks_dispatched += len(tasks)
        stats = RecoveryStats()
        try:
            return run_with_recovery(
                self.executor,
                tasks,
                fault_plan=self.fault_plan,
                batch=next(self._batch_ids),
                max_task_retries=self.max_task_retries,
                backoff_seconds=self.retry_backoff_seconds,
                speculation=self.speculation,
                stats=stats,
            )
        finally:
            self.metrics.record_recovery(stats)

    def close(self) -> None:
        """Release executor resources (worker pools) and drop the block
        store (spilled files, the session spill dir); idempotent."""
        self.executor.close()
        self.storage.close()

    def __enter__(self) -> "ClusterContext":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        return self.scheduler.n_nodes

    @property
    def default_partitions(self) -> int:
        """Paper's rule: partitions = multiplier x total executor cores."""
        return (
            self.partition_multiplier
            * self.scheduler.executor_cores
            * self.scheduler.n_nodes
        )

    def reset_metrics(self) -> None:
        self.metrics = SimulationMetrics(n_nodes=self.n_nodes)
        self.metrics.attach_storage(self.storage.stats)
        profile = getattr(self.executor, "transport", None)
        if profile is not None:
            profile.reset()
        self.metrics.attach_transport(profile)

    # ------------------------------------------------------------------
    def _real_and_multiplier(self, nominal: int) -> tuple[int, int]:
        """Split the nominal (paper-rule) partition count into a small real
        partition count plus a per-partition simulated-task multiplier."""
        real = max(1, min(nominal, self.max_real_partitions))
        multiplier = max(1, int(np.ceil(nominal / real)))
        return real, multiplier

    def parallelize(
        self,
        columns: Sequence[np.ndarray],
        *,
        n_partitions: int | None = None,
    ) -> ArrayRDD:
        """Partition aligned column arrays into an RDD."""
        columns = [np.asarray(c) for c in columns]
        nominal = n_partitions or self.default_partitions
        nominal = max(1, min(nominal, max(1, columns[0].size)))
        real, multiplier = self._real_and_multiplier(nominal)
        splits = [split_array(c, real) for c in columns]
        parts: list[Columns] = [
            tuple(splits[j][p] for j in range(len(columns)))
            for p in range(real)
        ]
        return ArrayRDD(self, parts, task_multiplier=multiplier)

    def generate(
        self,
        total: int,
        fn: Callable[[int, int], Sequence[np.ndarray]],
        *,
        n_partitions: int | None = None,
        stage: str = "generate",
        stream: bool = False,
    ) -> ArrayRDD:
        """Create an RDD by running ``fn(count, partition_index)`` per
        partition — the pattern behind PGSK's parallel recursive descent,
        where an "initially empty RDD ... is partitioned among the
        available compute nodes" and each node generates edges
        independently.

        ``stream=True`` declares that ``fn`` yields bounded column
        chunks instead of returning one column tuple: under a memory
        budget each chunk flushes straight through the block store, so
        a partition's edge array never materializes whole in a worker
        (the Yoo & Henderson independent-draws pattern at 10^8+ edges).
        """
        nominal = max(1, n_partitions or self.default_partitions)
        real, multiplier = self._real_and_multiplier(nominal)
        counts = split_count(total, real)
        seedless = ArrayRDD(
            self,
            [(np.empty(0, np.int64),)] * real,
            task_multiplier=multiplier,
        )

        def _gen(_cols: Columns, pidx: int) -> Sequence[np.ndarray]:
            return fn(int(counts[pidx]), pidx)

        # The seedless anchor is empty, so without a hint the coalescer
        # would estimate every generate chain at zero bytes and inline
        # them all in the driver.  Weight each chain by its item count
        # (~2 int64 columns per item); zero-count slots stay at zero and
        # are correctly pruned to inline execution.
        return seedless.map_partitions(
            _gen, stage=stage, bytes_hint=counts * 16, stream=stream
        )

    # ------------------------------------------------------------------
    def _record_stage(
        self,
        stage: str,
        cpu_seconds: list[float],
        bytes_out: list[int],
        result: "ArrayRDD | np.ndarray | None",
        *,
        multiplier: int = 1,
    ) -> None:
        """Feed one logical stage's measured costs to the simulated
        cluster.  ``result`` carries the per-partition byte sizes of the
        stage's output dataset for the memory meter — either the
        materialized RDD itself or a plain array of partition bytes (the
        fused planner's form, which never materializes the RDD), or
        ``None`` for stages with no resident result (driver-side work,
        reductions)."""
        cpu = np.asarray(cpu_seconds, dtype=np.float64)
        size = np.asarray(bytes_out, dtype=np.int64)
        if multiplier > 1:
            # Each real partition stands for `multiplier` simulated tasks:
            # split its measured cost and output evenly among them before
            # the makespan model runs.
            cpu = np.repeat(cpu / multiplier, multiplier)
            size = np.repeat(size // multiplier, multiplier)
        makespan, records = self.scheduler.stage_makespan(stage, cpu, size)
        self.metrics.record_stage(
            records, makespan, self.scheduler.per_stage_overhead
        )
        if result is not None:
            if isinstance(result, ArrayRDD):
                part_bytes = result.partition_bytes()
            else:
                part_bytes = np.asarray(result, dtype=np.int64)
            if multiplier > 1:
                part_bytes = np.repeat(part_bytes // multiplier, multiplier)
            self.metrics.settle_memory(
                self.scheduler.per_node_bytes(part_bytes)
            )
