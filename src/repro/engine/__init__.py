"""Map-Reduce execution substrate (the Apache Spark / GraphX stand-in).

The paper's generators are "implemented on the only distributed graph
processing platform ... that supports property graphs: Apache Spark with
the GraphX library".  This package reproduces the programming model the
algorithms rely on — partitioned datasets with ``sample`` / ``distinct`` /
``map_partitions`` / ``reduce`` — executing the *real* computation locally
while a :class:`~repro.engine.scheduler.ClusterScheduler` models the
cluster: N compute nodes, a configurable executor-core count whose useful
parallelism saturates (the paper measured 12 of 20 cores, Fig. 8), task
waves, and per-node memory meters (Fig. 11).  Scalability figures are read
from the simulated clock; veracity figures from the real data.

Like its Spark original, the execution layer survives task failures:
every batch runs through lineage-based recovery (retry from the
narrowest persisted or source ancestor, optional speculative
re-execution of stragglers), and a seeded
:class:`~repro.engine.faults.FaultPlan` can deterministically inject
exceptions, worker deaths and stragglers to prove recovery is
bit-identical to the fault-free run.
"""

from repro.engine.cluster import (
    CLUSTER_WORKERS_ENV_VAR,
    FETCH_PREFETCH_ENV_VAR,
    BlockFetcher,
    ClusterExecutor,
    WorkerDaemon,
    launch_worker,
    resolve_cluster_workers,
    resolve_fetch_prefetch,
    shutdown_worker,
    sockets_available,
)
from repro.engine.netproto import (
    MAX_INFLIGHT_ENV_VAR,
    WIRE_CODEC_ENV_VAR,
    resolve_max_inflight,
    resolve_wire_codec,
)
from repro.engine.context import ClusterContext
from repro.engine.executor import (
    TASK_BATCH_ENV_VAR,
    Executor,
    PoolExecutor,
    ProcessExecutor,
    RecoveryStats,
    RemoteTaskError,
    SerialExecutor,
    SpeculationPolicy,
    TaskOutcome,
    ThreadExecutor,
    TransportProfile,
    WorkerDied,
    available_backends,
    make_executor,
    resolve_task_batch,
    run_with_recovery,
)
from repro.engine.faults import (
    FAULTS_ENV_VAR,
    FaultPlan,
    InjectedFault,
    SimulatedWorkerDeath,
    resolve_max_task_retries,
    resolve_speculation,
)
from repro.engine.plan import (
    DEFAULT_TARGET_PARTITION_BYTES,
    FUSION_ENV_VAR,
    TARGET_PARTITION_BYTES_ENV_VAR,
    resolve_fusion,
    resolve_target_partition_bytes,
)
from repro.engine.rdd import SHUFFLE_ENV_VAR, ArrayRDD, resolve_shuffle
from repro.engine.scheduler import ClusterScheduler, NodeSpec
from repro.engine.metrics import SimulationMetrics, TaskRecord
from repro.engine.storage import (
    BLOCK_CODEC_ENV_VAR,
    CODEC_CHUNK_BYTES_ENV_VAR,
    CODECS,
    DEFAULT_CODEC,
    MEMORY_BUDGET_ENV_VAR,
    SPILL_DIR_ENV_VAR,
    BlockCodec,
    BlockId,
    BlockStore,
    SpilledBlockHandle,
    StorageLevel,
    StorageStats,
    get_codec,
    parse_size,
    resolve_block_codec,
    resolve_codec_chunk_bytes,
    resolve_memory_budget,
    resolve_spill_dir,
)
from repro.engine.stream import (
    EMIT_CHUNK_ROWS_ENV_VAR,
    EXTSORT_CHUNK_ROWS_ENV_VAR,
    iter_repeat_chunks,
    resolve_emit_chunk_rows,
    resolve_extsort_chunk_rows,
)

__all__ = [
    "ClusterContext",
    "ArrayRDD",
    "CLUSTER_WORKERS_ENV_VAR",
    "FETCH_PREFETCH_ENV_VAR",
    "MAX_INFLIGHT_ENV_VAR",
    "WIRE_CODEC_ENV_VAR",
    "BlockFetcher",
    "ClusterExecutor",
    "WorkerDaemon",
    "launch_worker",
    "resolve_cluster_workers",
    "resolve_fetch_prefetch",
    "resolve_max_inflight",
    "resolve_wire_codec",
    "shutdown_worker",
    "sockets_available",
    "FUSION_ENV_VAR",
    "FAULTS_ENV_VAR",
    "TARGET_PARTITION_BYTES_ENV_VAR",
    "TASK_BATCH_ENV_VAR",
    "DEFAULT_TARGET_PARTITION_BYTES",
    "resolve_fusion",
    "resolve_target_partition_bytes",
    "resolve_task_batch",
    "ClusterScheduler",
    "NodeSpec",
    "SimulationMetrics",
    "TaskRecord",
    "Executor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "PoolExecutor",
    "TaskOutcome",
    "SpeculationPolicy",
    "RecoveryStats",
    "TransportProfile",
    "WorkerDied",
    "RemoteTaskError",
    "run_with_recovery",
    "make_executor",
    "available_backends",
    "FaultPlan",
    "InjectedFault",
    "SimulatedWorkerDeath",
    "resolve_max_task_retries",
    "resolve_speculation",
    "MEMORY_BUDGET_ENV_VAR",
    "SPILL_DIR_ENV_VAR",
    "BLOCK_CODEC_ENV_VAR",
    "CODEC_CHUNK_BYTES_ENV_VAR",
    "SHUFFLE_ENV_VAR",
    "EMIT_CHUNK_ROWS_ENV_VAR",
    "EXTSORT_CHUNK_ROWS_ENV_VAR",
    "CODECS",
    "DEFAULT_CODEC",
    "BlockCodec",
    "BlockId",
    "BlockStore",
    "SpilledBlockHandle",
    "StorageLevel",
    "StorageStats",
    "get_codec",
    "parse_size",
    "iter_repeat_chunks",
    "resolve_block_codec",
    "resolve_codec_chunk_bytes",
    "resolve_emit_chunk_rows",
    "resolve_extsort_chunk_rows",
    "resolve_memory_budget",
    "resolve_shuffle",
    "resolve_spill_dir",
]
