"""Core contribution: the PGPBA and PGSK property-graph generators.

Workflow (mirroring the paper's Fig. 1-3):

1. :func:`~repro.core.pipeline.build_seed` turns a pcap capture (or an
   in-memory packet list) into a seed property-graph via the Netflow
   pipeline, and :func:`~repro.core.pipeline.analyze_seed` extracts the
   distributions the generators consume.
2. :class:`~repro.core.pgpba.PGPBA` grows the seed by parallel edge-list
   preferential attachment (Fig. 2).
3. :class:`~repro.core.pgsk.PGSK` fits a Kronecker initiator to the seed
   and expands it by stochastic recursive descent (Fig. 3).
4. :mod:`~repro.core.veracity` scores how faithfully a synthetic graph
   reproduces the seed's degree and PageRank distributions.
"""

from repro.core.generator import (
    GenerationResult,
    SeedAnalysis,
    PropertyModel,
)
from repro.core.pipeline import (
    SeedBundle,
    analyze_seed,
    build_seed,
    packets_from,
)
from repro.core.pgpba import PGPBA
from repro.core.pgsk import PGSK
from repro.core.veracity import (
    veracity_score,
    degree_veracity,
    pagerank_veracity,
    VeracityReport,
    evaluate_veracity,
)

__all__ = [
    "GenerationResult",
    "SeedAnalysis",
    "PropertyModel",
    "SeedBundle",
    "build_seed",
    "analyze_seed",
    "packets_from",
    "PGPBA",
    "PGSK",
    "veracity_score",
    "degree_veracity",
    "pagerank_veracity",
    "VeracityReport",
    "evaluate_veracity",
]
