"""Lazy lineage DAG, stage fusion and persist() caching.

The contract under test: fusion changes *how* partition tasks run (one
fused task per partition instead of one task per transformation) but not
*what* the engine computes or reports — datasets, simulated stage
records, node assignment and byte accounting are bit-identical between
the fused and the eager (``REPRO_FUSION=off``) paths, on every executor
backend.
"""

from __future__ import annotations

import hashlib

import numpy as np
import pytest

from repro.core import PGPBA, PGSK
from repro.engine import ClusterContext, FUSION_ENV_VAR, resolve_fusion
from repro.engine.executor import SerialExecutor
from repro.engine.faults import FaultPlan


class CountingExecutor(SerialExecutor):
    """Serial backend that counts dispatched batches and tasks."""

    name = "counting"

    def __init__(self) -> None:
        super().__init__(workers=1)
        self.batches = 0
        self.tasks = 0

    def run(self, tasks):
        self.batches += 1
        self.tasks += len(tasks)
        return super().run(tasks)


def counting_ctx(**kwargs):
    ex = CountingExecutor()
    # An explicit zero fault plan: these tests assert exact batch/task
    # dispatch counts, which injected failures (e.g. a REPRO_FAULTS
    # chaos environment) would legitimately inflate with retry rounds.
    kwargs.setdefault("fault_plan", FaultPlan())
    ctx = ClusterContext(n_nodes=2, executor=ex, **kwargs)
    return ctx, ex


def stage_structure(ctx):
    """Everything about the simulated stages except the measured times."""
    return [
        (r.stage, r.partition, r.node, r.bytes_out)
        for r in ctx.metrics.tasks
    ]


def digest(arrays) -> str:
    h = hashlib.sha256()
    for a in arrays:
        h.update(np.ascontiguousarray(a).tobytes())
    return h.hexdigest()


# ----------------------------------------------------------------------
# resolve_fusion / knobs
# ----------------------------------------------------------------------
class TestResolveFusion:
    def test_default_on(self, monkeypatch):
        monkeypatch.delenv(FUSION_ENV_VAR, raising=False)
        assert resolve_fusion(None) is True

    @pytest.mark.parametrize("value", ["off", "0", "false", "no", "OFF"])
    def test_env_off(self, monkeypatch, value):
        monkeypatch.setenv(FUSION_ENV_VAR, value)
        assert resolve_fusion(None) is False

    @pytest.mark.parametrize("value", ["on", "1", "true", "yes", ""])
    def test_env_on(self, monkeypatch, value):
        monkeypatch.setenv(FUSION_ENV_VAR, value)
        assert resolve_fusion(None) is True

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv(FUSION_ENV_VAR, "off")
        assert resolve_fusion(True) is True
        monkeypatch.setenv(FUSION_ENV_VAR, "on")
        assert resolve_fusion(False) is False

    def test_bad_value_raises(self, monkeypatch):
        monkeypatch.setenv(FUSION_ENV_VAR, "maybe")
        with pytest.raises(ValueError, match="REPRO_FUSION"):
            resolve_fusion(None)

    def test_context_flag(self):
        with ClusterContext(fusion=False) as ctx:
            assert ctx.fusion_enabled is False

    def test_cli_flag_wires_through(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["generate", "x.pcap", "--edges", "10", "--no-fusion"]
        )
        assert args.no_fusion is True


# ----------------------------------------------------------------------
# laziness + fusion mechanics
# ----------------------------------------------------------------------
class TestLaziness:
    def test_transformations_record_nothing(self):
        ctx, ex = counting_ctx(fusion=True)
        rdd = ctx.parallelize([np.arange(100), np.arange(100)])
        mapped = rdd.map_partitions(
            lambda cols, p: tuple(c * 2 for c in cols), stage="double"
        )
        sampled = mapped.sample(0.5, seed=3)
        merged = sampled.union(mapped)
        assert ctx.metrics.n_tasks == 0
        assert ex.batches == 0
        assert not mapped.is_materialized
        assert not merged.is_materialized
        ctx.close()

    def test_action_forces_and_records(self):
        ctx, ex = counting_ctx(fusion=True)
        rdd = ctx.parallelize([np.arange(100)])
        mapped = rdd.map_partitions(
            lambda cols, p: (cols[0] + 1,), stage="inc"
        )
        total = mapped.count()
        assert total == 100
        assert mapped.is_materialized
        assert ctx.metrics.n_tasks > 0
        assert ex.batches == 1
        ctx.close()

    def test_chain_fuses_into_one_dispatch(self):
        ctx, ex = counting_ctx(fusion=True)
        rdd = ctx.parallelize([np.arange(512)], n_partitions=4)
        out = (
            rdd.map_partitions(lambda c, p: (c[0] * 3,), stage="a")
            .map_partitions(lambda c, p: (c[0] + 1,), stage="b")
            .map_partitions(lambda c, p: (c[0] % 7,), stage="c")
        )
        out.collect()
        # One executor batch, one fused task per partition...
        assert ex.batches == 1
        assert ex.tasks == rdd.n_partitions
        # ...but three separately-timed simulated stages.
        stages = [r.stage for r in ctx.metrics.tasks]
        assert sorted(set(stages)) == ["a", "b", "c"]
        ctx.close()

    def test_eager_dispatches_per_stage(self):
        ctx, ex = counting_ctx(fusion=False)
        rdd = ctx.parallelize([np.arange(512)], n_partitions=4)
        (
            rdd.map_partitions(lambda c, p: (c[0] * 3,), stage="a")
            .map_partitions(lambda c, p: (c[0] + 1,), stage="b")
            .map_partitions(lambda c, p: (c[0] % 7,), stage="c")
        )
        # Eager mode forces each transformation as it is built.
        assert ex.batches == 3
        assert ex.tasks == 3 * rdd.n_partitions
        ctx.close()

    def test_persist_boundary_breaks_fusion(self):
        ctx, ex = counting_ctx(fusion=True)
        rdd = ctx.parallelize([np.arange(256)], n_partitions=4)
        pinned = rdd.map_partitions(
            lambda c, p: (c[0] + 1,), stage="a"
        ).persist()
        tail = pinned.map_partitions(lambda c, p: (c[0] * 2,), stage="b")
        tail.collect()
        # The persisted anchor is forced in its own batch, then the tail.
        assert ex.batches == 2
        assert pinned.is_materialized
        ctx.close()


# ----------------------------------------------------------------------
# persist() / unpersist() caching + accounting
# ----------------------------------------------------------------------
class TestPersist:
    def test_persist_prevents_recomputation(self):
        ctx, ex = counting_ctx(fusion=True)
        rdd = ctx.parallelize([np.arange(256)], n_partitions=4)
        pinned = rdd.map_partitions(
            lambda c, p: (c[0] + 1,), stage="base"
        ).persist()
        left = pinned.map_partitions(lambda c, p: (c[0] * 2,), stage="l")
        right = pinned.map_partitions(lambda c, p: (c[0] * 3,), stage="r")
        left.collect()
        after_left = ex.tasks
        right.collect()
        # The second branch reads the pinned partitions: only its own 4
        # tasks run, the "base" stage is not replayed.
        assert ex.tasks - after_left == rdd.n_partitions
        assert [r.stage for r in ctx.metrics.tasks].count("base") == 4
        ctx.close()

    def test_repeated_actions_hit_cache(self):
        ctx, ex = counting_ctx(fusion=True)
        mapped = ctx.parallelize([np.arange(64)]).map_partitions(
            lambda c, p: (c[0] + 1,), stage="inc"
        )
        mapped.count()
        batches = ex.batches
        mapped.count()
        mapped.collect()
        mapped.partition_sizes()
        # Forcing materializes the RDD itself; later actions are free.
        assert ex.batches == batches
        ctx.close()

    def test_persist_registers_bytes_on_force(self):
        with ClusterContext(fusion=True) as ctx:
            pinned = ctx.parallelize([np.arange(1000)]).map_partitions(
                lambda c, p: (c[0] * 2,), stage="x"
            ).persist()
            # Lazy persist: nothing resident until an action forces it.
            assert ctx.metrics.persisted_bytes == 0
            pinned.count()
            assert ctx.metrics.persisted_bytes == 8000
            assert ctx.metrics.peak_persisted_bytes == 8000

    def test_unpersist_releases_bytes(self):
        with ClusterContext(fusion=True) as ctx:
            a = ctx.parallelize([np.arange(1000)]).persist()
            b = ctx.parallelize([np.arange(500)]).persist()
            a.count(), b.count()
            assert ctx.metrics.persisted_bytes == 12000
            a.unpersist()
            assert ctx.metrics.persisted_bytes == 4000
            assert not a.is_persisted
            a.unpersist()  # idempotent
            b.unpersist()
            assert ctx.metrics.persisted_bytes == 0
            # The high-water mark survives the release.
            assert ctx.metrics.peak_persisted_bytes == 12000


# ----------------------------------------------------------------------
# fused == eager: datasets and simulated stage structure
# ----------------------------------------------------------------------
def _pipeline(ctx):
    """A pipeline exercising map/sample/union/distinct/repartition."""
    base = ctx.parallelize(
        [np.arange(2000) % 97, np.arange(2000) % 89], n_partitions=8
    )
    mapped = base.map_partitions(
        lambda c, p: (c[0] * 3 + p, c[1] + 1), stage="mix"
    )
    sampled = mapped.sample(0.5, seed=11, stage="pick")
    merged = sampled.union(mapped)
    deduped = merged.distinct(key_columns=(0, 1), stage="dedup")
    final = deduped.repartition(4)
    return final.collect()


class TestFusedEagerEquivalence:
    def test_pipeline_identical(self):
        with ClusterContext(n_nodes=3, fusion=True) as ctx_f:
            cols_f = _pipeline(ctx_f)
            struct_f = stage_structure(ctx_f)
        with ClusterContext(n_nodes=3, fusion=False) as ctx_e:
            cols_e = _pipeline(ctx_e)
            struct_e = stage_structure(ctx_e)
        assert digest(cols_f) == digest(cols_e)
        assert struct_f == struct_e

    @pytest.mark.parametrize("backend", ["serial", "threads", "processes"])
    def test_pgpba_identical_across_modes_and_backends(
        self, seed_graph, seed_analysis, backend
    ):
        results = {}
        for fusion in (True, False):
            with ClusterContext(
                n_nodes=2, executor=backend, local_workers=2, fusion=fusion
            ) as ctx:
                gen = PGPBA(fraction=0.5, seed=3)
                res = gen.generate(
                    seed_graph,
                    seed_analysis,
                    seed_graph.n_edges * 2,
                    context=ctx,
                )
                results[fusion] = (
                    digest([res.graph.src, res.graph.dst]),
                    stage_structure(ctx),
                    ctx.metrics.peak_persisted_bytes,
                )
        assert results[True] == results[False]

    @pytest.mark.parametrize("backend", ["serial", "threads", "processes"])
    def test_pgsk_identical_across_modes_and_backends(
        self, seed_graph, seed_analysis, backend
    ):
        gen = PGSK(seed=5, kronfit_iterations=4, kronfit_swaps=20)
        initiator = gen.fit_initiator(seed_graph)
        results = {}
        for fusion in (True, False):
            with ClusterContext(
                n_nodes=2, executor=backend, local_workers=2, fusion=fusion
            ) as ctx:
                res = gen.generate(
                    seed_graph,
                    seed_analysis,
                    800,
                    context=ctx,
                    initiator=initiator,
                )
                results[fusion] = (
                    digest([res.graph.src, res.graph.dst]),
                    stage_structure(ctx),
                    ctx.metrics.peak_persisted_bytes,
                )
        assert results[True] == results[False]

    def test_generators_leave_no_pinned_bytes(
        self, seed_graph, seed_analysis
    ):
        with ClusterContext(fusion=True) as ctx:
            PGPBA(fraction=0.5, seed=1).generate(
                seed_graph, seed_analysis, seed_graph.n_edges * 2,
                context=ctx,
            )
            assert ctx.metrics.persisted_bytes == 0
            assert ctx.metrics.peak_persisted_bytes > 0
