"""Columnar resilient-dataset abstraction.

An :class:`ArrayRDD` is a partitioned dataset of aligned 1-D NumPy
columns exposing the subset of the Spark RDD API the paper's algorithms
use: ``map_partitions``, ``sample`` (PGPBA's preferential-attachment
stage), ``distinct`` (PGSK's collision removal), ``union``,
``repartition``, ``collect`` and ``count``.

Evaluation is **lazy**: transformations only extend a lineage plan (one
:class:`~repro.engine.plan.Pipe` per partition); actions hand the plan to
:func:`~repro.engine.plan.fuse_and_run`, which pipelines each partition's
chain of narrow ops through a single fused executor task — no
intermediate RDD is ever materialized across all partitions.  Each fused
task times its operator segments separately with ``time.perf_counter``
and the measured per-stage costs are reported to the owning
:class:`~repro.engine.context.ClusterContext`, whose scheduler converts
them into simulated cluster time: the simulated clock sees the same
per-partition work no matter which backend ran it *and* no matter
whether the stages were fused (only the wall clock and the peak local
memory change).  ``ClusterContext(fusion=False)`` / ``REPRO_FUSION=off``
force every transformation immediately — the eager reference path.

``persist()`` pins an RDD: its first forcing materializes and caches the
partitions (breaking any fusion chain through it) and registers the
resident bytes with the metrics' driver-side memory meter until
``unpersist()``.  Forcing always caches the forced RDD's own partitions,
but *not* its lineage intermediates — fork two lazy branches off one
unforced RDD and the shared prefix recomputes (and is re-charged to the
simulated clock); persist the branch point to avoid that, as the
generators do at their loop boundaries.

The "resilient" in the name is earned at the execution layer: every task
batch an action dispatches goes through
:func:`~repro.engine.executor.run_with_recovery`, so a failed or killed
task is retried from its captured anchor partitions — recomputing only
the lost partition's chain from its narrowest persisted or source
ancestor.  ``persist()`` therefore doubles as the recovery checkpoint,
exactly as caching does in Spark.
"""

from __future__ import annotations

import time
from typing import Callable, Sequence

import numpy as np

from repro.engine.partitioner import split_count
from repro.engine.plan import PendingOp, Pipe, fuse_and_run

__all__ = ["ArrayRDD"]

Columns = tuple[np.ndarray, ...]


def _validate_partition(cols: Sequence[np.ndarray]) -> Columns:
    cols = tuple(np.asarray(c) for c in cols)
    if not cols:
        raise ValueError("a partition needs at least one column")
    n = cols[0].size
    for c in cols:
        if c.ndim != 1 or c.size != n:
            raise ValueError("partition columns must be aligned 1-D arrays")
    return cols


class ArrayRDD:
    """Partitioned columnar dataset bound to a cluster context.

    ``task_multiplier`` decouples *real* partitions from *simulated* tasks:
    the paper's partition rule (2x executor cores x nodes) yields thousands
    of tiny partitions, which is faithful for Spark but wasteful for a
    local simulator.  Each real partition therefore stands for
    ``task_multiplier`` scheduler tasks — its measured cost is split evenly
    across them before the makespan model runs, so scaling behaviour is
    unchanged while the Python-side partition count stays small.

    Partitions are immutable once materialized, so the driver-side
    metadata views (``count``, ``partition_sizes``, ``partition_bytes``)
    are computed once and cached — PGPBA's growth loop polls them every
    iteration.  On a lazy RDD those metadata calls are actions: they
    force the lineage.
    """

    def __init__(
        self, context, partitions: list[Columns], *, task_multiplier: int = 1
    ) -> None:
        if not partitions:
            raise ValueError("an RDD needs at least one partition")
        if task_multiplier < 1:
            raise ValueError("task_multiplier must be >= 1")
        self._ctx = context
        self.task_multiplier = task_multiplier
        self._pipes: list[Pipe] | None = None
        parts = [_validate_partition(p) for p in partitions]
        width = len(parts[0])
        if any(len(p) != width for p in parts):
            raise ValueError("all partitions must have the same column count")
        self._parts: list[Columns] | None = parts
        self._known_columns: int | None = width
        self._persisted = False
        self._cached_count: int | None = None
        self._cached_sizes: np.ndarray | None = None
        self._cached_bytes: np.ndarray | None = None

    @classmethod
    def _from_pipes(
        cls,
        context,
        pipes: list[Pipe],
        *,
        task_multiplier: int,
        n_columns: int | None,
    ) -> "ArrayRDD":
        rdd = cls.__new__(cls)
        rdd._ctx = context
        rdd.task_multiplier = task_multiplier
        rdd._parts = None
        rdd._pipes = pipes
        rdd._known_columns = n_columns
        rdd._persisted = False
        rdd._cached_count = None
        rdd._cached_sizes = None
        rdd._cached_bytes = None
        return rdd

    # ------------------------------------------------------------------
    # lineage plumbing
    # ------------------------------------------------------------------
    @property
    def _is_anchor(self) -> bool:
        """Materialized and persisted RDDs anchor fusion chains."""
        return self._parts is not None or self._persisted

    def _as_pipes(self) -> list[Pipe]:
        if self._is_anchor:
            return [Pipe(self, i) for i in range(self.n_partitions)]
        return list(self._pipes)

    def _force(self) -> list[Columns]:
        """Materialize this RDD (idempotent): run the fused plan, record
        each logical stage's measured costs, cache the partitions."""
        if self._parts is not None:
            return self._parts
        parts, stage_groups = fuse_and_run(self._ctx, self._pipes)
        for group in stage_groups:
            self._ctx._record_stage(
                group.op.stage,
                group.cpu_seconds,
                group.bytes_out,
                np.asarray(group.bytes_out, dtype=np.int64),
                multiplier=group.op.multiplier,
            )
        width = len(parts[0])
        if any(len(p) != width for p in parts):
            raise ValueError("all partitions must have the same column count")
        self._parts = parts
        self._pipes = None
        self._known_columns = width
        if self._persisted:
            self._ctx.metrics.register_persist(
                id(self), int(self.partition_bytes().sum())
            )
        return self._parts

    def persist(self) -> "ArrayRDD":
        """Pin this RDD: cache its partitions at first forcing (breaking
        any fusion chain through it) and account the resident bytes on
        the driver-side memory meter until :meth:`unpersist`."""
        if not self._persisted:
            self._persisted = True
            if self._parts is not None:
                self._ctx.metrics.register_persist(
                    id(self), int(self.partition_bytes().sum())
                )
        return self

    def unpersist(self) -> "ArrayRDD":
        """Release the persist accounting (idempotent).  The partition
        arrays themselves are freed by reference counting once nothing
        downstream aliases them."""
        if self._persisted:
            self._persisted = False
            self._ctx.metrics.release_persist(id(self))
        return self

    @property
    def is_persisted(self) -> bool:
        return self._persisted

    @property
    def is_materialized(self) -> bool:
        return self._parts is not None

    # ------------------------------------------------------------------
    @property
    def context(self):
        return self._ctx

    @property
    def n_partitions(self) -> int:
        return (
            len(self._parts) if self._parts is not None else len(self._pipes)
        )

    @property
    def n_columns(self) -> int:
        if self._known_columns is None:
            self._force()
            self._known_columns = len(self._parts[0])
        return self._known_columns

    def count(self) -> int:
        if self._cached_count is None:
            self._cached_count = int(self.partition_sizes().sum())
        return self._cached_count

    def partition_sizes(self) -> np.ndarray:
        """Row count per partition (an action on a lazy RDD).

        Cached and returned read-only: partitions never change after
        materialization.
        """
        if self._cached_sizes is None:
            parts = self._force()
            sizes = np.asarray([p[0].size for p in parts], dtype=np.int64)
            sizes.flags.writeable = False
            self._cached_sizes = sizes
        return self._cached_sizes

    def partition_bytes(self) -> np.ndarray:
        if self._cached_bytes is None:
            parts = self._force()
            nbytes = np.asarray(
                [sum(c.nbytes for c in p) for p in parts],
                dtype=np.int64,
            )
            nbytes.flags.writeable = False
            self._cached_bytes = nbytes
        return self._cached_bytes

    def collect(self) -> Columns:
        """Concatenate all partitions into driver-side column arrays."""
        parts = self._force()
        return tuple(
            np.concatenate([p[j] for p in parts])
            for j in range(self.n_columns)
        )

    # ------------------------------------------------------------------
    def map_partitions(
        self,
        fn: Callable[[Columns, int], Sequence[np.ndarray]],
        *,
        stage: str = "map_partitions",
    ) -> "ArrayRDD":
        """Apply ``fn(columns, partition_index) -> columns`` per partition.

        A narrow transformation: it extends the lineage plan and returns
        immediately; the fused task chain runs (concurrently, on the
        context's executor backend) when an action forces the result.
        This is the workhorse all other transformations build on.
        """
        op = PendingOp(
            fn=fn,
            stage=stage,
            n_tasks=self.n_partitions,
            multiplier=self.task_multiplier,
        )
        if self._is_anchor:
            pipes = [
                Pipe(self, i, ((op, i),)) for i in range(self.n_partitions)
            ]
        else:
            pipes = [
                Pipe(p.base, p.index, p.ops + ((op, i),))
                for i, p in enumerate(self._pipes)
            ]
        out = ArrayRDD._from_pipes(
            self._ctx,
            pipes,
            task_multiplier=self.task_multiplier,
            n_columns=None,
        )
        if not self._ctx.fusion_enabled:
            out._force()
        return out

    def sample(
        self, fraction: float, *, seed: int = 0, stage: str = "sample"
    ) -> "ArrayRDD":
        """Uniform row sample of ``fraction * count`` rows per partition.

        ``fraction > 1`` samples with replacement, as Spark's
        ``RDD.sample(withReplacement=True)`` — PGPBA runs with fraction up
        to 2 in the paper's performance experiments.
        """
        if fraction <= 0:
            raise ValueError("fraction must be positive")
        replace = fraction > 1.0

        def _sample(cols: Columns, pidx: int) -> Columns:
            n = cols[0].size
            # ceil guarantees forward progress: any positive fraction on a
            # non-empty partition yields at least one row (PGPBA's clamped
            # final iteration relies on this to terminate).
            k = int(np.ceil(fraction * n))
            if n == 0 or k == 0:
                return tuple(c[:0] for c in cols)
            rng = np.random.default_rng((seed, pidx))
            if replace or k > n:
                idx = rng.integers(0, n, size=k)
            else:
                idx = rng.choice(n, size=k, replace=False)
            return tuple(c[idx] for c in cols)

        return self.map_partitions(_sample, stage=stage)

    def distinct(
        self, *, key_columns: tuple[int, int] | int = 0,
        stage: str = "distinct",
        shuffle: str = "exchange",
    ) -> "ArrayRDD":
        """Remove duplicate rows, keying on one int column or a pair.

        Modelled as Spark's two-phase distinct: a map-side per-partition
        de-duplication (a narrow op — it fuses with whatever chain
        produced its input), then a hash shuffle so equal keys land in
        the same partition, then a reduce-side unique.  The shuffle is a
        fusion barrier: it forces the map side and returns a
        materialized RDD.

        ``shuffle="exchange"`` (default) is a real hash exchange: every
        map task buckets its rows by ``hash(key) % n_partitions`` on the
        executor, the driver only concatenates per-destination buckets,
        and the reduce-side unique runs per-partition on the executor —
        peak driver memory is O(largest partition), not O(dataset).
        ``shuffle="collect"`` keeps the legacy collect-everything path
        (used by the memory benchmarks as the comparison baseline).
        The shuffle is charged to the simulated clock via the reduce
        stage's measured cost plus a serial ``:driver`` component.
        """
        if isinstance(key_columns, int):
            key_cols: tuple[int, ...] = (key_columns,)
        else:
            key_cols = tuple(key_columns)
        if shuffle not in ("exchange", "collect"):
            raise ValueError("shuffle must be 'exchange' or 'collect'")

        n_parts = self.n_partitions
        map_side = self.map_partitions(
            lambda cols, i: _unique_rows(cols, key_cols),
            stage=f"{stage}:map",
        )
        if shuffle == "exchange":
            # Hand the partition list over and drop the RDD: the exchange
            # releases map-side partitions as soon as they are bucketed,
            # which only works if nothing else keeps them alive.
            map_parts = list(map_side._force())
            del map_side
            parts, task_cpu, driver_cpu = _exchange_shuffle(
                self._ctx, map_parts, key_cols, n_parts
            )
        else:
            map_side._force()
            parts, task_cpu, driver_cpu = _collect_shuffle(
                map_side, key_cols, n_parts
            )
        rdd = ArrayRDD(
            self._ctx, parts, task_multiplier=self.task_multiplier
        )
        # The simulated cost model is calibrated independently of the
        # local data path: of the total measured shuffle work, 75%
        # parallelises across reducers and 25% is the serial
        # coordination/merge component that does not shrink with cluster
        # size — the reason PGSK's strong scaling sits below PGPBA's in
        # the paper's Fig. 12.  (In real Spark the serial share is driver
        # scheduling and merge coordination, which the local concat time
        # alone would underestimate.)
        elapsed = sum(task_cpu) + driver_cpu
        per_task = 0.75 * elapsed / max(1, n_parts)
        self._ctx._record_stage(
            f"{stage}:reduce",
            [per_task] * n_parts,
            [sum(c.nbytes for c in p) for p in parts],
            rdd.partition_bytes(),
            multiplier=self.task_multiplier,
        )
        self._ctx._record_stage(
            f"{stage}:driver", [0.25 * elapsed], [0], None
        )
        return rdd

    def union(self, other: "ArrayRDD") -> "ArrayRDD":
        """Concatenate partition lists (no data movement, like Spark).

        Lazy and free: each side contributes its pipes (or anchor
        partitions by reference) and keeps its own pending chain — the
        column-count check runs when both widths are already known,
        otherwise at materialization.
        """
        if (
            self._known_columns is not None
            and other._known_columns is not None
            and self._known_columns != other._known_columns
        ):
            raise ValueError("union requires matching column counts")
        width = self._known_columns or other._known_columns
        out = ArrayRDD._from_pipes(
            self._ctx,
            self._as_pipes() + other._as_pipes(),
            task_multiplier=max(self.task_multiplier, other.task_multiplier),
            n_columns=width
            if (self._known_columns and other._known_columns)
            else None,
        )
        if not self._ctx.fusion_enabled:
            out._force()
        return out

    def repartition(self, n_partitions: int, *, stage: str = "repartition") -> "ArrayRDD":
        """Rebalance rows into ``n_partitions`` near-equal partitions.

        A range exchange (and therefore a fusion barrier): the driver
        only *plans* (slices source partitions into per-destination
        views); the per-destination concatenations run as executor
        tasks.  Row order — and therefore the output — is identical to
        concatenating everything and ``np.array_split``-ing it, without
        ever materialising the full dataset in the driver.
        """
        if n_partitions < 1:
            raise ValueError("need at least one partition")
        src_parts = self._force()
        t0 = time.perf_counter()
        sizes = self.partition_sizes()
        src_off = np.concatenate(([0], np.cumsum(sizes)))
        total = int(src_off[-1])
        bounds = np.concatenate(
            ([0], np.cumsum(split_count(total, n_partitions)))
        )
        empty = tuple(c[:0] for c in src_parts[0])
        pieces: list[list[Columns]] = []
        for p in range(n_partitions):
            lo, hi = int(bounds[p]), int(bounds[p + 1])
            mine: list[Columns] = []
            if hi > lo:
                s = int(np.searchsorted(src_off, lo, side="right")) - 1
                while s < self.n_partitions and src_off[s] < hi:
                    a = max(lo, int(src_off[s])) - int(src_off[s])
                    b = min(hi, int(src_off[s + 1])) - int(src_off[s])
                    if b > a:
                        mine.append(
                            tuple(c[a:b] for c in src_parts[s])
                        )
                    s += 1
            pieces.append(mine)
        plan_seconds = time.perf_counter() - t0
        n_cols = self.n_columns

        def _make_task(chunks: list[Columns]):
            def _task():
                t0 = time.perf_counter()
                if not chunks:
                    cols = empty
                elif len(chunks) == 1:
                    cols = chunks[0]
                else:
                    cols = tuple(
                        np.concatenate([c[j] for c in chunks])
                        for j in range(n_cols)
                    )
                return cols, time.perf_counter() - t0

            return _task

        outs = self._ctx.run_tasks([_make_task(m) for m in pieces])
        parts = [out[0] for out in outs]
        # Fold the (tiny, view-only) driver planning cost into the tasks
        # so the stage structure matches the pre-exchange accounting.
        cpu = [out[1] + plan_seconds / n_partitions for out in outs]
        rdd = ArrayRDD(
            self._ctx, parts, task_multiplier=self.task_multiplier
        )
        self._ctx._record_stage(
            stage,
            cpu,
            [sum(c.nbytes for c in p) for p in parts],
            rdd.partition_bytes(),
            multiplier=self.task_multiplier,
        )
        return rdd

    def reduce_columns(
        self, fn: Callable[[Columns], np.ndarray], *, stage: str = "reduce"
    ) -> np.ndarray:
        """Per-partition reduction followed by a driver-side concat.

        ``fn`` maps a partition to a (possibly scalar-like) array; the
        results are concatenated, mirroring ``RDD.mapPartitions().collect()``
        driver aggregation.  An action: forces the lineage first.
        """
        parts = self._force()

        def _make_task(part: Columns):
            def _task():
                t0 = time.perf_counter()
                out = np.atleast_1d(np.asarray(fn(part)))
                return out, time.perf_counter() - t0

            return _task

        results = self._ctx.run_tasks([_make_task(p) for p in parts])
        outs = [r[0] for r in results]
        cpu = [r[1] for r in results]
        self._ctx._record_stage(
            stage, cpu, [o.nbytes for o in outs], None,
            multiplier=self.task_multiplier,
        )
        return np.concatenate(outs)


# ----------------------------------------------------------------------
# shuffle machinery
# ----------------------------------------------------------------------

# SplitMix64's multiplier: decorrelates the destination from low-order
# key-bit patterns so contiguous vertex ids spread over all reducers.
_HASH_MULT = np.uint64(0x9E3779B97F4A7C15)


def _hash_keys(cols: Columns, key_cols: tuple[int, ...]) -> np.ndarray:
    """Uint64 row hash for shuffle routing.

    Wraparound is deliberate and harmless: the hash only decides which
    reducer sees a row, and every path (any backend, any partitioning)
    computes it identically.  Exactness for de-duplication comes from
    :func:`_unique_rows`, never from this hash.
    """
    key = cols[key_cols[0]].astype(np.uint64)
    for kc in key_cols[1:]:
        key = key * _HASH_MULT + cols[kc].astype(np.uint64)
    return key


def _exchange_shuffle(
    ctx, parts: list[Columns], key_cols: tuple[int, ...], n_parts: int
) -> tuple[list[Columns], list[float], float]:
    """Hash-exchange + reduce-side unique without a driver collect.

    Returns ``(partitions, per_task_cpu, driver_cpu)`` — raw measured
    seconds; the caller applies the calibrated parallel/serial cost
    split.  Map-side bucketing and reduce-side unique both run on the
    executor; the driver only concatenates per-destination buckets.
    Buffers are released as eagerly as the dataflow allows — each source
    partition right after it is bucketed, each bucket right after its
    destination is gathered — so the peak beyond input + output is one
    destination partition, not a second copy of the dataset (the legacy
    collect shuffle's behaviour).
    """
    n_cols = len(parts[0])

    def _make_bucket_task(cols: Columns):
        def _task():
            t0 = time.perf_counter()
            dest = (_hash_keys(cols, key_cols) % np.uint64(n_parts)).astype(
                np.int64
            )
            order = np.argsort(dest, kind="stable")
            splits = np.searchsorted(dest[order], np.arange(n_parts + 1))
            # Fancy indexing copies, so every bucket owns its rows and the
            # driver can free it independently of its siblings.
            buckets = [
                tuple(c[order[splits[p]:splits[p + 1]]] for c in cols)
                for p in range(n_parts)
            ]
            return buckets, time.perf_counter() - t0

        return _task

    results = ctx.run_tasks([_make_bucket_task(p) for p in parts])
    bucket_cpu = [r[1] for r in results]
    bucketed: list[list[Columns]] = [r[0] for r in results]
    del results
    parts.clear()  # map-side partitions are consumed; free them now

    t0 = time.perf_counter()
    gathered: list[Columns] = []
    for p in range(n_parts):
        gathered.append(
            tuple(
                np.concatenate([src[p][j] for src in bucketed])
                for j in range(n_cols)
            )
        )
        for src in bucketed:
            src[p] = None  # this destination's buckets are merged; free
    driver_seconds = time.perf_counter() - t0
    del bucketed

    def _make_unique_task(cols: Columns):
        def _task():
            t0 = time.perf_counter()
            out = _unique_rows(cols, key_cols)
            return out, time.perf_counter() - t0

        return _task

    reduced = ctx.run_tasks([_make_unique_task(g) for g in gathered])
    out_parts = [r[0] for r in reduced]
    task_cpu = [bucket_cpu[p] + reduced[p][1] for p in range(n_parts)]
    return out_parts, task_cpu, driver_seconds


def _collect_shuffle(
    map_side: "ArrayRDD", key_cols: tuple[int, ...], n_parts: int
) -> tuple[list[Columns], list[float], float]:
    """Legacy shuffle: collect the whole dataset into the driver, route by
    key hash, unique per destination.  O(dataset) driver memory; kept as
    the baseline the engine benchmarks compare the exchange path against.

    Returns ``(partitions, per_task_cpu, driver_cpu)`` with all measured
    work in the task list; the caller applies the calibrated
    parallel/serial cost split.
    """
    t0 = time.perf_counter()
    all_cols = map_side.collect()
    dest = (_hash_keys(all_cols, key_cols) % np.uint64(n_parts)).astype(
        np.int64
    )
    parts: list[Columns] = []
    for p in range(n_parts):
        mask = dest == p
        sub = tuple(c[mask] for c in all_cols)
        parts.append(_unique_rows(sub, key_cols))
    elapsed = time.perf_counter() - t0
    return parts, [elapsed], 0.0


# ----------------------------------------------------------------------
# exact row de-duplication
# ----------------------------------------------------------------------

# a * span + b packing is exact only while it fits int64; beyond that we
# fall back to a (slower) lexicographic unique over the stacked columns.
_INT64_MAX = np.iinfo(np.int64).max


def _unique_rows(cols: Columns, key_cols: tuple[int, ...]) -> Columns:
    if cols[0].size == 0:
        return cols
    if len(key_cols) == 1:
        _, idx = np.unique(cols[key_cols[0]], return_index=True)
    else:
        idx = _unique_pair_index(
            cols[key_cols[0]], cols[key_cols[1]]
        )
    idx.sort()
    return tuple(c[idx] for c in cols)


def _unique_pair_index(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """First-occurrence indices of distinct ``(a, b)`` pairs, exactly.

    Fast path: pack the pair into one int64 key when the bounds prove
    ``a * span + b`` cannot overflow (Python-int arithmetic, so the check
    itself cannot wrap).  Otherwise — vertex ids near 2^32 with large
    spans used to wrap silently here — stack the columns and take a
    row-wise unique, which is exact for any magnitude.
    """
    a = np.asarray(a)
    b = np.asarray(b)
    if (
        np.issubdtype(a.dtype, np.integer)
        and np.issubdtype(b.dtype, np.integer)
    ):
        b_min, b_max = int(b.min()), int(b.max())
        a_min, a_max = int(a.min()), int(a.max())
        if a_min >= 0 and b_min >= 0:
            span = b_max + 1
            if a_max * span + b_max <= _INT64_MAX:
                packed = a.astype(np.int64) * np.int64(span) + b.astype(
                    np.int64
                )
                _, idx = np.unique(packed, return_index=True)
                return idx
    stacked = np.stack(
        [np.asarray(a), np.asarray(b)], axis=1
    )
    _, idx = np.unique(stacked, axis=0, return_index=True)
    return idx
