"""Columnar resilient-dataset abstraction.

An :class:`ArrayRDD` is a list of partitions, each a tuple of aligned 1-D
NumPy arrays (the columns).  The subset of the Spark RDD API the paper's
algorithms use is provided: ``map_partitions``, ``sample`` (PGPBA's
preferential-attachment stage), ``distinct`` (PGSK's collision removal),
``union``, ``collect`` and ``count``.  Transformations execute eagerly —
each partition is timed and reported to the owning
:class:`~repro.engine.context.ClusterContext`, whose scheduler converts the
measured costs into simulated cluster time.
"""

from __future__ import annotations

import time
from typing import Callable, Sequence

import numpy as np

__all__ = ["ArrayRDD"]

Columns = tuple[np.ndarray, ...]


def _validate_partition(cols: Sequence[np.ndarray]) -> Columns:
    cols = tuple(np.asarray(c) for c in cols)
    if not cols:
        raise ValueError("a partition needs at least one column")
    n = cols[0].size
    for c in cols:
        if c.ndim != 1 or c.size != n:
            raise ValueError("partition columns must be aligned 1-D arrays")
    return cols


class ArrayRDD:
    """Partitioned columnar dataset bound to a cluster context.

    ``task_multiplier`` decouples *real* partitions from *simulated* tasks:
    the paper's partition rule (2x executor cores x nodes) yields thousands
    of tiny partitions, which is faithful for Spark but wasteful for a
    local simulator.  Each real partition therefore stands for
    ``task_multiplier`` scheduler tasks — its measured cost is split evenly
    across them before the makespan model runs, so scaling behaviour is
    unchanged while the Python-side partition count stays small.
    """

    def __init__(
        self, context, partitions: list[Columns], *, task_multiplier: int = 1
    ) -> None:
        if not partitions:
            raise ValueError("an RDD needs at least one partition")
        if task_multiplier < 1:
            raise ValueError("task_multiplier must be >= 1")
        self._ctx = context
        self._parts = [_validate_partition(p) for p in partitions]
        self.task_multiplier = task_multiplier
        width = len(self._parts[0])
        if any(len(p) != width for p in self._parts):
            raise ValueError("all partitions must have the same column count")

    # ------------------------------------------------------------------
    @property
    def context(self):
        return self._ctx

    @property
    def n_partitions(self) -> int:
        return len(self._parts)

    @property
    def n_columns(self) -> int:
        return len(self._parts[0])

    def count(self) -> int:
        return sum(int(p[0].size) for p in self._parts)

    def partition_sizes(self) -> np.ndarray:
        """Row count per partition (driver-side metadata, no stage cost)."""
        return np.asarray([p[0].size for p in self._parts], dtype=np.int64)

    def partition_bytes(self) -> np.ndarray:
        return np.asarray(
            [sum(c.nbytes for c in p) for p in self._parts], dtype=np.int64
        )

    def collect(self) -> Columns:
        """Concatenate all partitions into driver-side column arrays."""
        return tuple(
            np.concatenate([p[j] for p in self._parts])
            for j in range(self.n_columns)
        )

    # ------------------------------------------------------------------
    def map_partitions(
        self,
        fn: Callable[[Columns, int], Sequence[np.ndarray]],
        *,
        stage: str = "map_partitions",
    ) -> "ArrayRDD":
        """Apply ``fn(columns, partition_index) -> columns`` per partition.

        The per-partition CPU time is measured and fed to the simulated
        scheduler; this is the workhorse all other transformations build on.
        """
        new_parts: list[Columns] = []
        cpu: list[float] = []
        out_bytes: list[int] = []
        for i, part in enumerate(self._parts):
            t0 = time.perf_counter()
            result = _validate_partition(fn(part, i))
            cpu.append(time.perf_counter() - t0)
            out_bytes.append(sum(c.nbytes for c in result))
            new_parts.append(result)
        rdd = ArrayRDD(
            self._ctx, new_parts, task_multiplier=self.task_multiplier
        )
        self._ctx._record_stage(
            stage, cpu, out_bytes, rdd, multiplier=self.task_multiplier
        )
        return rdd

    def sample(
        self, fraction: float, *, seed: int = 0, stage: str = "sample"
    ) -> "ArrayRDD":
        """Uniform row sample of ``fraction * count`` rows per partition.

        ``fraction > 1`` samples with replacement, as Spark's
        ``RDD.sample(withReplacement=True)`` — PGPBA runs with fraction up
        to 2 in the paper's performance experiments.
        """
        if fraction <= 0:
            raise ValueError("fraction must be positive")
        replace = fraction > 1.0

        def _sample(cols: Columns, pidx: int) -> Columns:
            n = cols[0].size
            # ceil guarantees forward progress: any positive fraction on a
            # non-empty partition yields at least one row (PGPBA's clamped
            # final iteration relies on this to terminate).
            k = int(np.ceil(fraction * n))
            if n == 0 or k == 0:
                return tuple(c[:0] for c in cols)
            rng = np.random.default_rng((seed, pidx))
            if replace or k > n:
                idx = rng.integers(0, n, size=k)
            else:
                idx = rng.choice(n, size=k, replace=False)
            return tuple(c[idx] for c in cols)

        return self.map_partitions(_sample, stage=stage)

    def distinct(
        self, *, key_columns: tuple[int, int] | int = 0,
        stage: str = "distinct",
    ) -> "ArrayRDD":
        """Remove duplicate rows, keying on one int column or a pair.

        Modelled as Spark's two-phase distinct: a map-side per-partition
        de-duplication, then a hash shuffle so equal keys land in the same
        partition, then a reduce-side unique.  The shuffle is charged to
        the simulated clock via the second stage's measured cost.
        """
        if isinstance(key_columns, int):
            key_cols = (key_columns,)
        else:
            key_cols = tuple(key_columns)

        map_side = self.map_partitions(
            lambda cols, i: _unique_rows(cols, key_cols),
            stage=f"{stage}:map",
        )

        # Shuffle: hash-partition rows by key across the same partition
        # count, then reduce-side unique.
        n_parts = self.n_partitions

        def _shuffle_and_reduce() -> list[Columns]:
            all_cols = map_side.collect()
            key = _row_keys(all_cols, key_cols)
            dest = key % n_parts
            parts: list[Columns] = []
            for p in range(n_parts):
                mask = dest == p
                sub = tuple(c[mask] for c in all_cols)
                parts.append(_unique_rows(sub, key_cols))
            return parts

        t0 = time.perf_counter()
        parts = _shuffle_and_reduce()
        elapsed = time.perf_counter() - t0
        rdd = ArrayRDD(
            self._ctx, parts, task_multiplier=self.task_multiplier
        )
        # 75% of the shuffle parallelises across reducers; 25% is the
        # serial coordination/merge component that does not shrink with
        # cluster size — the reason PGSK's strong scaling sits below
        # PGPBA's in the paper's Fig. 12.
        per_task = 0.75 * elapsed / max(1, n_parts)
        self._ctx._record_stage(
            f"{stage}:reduce",
            [per_task] * n_parts,
            [sum(c.nbytes for c in p) for p in parts],
            rdd,
            multiplier=self.task_multiplier,
        )
        self._ctx._record_stage(
            f"{stage}:driver", [0.25 * elapsed], [0], None
        )
        return rdd

    def union(self, other: "ArrayRDD") -> "ArrayRDD":
        """Concatenate partition lists (no data movement, like Spark)."""
        if other.n_columns != self.n_columns:
            raise ValueError("union requires matching column counts")
        return ArrayRDD(
            self._ctx,
            self._parts + other._parts,
            task_multiplier=max(self.task_multiplier, other.task_multiplier),
        )

    def repartition(self, n_partitions: int, *, stage: str = "repartition") -> "ArrayRDD":
        """Rebalance rows into ``n_partitions`` near-equal partitions."""
        if n_partitions < 1:
            raise ValueError("need at least one partition")
        t0 = time.perf_counter()
        cols = self.collect()
        parts: list[Columns] = []
        splits = [np.array_split(c, n_partitions) for c in cols]
        for p in range(n_partitions):
            parts.append(tuple(splits[j][p] for j in range(len(cols))))
        elapsed = time.perf_counter() - t0
        rdd = ArrayRDD(
            self._ctx, parts, task_multiplier=self.task_multiplier
        )
        per_task = elapsed / n_partitions
        self._ctx._record_stage(
            stage,
            [per_task] * n_partitions,
            [sum(c.nbytes for c in p) for p in parts],
            rdd,
            multiplier=self.task_multiplier,
        )
        return rdd

    def reduce_columns(
        self, fn: Callable[[Columns], np.ndarray], *, stage: str = "reduce"
    ) -> np.ndarray:
        """Per-partition reduction followed by a driver-side concat.

        ``fn`` maps a partition to a (possibly scalar-like) array; the
        results are concatenated, mirroring ``RDD.mapPartitions().collect()``
        driver aggregation.
        """
        outs: list[np.ndarray] = []
        cpu: list[float] = []
        for part in self._parts:
            t0 = time.perf_counter()
            outs.append(np.atleast_1d(np.asarray(fn(part))))
            cpu.append(time.perf_counter() - t0)
        self._ctx._record_stage(
            stage, cpu, [o.nbytes for o in outs], None,
            multiplier=self.task_multiplier,
        )
        return np.concatenate(outs)


def _row_keys(cols: Columns, key_cols: tuple[int, ...]) -> np.ndarray:
    if len(key_cols) == 1:
        return cols[key_cols[0]].astype(np.int64)
    a = cols[key_cols[0]].astype(np.int64)
    b = cols[key_cols[1]].astype(np.int64)
    # Cantor-free packing: offset by global max of b within this call.
    span = np.int64(max(int(b.max(initial=0)) + 1, 1))
    return a * span + b


def _unique_rows(cols: Columns, key_cols: tuple[int, ...]) -> Columns:
    if cols[0].size == 0:
        return cols
    keys = _row_keys(cols, key_cols)
    _, idx = np.unique(keys, return_index=True)
    idx.sort()
    return tuple(c[idx] for c in cols)
