"""Block manager: memory-budgeted partition storage with disk spill.

Every materialized RDD partition lives in a :class:`BlockStore` behind a
stable :class:`BlockId`.  Blocks start memory-resident; when the store's
memory budget is exceeded the least-recently-used evictable blocks are
serialized to block files under the spill directory and transparently
reloaded on the next access.  The on-disk format is pluggable (see
``codecs.py``): raw ``.npz``, chunk-compressed zlib/lzma ``.blk``, or
uncompressed ``.blk`` with memory-mapped read-back.  Every codec
round-trips arrays bit-exactly, so a spilled-and-reloaded partition is
byte-identical to the in-memory original — the engine's cross-backend
digest guarantee survives any budget under any codec.

Three storage levels control the lifecycle:

* ``MEMORY_ONLY`` — pinned resident, never evicted (the legacy
  ``persist()`` behaviour).
* ``MEMORY_AND_DISK`` — the default: resident while the budget allows,
  spilled under pressure, cached again on reload.
* ``DISK_ONLY`` — file-resident; reads stream from disk and are never
  cached (checkpointed blocks also behave this way).

When a budget is active, tasks write their output columns to a block
file *worker-side* via a picklable :class:`BlockWriter` and return a
small :class:`SpilledBlockHandle` instead of the arrays themselves, so
the driver never holds a whole dataset at once and the processes
backend ships blocks via files rather than shared-memory pickles.  The
persistent pool backend composes with this transparently: a spill
handle is a few hundred bytes, far below the shared-memory arena's
out-of-band threshold, so budgeted results ride in-band through the
pipe and bypass the arena entirely — the file on disk *is* the
transport.

Durability: :meth:`BlockStore.checkpoint_block` moves a block's file
into the checkpoints directory and marks it ``durable``.  Durable
blocks survive simulated worker loss for free — recovery re-reads the
file — which is what lets ``RDD.checkpoint()`` truncate lineage and
charge zero anchor bytes to ``recovery_recompute_bytes``.
"""

from __future__ import annotations

import os
import re
import shutil
import tempfile
import time
from collections import OrderedDict
from dataclasses import dataclass
from enum import Enum
from pathlib import Path
from typing import Iterable, Sequence

import numpy as np

from repro.engine.storage.codecs import (
    DEFAULT_CODEC,
    WriteInfo,
    get_codec,
    read_block_file,
    resolve_block_codec,
)

Columns = Sequence[np.ndarray]

MEMORY_BUDGET_ENV_VAR = "REPRO_MEMORY_BUDGET"
SPILL_DIR_ENV_VAR = "REPRO_SPILL_DIR"

_UNLIMITED_TOKENS = {"", "none", "off", "unlimited", "inf"}

_SIZE_RE = re.compile(
    r"^\s*(?P<number>\d+(?:\.\d+)?)\s*(?P<unit>[kmgt]i?b?|b)?\s*$",
    re.IGNORECASE,
)

_SIZE_MULTIPLIERS = {
    "b": 1,
    "k": 1024,
    "m": 1024**2,
    "g": 1024**3,
    "t": 1024**4,
}


def parse_size(text: str) -> int:
    """Parse a human byte size ('8MB', '64MiB', '1.5GB', '4096') to bytes.

    Units are powers of 1024; 'MB' and 'MiB' are synonyms.
    """

    match = _SIZE_RE.match(text)
    if match is None:
        raise ValueError(f"unparseable byte size: {text!r}")
    number = float(match.group("number"))
    unit = (match.group("unit") or "b").lower()
    multiplier = _SIZE_MULTIPLIERS[unit[0]]
    return int(number * multiplier)


def resolve_memory_budget(value: "int | str | None" = None) -> "int | None":
    """Resolve the memory budget: explicit argument > env var > unlimited.

    Accepts an int (bytes), a human-readable string ('64MB'), or one of
    the unlimited tokens ('none', 'off', 'unlimited').  Returns None for
    unlimited.
    """

    if value is None:
        value = os.environ.get(MEMORY_BUDGET_ENV_VAR)
        if value is None:
            return None
    if isinstance(value, str):
        if value.strip().lower() in _UNLIMITED_TOKENS:
            return None
        value = parse_size(value)
    budget = int(value)
    if budget < 0:
        raise ValueError(f"memory budget must be >= 0, got {budget}")
    return budget


def resolve_spill_dir(value: "str | os.PathLike | None" = None) -> "str | None":
    """Resolve the spill directory base: explicit argument > env var > tempdir.

    Returns None to mean "use the system tempdir"; the BlockStore always
    creates its own uniquely-named session directory under the base.
    """

    if value is not None:
        return os.fspath(value)
    env = os.environ.get(SPILL_DIR_ENV_VAR)
    if env:
        return env
    return None


class StorageLevel(Enum):
    """Where a persisted/materialized block is allowed to live."""

    MEMORY_ONLY = "memory_only"
    MEMORY_AND_DISK = "memory_and_disk"
    DISK_ONLY = "disk_only"

    @classmethod
    def coerce(cls, value: "StorageLevel | str") -> "StorageLevel":
        if isinstance(value, cls):
            return value
        try:
            return cls(str(value).strip().lower())
        except ValueError:
            names = ", ".join(level.value for level in cls)
            raise ValueError(
                f"unknown storage level {value!r}; expected one of: {names}"
            ) from None


@dataclass(frozen=True)
class BlockId:
    """Stable identity of one materialized partition."""

    rdd_id: int
    partition: int
    attempt: int = 0

    @property
    def stem(self) -> str:
        return f"rdd{self.rdd_id}-p{self.partition}-a{self.attempt}"

    @property
    def filename(self) -> str:
        """Legacy raw-codec name; codec-aware callers use filename_for."""

        return self.stem + ".npz"

    def filename_for(self, extension: str) -> str:
        return self.stem + extension


@dataclass
class StorageStats:
    """Live per-tier byte accounting, surfaced through SimulationMetrics.

    ``disk_bytes`` is the *actual* on-disk footprint (post-codec file
    sizes); ``disk_logical_bytes`` is the pre-codec array bytes those
    files represent.  The ``disk_written_*`` pair accumulates over the
    session (never decremented), so :meth:`compression_ratio` reflects
    everything the codec ever encoded, not just blocks still alive.
    """

    memory_bytes: int = 0
    disk_bytes: int = 0
    disk_logical_bytes: int = 0
    spill_count: int = 0
    reload_count: int = 0
    peak_memory_bytes: int = 0
    disk_high_water_bytes: int = 0
    disk_written_bytes: int = 0
    disk_written_logical_bytes: int = 0
    codec_encode_seconds: float = 0.0
    codec_decode_seconds: float = 0.0

    def add_memory(self, nbytes: int) -> None:
        self.memory_bytes += nbytes
        if self.memory_bytes > self.peak_memory_bytes:
            self.peak_memory_bytes = self.memory_bytes

    def sub_memory(self, nbytes: int) -> None:
        self.memory_bytes -= nbytes

    def add_disk(self, disk_bytes: int, logical_bytes: int) -> None:
        self.disk_bytes += disk_bytes
        self.disk_logical_bytes += logical_bytes
        self.disk_written_bytes += disk_bytes
        self.disk_written_logical_bytes += logical_bytes
        if self.disk_bytes > self.disk_high_water_bytes:
            self.disk_high_water_bytes = self.disk_bytes

    def sub_disk(self, disk_bytes: int, logical_bytes: int) -> None:
        self.disk_bytes -= disk_bytes
        self.disk_logical_bytes -= logical_bytes

    def compression_ratio(self) -> float:
        """Logical-to-disk ratio over everything written (1.0 when idle)."""

        if self.disk_written_bytes <= 0:
            return 1.0
        return self.disk_written_logical_bytes / self.disk_written_bytes

    @property
    def codec_seconds(self) -> float:
        return self.codec_encode_seconds + self.codec_decode_seconds


@dataclass(frozen=True)
class SpilledBlockHandle:
    """What a task returns instead of arrays when it spilled its output.

    ``nbytes`` is the logical (pre-codec) array bytes; ``disk_bytes``
    the actual file size (0 means "unknown", treated as logical by the
    store).  ``codec_seconds`` carries task-side encode time back to
    the driver's :class:`StorageStats`.
    """

    path: str
    rows: int
    nbytes: int
    n_columns: int
    disk_bytes: int = 0
    codec_seconds: float = 0.0


def _handle_from_info(info: WriteInfo, rows: "int | None" = None) -> SpilledBlockHandle:
    return SpilledBlockHandle(
        path=info.path,
        rows=info.rows if rows is None else rows,
        nbytes=info.logical_bytes,
        n_columns=info.n_columns,
        disk_bytes=info.disk_bytes,
        codec_seconds=info.seconds,
    )


def write_block_file(
    path: str, columns: Columns, codec: str = DEFAULT_CODEC
) -> SpilledBlockHandle:
    """Serialize a columnar partition to ``path`` (atomic temp + rename)."""

    columns = tuple(columns)
    info = get_codec(codec).write(path, columns)
    rows = int(columns[0].size) if columns else 0
    return _handle_from_info(info, rows=rows)


def load_block_file(path: str) -> "tuple[np.ndarray, ...]":
    """Load a columnar partition written by any codec (self-describing)."""

    return read_block_file(path)


class ChunkedBlockWriter:
    """Streams column chunks into one block file; handle at close.

    Wraps a codec chunked writer so streaming tasks get back the same
    :class:`SpilledBlockHandle` a whole-partition write would return.
    """

    def __init__(self, path: str, codec: str):
        self._inner = get_codec(codec).open_writer(path)

    def append_columns(self, columns: Columns) -> None:
        self._inner.append_columns(columns)

    def close(self) -> SpilledBlockHandle:
        return _handle_from_info(self._inner.close())

    def abort(self) -> None:
        self._inner.abort()


@dataclass(frozen=True)
class BlockWriter:
    """Picklable task-side writer: serializes blocks under one directory.

    Created driver-side (the directory is made before any fork) and
    captured in task closures, so forked workers and threads can write
    spill files without touching the BlockStore itself.  Carries the
    session's codec name so every task-side file uses the same format.
    """

    directory: str
    codec: str = DEFAULT_CODEC

    @property
    def extension(self) -> str:
        return get_codec(self.codec).extension

    def name_for(self, block_id: BlockId) -> str:
        """Spill filename for a block under this writer's codec."""

        return block_id.filename_for(self.extension)

    def _codec_for(self, name: str) -> str:
        """Honour an explicit extension: files are self-describing and
        reads dispatch on the suffix, so a ``.npz`` name must hold an
        npz archive whatever codec this writer carries (and ``.blk``
        always holds the chunked container — uncompressed when the
        session codec is raw)."""
        if name.endswith(".npz"):
            return "raw"
        if name.endswith(".blk") and self.codec == "raw":
            return "mmap"
        return self.codec

    def write(self, name: str, columns: Columns) -> SpilledBlockHandle:
        return write_block_file(
            os.path.join(self.directory, name),
            columns,
            codec=self._codec_for(name),
        )

    def write_arrays(
        self, name: str, named: "dict[str, np.ndarray]"
    ) -> WriteInfo:
        path = os.path.join(self.directory, name)
        return get_codec(self._codec_for(name)).write_named(path, named)

    def open_chunked(self, name: str) -> ChunkedBlockWriter:
        """A streaming writer for tasks that emit bounded chunks."""

        return ChunkedBlockWriter(
            os.path.join(self.directory, name), self._codec_for(name)
        )


class _MemoryRef:
    """A task-capturable reference to a resident block (arrays inline)."""

    __slots__ = ("columns", "nbytes", "durable")

    def __init__(self, columns, nbytes, durable):
        self.columns = columns
        self.nbytes = nbytes
        self.durable = durable

    def load(self):
        return self.columns


class _DiskRef:
    """A task-capturable reference to a spilled block (path only)."""

    __slots__ = ("path", "nbytes", "durable")

    def __init__(self, path, nbytes, durable):
        self.path = path
        self.nbytes = nbytes
        self.durable = durable

    def load(self):
        return load_block_file(self.path)


@dataclass
class _Entry:
    block_id: BlockId
    columns: "tuple[np.ndarray, ...] | None"
    path: "str | None"
    rows: int
    nbytes: int
    n_columns: int
    level: StorageLevel
    disk_bytes: int = 0
    durable: bool = False
    refs: int = 1


class BlockStore:
    """Owns all materialized partition blocks; spills under a memory budget.

    ``memory_budget_bytes=None`` keeps every block resident (the legacy
    in-memory behaviour, zero disk traffic).  With a budget, the least
    recently used evictable blocks are serialized to the session spill
    directory whenever resident bytes exceed the budget, and tasks are
    asked (via :attr:`spill_task_outputs`) to write their outputs as
    block files directly.
    """

    def __init__(
        self,
        memory_budget_bytes: "int | str | None" = None,
        spill_dir: "str | os.PathLike | None" = None,
        codec: "str | None" = None,
    ):
        self.memory_budget_bytes = resolve_memory_budget(memory_budget_bytes)
        self.codec = resolve_block_codec(codec)
        self._spill_base = resolve_spill_dir(spill_dir)
        self._root: "Path | None" = None
        self._blocks: "dict[BlockId, _Entry]" = {}
        self._lru: "OrderedDict[BlockId, None]" = OrderedDict()
        self._shuffle_ids = iter(range(1 << 62))
        self._shuffle_disk_bytes = 0
        self._closed = False
        self.stats = StorageStats()

    # -- directories -------------------------------------------------

    def _ensure_root(self) -> Path:
        if self._root is None:
            base = self._spill_base
            if base is not None:
                os.makedirs(base, exist_ok=True)
            self._root = Path(
                tempfile.mkdtemp(prefix="repro-spill-", dir=base)
            )
            (self._root / "blocks").mkdir()
            (self._root / "shuffle").mkdir()
            (self._root / "checkpoints").mkdir()
        return self._root

    @property
    def spill_dir(self) -> "Path | None":
        """The session spill directory, if it has been created."""

        return self._root

    @property
    def spill_base(self) -> "str | None":
        """The configured base directory (None means the system tempdir)."""

        return self._spill_base

    def ensure_spill_root(self) -> Path:
        """Create (if needed) and return the session spill directory.

        Public so the cluster backend can advertise it to worker
        daemons up front: spill blocks, shuffle segments and
        checkpoints written under it become remotely fetchable by
        peers through the daemons' block servers."""

        return self._ensure_root()

    def block_writer(self) -> BlockWriter:
        """A picklable writer for task-side block output."""

        return BlockWriter(str(self._ensure_root() / "blocks"), self.codec)

    def shuffle_writer(self) -> BlockWriter:
        """A picklable writer for task-side shuffle segment output."""

        return BlockWriter(str(self._ensure_root() / "shuffle"), self.codec)

    def new_shuffle_id(self) -> int:
        return next(self._shuffle_ids)

    @property
    def spill_task_outputs(self) -> bool:
        """Whether tasks should write outputs as files (budget active)."""

        return self.memory_budget_bytes is not None

    # -- core accounting helpers -------------------------------------

    def _make_resident(self, entry: _Entry, columns: "tuple[np.ndarray, ...]"):
        entry.columns = columns
        self._lru[entry.block_id] = None
        self._lru.move_to_end(entry.block_id)
        self.stats.add_memory(entry.nbytes)

    def _drop_resident(self, entry: _Entry) -> None:
        if entry.columns is None:
            return
        entry.columns = None
        self._lru.pop(entry.block_id, None)
        self.stats.sub_memory(entry.nbytes)

    def _touch(self, entry: _Entry) -> None:
        if entry.columns is not None:
            self._lru.move_to_end(entry.block_id)

    def _write_entry_file(self, entry: _Entry) -> None:
        """Spill a resident entry's arrays to its block file."""

        if entry.path is not None:
            return  # a clean copy already exists on disk: no rewrite
        codec = get_codec(self.codec)
        name = entry.block_id.filename_for(codec.extension)
        path = str(self._ensure_root() / "blocks" / name)
        info = codec.write(path, entry.columns)
        entry.path = path
        entry.disk_bytes = info.disk_bytes
        self.stats.spill_count += 1
        self.stats.codec_encode_seconds += info.seconds
        self.stats.add_disk(info.disk_bytes, entry.nbytes)

    def _delete_entry_file(self, entry: _Entry) -> None:
        if entry.path is None:
            return
        try:
            os.unlink(entry.path)
        except OSError:
            pass
        entry.path = None
        self.stats.sub_disk(entry.disk_bytes, entry.nbytes)
        entry.disk_bytes = 0

    def enforce_budget(self) -> None:
        """Evict least-recently-used evictable blocks until under budget."""

        budget = self.memory_budget_bytes
        if budget is None:
            return
        if self.stats.memory_bytes <= budget:
            return
        for block_id in list(self._lru):
            if self.stats.memory_bytes <= budget:
                break
            entry = self._blocks[block_id]
            if entry.level is StorageLevel.MEMORY_ONLY:
                continue  # pinned
            self._write_entry_file(entry)
            self._drop_resident(entry)

    # -- block API ----------------------------------------------------

    def put(
        self,
        block_id: BlockId,
        columns: Columns,
        level: StorageLevel = StorageLevel.MEMORY_AND_DISK,
    ) -> None:
        """Register freshly computed columns under ``block_id``."""

        if block_id in self._blocks:
            raise ValueError(f"duplicate block: {block_id}")
        columns = tuple(columns)
        entry = _Entry(
            block_id=block_id,
            columns=None,
            path=None,
            rows=int(columns[0].size) if columns else 0,
            nbytes=int(sum(col.nbytes for col in columns)),
            n_columns=len(columns),
            level=level,
        )
        self._blocks[block_id] = entry
        self._make_resident(entry, columns)
        if level is StorageLevel.DISK_ONLY:
            self._write_entry_file(entry)
            self._drop_resident(entry)
        else:
            self.enforce_budget()

    def adopt(
        self,
        block_id: BlockId,
        handle: SpilledBlockHandle,
        level: StorageLevel = StorageLevel.MEMORY_AND_DISK,
    ) -> None:
        """Register a block whose file was already written by a task."""

        if block_id in self._blocks:
            raise ValueError(f"duplicate block: {block_id}")
        disk_bytes = handle.disk_bytes or handle.nbytes
        entry = _Entry(
            block_id=block_id,
            columns=None,
            path=handle.path,
            rows=handle.rows,
            nbytes=handle.nbytes,
            n_columns=handle.n_columns,
            level=level,
            disk_bytes=disk_bytes,
        )
        self._blocks[block_id] = entry
        self.stats.spill_count += 1
        self.stats.codec_encode_seconds += handle.codec_seconds
        self.stats.add_disk(disk_bytes, entry.nbytes)

    def share(self, block_id: BlockId) -> None:
        """Take an additional reference on an existing block."""

        self._blocks[block_id].refs += 1

    def release(self, block_id: BlockId) -> None:
        """Drop one reference; frees memory and disk at zero."""

        if self._closed:
            return
        entry = self._blocks.get(block_id)
        if entry is None:
            return
        entry.refs -= 1
        if entry.refs > 0:
            return
        self._drop_resident(entry)
        self._delete_entry_file(entry)
        del self._blocks[entry.block_id]

    def release_many(self, block_ids: Iterable[BlockId]) -> None:
        for block_id in block_ids:
            self.release(block_id)

    def get(self, block_id: BlockId) -> "tuple[np.ndarray, ...]":
        """Load a block's columns, reloading from disk if spilled."""

        entry = self._blocks[block_id]
        if entry.columns is not None:
            self._touch(entry)
            return entry.columns
        t0 = time.perf_counter()
        columns = load_block_file(entry.path)
        self.stats.codec_decode_seconds += time.perf_counter() - t0
        self.stats.reload_count += 1
        if entry.level is StorageLevel.DISK_ONLY:
            return columns  # stream-through: never cached
        self._make_resident(entry, columns)
        self.enforce_budget()
        return columns

    def task_ref(self, block_id: BlockId):
        """A picklable/forkable reference for capturing in task closures.

        Resident blocks yield a memory reference (arrays inherited
        copy-on-write by forked workers); spilled blocks yield a disk
        reference so workers read the file themselves — the processes
        backend ships spilled blocks via files, not shm pickles.
        """

        entry = self._blocks[block_id]
        if entry.columns is not None:
            self._touch(entry)
            return _MemoryRef(entry.columns, entry.nbytes, entry.durable)
        self.stats.reload_count += 1
        return _DiskRef(entry.path, entry.nbytes, entry.durable)

    def meta(self, block_id: BlockId) -> _Entry:
        """Metadata (rows/nbytes/n_columns/level) without loading data."""

        return self._blocks[block_id]

    def set_level(self, block_id: BlockId, level: StorageLevel) -> None:
        """Re-level an existing block, spilling or pinning as needed."""

        entry = self._blocks[block_id]
        if entry.durable:
            return  # checkpointed blocks stay durable disk files
        entry.level = level
        if level is StorageLevel.DISK_ONLY:
            if entry.columns is not None:
                self._write_entry_file(entry)
                self._drop_resident(entry)
        elif level is StorageLevel.MEMORY_ONLY:
            if entry.columns is None:
                t0 = time.perf_counter()
                columns = load_block_file(entry.path)
                self.stats.codec_decode_seconds += time.perf_counter() - t0
                self.stats.reload_count += 1
                self._make_resident(entry, columns)
            self.enforce_budget()
        else:
            self.enforce_budget()

    def checkpoint_block(self, block_id: BlockId) -> str:
        """Make a block durable: a file in the checkpoints directory.

        The memory copy is dropped (reads go through the file, exactly
        what recovery would see) and the block is excluded from future
        eviction bookkeeping rewrites.  Returns the checkpoint path.
        """

        entry = self._blocks[block_id]
        if entry.durable:
            return entry.path
        codec = get_codec(self.codec)
        if entry.path is None:
            name = entry.block_id.filename_for(codec.extension)
            target = str(self._ensure_root() / "checkpoints" / name)
            info = codec.write(target, entry.columns)
            entry.disk_bytes = info.disk_bytes
            self.stats.spill_count += 1
            self.stats.codec_encode_seconds += info.seconds
            self.stats.add_disk(info.disk_bytes, entry.nbytes)
        else:
            # Keep the existing file's extension: the bytes move as-is.
            name = os.path.basename(entry.path)
            target = str(self._ensure_root() / "checkpoints" / name)
            os.replace(entry.path, target)
        entry.path = target
        entry.durable = True
        entry.level = StorageLevel.DISK_ONLY
        self._drop_resident(entry)
        return target

    # -- shuffle segment accounting -----------------------------------

    def track_shuffle_segments(
        self,
        disk_bytes: int,
        logical_bytes: int,
        n_files: int,
        codec_seconds: float = 0.0,
    ) -> None:
        self._shuffle_disk_bytes += disk_bytes
        self.stats.spill_count += n_files
        self.stats.codec_encode_seconds += codec_seconds
        self.stats.add_disk(disk_bytes, logical_bytes)

    def untrack_shuffle_segments(
        self, disk_bytes: int, logical_bytes: int
    ) -> None:
        self._shuffle_disk_bytes -= disk_bytes
        self.stats.sub_disk(disk_bytes, logical_bytes)

    # -- lifecycle ----------------------------------------------------

    @property
    def n_blocks(self) -> int:
        return len(self._blocks)

    @property
    def memory_bytes(self) -> int:
        return self.stats.memory_bytes

    @property
    def disk_bytes(self) -> int:
        return self.stats.disk_bytes

    def close(self) -> None:
        """Drop all blocks and remove the session spill directory."""

        if self._closed:
            return
        self._closed = True
        self._blocks.clear()
        self._lru.clear()
        if self._root is not None:
            shutil.rmtree(self._root, ignore_errors=True)
            self._root = None
