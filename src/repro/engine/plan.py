"""Lazy lineage plan: pending narrow ops, fusion chains, the planner.

A transformed :class:`~repro.engine.rdd.ArrayRDD` no longer holds data —
it holds one :class:`Pipe` per partition: a reference to a *materialized
anchor* partition (an RDD that already owns its columns, or one marked
``persist()``) plus the ordered chain of narrow per-partition operators
(:class:`PendingOp`) still to be applied.  An action hands the pipes to
:func:`fuse_and_run`, which

* materializes any still-lazy persisted anchors first (a persist boundary
  always breaks a fusion chain),
* dispatches **one fused task per partition** on the context's executor
  backend — the whole chain of narrow ops pipelines through a single
  partition-sized buffer instead of materializing every intermediate RDD
  across all partitions (Spark's narrow-stage pipelining),
* times each operator segment separately inside the task and returns the
  measurements grouped per logical stage, so the simulated cluster clock
  records the *same* stages, task counts, byte volumes and node
  assignments whether fusion is on or off (the two-clock contract: only
  wall time and peak memory change).

What breaks a fusion chain: a shuffle (``distinct``), ``repartition``, a
``persist()`` boundary, and any action (``collect``/``count``/
``reduce_columns``/size metadata).  Wide ops force their inputs through
this planner and then run their existing exchange machinery on
materialized partitions.

``REPRO_FUSION=off`` (or ``ClusterContext(fusion=False)`` /
``--no-fusion`` on the CLI) falls back to the eager path: every
transformation forces immediately, so chains never grow beyond one
operator and the engine behaves exactly like the pre-DAG versions —
kept alive as the reference the equivalence tests and the CI off-run
compare against.

**Adaptive partition coalescing** sits below the simulated-metrics
boundary, exactly like fusion: when ``target_partition_bytes`` is
nonzero, :func:`fuse_and_run` groups consecutive fused partition chains
into *physical* executor tasks of roughly that many input bytes (never
fewer than ``_MIN_COALESCED_CHUNKS`` chunks, so small-stage dispatch is
untouched), and runs empty-partition chains inline in the driver instead
of scheduling them at all.  The grouping is a pure function of cached
partition byte metadata and per-op ``bytes_hint``s — deterministic and
backend-independent, so the physical task list (and with it the
fault-injection coordinates) is identical on every backend.  Each member
chain still times its own operator segments, so the simulated stage
records — task indices, byte volumes, node assignments — are
byte-identical coalesced or not (asserted in tests); only wall-clock
dispatch overhead changes.  ``target_partition_bytes=0`` (env token
``off``) disables coalescing and restores the one-task-per-partition
dispatch.

Recomputation semantics match Spark: forcing an RDD caches *its own*
partitions, never the intermediates of its lineage.  Forking two lazy
branches off one unforced, unpersisted RDD therefore re-runs the shared
prefix (and honestly re-charges it to the simulated clock); ``persist()``
the branch point to compute it once and account its resident bytes.

The same anchoring is what makes fault recovery lineage-based: a fused
task closure captures its *materialized* anchor columns, so when the
recovery layer (:func:`repro.engine.executor.run_with_recovery`) re-runs
a failed task it recomputes exactly the lost partition's chain from its
narrowest persisted or source ancestor — sibling partitions and already
persisted data are never touched, and ``persist()`` doubles as the
recovery checkpoint.
"""

from __future__ import annotations

import itertools
import os
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

import numpy as np

__all__ = [
    "FUSION_ENV_VAR",
    "TARGET_PARTITION_BYTES_ENV_VAR",
    "DEFAULT_TARGET_PARTITION_BYTES",
    "resolve_fusion",
    "resolve_target_partition_bytes",
    "PendingOp",
    "Pipe",
    "StageGroup",
    "fuse_and_run",
]

FUSION_ENV_VAR = "REPRO_FUSION"
TARGET_PARTITION_BYTES_ENV_VAR = "REPRO_TARGET_PARTITION_BYTES"

# Default physical task grain: ~4 MiB of input per executor task, the
# point where per-task dispatch overhead stops mattering relative to
# NumPy kernel time on the partition.
DEFAULT_TARGET_PARTITION_BYTES = 4 * 1024 * 1024

# Never coalesce below this many physical tasks: small stages keep their
# one-task-per-partition dispatch (parallelism is worth more than grain
# there), and existing dispatch-count expectations stay exact.
_MIN_COALESCED_CHUNKS = 8

_TARGET_OFF_TOKENS = frozenset({"off", "none", "0", "disabled"})

_OFF_VALUES = frozenset({"off", "0", "false", "no"})
_ON_VALUES = frozenset({"on", "1", "true", "yes"})


def resolve_fusion(flag: bool | None = None) -> bool:
    """Resolve the fusion switch: explicit argument > env var > on."""
    if flag is not None:
        return bool(flag)
    raw = os.environ.get(FUSION_ENV_VAR)
    if raw is None:
        return True
    value = raw.strip().lower()
    if value in _OFF_VALUES:
        return False
    if value in _ON_VALUES or value == "":
        return True
    raise ValueError(
        f"{FUSION_ENV_VAR} must be one of "
        f"{sorted(_ON_VALUES | _OFF_VALUES)}, got {raw!r}"
    )


def resolve_target_partition_bytes(value: int | str | None = None) -> int:
    """Resolve the coalescing grain: explicit argument > the
    ``REPRO_TARGET_PARTITION_BYTES`` env var > 4 MiB.  Accepts byte
    counts or human sizes (``"256KB"``); ``0`` / ``"off"`` / ``"none"``
    disables coalescing."""
    from repro.engine.storage import parse_size

    if value is None:
        raw = os.environ.get(TARGET_PARTITION_BYTES_ENV_VAR)
        if raw is None or not raw.strip():
            return DEFAULT_TARGET_PARTITION_BYTES
        value = raw
    if isinstance(value, str):
        if value.strip().lower() in _TARGET_OFF_TOKENS:
            return 0
        value = parse_size(value)
    target = int(value)
    if target < 0:
        raise ValueError(
            f"target_partition_bytes must be >= 0 (0 = off), got {target}"
        )
    return target


# Monotone ids give pending ops a global creation order; stages are
# recorded in that order at force time, matching the call order the
# eager path would have recorded them in.
_op_ids = itertools.count()


@dataclass(frozen=True)
class PendingOp:
    """One logical ``map_partitions`` application, not yet executed.

    ``n_tasks`` / ``multiplier`` freeze the shape of the RDD the op was
    applied to: partition *i* of that RDD is simulated task *i* of this
    stage, whichever union position the partition later travels in.

    ``bytes_hint`` (optional, one entry per task index) estimates the
    op's output bytes for the coalescer — essential for generate-style
    stages whose *anchor* is empty: without a hint their input-byte
    estimate is zero and they would all collapse into the driver-inline
    path.  Order-of-magnitude accuracy is enough; hints only weight the
    chunk boundaries, never the simulated metrics.

    ``stream`` marks an op whose ``fn`` returns an *iterator of column
    chunks* instead of one column tuple.  Under a memory budget a
    terminal streaming op flushes each chunk straight through the block
    writer (the partition edge array never materializes in the task);
    otherwise the chunks are concatenated — bit-identical either way.
    """

    fn: Callable[[Sequence[np.ndarray], int], Sequence[np.ndarray]]
    stage: str
    n_tasks: int
    multiplier: int
    bytes_hint: tuple[int, ...] | None = None
    stream: bool = False
    seq: int = field(default_factory=lambda: next(_op_ids))


@dataclass(frozen=True)
class Pipe:
    """Plan for one output partition: anchor partition + pending ops.

    ``ops`` pairs each :class:`PendingOp` with the partition's task index
    in the RDD the op was applied to — the ``pidx`` its function receives
    (RNG streams key on it) and its slot in the stage's task list.
    """

    base: Any  # ArrayRDD (kept untyped to avoid a circular import)
    index: int
    ops: tuple[tuple[PendingOp, int], ...] = ()


@dataclass(frozen=True)
class StageGroup:
    """Per-logical-stage measurements harvested from fused tasks."""

    op: PendingOp
    task_indices: list[int]
    cpu_seconds: list[float]
    bytes_out: list[int]


def _make_fused_task(ref, ops, validate, writer=None, out_name=None):
    """Build one executor task running a whole chain of narrow ops.

    ``ref`` is a block reference from the store: resident blocks hand
    the task their arrays directly, spilled blocks hand it a file path
    the worker reads itself (loading happens *outside* the timed
    segments — storage I/O is not simulated cluster compute, so the
    Fig. 8-12 series stay identical under any memory budget).  When
    ``writer`` is set (a memory budget is active) the task serializes
    its output to ``out_name`` worker-side and returns a small
    :class:`~repro.engine.storage.SpilledBlockHandle` instead of the
    arrays, so the driver never accumulates a whole dataset of results.

    Each operator segment is timed separately (`two clocks`: the
    simulated scheduler needs per-stage costs, not per-fused-task costs)
    and its output bytes captured; intermediates die as soon as the next
    segment consumed them, so the task's transient footprint is one
    partition, not one RDD.
    """

    def _task():
        current = ref.load()
        segments = []
        handle = None
        n_ops = len(ops)
        for oi, (op, task_index) in enumerate(ops):
            if op.stream:
                # Streaming op: fn returns an iterator of column chunks.
                # Only the generator's own compute (the next() calls) is
                # timed — chunk serialization is storage I/O, untimed
                # like every other block write, so the simulated stage
                # costs match the monolithic path.
                gen = iter(op.fn(current, task_index))
                current = None  # the input dies as chunks stream out
                terminal_spill = oi == n_ops - 1 and writer is not None
                out_writer = (
                    writer.open_chunked(out_name) if terminal_spill else None
                )
                chunks = None if terminal_spill else []
                elapsed = 0.0
                nbytes_out = 0
                n_chunks = 0
                while True:
                    t0 = time.perf_counter()
                    try:
                        chunk = next(gen)
                    except StopIteration:
                        elapsed += time.perf_counter() - t0
                        break
                    elapsed += time.perf_counter() - t0
                    chunk = validate(chunk)
                    nbytes_out += sum(c.nbytes for c in chunk)
                    n_chunks += 1
                    if out_writer is not None:
                        out_writer.append_columns(chunk)
                    else:
                        chunks.append(chunk)
                if n_chunks == 0:
                    raise ValueError(
                        f"streaming op {op.stage!r} yielded no chunks"
                    )
                segments.append((op.seq, task_index, elapsed, nbytes_out))
                if out_writer is not None:
                    handle = out_writer.close()
                else:
                    width = len(chunks[0])
                    current = tuple(
                        chunks[0][j]
                        if len(chunks) == 1
                        else np.concatenate([ch[j] for ch in chunks])
                        for j in range(width)
                    )
                continue
            t0 = time.perf_counter()
            current = validate(op.fn(current, task_index))
            elapsed = time.perf_counter() - t0
            segments.append(
                (
                    op.seq,
                    task_index,
                    elapsed,
                    sum(c.nbytes for c in current),
                )
            )
        if handle is not None:
            return handle, segments
        if writer is not None:
            return writer.write(out_name, current), segments
        return current, segments

    # Chain-aware recovery accounting: a retried fused task recomputes
    # every operator segment *plus* — unless the anchor is durable (a
    # checkpoint file survives the simulated worker loss; an in-memory
    # or persist()-ed anchor does not) — the anchor partition itself.
    # This is what makes checkpoint() strictly cheaper to recover
    # through than persist() under a fault plan.
    anchor_bytes = 0 if ref.durable else ref.nbytes

    def _recovery_bytes(value):
        return anchor_bytes + sum(seg[3] for seg in value[1])

    _task.recovery_bytes = _recovery_bytes
    return _task


def _make_chunk_task(subtasks):
    """One physical executor task running several fused partition chains
    back to back — what the coalescer dispatches.  Returns the list of
    per-chain ``(payload, segments)`` results; each member chain still
    times its own operator segments, so the simulated stage records are
    harvested exactly as if every chain had been its own task."""

    def _task():
        return [task() for task in subtasks]

    def _recovery_bytes(values):
        return sum(
            task.recovery_bytes(value)
            for task, value in zip(subtasks, values)
        )

    _task.recovery_bytes = _recovery_bytes
    return _task


def _estimate_partition_bytes(pipe: Pipe) -> int:
    """Deterministic size estimate for one pipe: the anchor partition's
    stored bytes (cached metadata — spilled blocks are never loaded)
    maxed with any operator ``bytes_hint``.  A pure function of plan
    state, never of executor parallelism, so the chunk composition it
    drives is identical on every backend."""
    estimate = int(pipe.base.partition_bytes()[pipe.index])
    for op, task_index in pipe.ops:
        hint = op.bytes_hint
        if hint is not None and task_index < len(hint):
            estimate = max(estimate, int(hint[task_index]))
    return estimate


def fuse_and_run(ctx, pipes: Sequence[Pipe], *, target_id: int = 0):
    """Execute a partition-pipe plan; return ``(results, stage_groups)``.

    ``results`` holds, per output partition, either the computed column
    tuple, a :class:`~repro.engine.storage.SpilledBlockHandle` when a
    memory budget made the task write its output file worker-side
    (``target_id`` namespaces those block files), or a
    :class:`~repro.engine.storage.BlockId` for pipes with an empty chain
    (pure union passthrough) — resolved by reference on the driver: no
    task, no copy, no stage record, exactly like the eager ``union``.

    With a nonzero ``ctx.target_partition_bytes``, chains estimated at
    zero bytes (empty partitions, e.g. a ``split_array`` over fewer rows
    than partitions or a zero-count generate slot) run inline in the
    driver — their operator functions, segment timings and stage records
    are exactly those of a dispatched task, minus the dispatch — and the
    rest are coalesced into ~target-sized physical tasks via
    :func:`~repro.engine.partitioner.chunk_weights`.
    """
    from repro.engine.partitioner import chunk_weights
    from repro.engine.rdd import _validate_partition
    from repro.engine.storage import BlockId

    # A persisted-but-lazy anchor materializes first (and registers its
    # resident bytes); its chain is its own, never fused into ours.
    seen: set[int] = set()
    for pipe in pipes:
        if id(pipe.base) not in seen:
            seen.add(id(pipe.base))
            pipe.base._force()

    store = ctx.storage
    writer = store.block_writer() if store.spill_task_outputs else None
    work = [(i, pipe) for i, pipe in enumerate(pipes) if pipe.ops]

    def _task_for(i: int, pipe: Pipe):
        return _make_fused_task(
            pipe.base._task_ref(pipe.index),
            pipe.ops,
            _validate_partition,
            writer,
            writer.name_for(BlockId(target_id, i)) if writer else None,
        )

    results: list = [None] * len(pipes)
    for i, pipe in enumerate(pipes):
        if not pipe.ops:
            results[i] = pipe.base._blocks[pipe.index]
    raw_segments: list[tuple[int, int, float, int]] = []

    target = getattr(ctx, "target_partition_bytes", 0)
    if target and len(work) > 1:
        estimates = [_estimate_partition_bytes(pipe) for _, pipe in work]
        inline = [k for k, est in enumerate(estimates) if est == 0]
        remote = [k for k, est in enumerate(estimates) if est > 0]
        for k in inline:
            i, pipe = work[k]
            payload, segments = _task_for(i, pipe)()
            results[i] = payload
            raw_segments.extend(segments)
        groups = (
            chunk_weights(
                [estimates[k] for k in remote],
                target,
                min_chunks=_MIN_COALESCED_CHUNKS,
            )
            if remote
            else []
        )
        chunk_tasks = []
        chunk_members = []
        for group in groups:
            members = [remote[position] for position in group]
            chunk_tasks.append(
                _make_chunk_task([_task_for(*work[k]) for k in members])
            )
            chunk_members.append(members)
        ctx.metrics.tasks_inlined += len(inline)
        if chunk_tasks:
            outs = ctx.run_tasks(chunk_tasks, emitted=len(work))
        else:
            ctx.metrics.tasks_emitted += len(work)
            outs = []
        for members, chunk_out in zip(chunk_members, outs):
            for k, (payload, segments) in zip(members, chunk_out):
                i, _pipe = work[k]
                results[i] = payload
                raw_segments.extend(segments)
    else:
        outs = (
            ctx.run_tasks([_task_for(i, pipe) for i, pipe in work])
            if work
            else []
        )
        for (i, _pipe), (payload, segments) in zip(work, outs):
            results[i] = payload
            raw_segments.extend(segments)

    ops_by_seq = {
        op.seq: op for pipe in pipes for op, _ in pipe.ops
    }
    # Group measurements per logical stage; duplicate task indices (an
    # RDD unioned with itself re-runs its chain) keep the first
    # measurement so the stage's task list stays one entry per partition.
    grouped: dict[int, dict[int, tuple[float, int]]] = {}
    for seq, task_index, elapsed, nbytes in raw_segments:
        grouped.setdefault(seq, {}).setdefault(
            task_index, (elapsed, nbytes)
        )
    stage_groups = []
    for seq in sorted(grouped):
        op = ops_by_seq[seq]
        by_task = grouped[seq]
        task_indices = sorted(by_task)
        stage_groups.append(
            StageGroup(
                op=op,
                task_indices=task_indices,
                cpu_seconds=[by_task[t][0] for t in task_indices],
                bytes_out=[by_task[t][1] for t in task_indices],
            )
        )
    return results, stage_groups
