"""ClusterScheduler in isolation: determinism, monotonicity, conservation.

The scheduler is the pure function behind every Fig. 8-12 series:
measured task costs in, simulated makespan + task records out.  These
tests pin the model properties the benchmarks implicitly rely on —
assignment determinism, makespan monotonicity in work added, capacity
monotonicity for uniform loads, and byte conservation in the memory
meter.

(Node-count monotonicity is asserted for *uniform* costs only: with
heterogeneous costs, round-robin placement can genuinely assign both
expensive tasks to the same node of a larger cluster — e.g. costs
[10, 1, 1, 10] on 1-core nodes pack to 11s on 2 nodes but 20s on 3 —
so the general claim is false, by design.)
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine.metrics import TaskRecord
from repro.engine.scheduler import ClusterScheduler, NodeSpec


def _makespan(sched, costs, sizes=None):
    costs = np.asarray(costs, dtype=np.float64)
    if sizes is None:
        sizes = np.zeros(costs.size, dtype=np.int64)
    makespan, _records = sched.stage_makespan("s", costs, sizes)
    return makespan


class TestAssignNodes:
    def test_deterministic_and_round_robin(self):
        sched = ClusterScheduler(3, 2)
        first = sched.assign_nodes(10)
        second = sched.assign_nodes(10)
        assert np.array_equal(first, second)
        assert np.array_equal(first, np.arange(10) % 3)

    def test_prefix_property(self):
        """The assignment of the first k tasks never depends on how many
        tasks follow — the property that makes appending work monotone."""
        sched = ClusterScheduler(4, 2)
        assert np.array_equal(
            sched.assign_nodes(17)[:5], sched.assign_nodes(5)
        )

    def test_all_nodes_used_when_enough_tasks(self):
        sched = ClusterScheduler(5, 2)
        assert set(sched.assign_nodes(11).tolist()) == set(range(5))


class TestMakespanMonotonicity:
    @pytest.mark.parametrize("n_nodes,cores", [(1, 1), (2, 2), (3, 4)])
    def test_monotone_in_task_count(self, n_nodes, cores):
        """Appending tasks (any costs) never shrinks the stage."""
        sched = ClusterScheduler(n_nodes, cores)
        rng = np.random.default_rng(7)
        costs = rng.uniform(0.001, 0.1, size=24)
        spans = [
            _makespan(sched, costs[:k]) for k in range(1, costs.size + 1)
        ]
        assert all(b >= a - 1e-12 for a, b in zip(spans, spans[1:]))

    def test_monotone_in_node_count_uniform_costs(self):
        """For uniform task costs, adding nodes never slows the stage."""
        costs = np.full(36, 0.01)
        spans = [
            _makespan(ClusterScheduler(n, 2), costs) for n in range(1, 9)
        ]
        assert all(b <= a + 1e-12 for a, b in zip(spans, spans[1:]))

    def test_heterogeneous_node_count_counterexample(self):
        """The documented counterexample: more nodes, worse makespan —
        round-robin is not an optimal placement, and the model keeps
        Spark standalone's even allocation on purpose."""
        costs = np.array([10.0, 1.0, 1.0, 10.0])
        sched2 = ClusterScheduler(2, 1, per_task_overhead=0.0)
        sched3 = ClusterScheduler(3, 1, per_task_overhead=0.0)
        assert _makespan(sched2, costs) < _makespan(sched3, costs)

    def test_contention_kicks_in_past_saturation(self):
        """Cores beyond the saturation wall scale costs up, not down."""
        costs = np.full(12, 0.01)
        fast = ClusterScheduler(1, 12)
        slow = ClusterScheduler(1, 20)
        assert fast.contention_factor == 1.0
        assert slow.contention_factor == pytest.approx(20 / 12)
        assert _makespan(slow, costs) >= _makespan(fast, costs)


class TestStageRecords:
    def test_records_align_with_inputs(self):
        sched = ClusterScheduler(2, 2)
        cpu = np.array([0.01, 0.02, 0.03])
        out = np.array([100, 200, 300], dtype=np.int64)
        _span, records = sched.stage_makespan("grow", cpu, out)
        assert [r.partition for r in records] == [0, 1, 2]
        assert [r.node for r in records] == [0, 1, 0]
        assert [r.bytes_out for r in records] == [100, 200, 300]
        assert all(isinstance(r, TaskRecord) for r in records)
        assert all(r.stage == "grow" for r in records)

    def test_empty_stage(self):
        sched = ClusterScheduler(2, 2)
        span, records = sched.stage_makespan(
            "empty", np.empty(0), np.empty(0, dtype=np.int64)
        )
        assert span == 0.0 and records == []

    def test_misaligned_inputs_rejected(self):
        sched = ClusterScheduler(2, 2)
        with pytest.raises(ValueError, match="aligned"):
            sched.stage_makespan(
                "bad", np.array([0.1, 0.2]), np.array([1], dtype=np.int64)
            )


class TestPerNodeBytesConservation:
    @pytest.mark.parametrize("n_nodes", [1, 3, 5])
    def test_sum_conserved_plus_overhead(self, n_nodes):
        """Every partition byte lands on exactly one node; the only
        addition is the fixed per-node platform overhead."""
        sched = ClusterScheduler(n_nodes, 2)
        rng = np.random.default_rng(11)
        part_bytes = rng.integers(0, 10**6, size=17, dtype=np.int64)
        per_node = sched.per_node_bytes(part_bytes)
        assert per_node.shape == (n_nodes,)
        overhead = n_nodes * sched.node.memory_overhead_bytes
        assert int(per_node.sum()) == int(part_bytes.sum()) + overhead

    def test_empty_dataset_is_pure_overhead(self):
        sched = ClusterScheduler(4, 2)
        per_node = sched.per_node_bytes(np.empty(0, dtype=np.int64))
        assert (per_node == sched.node.memory_overhead_bytes).all()

    def test_matches_explicit_assignment(self):
        sched = ClusterScheduler(3, 2)
        part_bytes = np.array([10, 20, 30, 40, 50], dtype=np.int64)
        nodes = sched.assign_nodes(5)
        expected = np.zeros(3, dtype=np.int64)
        np.add.at(expected, nodes, part_bytes)
        expected += sched.node.memory_overhead_bytes
        assert np.array_equal(sched.per_node_bytes(part_bytes), expected)


class TestNodeSpec:
    def test_defaults_are_shadow_ii(self):
        spec = NodeSpec()
        assert spec.physical_cores == 20
        assert spec.saturation_cores == 12

    def test_cores_clamped_to_physical(self):
        sched = ClusterScheduler(1, 64)
        assert sched.executor_cores == sched.node.physical_cores
