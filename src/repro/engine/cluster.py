"""Multi-host "cluster" executor: socket worker daemons + remote blocks.

This is the pool backend promoted to sockets (ROADMAP item 1, DESIGN.md
§12).  Three pieces:

:class:`WorkerDaemon` / ``repro worker --listen <addr>``
    A standalone asyncio server.  Each driver connection handshakes
    (protocol version + session config) and gets a private *task child*
    — a process forked to run the pool backend's
    :func:`~repro.engine.executor._pool_worker_main` loop verbatim, so
    task semantics (in-order execution, arena result transport,
    ``os._exit`` on injected kills) are identical to the pool.  The
    daemon's event loop bridges socket frames to the child's pipe and
    keeps answering heartbeat pings while the child computes, so a slow
    task never looks like a dead worker.  Fetch connections serve
    spill/shuffle blocks by file name to peers (see below).

:class:`ClusterExecutor` (``ClusterContext(executor="cluster",
workers=[...])`` / ``REPRO_WORKERS`` / ``--workers``)
    The driver side: connects to each daemon, ships the existing
    ``("run", blob, ...)`` cloudpickle batches as length-prefixed frames
    with large array buffers out-of-band (pickle protocol 5), and
    mirrors :class:`~repro.engine.executor.PoolExecutor`'s scheduling:
    each link holds a bounded window of in-flight batches
    (``REPRO_MAX_INFLIGHT``), workers report strictly in dispatch
    order, a death blames the first unreported task with
    :class:`~repro.engine.executor.WorkerDied` and requeues the rest —
    so :func:`~repro.engine.executor.run_with_recovery` lineage
    recomputation and :class:`~repro.engine.faults.FaultPlan` injection
    coordinates work unchanged.  Peer loss is detected two ways: socket
    EOF/reset (daemon killed) and heartbeat timeout (daemon hung).

:class:`BlockFetcher`
    The remote tier of the BlockStore: installed via
    :func:`repro.engine.storage.codecs.set_missing_file_resolver` on the
    driver and (pre-fork, so children inherit it) in each daemon, it
    resolves a missing spill/shuffle file by asking every peer daemon
    for the file by name and materialising the bytes at the expected
    path — so reduce tasks pull shuffle segments worker-to-worker
    instead of through the driver.  Blocks travel as their on-disk
    codec containers (PR 6), already compressed and checksummed, and
    stream as bounded chunks (RBLK01 chunk-table aligned when the file
    is an RBLK container) instead of one whole-file frame; with
    ``REPRO_FETCH_PREFETCH`` > 0, background connections pull the
    *predicted next* shuffle segments while the current reduce task
    computes, so fetch latency overlaps compute worker-to-worker.

Transport performance (DESIGN.md §14): dispatch is pipelined — up to
``REPRO_MAX_INFLIGHT`` batches ride each link so the driver serializes
and ships batch N+1 while the daemon's task child computes batch N —
and large out-of-band buffers are compressed with the handshake's
negotiated wire codec (``REPRO_WIRE_CODEC``, zlib by default).

Determinism: the cluster backend changes only *where* tasks run, never
what they compute — digests and simulated stage records stay
byte-identical to the serial backend per seed, which is enforced by
folding "cluster" into ``available_backends()`` for every existing
backend-matrix test.
"""

from __future__ import annotations

import asyncio
import contextlib
import multiprocessing as mp
import os
import pickle
import re
import select
import socket
import subprocess
import sys
import threading
import time
from collections import deque
from pathlib import Path
from typing import Any, Callable, Sequence

from .executor import (
    _ARENA_MIN_BYTES,
    _Arena,
    _ArenaReader,
    _cloudpickle,
    _own_tree,
    _pool_worker_main,
    _unlink_segment_names,
    Executor,
    SpeculationPolicy,
    Task,
    TaskOutcome,
    WorkerDied,
    resolve_task_batch,
)
from .netproto import (
    PROTOCOL_VERSION,
    WIRE_COMPRESS_MIN_BYTES,
    ProtocolError,
    a_recv_frame,
    a_recv_message,
    a_send_message,
    build_frame,
    client_handshake,
    connect,
    decode_buffers,
    negotiate_wire_codec,
    parse_address,
    recv_message,
    resolve_heartbeat_interval,
    resolve_heartbeat_timeout,
    resolve_max_inflight,
    resolve_wire_codec,
    send_message,
)

__all__ = [
    "CLUSTER_WORKERS_ENV_VAR",
    "FETCH_PREFETCH_ENV_VAR",
    "ClusterExecutor",
    "WorkerDaemon",
    "BlockFetcher",
    "predict_next_segments",
    "resolve_cluster_workers",
    "resolve_fetch_prefetch",
    "sockets_available",
    "launch_worker",
    "shutdown_worker",
]

CLUSTER_WORKERS_ENV_VAR = "REPRO_WORKERS"
FETCH_PREFETCH_ENV_VAR = "REPRO_FETCH_PREFETCH"
DEFAULT_FETCH_PREFETCH = 0


def resolve_fetch_prefetch(value: "int | str | None" = None) -> int:
    """Background block-prefetch connections per fetcher: explicit
    argument > ``REPRO_FETCH_PREFETCH`` > 0 (off)."""
    if value is None:
        env = os.environ.get(FETCH_PREFETCH_ENV_VAR)
        if env is None or not env.strip():
            return DEFAULT_FETCH_PREFETCH
        value = env
    try:
        count = int(str(value).strip())
    except ValueError as exc:
        raise ValueError(
            f"{FETCH_PREFETCH_ENV_VAR} must be an integer >= 0, "
            f"got {value!r}"
        ) from exc
    if count < 0:
        raise ValueError(
            f"{FETCH_PREFETCH_ENV_VAR} must be >= 0, got {count}"
        )
    return count


def resolve_cluster_workers(
    value: "Sequence[str] | str | None" = None, *, required: bool = True
) -> list[str]:
    """Resolve the cluster worker address list: explicit argument >
    ``REPRO_WORKERS`` (comma/whitespace separated ``host:port`` or
    ``unix:/path`` specs)."""
    if value is None:
        value = os.environ.get(CLUSTER_WORKERS_ENV_VAR, "")
    if isinstance(value, str):
        specs = [s for s in value.replace(",", " ").split() if s]
    else:
        specs = [str(s).strip() for s in value if str(s).strip()]
    if not specs and required:
        raise ValueError(
            "the 'cluster' backend needs worker addresses: start daemons "
            "with 'repro worker --listen host:port' and list them in "
            f"{CLUSTER_WORKERS_ENV_VAR} (comma-separated) or "
            "ClusterContext(workers=[...])"
        )
    for spec in specs:
        parse_address(spec)  # fail fast on malformed entries
    return specs


def sockets_available() -> bool:
    """Can this host bind a loopback TCP socket?  (Sandboxes may not.)"""
    try:
        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            probe.bind(("127.0.0.1", 0))
            probe.listen(1)
        finally:
            probe.close()
        return True
    except OSError:
        return False


# ----------------------------------------------------------------------
# Remote block fetch (the BlockStore's worker-to-worker tier)
# ----------------------------------------------------------------------

def _locate_block(roots: Sequence[str], name: str) -> "Path | None":
    """Find a served block file by bare name under any served root.

    Names are opaque ids (spill blocks, shuffle segments, checkpoints
    all embed unique ids in their file names), so a flat name search is
    exact; anything path-like is rejected outright — a fetch request
    can never escape the served roots."""
    if (
        not name
        or os.sep in name
        or (os.altsep and os.altsep in name)
        or name in (".", "..")
        or name.startswith(".")
    ):
        return None
    for root in roots:
        if not os.path.isdir(root):
            continue
        for dirpath, _dirnames, filenames in os.walk(root):
            if name in filenames:
                return Path(dirpath) / name
    return None


# Shuffle segment names are sequential in their map/destination indices
# (rdd.py): exchange members are ``ex{shuffle}-m{mapper}{ext}``, extsort
# runs are ``es{shuffle}-m{mapper}-d{dest}{ext}``.  A reduce task that
# just fetched one segment will very likely need the neighbouring ones
# next — that locality is what the prefetcher exploits.
_ES_SEGMENT = re.compile(r"^(es\d+-m)(\d+)(-d)(\d+)(\.[A-Za-z0-9.]+)$")
_EX_SEGMENT = re.compile(r"^(ex\d+-m)(\d+)(\.[A-Za-z0-9.]+)$")


def predict_next_segments(name: str) -> "list[str]":
    """Shuffle segments likely to be fetched right after ``name``
    (successor in the same run, same slot of the next mapper); empty
    for names with no recognisable sequence."""
    match = _ES_SEGMENT.match(name)
    if match:
        head, mapper, dsep, dest, ext = match.groups()
        return [
            f"{head}{mapper}{dsep}{int(dest) + 1}{ext}",
            f"{head}{int(mapper) + 1}{dsep}{dest}{ext}",
        ]
    match = _EX_SEGMENT.match(name)
    if match:
        head, mapper, ext = match.groups()
        return [f"{head}{int(mapper) + 1}{ext}"]
    return []


class BlockFetcher:
    """Missing-file resolver that pulls blocks from peer worker daemons.

    Installed via :func:`~repro.engine.storage.codecs.
    set_missing_file_resolver`; called with the path a reader wanted and
    did not find.  Asks each peer for the file by name over a cached
    fetch connection; the peer streams it as bounded chunks (RBLK
    chunk-table aligned, wire-compressed above the size threshold) that
    are written incrementally to a tmp file and renamed into place only
    when the stream completes — a dropped connection mid-transfer leaves
    no torn block *and no orphan tmp file*.  Returns True iff some peer
    had the block.

    With ``prefetch`` > 0 (``REPRO_FETCH_PREFETCH``), that many
    background threads — each with its own fetch connections — pull the
    segments :func:`predict_next_segments` names into an in-memory
    staging dict, so the next reduce task's fetch is usually a local
    memory copy (counted in ``prefetch_hits``)."""

    _STAGE_MAX_ENTRIES = 32

    def __init__(
        self,
        peers: Sequence[str],
        *,
        exclude: Sequence[str] = (),
        timeout: float = 10.0,
        transport: Any = None,
        wire_codec: "str | None" = None,
        prefetch: "int | None" = None,
    ) -> None:
        skip = set(exclude)
        self.peers = [str(p) for p in peers if str(p) not in skip]
        self.timeout = timeout
        self.transport = transport
        self.wire_codec = resolve_wire_codec(wire_codec)
        self.prefetch = resolve_fetch_prefetch(prefetch)
        self.fetched = 0
        self.fetched_bytes = 0
        self.misses = 0
        self.prefetched = 0
        self.prefetch_hits = 0
        self._socks: dict[str, socket.socket] = {}
        self._lock = threading.Lock()
        self._meter_lock = threading.Lock()
        self._staged: dict[str, bytes] = {}
        self._queue: deque = deque()
        self._queue_cv = threading.Condition()
        self._threads: list[threading.Thread] = []
        # Prefetch threads (and cached sockets) never survive a fork;
        # each process lazily starts its own on first use.
        self._threads_pid: "int | None" = None
        self._closing = False

    # -- connection plumbing -------------------------------------------
    def _open(self, peer: str) -> socket.socket:
        sock = connect(peer, timeout=self.timeout)
        client_handshake(
            sock, {"role": "fetch", "wire_codec": self.wire_codec}
        )
        return sock

    def _drop(self, peer: str) -> None:
        sock = self._socks.pop(peer, None)
        if sock is not None:
            with contextlib.suppress(OSError):
                sock.close()

    def _meter(self, wire: int, raw: int, trips: int) -> None:
        if self.transport is None:
            return
        with self._meter_lock:
            self.transport.network_bytes += wire
            self.transport.network_raw_bytes += raw
            self.transport.round_trips += trips

    def _stream(self, sock: socket.socket, name: str, sink) -> bool:
        """Request one block over an established fetch connection and
        feed its chunks to ``sink``; True when the stream completed,
        False when the peer doesn't have (or aborted) the block.  Raises
        on connection trouble — the caller drops the socket, so a
        partially-consumed stream can never desynchronise later
        requests."""
        wire = raw = trips = 0
        try:
            w, r = send_message(sock, ("fetch", name))
            wire, raw, trips = wire + w, raw + r, trips + 1
            while True:
                reply = recv_message(sock)
                if reply is None:
                    raise ConnectionError(
                        f"fetch peer closed the connection mid-stream "
                        f"for {name!r}"
                    )
                obj, buffers, w, r = reply
                wire, raw, trips = wire + w, raw + r, trips + 1
                tag = obj[0]
                if tag == "chunk":
                    if buffers:
                        sink(buffers[0])
                    continue
                if tag == "fetch-end":
                    return True
                if tag == "fetch-err":
                    return False
                raise ProtocolError(
                    f"unexpected fetch reply {tag!r} for {name!r}"
                )
        finally:
            self._meter(wire, raw, trips)

    # -- foreground fetch ----------------------------------------------
    def _materialise(self, path: Path, write) -> "int | None":
        """Run ``write(fh)`` against a tmp file next to ``path`` and
        rename it into place; the tmp file is unlinked on *any* failure
        (dropped connections used to orphan these).  Returns the byte
        count on success, None when the writer reported a miss."""
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f".{path.name}.fetch-{os.getpid()}")
        placed = False
        try:
            with open(tmp, "wb") as fh:
                nbytes = write(fh)
            if nbytes is not None:
                os.replace(tmp, path)
                placed = True
            return nbytes
        finally:
            if not placed:
                with contextlib.suppress(OSError):
                    os.unlink(tmp)

    def _fetch_to(self, peer: str, name: str, path: Path) -> bool:
        sock = self._socks.get(peer)
        if sock is None:
            sock = self._open(peer)
            self._socks[peer] = sock

        def write(fh) -> "int | None":
            total = 0

            def sink(chunk: bytes) -> None:
                nonlocal total
                fh.write(chunk)
                total += len(chunk)

            return total if self._stream(sock, name, sink) else None

        nbytes = self._materialise(path, write)
        if nbytes is None:
            return False
        self.fetched_bytes += nbytes
        return True

    def _take_staged(self, name: str) -> "bytes | None":
        with self._queue_cv:
            return self._staged.pop(name, None)

    def __call__(self, path: "Path | str") -> bool:
        path = Path(path)
        name = path.name
        with self._lock:
            staged = self._take_staged(name)
            if staged is not None:
                self._materialise(path, lambda fh: fh.write(staged) or len(staged))
                self.fetched += 1
                self.fetched_bytes += len(staged)
                self.prefetch_hits += 1
                self._enqueue_predictions(name)
                return True
            for peer in list(self.peers):
                try:
                    hit = self._fetch_to(peer, name, path)
                except (OSError, ConnectionError, ProtocolError, ValueError):
                    self._drop(peer)
                    continue
                if hit:
                    self.fetched += 1
                    self._enqueue_predictions(name)
                    return True
            self.misses += 1
            return False

    # -- background prefetch -------------------------------------------
    def _enqueue_predictions(self, name: str) -> None:
        if self.prefetch <= 0:
            return
        self._ensure_prefetch_threads()
        with self._queue_cv:
            for successor in predict_next_segments(name):
                if successor in self._staged or successor in self._queue:
                    continue
                self._queue.append(successor)
            self._queue_cv.notify_all()

    def _ensure_prefetch_threads(self) -> None:
        pid = os.getpid()
        if self._threads_pid != pid:
            self._threads = []
            self._threads_pid = pid
        while len(self._threads) < self.prefetch:
            thread = threading.Thread(
                target=self._prefetch_loop,
                name=f"repro-prefetch-{len(self._threads)}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def _prefetch_loop(self) -> None:
        socks: dict[str, socket.socket] = {}
        try:
            while True:
                with self._queue_cv:
                    while not self._queue and not self._closing:
                        self._queue_cv.wait(timeout=1.0)
                    if self._closing:
                        return
                    name = self._queue.popleft()
                    if name in self._staged:
                        continue
                chunks: list[bytes] = []
                done = False
                for peer in list(self.peers):
                    sock = socks.get(peer)
                    try:
                        if sock is None:
                            sock = self._open(peer)
                            socks[peer] = sock
                        done = self._stream(sock, name, chunks.append)
                    except (
                        OSError, ConnectionError, ProtocolError, ValueError
                    ):
                        dead = socks.pop(peer, None)
                        if dead is not None:
                            with contextlib.suppress(OSError):
                                dead.close()
                        chunks.clear()
                        continue
                    if done:
                        break
                    chunks.clear()
                if not done:
                    continue
                with self._queue_cv:
                    self._staged[name] = b"".join(chunks)
                    self.prefetched += 1
                    while len(self._staged) > self._STAGE_MAX_ENTRIES:
                        self._staged.pop(next(iter(self._staged)))
        finally:
            for sock in socks.values():
                with contextlib.suppress(OSError):
                    sock.close()

    def close(self) -> None:
        with self._queue_cv:
            self._closing = True
            self._queue_cv.notify_all()
        for thread in self._threads:
            thread.join(timeout=2.0)
        self._threads = []
        with self._lock:
            for peer in list(self._socks):
                self._drop(peer)


# ----------------------------------------------------------------------
# Worker daemon (the `repro worker --listen <addr>` server)
# ----------------------------------------------------------------------

def _daemon_child_main(
    conn: Any, inherited_fds: "tuple[int, ...]", result_arenas: int = 1
) -> None:
    """Task-child entry point: drop the daemon's inherited sockets
    before running the pool worker loop.  A fork child that keeps the
    listening fd would hold the port open after the daemon is killed —
    connects would land in a backlog nobody accepts — and a kept
    accepted-connection fd would stop the driver's socket from seeing
    EOF when the daemon dies.

    ``result_arenas`` is the session's in-flight window: under
    pipelined dispatch this child computes batch N+1 while the daemon
    is still copying batch N's result buffers out to the driver socket,
    so the result arena must be a ring as deep as the window."""
    for fd in inherited_fds:
        with contextlib.suppress(OSError):
            os.close(fd)
    _pool_worker_main(conn, result_arenas=result_arenas)


def _pump_child(conn: Any, proc: Any, loop: Any, queue: Any) -> None:
    """Bridge thread: blocking-read the task child's pipe, hand each
    reply to the daemon event loop.  On EOF the child is gone — report
    its exit code so the driver can run death recovery."""
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break
        try:
            loop.call_soon_threadsafe(queue.put_nowait, msg)
        except RuntimeError:  # event loop already closed
            return
    proc.join()
    with contextlib.suppress(RuntimeError):
        loop.call_soon_threadsafe(
            queue.put_nowait, ("__died__", proc.exitcode)
        )


async def _a_send_compressed(
    writer: asyncio.StreamWriter,
    obj: Any,
    buffers: Sequence,
    codec: str,
) -> "tuple[int, int]":
    """Send a frame, building (and compressing) it off the event loop
    when a buffer is large enough for the codec to engage; small or
    uncompressed frames skip the thread hop."""
    if codec != "off" and any(
        memoryview(buf).nbytes >= WIRE_COMPRESS_MIN_BYTES for buf in buffers
    ):
        parts, wire, raw = await asyncio.to_thread(
            build_frame, obj, list(buffers), codec
        )
        for part in parts:
            writer.write(bytes(part) if isinstance(part, memoryview) else part)
        await writer.drain()
        return wire, raw
    return await a_send_message(writer, obj, buffers)


def _fetch_chunk_plan(path: Path) -> "list[tuple[int, int]]":
    """Spans to stream a served block file in: the RBLK01 chunk table
    when the file is an RBLK container (each compressed payload chunk is
    one frame, the footer rides the final span), fixed
    ``REPRO_CODEC_CHUNK_BYTES`` slices otherwise."""
    from .storage.codecs import _read_rblk_footer, resolve_codec_chunk_bytes

    size = os.path.getsize(path)
    if size == 0:
        return []
    spans: "list[tuple[int, int]]" = []
    try:
        with open(path, "rb") as fh:
            footer = _read_rblk_footer(fh)
        chunks = sorted(
            (int(chunk[0]), int(chunk[1]))
            for meta in footer["arrays"]
            for chunk in meta["chunks"]
        )
        end = 0
        for offset, length in chunks:
            if offset != end:  # overlap/gap: fall back to fixed slicing
                raise ValueError("non-contiguous chunk table")
            spans.append((offset, length))
            end = offset + length
        if end > size:
            raise ValueError("chunk table past EOF")
        if end < size:
            spans.append((end, size - end))  # JSON footer + magic tail
        return spans
    except (ValueError, KeyError, TypeError, OSError):
        step = resolve_codec_chunk_bytes()
        return [
            (offset, min(step, size - offset))
            for offset in range(0, size, step)
        ]


def _read_span(path: Path, offset: int, length: int) -> bytes:
    with open(path, "rb") as fh:
        fh.seek(offset)
        return fh.read(length)


class _DriverSession:
    """One driver connection's server-side state: a private task child
    running :func:`_pool_worker_main` over a fork pipe, plus the arenas
    bridging socket frames to the pool wire protocol.

    Pipelined dispatch needs one task arena per in-flight batch: the
    child holds views into batch N's arena until it finishes computing
    N, so recycling a single arena while shipping batch N+1 would
    corrupt N's buffers mid-task.  The handshake's ``max_inflight``
    sizes a ring of arenas cycled per dispatch — the driver never has
    more than that many batches outstanding, so by the time a slot
    comes around again its previous batch has fully replied."""

    def __init__(self, daemon: "WorkerDaemon", config: dict, loop) -> None:
        self.daemon = daemon
        self.loop = loop
        self.queue: asyncio.Queue = asyncio.Queue()
        window = max(1, min(int(config.get("max_inflight") or 1), 64))
        self.task_arenas = [_Arena() for _ in range(window)]
        self._dispatch_seq = 0
        # Task-child deaths reported to the driver so far.  A run frame
        # stamped with a lower epoch was dispatched by the driver before
        # it learned of the death — the driver has already requeued those
        # tasks, so executing the frame here would double-run them.
        self.child_deaths = 0
        self.wire_codec = negotiate_wire_codec(config.get("wire_codec"))
        self.reader = _ArenaReader()
        self.proc: Any = None
        self.conn: Any = None
        self._mp_ctx = mp.get_context("fork")
        # Install the remote-fetch resolver BEFORE any fork, so task
        # children inherit it: a reduce task that misses a shuffle
        # segment on local disk pulls it from a peer daemon directly.
        peers = [str(p) for p in config.get("peers", ())]
        self._fetcher: "BlockFetcher | None" = None
        self._had_resolver = False
        self._previous_resolver: Any = None
        if peers:
            from .storage.codecs import set_missing_file_resolver

            self._fetcher = BlockFetcher(
                peers,
                exclude=(daemon.bound_address or "",),
                wire_codec=self.wire_codec,
                prefetch=config.get("fetch_prefetch"),
            )
            self._previous_resolver = set_missing_file_resolver(self._fetcher)
            self._had_resolver = True

    def _spawn_child(self) -> None:
        from multiprocessing import resource_tracker

        resource_tracker.ensure_running()
        parent_conn, child_conn = self._mp_ctx.Pipe(duplex=True)
        proc = self._mp_ctx.Process(
            target=_daemon_child_main,
            args=(
                child_conn,
                self.daemon.child_close_fds(),
                len(self.task_arenas),
            ),
            daemon=True,
        )
        proc.start()
        child_conn.close()
        self.proc, self.conn = proc, parent_conn
        self.daemon.children_forked += 1
        threading.Thread(
            target=_pump_child,
            args=(parent_conn, proc, self.loop, self.queue),
            daemon=True,
        ).start()

    def dispatch(self, blob: bytes, buffers: Sequence[bytes]) -> None:
        """Forward one ("run", blob)+buffers frame to the task child as
        a pool-protocol batch: out-of-band socket buffers become task
        arena descriptors the child maps by name.  Arenas come from the
        in-flight ring — the slot being recycled belongs to a batch the
        driver has fully collected (see the class docstring).

        Only a retired child (``proc is None``) triggers a respawn: a
        child that is dead but not yet reported must NOT be replaced
        here, or a batch the driver still counts against the dead child
        would run on the new one.  Writes to the dead pipe are simply
        lost — the driver requeues them when the death report lands."""
        if self.proc is None:
            self._spawn_child()
        arena = self.task_arenas[self._dispatch_seq % len(self.task_arenas)]
        self._dispatch_seq += 1
        arena.recycle()
        descriptors = [arena.write(memoryview(buf)) for buf in buffers]
        try:
            self.conn.send(("run", blob, descriptors))
            self.daemon.batches_dispatched += 1
        except (OSError, ValueError):
            # Child died as we wrote; the pump thread reports the death
            # and the driver requeues this batch.
            pass

    async def pump_replies(self, writer: asyncio.StreamWriter) -> None:
        """Forward child replies to the driver socket.  Result arena
        views are copied to bytes immediately — the child recycles its
        arena on the next batch, the socket frame must outlive that.
        Frames with compressible payloads are built in a worker thread
        so multi-megabyte zlib passes never stall the event loop (which
        must keep answering heartbeat pings)."""
        while True:
            msg = await self.queue.get()
            tag = msg[0]
            if tag == "ok":
                _tag, key, payload, descriptors, duration = msg
                buffers = [
                    bytes(self.reader.view(*descriptor))
                    for descriptor in descriptors
                ]
                await _a_send_compressed(
                    writer,
                    ("ok", key, payload, duration),
                    buffers,
                    self.wire_codec,
                )
            elif tag == "err":
                await a_send_message(writer, ("err", msg[1], msg[2], msg[3]))
            elif tag == "__died__":
                self.child_deaths += 1
                self._retire_child()
                self.daemon.children_died += 1
                await a_send_message(writer, ("died", msg[1]))

    def _retire_child(self) -> None:
        proc, conn = self.proc, self.conn
        self.proc = self.conn = None
        if proc is None:
            return
        proc.join(timeout=5.0)
        if proc.is_alive():  # pragma: no cover - stuck child
            proc.terminate()
            proc.join(timeout=5.0)
        result_segments = list(self.reader.segments)
        self.reader.close()
        _unlink_segment_names(result_segments)
        self.reader = _ArenaReader()
        if conn is not None:
            with contextlib.suppress(OSError):
                conn.close()

    def close(self) -> None:
        if self.conn is not None:
            with contextlib.suppress(OSError, ValueError):
                self.conn.send(("stop",))
        self._retire_child()
        for arena in self.task_arenas:
            arena.destroy()
        if self._fetcher is not None:
            self._fetcher.close()
        if self._had_resolver:
            from .storage.codecs import set_missing_file_resolver

            set_missing_file_resolver(self._previous_resolver)


class WorkerDaemon:
    """Asyncio server side of the cluster backend.

    ``listen`` is a ``host:port`` (port 0 = ephemeral) or ``unix:/path``
    spec; ``served_roots`` seeds the directories whose files the fetch
    protocol may serve (driver handshakes add their session spill roots
    to the set).  One daemon serves any number of sequential or
    concurrent driver sessions, each with its own task child.
    """

    def __init__(
        self, listen: str = "127.0.0.1:0", *, served_roots: Sequence = ()
    ) -> None:
        parse_address(listen)  # fail fast
        self.listen_spec = listen
        self.served_roots: set[str] = {str(Path(r)) for r in served_roots}
        self.bound_address: "str | None" = None
        self.children_forked = 0
        self.children_died = 0
        self.batches_dispatched = 0
        self.blocks_served = 0
        self.sessions_served = 0
        self._server: Any = None
        self._stop: "asyncio.Event | None" = None
        self._client_fds: set[int] = set()

    def child_close_fds(self) -> "tuple[int, ...]":
        """Daemon-owned socket fds a forked task child must close: the
        listening sockets plus every live accepted connection."""
        fds = set(self._client_fds)
        if self._server is not None:
            for sock in self._server.sockets:
                fds.add(sock.fileno())
        return tuple(fd for fd in fds if fd >= 0)

    # -- lifecycle -----------------------------------------------------
    async def start(self) -> str:
        addr = parse_address(self.listen_spec)
        self._stop = asyncio.Event()
        if addr[0] == "unix":
            self._server = await asyncio.start_unix_server(
                self._handle, path=addr[1]
            )
            self.bound_address = f"unix:{addr[1]}"
        else:
            self._server = await asyncio.start_server(
                self._handle, addr[1], addr[2]
            )
            host, port = self._server.sockets[0].getsockname()[:2]
            self.bound_address = f"{host}:{port}"
        return self.bound_address

    def request_stop(self) -> None:
        if self._stop is not None:
            self._stop.set()

    async def _main(self, announce: "Callable[[str], None] | None") -> None:
        await self.start()
        if announce is not None:
            announce(self.bound_address)
        try:
            await self._stop.wait()
        finally:
            self._server.close()
            await self._server.wait_closed()
            addr = parse_address(self.listen_spec)
            if addr[0] == "unix":
                with contextlib.suppress(OSError):
                    os.unlink(addr[1])

    def run(self, *, announce: "Callable[[str], None] | None" = None) -> None:
        """Blocking entry point (the ``repro worker`` subcommand)."""
        asyncio.run(self._main(announce))

    # -- connection handling -------------------------------------------
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        conn_sock = writer.get_extra_info("socket")
        conn_fd = conn_sock.fileno() if conn_sock is not None else -1
        if conn_fd >= 0:
            self._client_fds.add(conn_fd)
        try:
            frame = await a_recv_message(reader)
            if frame is None:
                return
            obj, _buffers, _wire, _raw = frame
            if not (
                isinstance(obj, tuple) and len(obj) >= 3 and obj[0] == "hello"
            ):
                await a_send_message(
                    writer, ("hello-err", f"expected hello, got {obj!r}")
                )
                return
            version, config = obj[1], obj[2]
            if version != PROTOCOL_VERSION:
                await a_send_message(
                    writer,
                    (
                        "hello-err",
                        f"protocol version mismatch: peer speaks {version}, "
                        f"worker speaks {PROTOCOL_VERSION}",
                    ),
                )
                return
            for root in config.get("spill_roots", ()):
                self.served_roots.add(str(root))
            agreed_codec = negotiate_wire_codec(config.get("wire_codec"))
            await a_send_message(
                writer,
                (
                    "hello-ok",
                    PROTOCOL_VERSION,
                    {
                        "pid": os.getpid(),
                        "roots": len(self.served_roots),
                        "wire_codec": agreed_codec,
                    },
                ),
            )
            if config.get("role") == "fetch":
                await self._serve_fetch(reader, writer, agreed_codec)
            else:
                self.sessions_served += 1
                await self._serve_driver(reader, writer, config)
        except (ConnectionError, OSError, ProtocolError):
            pass
        finally:
            self._client_fds.discard(conn_fd)
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _serve_fetch(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        codec: str = "off",
    ) -> None:
        """Serve block files as streams of bounded chunk frames: one
        frame per RBLK payload chunk (fixed-size slices for non-RBLK
        files), wire-compressed per the negotiated codec, terminated by
        ``fetch-end``.  File reads and frame compression run in worker
        threads, so slow disks never stall the daemon's event loop."""
        while True:
            frame = await a_recv_message(reader)
            if frame is None:
                return
            obj, _buffers, _wire, _raw = frame
            if obj[0] != "fetch":
                await a_send_message(
                    writer, ("fetch-err", f"unexpected message {obj[0]!r}")
                )
                continue
            name = obj[1]
            roots = tuple(self.served_roots)
            path = await asyncio.to_thread(_locate_block, roots, name)
            if path is None:
                await a_send_message(
                    writer,
                    (
                        "fetch-err",
                        f"block {name!r} not found under "
                        f"{len(roots)} served root(s)",
                    ),
                )
                continue
            try:
                plan = await asyncio.to_thread(_fetch_chunk_plan, path)
                total = 0
                for seq, (offset, length) in enumerate(plan):
                    data = await asyncio.to_thread(
                        _read_span, path, offset, length
                    )
                    await _a_send_compressed(
                        writer, ("chunk", name, seq), [data], codec
                    )
                    total += length
            except OSError as exc:
                # The file vanished or turned unreadable mid-stream
                # (e.g. a concurrent spill eviction): abort the stream.
                # The client discards the partial tmp file.
                await a_send_message(
                    writer, ("fetch-err", f"read failed for {name!r}: {exc}")
                )
                continue
            self.blocks_served += 1
            await a_send_message(writer, ("fetch-end", name, total))

    async def _serve_driver(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        config: dict,
    ) -> None:
        """Bridge one driver connection to its task child.

        The recv loop only parses frames and answers pings; ``run``
        frames are handed — still compressed — to a single dispatcher
        task that decompresses them in a worker thread and forwards them
        to the child in arrival order.  Decoupling the two keeps
        heartbeat pongs prompt while a large batch inflates, which is
        what stops the driver's timeout sweep from declaring this daemon
        dead under heavy pipelined dispatch."""
        loop = asyncio.get_running_loop()
        session = _DriverSession(self, config, loop)
        pump = asyncio.ensure_future(session.pump_replies(writer))
        runs: asyncio.Queue = asyncio.Queue()

        async def _dispatch_runs() -> None:
            while True:
                blob, epoch, entries = await runs.get()
                if epoch < session.child_deaths:
                    # Stamped before a death the driver has since been
                    # told about: the driver requeued these tasks, so
                    # running them here would double-execute them (and
                    # desync its strict-order reply accounting).
                    continue
                if any(codec_id for codec_id, _payload, _raw in entries):
                    buffers = await asyncio.to_thread(decode_buffers, entries)
                else:
                    buffers = [payload for _cid, payload, _raw in entries]
                session.dispatch(blob, buffers)

        dispatcher = asyncio.ensure_future(_dispatch_runs())
        try:
            while True:
                frame = await a_recv_frame(reader)
                if frame is None:
                    break
                obj, entries, _wire, _raw = frame
                tag = obj[0]
                if tag == "ping":
                    await a_send_message(writer, ("pong", obj[1]))
                elif tag == "run":
                    epoch = obj[2] if len(obj) > 2 else 0
                    runs.put_nowait((obj[1], epoch, entries))
                elif tag == "stop":
                    break
                elif tag == "shutdown":
                    self.request_stop()
                    break
        finally:
            for task in (dispatcher, pump):
                task.cancel()
                with contextlib.suppress(asyncio.CancelledError):
                    await task
            session.close()


# ----------------------------------------------------------------------
# Daemon process helpers (tests, CI, benchmarks)
# ----------------------------------------------------------------------

def launch_worker(
    listen: str = "127.0.0.1:0",
    *,
    roots: Sequence = (),
    env: "dict[str, str] | None" = None,
    timeout: float = 30.0,
) -> "tuple[subprocess.Popen, str]":
    """Spawn a ``repro worker`` daemon subprocess; returns
    ``(process, bound_address)`` once the daemon announces it is
    listening (ephemeral port 0 resolves to the real port)."""
    import repro

    src_dir = str(Path(repro.__file__).resolve().parents[1])
    full_env = dict(os.environ if env is None else env)
    full_env["PYTHONPATH"] = (
        src_dir + os.pathsep + full_env["PYTHONPATH"]
        if full_env.get("PYTHONPATH")
        else src_dir
    )
    cmd = [sys.executable, "-m", "repro.cli", "worker", "--listen", listen]
    for root in roots:
        cmd += ["--root", str(root)]
    proc = subprocess.Popen(
        cmd,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=full_env,
    )
    line: list[str] = []

    def _read() -> None:
        line.append(proc.stdout.readline())

    reader = threading.Thread(target=_read, daemon=True)
    reader.start()
    reader.join(timeout)
    banner = line[0] if line else ""
    if not banner.startswith("listening on "):
        proc.kill()
        proc.wait(timeout=5.0)
        reader.join(timeout=1.0)  # readline sees EOF once proc is dead
        with contextlib.suppress(OSError):
            proc.stdout.close()
        raise RuntimeError(
            f"worker daemon failed to start (said {banner!r})"
        )
    # The daemon prints nothing after the banner; close our end of the
    # pipe now or the Popen leaks an fd (ResourceWarning under -X dev).
    proc.stdout.close()
    return proc, banner[len("listening on "):].strip()


def shutdown_worker(spec: str, timeout: float = 5.0) -> bool:
    """Ask a daemon to exit cleanly; False if it was unreachable."""
    try:
        sock = connect(spec, timeout=timeout)
    except (OSError, ValueError):
        return False
    try:
        client_handshake(sock, {"role": "driver", "peers": []})
        send_message(sock, ("shutdown",))
        return True
    except (OSError, ConnectionError, ProtocolError):
        return False
    finally:
        with contextlib.suppress(OSError):
            sock.close()


# ----------------------------------------------------------------------
# Driver side
# ----------------------------------------------------------------------

class _Link:
    """Driver-side record of one connected worker daemon."""

    __slots__ = (
        "spec", "sock", "assigned", "batch_sizes", "wire_codec", "epoch",
        "batch_started", "last_heard", "last_ping",
    )

    def __init__(self, spec: str, sock: socket.socket) -> None:
        self.spec = spec
        self.sock = sock
        self.assigned: deque = deque()  # of (key, is_backup), dispatch order
        self.batch_sizes: deque = deque()  # unreported tasks per in-flight batch
        self.wire_codec = "off"  # what the daemon agreed to in hello-ok
        self.epoch = 0  # task-child generation: +1 per ("died", ...) seen
        self.batch_started = 0.0
        now = time.monotonic()
        self.last_heard = now
        self.last_ping = now


class ClusterExecutor(Executor):
    """Socket driver for remote worker daemons — the pool backend's
    scheduling contract over TCP/unix sockets.

    Dispatch is pipelined: every link carries up to ``max_inflight``
    batches (``REPRO_MAX_INFLIGHT``, default 2), so the driver
    serializes, compresses and ships batch N+1 while the daemon's task
    child computes batch N.  Each daemon's task child still reports
    strictly in dispatch order across the whole window, so a link loss
    blames exactly the first unreported task (:class:`WorkerDied`) and
    requeues the rest — the same recovery surface the pool exposes,
    which is what lets :func:`run_with_recovery` and deterministic
    fault injection work unchanged.  Two loss detectors: socket EOF/reset, and a heartbeat
    (ping every ``heartbeat_interval`` seconds to each busy link, dead
    after ``heartbeat_timeout`` seconds of silence).  A daemon whose
    *task child* died (e.g. an injected ``os._exit`` kill) reports
    ``("died", exitcode)`` and stays in the ring; only daemon loss
    removes the link.  Lost links are retried at the next batch, so a
    restarted daemon rejoins transparently.

    Unlike the local backends, ``workers`` is not a count — it is the
    address list (``ClusterContext(workers=[...])`` / ``REPRO_WORKERS``).
    """

    name = "cluster"

    def __init__(
        self,
        workers: "Sequence[str] | str | None" = None,
        *,
        task_batch: "int | None" = None,
        heartbeat_interval: "float | None" = None,
        heartbeat_timeout: "float | None" = None,
        connect_timeout: float = 10.0,
        max_inflight: "int | None" = None,
        wire_codec: "str | None" = None,
        fetch_prefetch: "int | None" = None,
    ) -> None:
        if _cloudpickle is None:
            raise ValueError(
                "the 'cluster' backend needs cloudpickle for task "
                "transport; use 'processes' instead"
            )
        self.addresses = resolve_cluster_workers(workers)
        super().__init__(len(self.addresses))
        self.task_batch = resolve_task_batch(task_batch)
        self.heartbeat_interval = resolve_heartbeat_interval(
            heartbeat_interval
        )
        self.heartbeat_timeout = resolve_heartbeat_timeout(heartbeat_timeout)
        self.connect_timeout = connect_timeout
        self.max_inflight = resolve_max_inflight(max_inflight)
        self.wire_codec = resolve_wire_codec(wire_codec)
        self.fetch_prefetch = resolve_fetch_prefetch(fetch_prefetch)
        self._links: list[_Link] = []
        self._lost: list[str] = []
        self._spill_roots: set[str] = set()
        self._fetcher: "BlockFetcher | None" = None
        self._previous_resolver: Any = None
        self.batches_sent = 0
        self.workers_lost = 0
        self.workers_rejoined = 0
        self.children_died = 0

    # -- link management ----------------------------------------------
    def register_spill_root(self, path) -> None:
        """Advertise a spill/shuffle directory to every daemon (called
        by the context once storage exists; daemons serve these files
        to peers through the fetch protocol)."""
        self._spill_roots.add(str(path))

    def _handshake_config(self) -> dict:
        return {
            "role": "driver",
            "peers": list(self.addresses),
            "spill_roots": sorted(self._spill_roots),
            "max_inflight": self.max_inflight,
            "wire_codec": self.wire_codec,
            "fetch_prefetch": self.fetch_prefetch,
        }

    def _connect_link(self, spec: str) -> _Link:
        sock = connect(spec, timeout=self.connect_timeout)
        try:
            info = client_handshake(sock, self._handshake_config())
        except BaseException:
            with contextlib.suppress(OSError):
                sock.close()
            raise
        link = _Link(spec, sock)
        link.wire_codec = negotiate_wire_codec(info.get("wire_codec"))
        return link

    def _ensure_links(self) -> None:
        initial = not self._links and not self._lost
        specs = list(self.addresses) if initial else list(self._lost)
        for spec in specs:
            try:
                link = self._connect_link(spec)
            except (OSError, ConnectionError, ProtocolError) as exc:
                if initial:
                    raise RuntimeError(
                        f"cannot reach cluster worker {spec!r} (from "
                        f"{CLUSTER_WORKERS_ENV_VAR} / workers=[...]): {exc}"
                    ) from exc
                continue  # still down; retried on the next batch
            self._links.append(link)
            if not initial:
                self._lost.remove(spec)
                self.workers_rejoined += 1
        if not self._links:
            raise RuntimeError(
                "no cluster workers reachable: "
                + ", ".join(repr(s) for s in self.addresses)
            )
        if self._fetcher is None:
            from .storage.codecs import set_missing_file_resolver

            self._fetcher = BlockFetcher(
                self.addresses,
                transport=self.transport,
                wire_codec=self.wire_codec,
                prefetch=self.fetch_prefetch,
            )
            self._previous_resolver = set_missing_file_resolver(self._fetcher)

    # -- scheduling (mirrors PoolExecutor) -----------------------------
    def run_outcomes(
        self,
        tasks: Sequence[Task],
        *,
        speculation: "SpeculationPolicy | None" = None,
        speculative_tasks: "Sequence[Task] | None" = None,
        on_speculate: "Callable[[int], None] | None" = None,
    ) -> list[TaskOutcome]:
        if not tasks:
            return []
        if len(tasks) <= 1:
            # In-driver fallback: injected kills degrade to
            # SimulatedWorkerDeath (see FaultPlan.wrap), same as pool.
            return self._run_inline(tasks)
        return self._run_cluster(
            tasks, speculation, speculative_tasks or tasks, on_speculate
        )

    def _send_batch(
        self, link: _Link, entries: "list[tuple[int, Task, bool]]"
    ) -> bool:
        """Ship one batch over a link; False if the link is gone (the
        caller requeues the entries and drops the link)."""
        serialize_started = time.perf_counter()
        # Serialize/compress time spent while any worker already holds a
        # batch is overlapped with remote compute — that overlap is the
        # payoff of pipelined dispatch, metered in overlap_seconds.
        overlapped = any(other.assigned for other in self._links)
        payload = [(key, fn) for key, fn, _ in entries]
        buffers: list = []

        # Same out-of-band policy as the pool arena (PEP 574): truthy
        # keeps a buffer in-band, falsy hands it to us for the socket.
        def _callback(buffer: pickle.PickleBuffer) -> bool:
            try:
                raw = buffer.raw()
            except Exception:  # noqa: BLE001 - non-contiguous: in-band
                return True
            if raw.nbytes < _ARENA_MIN_BYTES:
                return True
            buffers.append(raw)
            return False

        blob = _cloudpickle.dumps(
            payload, protocol=5, buffer_callback=_callback
        )
        send_started = time.perf_counter()
        try:
            # The epoch stamps this batch with how many task-child deaths
            # the driver has processed on this link; the daemon drops any
            # batch stamped before its own death count, so a batch that
            # was in flight when the child died (already blamed and
            # requeued here) can never also run on the replacement child.
            wire, raw_wire = send_message(
                link.sock,
                ("run", blob, link.epoch),
                buffers,
                codec=link.wire_codec,
            )
        except (OSError, ValueError):
            return False
        now = time.perf_counter()
        self.transport.serialize_seconds += send_started - serialize_started
        self.transport.submit_seconds += now - send_started
        if overlapped:
            self.transport.overlap_seconds += now - serialize_started
        self.transport.payload_bytes += len(blob) + sum(
            buf.nbytes for buf in buffers
        )
        self.transport.network_bytes += wire
        self.transport.network_raw_bytes += raw_wire
        self.transport.round_trips += 1
        for key, _fn, is_backup in entries:
            link.assigned.append((key, is_backup))
        link.batch_sizes.append(len(entries))
        link.batch_started = time.monotonic()
        self.batches_sent += 1
        return True

    def _copies_in_flight(self, key: int) -> bool:
        return any(
            assigned_key == key
            for link in self._links
            for assigned_key, _backup in link.assigned
        )

    def _run_cluster(
        self,
        tasks: Sequence[Task],
        policy: "SpeculationPolicy | None",
        duplicates: Sequence[Task],
        on_speculate: "Callable[[int], None] | None",
    ) -> list[TaskOutcome]:
        self._ensure_links()
        n = len(tasks)
        outcomes: "list[TaskOutcome | None]" = [None] * n
        held_errors: dict[int, BaseException] = {}
        durations: list[float] = []
        speculated: set[int] = set()
        pending: deque = deque(range(n))
        while any(o is None for o in outcomes):
            live = max(1, len(self._links))
            limit = self.task_batch or max(1, -(-n // (2 * live)))
            # Breadth-first feed: give every link one batch per pass
            # (not one link its whole window) so early batches spread
            # across daemons, then keep topping up until every link
            # holds max_inflight batches or the queue drains.  Batch
            # N+1 ships while a worker computes batch N — serialize and
            # compute overlap instead of alternating.
            fed = True
            while fed and pending:
                fed = False
                for link in list(self._links):
                    if not pending:
                        break
                    if len(link.batch_sizes) >= self.max_inflight:
                        continue
                    entries = []
                    while pending and len(entries) < limit:
                        i = pending.popleft()
                        if outcomes[i] is None:
                            entries.append((i, tasks[i], False))
                    if not entries:
                        continue
                    if self._send_batch(link, entries):
                        fed = True
                    else:
                        pending.extendleft(
                            key for key, _fn, _b in reversed(entries)
                        )
                        self._fail_link(
                            link, "send failed",
                            outcomes, held_errors, pending,
                        )
            busy = [link for link in self._links if link.assigned]
            if not busy:
                if self._links:
                    continue  # conclusions above freed work; loop re-feeds
                # Every daemon is gone mid-batch.  Mark what is left
                # unresolved as WorkerDied instead of raising: the
                # recovery layer backs off and retries, and the next
                # round's _ensure_links re-dials lost daemons (raising
                # only if none ever come back).
                for i in range(n):
                    if outcomes[i] is None:
                        outcomes[i] = TaskOutcome(
                            error=held_errors.get(i)
                            or WorkerDied(
                                f"all {len(self.addresses)} cluster "
                                "workers lost before task "
                                f"{i} completed"
                            )
                        )
                break
            poll = (
                policy.poll_interval_seconds
                if policy is not None
                else self.heartbeat_interval
            )
            timeout = min(poll, self.heartbeat_interval)
            wait_started = time.perf_counter()
            try:
                ready, _, _ = select.select(
                    [link.sock for link in busy], [], [], timeout
                )
            except OSError:
                ready = []
            self.transport.ipc_wait_seconds += (
                time.perf_counter() - wait_started
            )
            by_sock = {link.sock: link for link in busy}
            for sock in ready:
                link = by_sock.get(sock)
                if link is not None and link in self._links:
                    self._drain_link(
                        link, outcomes, held_errors, durations, pending
                    )
            self._heartbeat_sweep(outcomes, held_errors, pending)
            if policy is not None:
                self._maybe_speculate(
                    policy,
                    duplicates,
                    outcomes,
                    durations,
                    speculated,
                    on_speculate,
                    n,
                )
        return outcomes  # type: ignore[return-value]

    def _drain_link(
        self,
        link: _Link,
        outcomes: "list[TaskOutcome | None]",
        held_errors: dict,
        durations: list[float],
        pending: deque,
    ) -> None:
        """Absorb everything a readable link has to say; EOF or a reset
        mid-read means the daemon is gone."""
        while link in self._links:
            try:
                readable, _, _ = select.select([link.sock], [], [], 0)
            except OSError:
                readable = [link.sock]
            if not readable:
                return
            try:
                frame = recv_message(link.sock)
            except (ConnectionError, OSError, ProtocolError) as exc:
                self._fail_link(
                    link, f"connection lost: {exc}",
                    outcomes, held_errors, pending,
                )
                return
            if frame is None:
                self._fail_link(
                    link, "connection closed",
                    outcomes, held_errors, pending,
                )
                return
            obj, buffers, wire, raw_wire = frame
            link.last_heard = time.monotonic()
            self.transport.network_bytes += wire
            self.transport.network_raw_bytes += raw_wire
            self.transport.round_trips += 1
            tag = obj[0]
            if tag == "pong":
                continue
            if tag == "died":
                self._absorb_death(
                    link, obj[1], outcomes, held_errors, pending
                )
                continue
            self._absorb(
                link, obj, buffers, outcomes, held_errors, durations
            )

    def _absorb(
        self,
        link: _Link,
        obj: tuple,
        buffers: "list[bytes]",
        outcomes: "list[TaskOutcome | None]",
        held_errors: dict,
        durations: list[float],
    ) -> None:
        # Task children process and report strictly in dispatch order —
        # across the whole in-flight window, so the head batch drains
        # before the next batch's first reply can arrive.
        if link.assigned:
            link.assigned.popleft()
        if link.batch_sizes:
            link.batch_sizes[0] -= 1
            if link.batch_sizes[0] <= 0:
                link.batch_sizes.popleft()
        link.batch_started = time.monotonic()
        key = obj[1]
        if obj[0] == "ok":
            _tag, _key, payload, duration = obj
            if outcomes[key] is None:
                unpack_started = time.perf_counter()
                value = _own_tree(pickle.loads(payload, buffers=buffers))
                self.transport.serialize_seconds += (
                    time.perf_counter() - unpack_started
                )
                outcomes[key] = TaskOutcome(value=value)
                durations.append(duration)
                self.transport.compute_seconds += duration
                self.transport.payload_bytes += len(payload) + sum(
                    len(buf) for buf in buffers
                )
            # A losing speculative copy needs no drain.
            return
        # ("err", key, exception, duration)
        held_errors[key] = obj[2]
        if outcomes[key] is None and not self._copies_in_flight(key):
            outcomes[key] = TaskOutcome(error=held_errors[key])

    def _blame_and_requeue(
        self,
        link: _Link,
        error_for: "Callable[[int], BaseException]",
        outcomes: "list[TaskOutcome | None]",
        held_errors: dict,
        pending: deque,
    ) -> None:
        """Shared death bookkeeping: the first unreported assigned task
        was in progress and takes the blame; the rest never started and
        are requeued (same wrapped callables — fault verdicts are per
        (batch, index, attempt), not per dispatch).  Under pipelining
        the rule is unchanged: replies are strictly ordered across the
        whole in-flight window, so the first unreported task — whichever
        batch it rode in on — is the one that was in progress."""
        if not link.assigned:
            link.batch_sizes.clear()
            return
        blamed_key, _blamed_backup = link.assigned.popleft()
        held_errors.setdefault(blamed_key, error_for(blamed_key))
        unstarted = list(link.assigned)
        link.assigned.clear()
        link.batch_sizes.clear()
        for key, is_backup in unstarted:
            if outcomes[key] is not None:
                continue
            if not is_backup:
                pending.append(key)
            elif not self._copies_in_flight(key) and key in held_errors:
                outcomes[key] = TaskOutcome(error=held_errors[key])
        if outcomes[blamed_key] is None and not self._copies_in_flight(
            blamed_key
        ):
            outcomes[blamed_key] = TaskOutcome(error=held_errors[blamed_key])

    def _absorb_death(
        self,
        link: _Link,
        exitcode: "int | None",
        outcomes: "list[TaskOutcome | None]",
        held_errors: dict,
        pending: deque,
    ) -> None:
        """The daemon's task child died (e.g. an injected kill); the
        daemon itself is fine and stays in the ring."""
        self.children_died += 1
        link.epoch += 1  # mirrors the daemon's death count exactly
        self._blame_and_requeue(
            link,
            lambda key: WorkerDied(
                f"cluster worker {link.spec} task child exited with code "
                f"{exitcode} before reporting a result for task {key}"
            ),
            outcomes,
            held_errors,
            pending,
        )

    def _fail_link(
        self,
        link: _Link,
        reason: str,
        outcomes: "list[TaskOutcome | None]",
        held_errors: dict,
        pending: deque,
    ) -> None:
        """The daemon itself is gone: blame/requeue its work, drop the
        link, and remember the address for rejoin attempts."""
        self._blame_and_requeue(
            link,
            lambda key: WorkerDied(
                f"cluster worker {link.spec} lost ({reason}) before "
                f"reporting a result for task {key}"
            ),
            outcomes,
            held_errors,
            pending,
        )
        if link in self._links:
            self._links.remove(link)
        with contextlib.suppress(OSError):
            link.sock.close()
        if link.spec not in self._lost:
            self._lost.append(link.spec)
        self.workers_lost += 1

    def _heartbeat_sweep(
        self,
        outcomes: "list[TaskOutcome | None]",
        held_errors: dict,
        pending: deque,
    ) -> None:
        now = time.monotonic()
        for link in list(self._links):
            if not link.assigned:
                continue  # idle links aren't pinged, so never time out
            silence = now - link.last_heard
            if silence > self.heartbeat_timeout:
                self._fail_link(
                    link,
                    f"heartbeat timeout: no reply for {silence:.2f}s "
                    f"(limit {self.heartbeat_timeout}s)",
                    outcomes,
                    held_errors,
                    pending,
                )
                continue
            if now - link.last_ping >= self.heartbeat_interval:
                try:
                    wire, raw_wire = send_message(link.sock, ("ping", now))
                except (OSError, ValueError):
                    self._fail_link(
                        link, "ping failed", outcomes, held_errors, pending
                    )
                    continue
                link.last_ping = now
                self.transport.network_bytes += wire
                self.transport.network_raw_bytes += raw_wire
                self.transport.round_trips += 1

    def _maybe_speculate(
        self,
        policy: SpeculationPolicy,
        duplicates: Sequence[Task],
        outcomes: "list[TaskOutcome | None]",
        durations: list[float],
        speculated: set[int],
        on_speculate: "Callable[[int], None] | None",
        n: int,
    ) -> None:
        threshold = policy.threshold(durations, n)
        if threshold is None:
            return
        idle = [link for link in self._links if not link.assigned]
        if not idle:
            return
        now = time.monotonic()
        for link in list(self._links):
            if not link.assigned or not idle:
                continue
            key, is_backup = link.assigned[0]
            if (
                is_backup
                or key in speculated
                or outcomes[key] is not None
                or now - link.batch_started <= threshold
            ):
                continue
            target = idle.pop()
            if self._send_batch(target, [(key, duplicates[key], True)]):
                speculated.add(key)
                if on_speculate is not None:
                    on_speculate(key)

    def close(self) -> None:
        for link in self._links:
            with contextlib.suppress(OSError, ValueError):
                send_message(link.sock, ("stop",))
            with contextlib.suppress(OSError):
                link.sock.close()
        self._links.clear()
        if self._fetcher is not None:
            from .storage.codecs import set_missing_file_resolver

            set_missing_file_resolver(self._previous_resolver)
            self._fetcher.close()
            self._fetcher = None
        super().close()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ClusterExecutor(addresses={self.addresses!r})"
