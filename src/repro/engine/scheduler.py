"""Cluster scheduling model.

Translates a bag of measured partition-task costs into a *simulated*
stage makespan for a cluster of ``n_nodes`` identical compute nodes:

* tasks are assigned round-robin to nodes (Spark standalone's default even
  allocation, as configured in the paper);
* each node runs ``executor_cores`` tasks concurrently, but useful
  parallelism saturates at ``saturation_cores`` — the paper measured that
  12 of the 20 physical cores saturate a Shadow II node (Fig. 8), a memory
  bandwidth wall we model as a contention factor ``max(1, c/saturation)``
  multiplying task latency;
* a node's stage time is LPT-greedy wave packing over its core slots;
  the stage makespan is the slowest node plus a fixed per-stage platform
  overhead (job scheduling — the constant floor visible in the paper's
  small-graph memory/time plots);
* each task also pays a per-byte cost for the data it produces, modelling
  the serialisation/shuffle I/O that dominates real Spark tasks at scale
  and gives the generation-time curves their linear-in-size region
  (Fig. 9).

The scheduler always sees the *logical* per-partition task set: adaptive
partition coalescing (:mod:`repro.engine.plan`) may batch several small
partitions into one physical executor dispatch, but each member still
reports its own measured segment, so the simulated stage records,
makespans and memory meters are byte-identical under any
``target_partition_bytes`` setting.  Physical dispatch counts live in
``SimulationMetrics.tasks_dispatched``, never here.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine.metrics import TaskRecord

__all__ = ["NodeSpec", "ClusterScheduler"]


@dataclass(frozen=True)
class NodeSpec:
    """Static description of one compute node (Shadow II defaults, scaled).

    ``memory_overhead_bytes`` models the resident platform footprint per
    worker (JVM + Spark bookkeeping in the original; the near-constant
    ~10 GB floor of Fig. 11).  It is scaled to 1 MiB so laptop-size
    datasets reproduce both of Fig. 11's regions: the overhead-dominated
    flat left and the linearly growing right.
    """

    physical_cores: int = 20
    saturation_cores: int = 12
    memory_bytes: int = 512 * 1024**3
    memory_overhead_bytes: int = 1024**2


class ClusterScheduler:
    """Deterministic makespan model for one stage of partition tasks."""

    def __init__(
        self,
        n_nodes: int,
        executor_cores: int,
        node: NodeSpec | None = None,
        *,
        per_stage_overhead: float = 0.0005,
        per_task_overhead: float = 0.00005,
        per_byte_cost: float = 5e-8,
    ) -> None:
        if n_nodes < 1:
            raise ValueError("need at least one node")
        if executor_cores < 1:
            raise ValueError("need at least one executor core per node")
        self.n_nodes = n_nodes
        self.node = node or NodeSpec()
        self.executor_cores = min(executor_cores, self.node.physical_cores)
        self.per_stage_overhead = per_stage_overhead
        self.per_task_overhead = per_task_overhead
        self.per_byte_cost = per_byte_cost

    # ------------------------------------------------------------------
    @property
    def contention_factor(self) -> float:
        """Latency multiplier once cores exceed the memory-bandwidth wall."""
        return max(1.0, self.executor_cores / self.node.saturation_cores)

    def assign_nodes(self, n_tasks: int) -> np.ndarray:
        """Round-robin task → node assignment."""
        return np.arange(n_tasks, dtype=np.int64) % self.n_nodes

    def stage_makespan(
        self, stage: str, cpu_seconds: np.ndarray, bytes_out: np.ndarray
    ) -> tuple[float, list[TaskRecord]]:
        """Simulated wall time of a stage given measured per-task costs.

        Returns ``(makespan_seconds, task_records)``; the per-stage platform
        overhead is *not* folded in (the caller records it separately so
        utilisation accounting can distinguish compute from overhead).
        """
        cpu_seconds = np.asarray(cpu_seconds, dtype=np.float64)
        bytes_out = np.asarray(bytes_out, dtype=np.int64)
        if cpu_seconds.shape != bytes_out.shape:
            raise ValueError(
                "cpu_seconds and bytes_out must be aligned per task, got "
                f"shapes {cpu_seconds.shape} and {bytes_out.shape}"
            )
        n_tasks = cpu_seconds.size
        if n_tasks == 0:
            return 0.0, []
        nodes = self.assign_nodes(n_tasks)
        factor = self.contention_factor
        # Task cost model: measured CPU (under core contention) plus a
        # data-volume term (serialisation / shuffle I/O, the dominant cost
        # of real Spark tasks at scale) plus fixed task launch overhead.
        effective = (
            cpu_seconds * factor
            + bytes_out * self.per_byte_cost
            + self.per_task_overhead
        )
        records = [
            TaskRecord(
                stage=stage,
                partition=i,
                node=int(nodes[i]),
                cpu_seconds=float(effective[i]),
                bytes_out=int(bytes_out[i]),
            )
            for i in range(n_tasks)
        ]
        makespan = 0.0
        for node in range(self.n_nodes):
            mine = effective[nodes == node]
            if mine.size == 0:
                continue
            makespan = max(
                makespan, self._node_time(mine, self.executor_cores)
            )
        return makespan, records

    @staticmethod
    def _node_time(task_costs: np.ndarray, cores: int) -> float:
        """LPT greedy packing of tasks onto ``cores`` slots."""
        if task_costs.size <= cores:
            return float(task_costs.max(initial=0.0))
        slots = np.zeros(cores)
        for cost in np.sort(task_costs)[::-1]:
            slot = int(np.argmin(slots))
            slots[slot] += cost
        return float(slots.max())

    # ------------------------------------------------------------------
    def per_node_bytes(
        self, partition_bytes: np.ndarray
    ) -> np.ndarray:
        """Resident dataset bytes per node for a partitioned dataset,
        including the platform overhead floor."""
        partition_bytes = np.asarray(partition_bytes, dtype=np.int64)
        nodes = self.assign_nodes(partition_bytes.size)
        per_node = np.zeros(self.n_nodes, dtype=np.int64)
        np.add.at(per_node, nodes, partition_bytes)
        return per_node + self.node.memory_overhead_bytes
