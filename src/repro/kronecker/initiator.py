"""Stochastic Kronecker initiator matrices.

An initiator ``Theta`` is an ``N x N`` matrix of probabilities; the k-th
Kronecker power ``Theta^[k]`` assigns every vertex pair ``(u, v)`` of an
``N^k``-vertex graph the edge probability ``prod_l Theta[u_l, v_l]`` where
``u_l, v_l`` are the base-N digits of ``u`` and ``v``.  The expected edge
count after k levels is ``(sum Theta)^k`` — the quantity PGSK uses to pick
how many levels to descend.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["InitiatorMatrix"]


@dataclass(frozen=True)
class InitiatorMatrix:
    """A validated stochastic initiator.

    ``theta[i, j]`` is the probability weight of descending into cell
    ``(i, j)``; entries must lie in ``(0, 1]``-ish open bounds to keep the
    KronFit likelihood finite, and the classic fitted values (e.g. the
    ubiquitous ``[[0.9, 0.5], [0.5, 0.1]]``) satisfy them.
    """

    theta: np.ndarray

    def __post_init__(self) -> None:
        theta = np.ascontiguousarray(self.theta, dtype=np.float64)
        if theta.ndim != 2 or theta.shape[0] != theta.shape[1]:
            raise ValueError(f"initiator must be square, got {theta.shape}")
        if theta.shape[0] < 2:
            raise ValueError("initiator must be at least 2x2")
        if np.any(theta <= 0.0) or np.any(theta > 1.0):
            raise ValueError("initiator entries must lie in (0, 1]")
        object.__setattr__(self, "theta", theta)

    # ------------------------------------------------------------------
    @classmethod
    def classic(cls) -> "InitiatorMatrix":
        """The canonical 2x2 core-periphery initiator from the literature."""
        return cls(np.asarray([[0.9, 0.5], [0.5, 0.1]]))

    @property
    def size(self) -> int:
        return int(self.theta.shape[0])

    @property
    def edge_weight_sum(self) -> float:
        """``sum(Theta)`` — expected edges of a single level."""
        return float(self.theta.sum())

    def expected_edges(self, k: int) -> float:
        """Expected edge count of the k-th Kronecker power realisation."""
        if k < 1:
            raise ValueError("k must be >= 1")
        return self.edge_weight_sum ** k

    def n_vertices(self, k: int) -> int:
        """Vertex count after k levels: N^k."""
        if k < 1:
            raise ValueError("k must be >= 1")
        return self.size ** k

    def levels_for_edges(self, desired_edges: int) -> int:
        """Smallest k whose expected edge count reaches ``desired_edges``.

        This is how PGSK translates the ``desired_size`` input into a
        recursion depth — and why its output size grows exponentially in
        iterations (the paper notes PGSK "doubles the size of the graph at
        each iteration" for the classic 2x2 fit).
        """
        if desired_edges < 1:
            raise ValueError("desired_edges must be >= 1")
        s = self.edge_weight_sum
        if s <= 1.0:
            raise ValueError(
                "initiator with sum(theta) <= 1 cannot grow the graph"
            )
        k = int(np.ceil(np.log(desired_edges) / np.log(s)))
        return max(k, 1)

    def descent_probabilities(self) -> np.ndarray:
        """Flattened cell distribution used by recursive descent."""
        flat = self.theta.ravel()
        return flat / flat.sum()

    def normalized_to_sum(self, target_sum: float) -> "InitiatorMatrix":
        """Rescale entries so ``sum(Theta) == target_sum`` (clipped to 1).

        Useful when an externally fitted shape should be re-anchored to a
        desired expected growth rate.
        """
        if target_sum <= 0:
            raise ValueError("target_sum must be positive")
        scaled = self.theta * (target_sum / self.theta.sum())
        return InitiatorMatrix(np.clip(scaled, 1e-9, 1.0))
