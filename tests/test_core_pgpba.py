"""Tests for the PGPBA generator (Fig. 2)."""

import numpy as np
import pytest

from repro.core import PGPBA
from repro.engine import ClusterContext
from repro.netflow.attributes import NETFLOW_EDGE_ATTRIBUTES


@pytest.fixture
def small_ctx():
    return ClusterContext(n_nodes=2, executor_cores=2, partition_multiplier=1)


class TestGeneration:
    def test_reaches_desired_size(self, seed_graph, seed_analysis, small_ctx):
        res = PGPBA(fraction=0.2, seed=1).generate(
            seed_graph, seed_analysis, 5 * seed_graph.n_edges,
            context=small_ctx,
        )
        assert res.graph.n_edges >= 5 * seed_graph.n_edges
        assert res.algorithm == "PGPBA"

    def test_seed_edges_preserved(self, seed_graph, seed_analysis, small_ctx):
        """The synthetic graph contains the seed as a prefix (growth only)."""
        res = PGPBA(fraction=0.5, seed=2).generate(
            seed_graph, seed_analysis, 3 * seed_graph.n_edges,
            context=small_ctx,
        )
        n = seed_graph.n_edges
        assert np.array_equal(res.graph.src[:n], seed_graph.src)
        assert np.array_equal(res.graph.dst[:n], seed_graph.dst)

    def test_vertices_grow(self, seed_graph, seed_analysis, small_ctx):
        res = PGPBA(fraction=0.3, seed=3).generate(
            seed_graph, seed_analysis, 4 * seed_graph.n_edges,
            context=small_ctx,
        )
        assert res.graph.n_vertices > seed_graph.n_vertices

    def test_new_vertices_touch_seed_region(
        self, seed_graph, seed_analysis, small_ctx
    ):
        """Every added edge pairs a new vertex with an existing one (the
        attachment target is an endpoint of a sampled edge).  Uses the
        literal unclamped algorithm so growth completes in one iteration
        and "existing" means "seed"."""
        res = PGPBA(
            fraction=1.0, seed=4, generate_properties=False,
            clamp_final_iteration=False,
        ).generate(
            seed_graph, seed_analysis, 2 * seed_graph.n_edges,
            context=small_ctx,
        )
        n = seed_graph.n_edges
        new_src = res.graph.src[n:]
        new_dst = res.graph.dst[n:]
        old = seed_graph.n_vertices
        touches_both = (
            ((new_src >= old) & (new_dst < old))
            | ((new_src < old) & (new_dst >= old))
        )
        assert touches_both.all()

    def test_cannot_shrink(self, seed_graph, seed_analysis):
        with pytest.raises(ValueError, match="only grows"):
            PGPBA().generate(seed_graph, seed_analysis, 1)

    def test_empty_seed_rejected(self, seed_analysis):
        from repro.graph import PropertyGraph

        with pytest.raises(ValueError, match="non-empty"):
            PGPBA().generate(PropertyGraph.empty(), seed_analysis, 100)

    def test_max_iterations_guard(self, seed_graph, seed_analysis, small_ctx):
        with pytest.raises(RuntimeError, match="did not reach"):
            PGPBA(fraction=1e-9, max_iterations=1).generate(
                seed_graph, seed_analysis, 100 * seed_graph.n_edges,
                context=small_ctx,
            )

    def test_validation(self):
        with pytest.raises(ValueError):
            PGPBA(fraction=0.0)
        with pytest.raises(ValueError):
            PGPBA(max_iterations=0)


class TestProperties:
    def test_all_nine_attributes_generated(
        self, seed_graph, seed_analysis, small_ctx
    ):
        res = PGPBA(fraction=0.5, seed=5).generate(
            seed_graph, seed_analysis, 2 * seed_graph.n_edges,
            context=small_ctx,
        )
        for name in NETFLOW_EDGE_ATTRIBUTES:
            assert name in res.graph.edge_properties
            assert len(res.graph.edge_properties[name]) == res.graph.n_edges

    def test_property_values_from_seed_support(
        self, seed_graph, seed_analysis, small_ctx
    ):
        res = PGPBA(fraction=0.5, seed=6).generate(
            seed_graph, seed_analysis, 2 * seed_graph.n_edges,
            context=small_ctx,
        )
        seed_protocols = set(
            np.unique(seed_graph.edge_properties["PROTOCOL"]).tolist()
        )
        out_protocols = set(
            np.unique(res.graph.edge_properties["PROTOCOL"]).tolist()
        )
        assert out_protocols <= seed_protocols

    def test_skip_properties(self, seed_graph, seed_analysis, small_ctx):
        res = PGPBA(
            fraction=0.5, seed=7, generate_properties=False
        ).generate(
            seed_graph, seed_analysis, 2 * seed_graph.n_edges,
            context=small_ctx,
        )
        assert res.graph.edge_properties == {}
        assert res.property_seconds == 0.0

    def test_property_overhead_positive(
        self, seed_graph, seed_analysis, small_ctx
    ):
        res = PGPBA(fraction=0.5, seed=8).generate(
            seed_graph, seed_analysis, 2 * seed_graph.n_edges,
            context=small_ctx,
        )
        assert res.property_seconds > 0
        assert res.property_overhead > 0


class TestDeterminismAndScaling:
    def test_deterministic_given_seed(self, seed_graph, seed_analysis):
        def run():
            ctx = ClusterContext(
                n_nodes=2, executor_cores=2, partition_multiplier=1
            )
            return PGPBA(fraction=0.4, seed=42).generate(
                seed_graph, seed_analysis, 2 * seed_graph.n_edges,
                context=ctx,
            )

        a, b = run(), run()
        assert np.array_equal(a.graph.src, b.graph.src)
        assert np.array_equal(a.graph.dst, b.graph.dst)
        assert np.array_equal(
            a.graph.edge_properties["OUT_BYTES"],
            b.graph.edge_properties["OUT_BYTES"],
        )

    def test_fraction_controls_iterations(self, seed_graph, seed_analysis):
        target = 6 * seed_graph.n_edges

        def iters(fraction):
            ctx = ClusterContext(
                n_nodes=1, executor_cores=2, partition_multiplier=1
            )
            return PGPBA(fraction=fraction, seed=1).generate(
                seed_graph, seed_analysis, target, context=ctx
            ).iterations

        assert iters(0.9) < iters(0.1)

    def test_degree_distribution_heavy_tailed(
        self, seed_graph, seed_analysis, small_ctx
    ):
        """Preferential attachment must produce hubs: the max degree grows
        far beyond the mean."""
        res = PGPBA(fraction=0.3, seed=9, generate_properties=False).generate(
            seed_graph, seed_analysis, 10 * seed_graph.n_edges,
            context=small_ctx,
        )
        deg = res.graph.degrees()
        assert deg.max() > 10 * deg.mean()

    def test_simulated_time_recorded(self, seed_graph, seed_analysis, small_ctx):
        res = PGPBA(fraction=0.5, seed=10).generate(
            seed_graph, seed_analysis, 2 * seed_graph.n_edges,
            context=small_ctx,
        )
        assert res.structure_seconds > 0
        assert res.total_seconds >= res.structure_seconds
        assert res.peak_node_memory_bytes > 0
        assert res.edges_per_second > 0
