"""Shared fixtures and helpers for the figure-reproduction benchmarks.

Every ``bench_*`` module reproduces one table or figure from the paper's
evaluation (Section V).  Each exposes a ``run_*`` function that computes
the figure's data series; the pytest-benchmark test times the figure's
representative operation and writes the full series to
``benchmarks/results/<name>.txt`` so the numbers survive the run.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.bench import cached_seed
from repro.bench.tables import format_table

RESULTS_DIR = Path(__file__).parent / "results"


def save_series(name: str, title: str, headers, rows) -> str:
    """Persist one figure's series; returns the rendered table."""
    RESULTS_DIR.mkdir(exist_ok=True)
    table = format_table(headers, rows)
    text = f"== {title} ==\n{table}\n"
    (RESULTS_DIR / f"{name}.txt").write_text(text)
    print(f"\n{text}")
    return table


@pytest.fixture(scope="session")
def seed_bundle():
    """The benchmark seed (scaled stand-in for the SMIA 2011 trace)."""
    return cached_seed()


@pytest.fixture(scope="session")
def seed_graph(seed_bundle):
    return seed_bundle.graph


@pytest.fixture(scope="session")
def seed_analysis(seed_bundle):
    return seed_bundle.analysis
