"""KronFit: maximum-likelihood estimation of a 2x2 Kronecker initiator.

Follows Leskovec, Chakrabarti, Kleinberg, Faloutsos & Ghahramani (JMLR
2010).  The log-likelihood of an observed graph under initiator ``Theta``
and node relabelling ``sigma`` is::

    ll = sum_{(u,v) in E} log P[u,v]  +  sum_{(u,v) not in E} log(1 - P[u,v])

with ``P[u,v] = prod_l Theta[u_l, v_l]`` over the base-2 digits of the
permuted labels.  The no-edge sum over all ``N^2k`` pairs is approximated
by the standard second-order Taylor expansion::

    sum_{u,v} log(1 - P[u,v]) ~ -(sum Theta)^k - 0.5 (sum Theta^2)^k

so the tractable objective is::

    ll(Theta, sigma) = -(sum Theta)^k - 0.5 (sum Theta^2)^k
                       + sum_{E} [ log P + P + P^2 / 2 ]

Optimisation alternates projected gradient ascent on ``Theta`` with
Metropolis-sampled label swaps on ``sigma`` (warm-started from a
degree-descending ordering, which places hubs in the dense initiator
corner).  Everything is vectorised: the per-edge digit decomposition is a
bit-shift table, probabilities are one ``prod`` over levels, and gradients
are ``bincount`` reductions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.kronecker.initiator import InitiatorMatrix

__all__ = ["kronfit", "KronFitResult", "kronecker_log_likelihood"]

_EPS = 1e-6


@dataclass(frozen=True)
class KronFitResult:
    """Fit output: the initiator, final objective, and diagnostics."""

    initiator: InitiatorMatrix
    log_likelihood: float
    k: int
    n_vertices_padded: int
    iterations: int
    swap_acceptance_rate: float


def _edge_cells(src: np.ndarray, dst: np.ndarray, k: int) -> np.ndarray:
    """(n_edges, k) array of flat 2x2 cell indices per descent level."""
    shifts = np.arange(k - 1, -1, -1, dtype=np.int64)
    u_digits = (src[:, None] >> shifts[None, :]) & 1
    v_digits = (dst[:, None] >> shifts[None, :]) & 1
    return (2 * u_digits + v_digits).astype(np.int64)


def _edge_log_p_and_p(
    cells: np.ndarray, theta_flat: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    log_theta = np.log(theta_flat)
    log_p = log_theta[cells].sum(axis=1)
    return log_p, np.exp(log_p)


def kronecker_log_likelihood(
    src: np.ndarray,
    dst: np.ndarray,
    theta: np.ndarray,
    k: int,
) -> float:
    """Approximate log-likelihood of the edge set under ``theta`` at depth
    ``k`` (labels are taken as already permuted)."""
    theta = np.asarray(theta, dtype=np.float64)
    flat = theta.ravel()
    cells = _edge_cells(
        np.asarray(src, dtype=np.int64), np.asarray(dst, dtype=np.int64), k
    )
    log_p, p = _edge_log_p_and_p(cells, flat)
    no_edge = -(flat.sum() ** k) - 0.5 * (np.square(flat).sum() ** k)
    edge_term = float(np.sum(log_p + p + 0.5 * p * p))
    return no_edge + edge_term


def _gradient(
    cells: np.ndarray, theta_flat: np.ndarray, k: int
) -> np.ndarray:
    """Gradient of the objective w.r.t. the four initiator entries."""
    log_p, p = _edge_log_p_and_p(cells, theta_flat)
    # d/dtheta_c of the per-edge term = count_c / theta_c * (1 + p + p^2)
    w = 1.0 + p + p * p
    # Spread each edge's weight over its k level cells, then bucket by cell.
    contrib = np.bincount(
        cells.ravel(), weights=np.repeat(w, k), minlength=4
    )
    grad = contrib / theta_flat
    s1 = theta_flat.sum()
    s2 = np.square(theta_flat).sum()
    grad += -k * s1 ** (k - 1) - k * (s2 ** (k - 1)) * theta_flat
    return grad


def _swap_delta(
    perm: np.ndarray,
    src: np.ndarray,
    dst: np.ndarray,
    incident: list[np.ndarray],
    a: int,
    b: int,
    theta_flat: np.ndarray,
    k: int,
) -> float:
    """Change in the edge term if labels of original nodes a and b swap."""
    touched = np.union1d(incident[a], incident[b])
    if touched.size == 0:
        return 0.0
    s, d = src[touched], dst[touched]
    before_cells = _edge_cells(perm[s], perm[d], k)
    lp_b, p_b = _edge_log_p_and_p(before_cells, theta_flat)
    pa, pb = perm[a], perm[b]
    perm[a], perm[b] = pb, pa
    after_cells = _edge_cells(perm[s], perm[d], k)
    lp_a, p_a = _edge_log_p_and_p(after_cells, theta_flat)
    perm[a], perm[b] = pa, pb  # restore; caller commits on acceptance
    before = np.sum(lp_b + p_b + 0.5 * p_b * p_b)
    after = np.sum(lp_a + p_a + 0.5 * p_a * p_a)
    return float(after - before)


def kronfit(
    src: np.ndarray,
    dst: np.ndarray,
    n_vertices: int,
    *,
    initial: InitiatorMatrix | None = None,
    n_iterations: int = 60,
    step_size: float = 0.02,
    swaps_per_iteration: int = 200,
    rng: np.random.Generator | None = None,
) -> KronFitResult:
    """Fit a 2x2 stochastic initiator to a simple directed graph.

    Parameters
    ----------
    src, dst:
        Distinct edge pairs (the caller de-duplicates; PGSK passes the
        simple-graph projection).
    n_vertices:
        Vertex count of the observed graph; it is padded with isolated
        vertices up to the next power of two, as in the original KronFit.
    step_size:
        Maximum per-iteration change of any initiator entry; the ascent
        direction is the sign-preserving normalised gradient, annealed as
        iterations progress.  Normalising makes progress independent of
        the wildly varying gradient magnitudes of the Kronecker objective.
    """
    rng = rng or np.random.default_rng(0)
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    if src.size == 0:
        raise ValueError("KronFit needs at least one edge")
    if n_vertices < 2:
        raise ValueError("KronFit needs at least two vertices")
    k = max(1, int(np.ceil(np.log2(n_vertices))))
    n_padded = 2 ** k

    # Warm-start permutation: order by total degree, hubs first.  Hubs land
    # on low ids, matching the dense top-left corner of the initiator.
    deg = np.bincount(src, minlength=n_vertices) + np.bincount(
        dst, minlength=n_vertices
    )
    order = np.argsort(-deg, kind="stable")
    perm = np.empty(n_padded, dtype=np.int64)
    perm[order] = np.arange(n_vertices, dtype=np.int64)
    if n_padded > n_vertices:
        perm[n_vertices:] = np.arange(n_vertices, n_padded, dtype=np.int64)

    incident: list[np.ndarray] = [
        np.empty(0, dtype=np.int64) for _ in range(n_padded)
    ]
    by_src = np.argsort(src, kind="stable")
    by_dst = np.argsort(dst, kind="stable")
    src_sorted, dst_sorted = src[by_src], dst[by_dst]
    for node in np.unique(np.concatenate([src, dst])):
        lo = np.searchsorted(src_sorted, node, "left")
        hi = np.searchsorted(src_sorted, node, "right")
        lo2 = np.searchsorted(dst_sorted, node, "left")
        hi2 = np.searchsorted(dst_sorted, node, "right")
        incident[node] = np.concatenate([by_src[lo:hi], by_dst[lo2:hi2]])

    theta = (
        initial.theta.copy()
        if initial is not None
        else np.asarray([[0.9, 0.6], [0.6, 0.2]])
    )
    theta_flat = theta.ravel()

    accepted = 0
    proposed = 0
    for it in range(n_iterations):
        cells = _edge_cells(perm[src], perm[dst], k)
        grad = _gradient(cells, theta_flat, k)
        g_norm = np.abs(grad).max()
        if g_norm > 0:
            scale = (step_size / (1.0 + it / 10.0)) / g_norm
            theta_flat = np.clip(
                theta_flat + scale * grad, _EPS, 1.0 - _EPS
            )

        # Metropolis permutation refinement.
        for _ in range(swaps_per_iteration):
            a, b = rng.integers(0, n_padded, size=2)
            if a == b:
                continue
            proposed += 1
            delta = _swap_delta(
                perm, src, dst, incident, int(a), int(b), theta_flat, k
            )
            if delta >= 0 or rng.random() < np.exp(delta):
                perm[a], perm[b] = perm[b], perm[a]
                accepted += 1

    theta = theta_flat.reshape(2, 2)
    ll = kronecker_log_likelihood(perm[src], perm[dst], theta, k)
    return KronFitResult(
        initiator=InitiatorMatrix(theta),
        log_likelihood=ll,
        k=k,
        n_vertices_padded=n_padded,
        iterations=n_iterations,
        swap_acceptance_rate=accepted / proposed if proposed else 0.0,
    )
