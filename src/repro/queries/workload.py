"""Composable query workload runner.

A :class:`QueryWorkload` runs a configurable mix of the four query
families against a property graph, timing each family — the measurement an
IDS benchmark performs on a system under test once a dataset has been
generated.  Query targets (hosts, filters) are drawn deterministically
from a seeded RNG so runs are repeatable.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.graph.property_graph import PropertyGraph
from repro.netflow.attributes import Protocol
from repro.queries.edge_queries import EdgeFilter, filter_edges
from repro.queries.node_queries import degree_top_k, neighbors
from repro.queries.path_queries import k_hop_neighborhood
from repro.queries.subgraph_queries import (
    fan_in_motif,
    fan_out_motif,
    host_pair_aggregate,
)

__all__ = ["QueryWorkload", "WorkloadReport"]


@dataclass(frozen=True)
class WorkloadReport:
    """Per-family timing of one workload run."""

    n_edges: int
    queries_per_family: int
    seconds_by_family: dict

    @property
    def total_seconds(self) -> float:
        return float(sum(self.seconds_by_family.values()))

    def queries_per_second(self) -> dict:
        return {
            family: (
                self.queries_per_family / secs if secs > 0 else float("inf")
            )
            for family, secs in self.seconds_by_family.items()
        }


class QueryWorkload:
    """A deterministic mixed query workload.

    Parameters
    ----------
    n_queries:
        Queries issued per family.
    k_hops:
        Depth of the path queries.
    seed:
        RNG seed for target selection.
    """

    def __init__(
        self, *, n_queries: int = 20, k_hops: int = 2, seed: int = 0
    ) -> None:
        if n_queries < 1:
            raise ValueError("n_queries must be >= 1")
        if k_hops < 0:
            raise ValueError("k_hops must be non-negative")
        self.n_queries = n_queries
        self.k_hops = k_hops
        self.seed = seed

    # ------------------------------------------------------------------
    def run(self, graph: PropertyGraph) -> WorkloadReport:
        """Execute all four families and report per-family time."""
        if graph.n_vertices == 0 or graph.n_edges == 0:
            raise ValueError("workload needs a non-empty graph")
        rng = np.random.default_rng(self.seed)
        targets = rng.integers(0, graph.n_vertices, size=self.n_queries)
        timings: dict[str, float] = {}

        t0 = time.perf_counter()
        for v in targets:
            neighbors(graph, int(v), direction="both")
        degree_top_k(graph, 10)
        timings["node"] = time.perf_counter() - t0

        has_props = "PROTOCOL" in graph.edge_properties
        t0 = time.perf_counter()
        if has_props:
            ports = rng.choice([22, 53, 80, 443], size=self.n_queries)
            for port in ports:
                flt = EdgeFilter(
                    equals={"PROTOCOL": int(Protocol.TCP),
                            "DEST_PORT": int(port)},
                    ranges={"OUT_BYTES": (1, None)},
                )
                filter_edges(graph, flt)
        timings["edge"] = time.perf_counter() - t0

        t0 = time.perf_counter()
        for v in targets:
            k_hop_neighborhood(graph, int(v), self.k_hops)
        timings["path"] = time.perf_counter() - t0

        t0 = time.perf_counter()
        fan_out_motif(graph, 10)
        fan_in_motif(graph, 10)
        if has_props:
            host_pair_aggregate(graph)
        timings["subgraph"] = time.perf_counter() - t0

        return WorkloadReport(
            n_edges=graph.n_edges,
            queries_per_family=self.n_queries,
            seconds_by_family=timings,
        )
