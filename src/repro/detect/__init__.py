"""Netflow-based anomaly detection (Section IV of the paper).

The detector leverages the graph-shaped structure of the data to aggregate
flows by destination IP and by source IP ("destination based" and "source
based" traffic pattern data, Fig. 4), compares the aggregates against the
Table I threshold parameters, and flags DoS/DDoS flooding, host scanning,
network scanning, TCP SYN floods, and ICMP/UDP/TCP bandwidth floods.

Thresholds are network-specific; they can be calibrated from attack-free
traffic quantiles (:meth:`DetectionThresholds.fit_normal`) or tuned with
the Particle Swarm Optimizer in :mod:`repro.detect.pso`, as the paper
suggests.
"""

from repro.detect.thresholds import DetectionThresholds
from repro.detect.patterns import TrafficPatterns, build_traffic_patterns
from repro.detect.detector import Detection, NetflowAnomalyDetector
from repro.detect.report import DetectionReport, evaluate_detections
from repro.detect.pso import ParticleSwarmOptimizer, tune_thresholds
from repro.detect.offline import OfflineDetectionPipeline
from repro.detect.online import OnlineDetector, TimedDetection

__all__ = [
    "DetectionThresholds",
    "TrafficPatterns",
    "build_traffic_patterns",
    "Detection",
    "NetflowAnomalyDetector",
    "DetectionReport",
    "evaluate_detections",
    "ParticleSwarmOptimizer",
    "tune_thresholds",
    "OfflineDetectionPipeline",
    "OnlineDetector",
    "TimedDetection",
]
