"""Structural analytics over property graphs.

Everything here is expressed as array operations (``np.bincount``,
sparse-matrix traversals from :mod:`scipy.sparse.csgraph`); the only Python
loops iterate over components or sampled sources, never over edges.
"""

from __future__ import annotations

import numpy as np

from repro.graph.property_graph import PropertyGraph
from repro.stats.empirical import EmpiricalDistribution

__all__ = [
    "degree_distribution",
    "in_degree_distribution",
    "out_degree_distribution",
    "weakly_connected_components",
    "strongly_connected_components",
    "global_clustering_coefficient",
    "degree_histogram",
]


def in_degree_distribution(graph: PropertyGraph) -> EmpiricalDistribution:
    """Empirical distribution of vertex in-degrees (parallel edges count)."""
    return EmpiricalDistribution.from_samples(graph.in_degrees())


def out_degree_distribution(graph: PropertyGraph) -> EmpiricalDistribution:
    """Empirical distribution of vertex out-degrees."""
    return EmpiricalDistribution.from_samples(graph.out_degrees())


def degree_distribution(graph: PropertyGraph) -> EmpiricalDistribution:
    """Empirical distribution of total (in + out) degrees."""
    return EmpiricalDistribution.from_samples(graph.degrees())


def degree_histogram(graph: PropertyGraph) -> tuple[np.ndarray, np.ndarray]:
    """``(degree values, vertex counts)`` sorted by degree."""
    deg = graph.degrees()
    values, counts = np.unique(deg, return_counts=True)
    return values, counts


def weakly_connected_components(graph: PropertyGraph) -> np.ndarray:
    """Component label per vertex, treating edges as undirected."""
    from scipy.sparse import csgraph

    if graph.n_vertices == 0:
        return np.empty(0, dtype=np.int64)
    adj = graph.to_sparse_adjacency(weighted=False)
    _, labels = csgraph.connected_components(
        adj, directed=True, connection="weak"
    )
    return labels.astype(np.int64)


def strongly_connected_components(graph: PropertyGraph) -> np.ndarray:
    """Strongly connected component label per vertex."""
    from scipy.sparse import csgraph

    if graph.n_vertices == 0:
        return np.empty(0, dtype=np.int64)
    adj = graph.to_sparse_adjacency(weighted=False)
    _, labels = csgraph.connected_components(
        adj, directed=True, connection="strong"
    )
    return labels.astype(np.int64)


def global_clustering_coefficient(graph: PropertyGraph) -> float:
    """Transitivity: 3 * triangles / connected triples, on the undirected
    simple-graph projection.

    Computed from the sparse adjacency: ``trace(A^3)`` counts each triangle
    six times, and wedge counts come from the degree sequence.  This is the
    extra structural property the paper names as a natural extension of the
    veracity analysis.
    """
    from scipy import sparse

    if graph.n_vertices == 0 or graph.n_edges == 0:
        return 0.0
    s, d = graph.distinct_edge_pairs()
    # Undirected projection without self loops.
    keep = s != d
    s, d = s[keep], d[keep]
    if s.size == 0:
        return 0.0
    und_s = np.concatenate([s, d])
    und_d = np.concatenate([d, s])
    data = np.ones(und_s.size, dtype=np.float64)
    a = sparse.coo_matrix(
        (data, (und_s, und_d)), shape=(graph.n_vertices, graph.n_vertices)
    ).tocsr()
    a.data[:] = 1.0  # collapse reciprocal duplicates
    a.sum_duplicates()
    a.data[:] = np.minimum(a.data, 1.0)
    deg = np.asarray(a.sum(axis=1)).ravel()
    wedges = float(np.sum(deg * (deg - 1)) / 2.0)
    if wedges == 0:
        return 0.0
    a2 = a @ a
    triangles6 = float((a2.multiply(a)).sum())  # = trace(A^3)
    return triangles6 / (2.0 * wedges)
