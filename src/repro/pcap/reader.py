"""Streaming pcap reader.

Reads the global header once, then yields ``(PcapRecordHeader, bytes)``
pairs without ever loading the whole capture into memory — traces are
processed packet-at-a-time by the flow assembler.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator

from repro.pcap.format import (
    GLOBAL_HEADER_LEN,
    RECORD_HEADER_LEN,
    PcapGlobalHeader,
    PcapRecordHeader,
)
from repro.pcap.packet import ParsedPacket, parse_ethernet_ipv4_packet

__all__ = ["PcapReader", "read_pcap"]


class PcapReader:
    """Context-manager over a pcap file.

    Iterating yields raw ``(record_header, packet_bytes)``;
    :meth:`parsed_packets` additionally decodes Ethernet/IPv4 frames.
    """

    def __init__(self, path) -> None:
        self._path = Path(path)
        self._fh = None
        self.header: PcapGlobalHeader | None = None
        self._endian = "<"

    def __enter__(self) -> "PcapReader":
        self._fh = self._path.open("rb")
        raw = self._fh.read(GLOBAL_HEADER_LEN)
        self.header, self._endian = PcapGlobalHeader.unpack(raw)
        return self

    def __exit__(self, *exc) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __iter__(self) -> Iterator[tuple[PcapRecordHeader, bytes]]:
        if self._fh is None:
            raise RuntimeError("PcapReader must be used as a context manager")
        while True:
            raw = self._fh.read(RECORD_HEADER_LEN)
            if not raw:
                return
            if len(raw) < RECORD_HEADER_LEN:
                raise ValueError("truncated pcap record header at EOF")
            rec = PcapRecordHeader.unpack(raw, self._endian)
            data = self._fh.read(rec.incl_len)
            if len(data) < rec.incl_len:
                raise ValueError("truncated pcap packet body at EOF")
            yield rec, data

    def parsed_packets(self) -> Iterator[ParsedPacket]:
        """Yield decoded IPv4 packets, silently skipping non-IPv4 frames."""
        for rec, data in self:
            pkt = parse_ethernet_ipv4_packet(data, timestamp=rec.timestamp)
            if pkt is not None:
                yield pkt


def read_pcap(path) -> list[ParsedPacket]:
    """Eagerly read and decode an entire capture (convenience for tests)."""
    with PcapReader(path) as reader:
        return list(reader.parsed_packets())
