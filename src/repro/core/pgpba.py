"""Property-Graph Parallel Barabási-Albert (PGPBA) — Fig. 2 of the paper.

Each iteration of the while loop:

1. ``sample`` — draw ``fraction * |E|`` edges uniformly from the edge RDD
   (line 3).  Because a vertex occurs in the edge list once per incident
   edge, uniform edge sampling *is* degree-proportional vertex sampling —
   the constant-time preferential attachment of Yoo & Henderson that the
   paper builds on.
2. ``grow`` — create one new vertex per sampled edge (lines 4-5), attach it
   to a uniformly chosen endpoint of its edge (line 7), and connect
   ``out ~ outDegree`` edges new→existing plus ``in ~ inDegree`` edges
   existing→new (lines 8-12).
3. Repeat until ``|E| >= desired_size``; then decorate every edge with
   Netflow attributes sampled from the seed's property model (lines 15-20).

The implementation runs on the :mod:`repro.engine` Map-Reduce substrate:
sampling uses ``RDD.sample`` on the edge RDD, growth is a per-partition map
with pre-allocated vertex-id blocks, and property decoration is one more
partitioned stage — mirroring the Spark realisation described in §III-A.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.generator import GenerationResult, SeedAnalysis
from repro.engine.context import ClusterContext
from repro.engine.storage import StorageLevel
from repro.engine.stream import iter_repeat_chunks
from repro.graph.property_graph import PropertyGraph
from repro.netflow.attributes import NETFLOW_EDGE_ATTRIBUTES

__all__ = ["PGPBA"]


@dataclass
class PGPBA:
    """Configured PGPBA generator.

    Parameters
    ----------
    fraction:
        Ratio of newly added vertices to current edge count per iteration
        (the paper sweeps 0.1-0.9 for veracity and uses 2 for performance
        parity with PGSK's doubling).
    conditional_properties:
        Sample attributes from p(a | IN_BYTES) (True, the Fig. 1 model) or
        independently from the marginals (False; the DESIGN.md ablation).
    clamp_final_iteration:
        The paper notes it has "no fine grain control on the size of the
        produced graphs": each iteration multiplies the edge count by
        roughly ``1 + fraction * (mean_in + mean_out)`` and the last one
        can overshoot badly.  When True (default) the sampling fraction of
        the last iteration is shrunk so the expected new-edge count just
        covers the remainder — a size-control refinement on top of the
        paper's algorithm; set False for the strictly literal behaviour.
    max_iterations:
        Safety bound on the while loop.
    seed:
        Base RNG seed; all stages derive their streams from it.
    storage_level:
        Where the loop-carried edge RDD's pinned partitions live
        (:class:`~repro.engine.StorageLevel` or its string name).  The
        default ``memory_and_disk`` spills under the context's memory
        budget; ``disk_only`` keeps the growing edge multiset
        file-resident — the mode that unlocks graphs larger than RAM.
    checkpoint_interval:
        Every N-th iteration the freshly persisted edge RDD is also
        written durably through the block store (``RDD.checkpoint()``),
        so a task lost to a fault restarts from the checkpoint file
        instead of recomputing — strictly lower
        ``recovery_recompute_bytes`` under a fault plan.  0 (default)
        disables checkpointing.
    """

    fraction: float = 0.1
    conditional_properties: bool = True
    generate_properties: bool = True
    clamp_final_iteration: bool = True
    max_iterations: int = 10_000
    seed: int = 0
    storage_level: "StorageLevel | str" = StorageLevel.MEMORY_AND_DISK
    checkpoint_interval: int = 0

    def __post_init__(self) -> None:
        if self.fraction <= 0:
            raise ValueError("fraction must be positive")
        if self.max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        if self.checkpoint_interval < 0:
            raise ValueError("checkpoint_interval must be >= 0")
        self.storage_level = StorageLevel.coerce(self.storage_level)

    # ------------------------------------------------------------------
    def grow_structure(
        self,
        seed_graph: PropertyGraph,
        analysis: SeedAnalysis,
        desired_size: int,
        *,
        context: ClusterContext | None = None,
    ):
        """Run the growth loop only (Fig. 2 lines 1-14), no collect.

        Returns ``(edges, n_vertices, iterations)`` where ``edges`` is the
        persisted two-column edge RDD.  This is the out-of-core entry
        point: under a memory budget with ``storage_level="disk_only"``
        the grown edge multiset lives in spilled codec blocks end to end
        and the driver never materialises it — callers stream or digest
        the partitions themselves.  :meth:`generate` builds on this and
        adds the decoration + collect tail.
        """
        if seed_graph.n_edges == 0:
            raise ValueError("PGPBA needs a non-empty seed graph")
        if desired_size < seed_graph.n_edges:
            raise ValueError(
                f"desired_size {desired_size} is smaller than the seed "
                f"({seed_graph.n_edges} edges); PGPBA only grows graphs"
            )
        ctx = context or ClusterContext(n_nodes=1)

        # The edge RDD is the loop-carried state: persist it so every
        # iteration's sample reads the pinned partitions instead of
        # replaying the whole growth lineage, and so the driver-side
        # memory meter tracks what the loop keeps resident.
        edges = ctx.parallelize([seed_graph.src, seed_graph.dst]).persist(
            self.storage_level
        )
        n_vertices = seed_graph.n_vertices
        n_edges = seed_graph.n_edges
        in_dist = analysis.in_degree
        out_dist = analysis.out_degree

        mean_new_edges = in_dist.mean() + out_dist.mean()
        iterations = 0
        while n_edges < desired_size and iterations < self.max_iterations:
            iterations += 1
            fraction = self.fraction
            if self.clamp_final_iteration and mean_new_edges > 0:
                remaining = desired_size - n_edges
                needed = remaining / (n_edges * mean_new_edges)
                fraction = min(fraction, max(needed, 1e-9))
            sampled = edges.sample(
                fraction, seed=self.seed + iterations, stage="pa:sample"
            )
            sizes = sampled.partition_sizes()
            offsets = n_vertices + np.concatenate(
                ([0], np.cumsum(sizes[:-1]))
            )
            n_new = int(sizes.sum())
            rng_base = self.seed * 1_000_003 + iterations

            def _grow(cols, pidx, _off=offsets, _rb=rng_base):
                # Streaming emitter: every random value is drawn up front
                # (pick, out_deg, in_deg — the exact draw order of the
                # materialised version, so the RNG stream and therefore
                # the output are bit-identical), then the np.repeat
                # expansion — the part whose output dwarfs its input —
                # is yielded in bounded row chunks.  Under a memory
                # budget each chunk flushes straight into the spill
                # codec; the full partition edge array never exists.
                src, dst = cols
                m = src.size
                if m == 0:
                    empty = np.empty(0, np.int64)
                    yield empty, empty
                    return
                rng = np.random.default_rng((_rb, pidx))
                new_v = _off[pidx] + np.arange(m, dtype=np.int64)
                pick = rng.random(m) < 0.5
                dest_v = np.where(pick, src, dst)
                out_deg = out_dist.sample(m, rng).astype(np.int64)
                in_deg = in_dist.sample(m, rng).astype(np.int64)
                yield from iter_repeat_chunks((new_v, dest_v), out_deg)
                yield from iter_repeat_chunks((dest_v, new_v), in_deg)

            # Growth multiplies each sampled edge into ~mean_new_edges
            # new ones (two int64 columns each); hint that expansion so
            # the coalescer weighs grow chains by their *output*, not by
            # the small sampled anchor.
            grow_hint = np.maximum(
                sizes * 16, (sizes * mean_new_edges * 16).astype(np.int64)
            )
            new_edges = sampled.map_partitions(
                _grow, stage="pa:grow", bytes_hint=grow_hint, stream=True
            )
            n_vertices += n_new
            n_edges += new_edges.count()
            grown = edges.union(new_edges)
            if grown.n_partitions > 4 * ctx.max_real_partitions:
                grown = grown.repartition(ctx.max_real_partitions)
            edges.unpersist()
            edges = grown.persist(self.storage_level)
            if (
                self.checkpoint_interval
                and iterations % self.checkpoint_interval == 0
            ):
                edges.checkpoint()

        if n_edges < desired_size:
            raise RuntimeError(
                f"PGPBA did not reach {desired_size} edges within "
                f"{self.max_iterations} iterations (got {n_edges})"
            )
        return edges, n_vertices, iterations

    # ------------------------------------------------------------------
    def generate(
        self,
        seed_graph: PropertyGraph,
        analysis: SeedAnalysis,
        desired_size: int,
        *,
        context: ClusterContext | None = None,
    ) -> GenerationResult:
        """Grow ``seed_graph`` until it holds ``desired_size`` edges."""
        ctx = context or ClusterContext(n_nodes=1)
        start_clock = ctx.metrics.simulated_seconds

        edges, n_vertices, iterations = self.grow_structure(
            seed_graph, analysis, desired_size, context=ctx
        )

        structure_clock = ctx.metrics.simulated_seconds

        prop_cols: dict[str, np.ndarray] = {}
        if self.generate_properties:
            prop_cols = _decorate(
                ctx,
                edges,
                analysis,
                conditional=self.conditional_properties,
                seed=self.seed,
            )
        end_clock = ctx.metrics.simulated_seconds

        src, dst = edges.collect()[:2]
        edges.unpersist()
        graph = PropertyGraph(
            n_vertices=n_vertices,
            src=src,
            dst=dst,
            edge_properties=prop_cols,
        )
        return GenerationResult(
            graph=graph,
            algorithm="PGPBA",
            structure_seconds=structure_clock - start_clock,
            property_seconds=end_clock - structure_clock,
            peak_node_memory_bytes=ctx.metrics.peak_node_memory_bytes,
            n_nodes=ctx.n_nodes,
            iterations=iterations,
            extra={
                "fraction": self.fraction,
                "executor": ctx.executor.name,
                "local_workers": ctx.executor.workers,
            },
        )


def _decorate(
    ctx: ClusterContext,
    edges,
    analysis: SeedAnalysis,
    *,
    conditional: bool,
    seed: int,
) -> dict[str, np.ndarray]:
    """Shared Netflow-attribute decoration stage (Fig. 2 l.15-20 / Fig. 3
    l.13-18).  One partitioned pass samples all nine columns.

    Safe under every executor backend: ``model`` is frozen (immutable
    distributions, read-only CDF lookups) and each task derives a private
    RNG from ``(seed, 7919, partition_index)``, so concurrent partition
    tasks share no mutable state and the sampled columns are identical
    whichever backend runs them."""
    model = analysis.properties
    names = list(NETFLOW_EDGE_ATTRIBUTES)

    def _props(cols, pidx):
        n = cols[0].size
        rng = np.random.default_rng((seed, 7_919, pidx))
        sampled = model.sample_columns(n, rng, conditional=conditional)
        return tuple(sampled[name] for name in names)

    # Nine property columns come out for every two id columns in: weight
    # the decoration chains accordingly for the coalescer.
    prop_hint = edges.partition_bytes() * len(names) // 2
    prop_rdd = edges.map_partitions(
        _props, stage="properties", bytes_hint=prop_hint
    )
    collected = prop_rdd.collect()
    return {name: collected[j] for j, name in enumerate(names)}
