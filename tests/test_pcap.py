"""Unit tests for the pcap substrate: format, packet codecs, reader/writer."""

import struct

import numpy as np
import pytest

from repro.pcap import (
    LINKTYPE_ETHERNET,
    ParsedPacket,
    PcapGlobalHeader,
    PcapRecordHeader,
    PcapReader,
    PcapWriter,
    TcpFlags,
    build_ethernet_ipv4_packet,
    ipv4_checksum,
    parse_ethernet_ipv4_packet,
    read_pcap,
    write_pcap,
)
from repro.pcap.format import GLOBAL_HEADER_LEN
from repro.pcap.packet import PROTO_ICMP, PROTO_TCP, PROTO_UDP


class TestHeaders:
    def test_global_header_roundtrip(self):
        h = PcapGlobalHeader(snaplen=4096)
        parsed, endian = PcapGlobalHeader.unpack(h.pack())
        assert parsed.snaplen == 4096
        assert parsed.network == LINKTYPE_ETHERNET
        assert endian == "<"

    def test_global_header_length(self):
        assert len(PcapGlobalHeader().pack()) == GLOBAL_HEADER_LEN == 24

    def test_byteswapped_magic_detected(self):
        h = PcapGlobalHeader().pack()
        swapped = h[:4][::-1] + h[4:]
        # Byte-swapping just the magic makes the remaining fields read in
        # big-endian order; the parser must still accept the magic.
        _, endian = PcapGlobalHeader.unpack(swapped)
        assert endian == ">"

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError, match="magic"):
            PcapGlobalHeader.unpack(b"\x00" * 24)

    def test_truncated_rejected(self):
        with pytest.raises(ValueError, match="truncated"):
            PcapGlobalHeader.unpack(b"\x00" * 10)

    def test_record_header_timestamp_roundtrip(self):
        r = PcapRecordHeader.from_timestamp(1234.567891, incl_len=60)
        assert r.timestamp == pytest.approx(1234.567891, abs=1e-6)
        back = PcapRecordHeader.unpack(r.pack())
        assert back == r

    def test_record_usec_carry(self):
        r = PcapRecordHeader.from_timestamp(1.9999999, incl_len=1)
        assert r.ts_usec < 1_000_000


class TestChecksum:
    def test_rfc791_example_zeroes(self):
        # checksum of a header whose checksum field is correct verifies to 0
        pkt = build_ethernet_ipv4_packet(
            src_ip=0x0A000001, dst_ip=0x0A000002, protocol=PROTO_UDP,
            src_port=1, dst_port=2, payload_len=4,
        )
        ip_header = pkt[14:34]
        assert ipv4_checksum(ip_header) == 0

    def test_odd_length_padded(self):
        assert ipv4_checksum(b"\x01") == ipv4_checksum(b"\x01\x00")


class TestPacketCodec:
    def test_tcp_roundtrip(self):
        pkt = build_ethernet_ipv4_packet(
            src_ip=0x0A010101, dst_ip=0x0A020202, protocol=PROTO_TCP,
            src_port=4242, dst_port=80,
            tcp_flags=TcpFlags.SYN | TcpFlags.ACK, payload_len=100,
        )
        p = parse_ethernet_ipv4_packet(pkt, timestamp=5.0)
        assert p is not None and p.is_tcp
        assert (p.src_ip, p.dst_ip) == (0x0A010101, 0x0A020202)
        assert (p.src_port, p.dst_port) == (4242, 80)
        assert p.tcp_flags == TcpFlags.SYN | TcpFlags.ACK
        assert p.payload_len == 100
        assert p.timestamp == 5.0

    def test_udp_roundtrip(self):
        pkt = build_ethernet_ipv4_packet(
            src_ip=1, dst_ip=2, protocol=PROTO_UDP,
            src_port=5353, dst_port=53, payload_len=33,
        )
        p = parse_ethernet_ipv4_packet(pkt)
        assert p.is_udp and p.payload_len == 33

    def test_icmp_roundtrip(self):
        pkt = build_ethernet_ipv4_packet(
            src_ip=1, dst_ip=2, protocol=PROTO_ICMP,
            src_port=77, dst_port=3, payload_len=56,
        )
        p = parse_ethernet_ipv4_packet(pkt)
        assert p.is_icmp
        assert (p.src_port, p.dst_port) == (77, 3)
        assert p.payload_len == 56

    def test_non_ipv4_returns_none(self):
        frame = b"\x00" * 12 + struct.pack("!H", 0x0806) + b"\x00" * 30
        assert parse_ethernet_ipv4_packet(frame) is None

    def test_short_frame_returns_none(self):
        assert parse_ethernet_ipv4_packet(b"\x00" * 10) is None

    def test_unknown_transport_kept_with_none(self):
        pkt = build_ethernet_ipv4_packet(
            src_ip=1, dst_ip=2, protocol=47, payload_len=10  # GRE
        )
        p = parse_ethernet_ipv4_packet(pkt)
        assert p is not None and p.transport is None

    def test_bad_port_rejected(self):
        with pytest.raises(ValueError, match="16 bits"):
            build_ethernet_ipv4_packet(
                src_ip=1, dst_ip=2, protocol=PROTO_TCP, src_port=70000
            )

    def test_negative_payload_rejected(self):
        with pytest.raises(ValueError):
            build_ethernet_ipv4_packet(
                src_ip=1, dst_ip=2, protocol=PROTO_UDP, payload_len=-1
            )

    def test_total_len_field(self):
        pkt = build_ethernet_ipv4_packet(
            src_ip=1, dst_ip=2, protocol=PROTO_UDP, payload_len=10
        )
        p = parse_ethernet_ipv4_packet(pkt)
        assert p.total_len == 20 + 8 + 10  # IP + UDP + payload


class TestFileIO:
    def _frames(self, n=5):
        return [
            (
                float(i),
                build_ethernet_ipv4_packet(
                    src_ip=i + 1, dst_ip=100, protocol=PROTO_UDP,
                    src_port=1000 + i, dst_port=53, payload_len=i,
                ),
            )
            for i in range(n)
        ]

    def test_write_read_roundtrip(self, tmp_path):
        path = tmp_path / "t.pcap"
        frames = self._frames()
        assert write_pcap(path, frames) == 5
        packets = read_pcap(path)
        assert len(packets) == 5
        assert [p.src_ip for p in packets] == [1, 2, 3, 4, 5]
        assert packets[3].timestamp == pytest.approx(3.0)

    def test_out_of_order_rejected(self, tmp_path):
        path = tmp_path / "t.pcap"
        with PcapWriter(path) as w:
            w.write_packet(10.0, b"\x00" * 60)
            with pytest.raises(ValueError, match="out-of-order"):
                w.write_packet(5.0, b"\x00" * 60)

    def test_snaplen_truncates(self, tmp_path):
        path = tmp_path / "t.pcap"
        big = build_ethernet_ipv4_packet(
            src_ip=1, dst_ip=2, protocol=PROTO_UDP, payload_len=500
        )
        with PcapWriter(path, snaplen=100) as w:
            w.write_packet(0.0, big)
        with PcapReader(path) as r:
            rec, data = next(iter(r))
        assert rec.incl_len == 100
        assert rec.orig_len == len(big)

    def test_reader_requires_context(self, tmp_path):
        path = tmp_path / "t.pcap"
        write_pcap(path, self._frames(1))
        r = PcapReader(path)
        with pytest.raises(RuntimeError, match="context manager"):
            next(iter(r))

    def test_truncated_file_detected(self, tmp_path):
        path = tmp_path / "t.pcap"
        write_pcap(path, self._frames(2))
        data = path.read_bytes()
        path.write_bytes(data[:-5])
        with pytest.raises(ValueError, match="truncated"):
            read_pcap(path)

    def test_empty_capture(self, tmp_path):
        path = tmp_path / "t.pcap"
        write_pcap(path, [])
        assert read_pcap(path) == []
