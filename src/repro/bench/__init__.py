"""Benchmark harness utilities shared by the scripts in ``benchmarks/``.

Each paper figure has one bench module that builds a seed, runs a sweep,
and prints the series the paper plots.  The helpers here keep those
modules small: seed caching, sweep running, and aligned-column table
printing.
"""

from repro.bench.harness import (
    cached_seed,
    clock_report,
    default_cluster,
    measure_wall,
    run_sweep,
    SweepPoint,
)
from repro.bench.tables import format_table, print_series

__all__ = [
    "cached_seed",
    "default_cluster",
    "run_sweep",
    "SweepPoint",
    "measure_wall",
    "clock_report",
    "format_table",
    "print_series",
]
