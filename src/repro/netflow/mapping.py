"""Flow table → property graph mapping (Section III of the paper).

Hosts map onto vertices ``V`` (carrying only the ``ID`` attribute — the
original host address), and each flow becomes one directed edge in the
multi-set ``E`` decorated with the nine Netflow attributes.
"""

from __future__ import annotations

import numpy as np

from repro.graph.property_graph import PropertyGraph
from repro.netflow.record import FlowTable

__all__ = ["flow_table_to_property_graph", "property_graph_to_flow_columns"]


def flow_table_to_property_graph(table: FlowTable) -> PropertyGraph:
    """Build the seed property-graph from a flow table.

    Vertex ``i`` carries ``ID = hosts[i]`` (the IPv4 address as an int64);
    edges keep the paper's nine attribute columns, aligned with the flow
    rows, plus START_TIME so offline detection can window the traffic.
    """
    hosts = table.hosts()
    if hosts.size == 0:
        return PropertyGraph.empty()
    src_idx = np.searchsorted(hosts, table["SRC_IP"])
    dst_idx = np.searchsorted(hosts, table["DST_IP"])
    edge_props = {
        name: col.copy() for name, col in table.edge_attribute_columns().items()
    }
    edge_props["START_TIME"] = table["START_TIME"].copy()
    return PropertyGraph(
        n_vertices=int(hosts.size),
        src=src_idx.astype(np.int64),
        dst=dst_idx.astype(np.int64),
        vertex_properties={"ID": hosts.astype(np.int64)},
        edge_properties=edge_props,
    )


def property_graph_to_flow_columns(graph: PropertyGraph) -> dict[str, np.ndarray]:
    """Recover flow-style columns (with host addresses) from a property
    graph that carries Netflow edge attributes.

    Used by the offline detector, which runs on *generated* graphs: vertex
    indices stand in for host addresses when no ``ID`` property exists.
    """
    ids = graph.vertex_properties.get("ID")
    if ids is None:
        ids = np.arange(graph.n_vertices, dtype=np.int64)
    cols: dict[str, np.ndarray] = {
        "SRC_IP": np.asarray(ids)[graph.src],
        "DST_IP": np.asarray(ids)[graph.dst],
    }
    for name, col in graph.edge_properties.items():
        cols[name] = np.asarray(col)
    return cols
