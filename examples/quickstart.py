#!/usr/bin/env python3
"""Quickstart: the paper's full pipeline in ~40 lines.

1. Synthesize a pcap-format network trace (the stand-in for a real capture
   such as the SMIA 2011 dataset the paper seeds from).
2. Build the seed: Bro-like flow assembly -> Netflow property graph ->
   structural + attribute distribution analysis (Fig. 1).
3. Grow a 20x synthetic property graph with PGPBA (Fig. 2).
4. Score its veracity against the seed (Section V-A).

Run:  python examples/quickstart.py
"""

from repro import PGPBA, ClusterContext, build_seed, evaluate_veracity
from repro.trace import synthesize_seed_packets


def main() -> None:
    print("1. synthesizing a 20-second enterprise trace ...")
    frames = synthesize_seed_packets(duration=20.0, session_rate=50, seed=7)
    print(f"   {len(frames)} packets")

    print("2. building the seed (packets -> flows -> property graph) ...")
    seed = build_seed(frames)
    g = seed.graph
    print(
        f"   seed graph: {g.n_vertices} hosts, {g.n_edges} flows, "
        f"{len(g.edge_properties)} edge attributes"
    )
    print(
        "   in-degree mean "
        f"{seed.analysis.in_degree.mean():.2f}, out-degree mean "
        f"{seed.analysis.out_degree.mean():.2f}"
    )

    print("3. growing a 20x synthetic graph with PGPBA ...")
    cluster = ClusterContext(n_nodes=8, executor_cores=12)
    result = PGPBA(fraction=0.3, seed=1).generate(
        seed.graph, seed.analysis, 20 * g.n_edges, context=cluster
    )
    print(
        f"   {result.graph.n_edges} edges / {result.graph.n_vertices} "
        f"vertices in {result.iterations} iterations"
    )
    print(
        f"   simulated cluster time: {result.total_seconds * 1e3:.1f} ms "
        f"({result.property_overhead:.0%} spent decorating attributes)"
    )

    print("4. veracity vs the seed ...")
    report = evaluate_veracity(seed.graph, result.graph)
    print(f"   degree veracity score   : {report.degree_score:.3e}")
    print(f"   pagerank veracity score : {report.pagerank_score:.3e}")
    print(f"   degree shape KS         : {report.degree_ks:.3f}")
    print("done.")


if __name__ == "__main__":
    main()
