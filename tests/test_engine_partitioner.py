"""Array partitioning helpers: split_array / split_count invariants.

The partitioner is the one piece of arithmetic every stage shares — the
same (total, n_partitions) must always produce the same split boundaries
so that re-running a stage (recovery, another backend, another budget)
lands every row in the same partition.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine.partitioner import split_array, split_count


class TestSplitArray:
    def test_concatenation_roundtrip(self):
        arr = np.arange(103)
        parts = split_array(arr, 7)
        assert len(parts) == 7
        np.testing.assert_array_equal(np.concatenate(parts), arr)

    def test_empty_input(self):
        parts = split_array(np.empty(0, np.int64), 4)
        assert len(parts) == 4
        assert all(p.size == 0 for p in parts)
        assert all(p.dtype == np.int64 for p in parts)

    def test_single_partition(self):
        arr = np.arange(11)
        parts = split_array(arr, 1)
        assert len(parts) == 1
        np.testing.assert_array_equal(parts[0], arr)

    def test_more_partitions_than_elements(self):
        parts = split_array(np.arange(3), 5)
        assert len(parts) == 5
        sizes = [p.size for p in parts]
        assert sum(sizes) == 3
        assert all(s in (0, 1) for s in sizes)

    def test_near_equal_sizes(self):
        sizes = [p.size for p in split_array(np.arange(100), 8)]
        assert max(sizes) - min(sizes) <= 1

    def test_returns_views_not_copies(self):
        arr = np.arange(10)
        parts = split_array(arr, 2)
        assert all(p.base is arr for p in parts)

    def test_rejects_zero_partitions(self):
        with pytest.raises(ValueError):
            split_array(np.arange(4), 0)

    def test_deterministic_boundaries(self):
        """Same (array, n) → identical splits on every call: stage
        re-execution must land every row in the same partition."""
        arr = np.arange(57)
        a = split_array(arr, 6)
        b = split_array(arr, 6)
        assert [p.size for p in a] == [p.size for p in b]
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)


class TestSplitCount:
    def test_sums_to_total(self):
        counts = split_count(103, 7)
        assert counts.sum() == 103
        assert counts.dtype == np.int64

    def test_zero_total(self):
        counts = split_count(0, 4)
        assert counts.shape == (4,)
        assert counts.sum() == 0

    def test_single_partition(self):
        np.testing.assert_array_equal(split_count(42, 1), [42])

    def test_near_equal_distribution(self):
        counts = split_count(100, 8)
        assert counts.max() - counts.min() <= 1
        # The remainder goes to the leading partitions.
        assert list(counts) == sorted(counts, reverse=True)

    def test_more_partitions_than_items(self):
        counts = split_count(3, 5)
        assert counts.sum() == 3
        assert set(counts) == {0, 1}

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            split_count(10, 0)
        with pytest.raises(ValueError):
            split_count(-1, 4)

    def test_matches_split_array_sizes(self):
        """split_count(total, n) and split_array(arange(total), n) agree
        on partition sizes, so data-carrying and generate stages place
        row i in the same partition."""
        for total, n in ((0, 3), (7, 3), (100, 8), (3, 5)):
            counts = split_count(total, n)
            sizes = [p.size for p in split_array(np.arange(total), n)]
            assert list(counts) == sizes
