"""Kronecker graph expansion.

Two realisations are provided, mirroring the paper's Section III-B:

* the **deterministic** Kronecker power (``O(|V|^2)``) — only practical for
  tests and tiny graphs, kept as the ground truth the stochastic version
  simulates;
* the **stochastic** recursive descent (``O(|E|)``): each edge
  independently walks k levels of the initiator, choosing cell ``(i, j)``
  with probability ``theta_ij / sum(theta)`` at every level.  Batches of
  edges descend simultaneously as vectorised digit draws, duplicates are
  removed (the paper's ``RDD.distinct()``), and the loop re-descends until
  the expected distinct-edge count is reached.

Equivalence note (cell sampling): :func:`descend_batch` draws cells by
inverse-CDF sampling — ``np.searchsorted`` of ``rng.random((n_edges, k))``
against the precomputed cumulative cell distribution — instead of
``rng.choice(n*n, size=(n_edges, k), p=probs)``.  The two are
**bit-identical** for the same generator state: ``Generator.choice`` with
replacement and explicit ``p`` is defined as exactly this
``cdf.searchsorted(random(shape), side="right")`` draw, consuming the
same uniform stream.  Doing it directly skips ``choice``'s per-call
population/probability validation and index round-trip; on older NumPy
that overhead was several times the searchsorted cost at Fig. 9 batch
sizes, on NumPy >= 2.x the two are within a few percent (measured) —
either way the explicit form pins the sampling definition so the RNG
stream can never shift underneath the reproduction.
"""

from __future__ import annotations

import numpy as np

from repro.kronecker.initiator import InitiatorMatrix

__all__ = [
    "deterministic_kronecker_adjacency",
    "stochastic_kronecker_edges",
    "descend_batch",
    "descend_batch_chunks",
]


def deterministic_kronecker_adjacency(
    base: np.ndarray, k: int
) -> np.ndarray:
    """k-fold Kronecker power of a 0/1 adjacency matrix.

    Quadratic in the output vertex count; use for validation only.
    """
    base = np.asarray(base, dtype=np.float64)
    if base.ndim != 2 or base.shape[0] != base.shape[1]:
        raise ValueError("base adjacency must be square")
    if k < 1:
        raise ValueError("k must be >= 1")
    out = base.copy()
    for _ in range(k - 1):
        out = np.kron(out, base)
    return out


def descend_batch(
    initiator: InitiatorMatrix,
    k: int,
    n_edges: int,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray]:
    """Place ``n_edges`` edges by recursive descent, vectorised.

    Every edge draws k independent cells from the initiator's normalised
    cell distribution; the digit sequences assemble into source and
    destination vertex ids in ``[0, N^k)``.  One call is one Map task of
    the paper's Map-Reduce implementation.
    """
    if n_edges <= 0:
        return np.empty(0, np.int64), np.empty(0, np.int64)
    n = initiator.size
    probs = initiator.descent_probabilities()
    # cells: (n_edges, k) flat cell index per level, drawn by inverse-CDF
    # sampling (bit-identical to Generator.choice with p=probs — see the
    # module docstring).
    cdf = np.cumsum(probs)
    cdf /= cdf[-1]
    cells = cdf.searchsorted(rng.random((n_edges, k)), side="right")
    row_digits = cells // n
    col_digits = cells % n
    # Horner assembly of base-N digit strings, most significant level first.
    place = n ** np.arange(k - 1, -1, -1, dtype=np.int64)
    src = row_digits @ place
    dst = col_digits @ place
    return src.astype(np.int64), dst.astype(np.int64)


def descend_batch_chunks(
    initiator: InitiatorMatrix,
    k: int,
    n_edges: int,
    rng: np.random.Generator,
    *,
    chunk_rows: int | None = None,
):
    """Stream :func:`descend_batch` output in bounded row chunks.

    Yields ``(src, dst)`` pairs covering ``n_edges`` placements in windows
    of at most ``chunk_rows`` rows (default: the engine's emit-chunk size).
    **Bit-identical** to a single ``descend_batch`` call with the same
    generator state: ``rng.random((m, k))`` fills row-major, consuming
    ``m * k`` uniforms in order, so drawing the rows in sequential windows
    produces exactly the same cell sequence.  This is what lets the
    streaming PGSK expansion reproduce the materialised digests while
    never holding a whole partition's edges in memory.

    Always yields at least one (possibly empty) chunk so downstream
    consumers can read the column dtypes.
    """
    if chunk_rows is None:
        from repro.engine.stream import resolve_emit_chunk_rows

        chunk_rows = resolve_emit_chunk_rows()
    if n_edges <= 0:
        yield np.empty(0, np.int64), np.empty(0, np.int64)
        return
    done = 0
    while done < n_edges:
        m = min(chunk_rows, n_edges - done)
        yield descend_batch(initiator, k, m, rng)
        done += m


def stochastic_kronecker_edges(
    initiator: InitiatorMatrix,
    k: int,
    rng: np.random.Generator,
    *,
    n_edges: int | None = None,
    deduplicate: bool = True,
    max_rounds: int = 64,
    oversample: float = 1.05,
) -> tuple[np.ndarray, np.ndarray]:
    """Generate the edge set of a stochastic Kronecker graph.

    Parameters
    ----------
    k:
        Number of descent levels; the graph has ``N^k`` vertices.
    n_edges:
        Target *distinct* edge count; defaults to the expected count
        ``(sum theta)^k`` rounded.
    deduplicate:
        When True (the paper's behaviour) duplicate placements are dropped
        via ``distinct()`` and further descent rounds top the set back up.
        When False, collisions are kept as parallel edges — the ablation
        knob DESIGN.md calls out.

    Returns ``(src, dst)`` int64 arrays.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    target = (
        int(round(initiator.expected_edges(k))) if n_edges is None else n_edges
    )
    if target <= 0:
        raise ValueError("target edge count must be positive")

    if not deduplicate:
        return descend_batch(initiator, k, target, rng)

    n_vertices = initiator.n_vertices(k)
    if n_vertices > np.iinfo(np.int64).max // n_vertices:
        raise ValueError(
            f"descent depth k={k} produces {n_vertices} vertices, too many "
            "for packed int64 de-duplication keys"
        )
    seen = np.empty(0, dtype=np.int64)  # packed src * V + dst keys
    for _ in range(max_rounds):
        missing = target - seen.size
        if missing <= 0:
            break
        batch = max(int(np.ceil(missing * oversample)), 16)
        src, dst = descend_batch(initiator, k, batch, rng)
        keys = src * np.int64(n_vertices) + dst
        # Accumulate without re-sorting the whole set every round: sort
        # only the fresh batch, drop keys already present, then a single
        # linear merge keeps ``seen`` sorted-unique.
        fresh = np.unique(keys)
        if seen.size:
            pos = np.searchsorted(seen, fresh)
            pos_clipped = np.minimum(pos, seen.size - 1)
            fresh = fresh[seen[pos_clipped] != fresh]
            pos = np.searchsorted(seen, fresh)
            seen = np.insert(seen, pos, fresh)
        else:
            seen = fresh
    if seen.size > target:
        # Keep a uniform subset so the realisation is not biased toward
        # high-probability cells any more than the model dictates.
        keep = rng.choice(seen.size, size=target, replace=False)
        seen = seen[np.sort(keep)]
    src = seen // n_vertices
    dst = seen % n_vertices
    return src.astype(np.int64), dst.astype(np.int64)
