"""Ethernet / IPv4 / TCP / UDP / ICMP packet construction and parsing.

Only the fields the Netflow mapping needs are modelled: addresses, ports,
protocol, TCP flags, and payload length.  Builders emit byte-exact wire
format (including a valid IPv4 header checksum); the parser tolerates
trailing padding and unknown transport protocols (returned with
``transport=None`` so flow assembly can skip them).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from enum import IntFlag

__all__ = [
    "TcpFlags",
    "ParsedPacket",
    "ipv4_checksum",
    "build_ethernet_ipv4_packet",
    "parse_ethernet_ipv4_packet",
    "PROTO_ICMP",
    "PROTO_TCP",
    "PROTO_UDP",
]

PROTO_ICMP = 1
PROTO_TCP = 6
PROTO_UDP = 17

_ETHERTYPE_IPV4 = 0x0800
_ETH_HEADER_LEN = 14
_IPV4_MIN_HEADER_LEN = 20
_TCP_MIN_HEADER_LEN = 20
_UDP_HEADER_LEN = 8
_ICMP_HEADER_LEN = 8


class TcpFlags(IntFlag):
    """TCP control flags (subset; CWR/ECE omitted — unused by the model)."""

    FIN = 0x01
    SYN = 0x02
    RST = 0x04
    PSH = 0x08
    ACK = 0x10
    URG = 0x20


@dataclass(frozen=True)
class ParsedPacket:
    """Decoded view of one Ethernet/IPv4 frame.

    ``transport`` is one of ``PROTO_TCP``, ``PROTO_UDP``, ``PROTO_ICMP`` or
    ``None`` for anything the model does not understand.  ``payload_len``
    is the transport payload (L4 data) in bytes — the quantity Netflow's
    byte counters aggregate.
    """

    timestamp: float
    src_ip: int
    dst_ip: int
    transport: int | None
    src_port: int
    dst_port: int
    tcp_flags: TcpFlags
    payload_len: int
    total_len: int

    @property
    def is_tcp(self) -> bool:
        return self.transport == PROTO_TCP

    @property
    def is_udp(self) -> bool:
        return self.transport == PROTO_UDP

    @property
    def is_icmp(self) -> bool:
        return self.transport == PROTO_ICMP


def ipv4_checksum(header: bytes) -> int:
    """RFC 791 ones-complement checksum over the IPv4 header bytes."""
    if len(header) % 2:
        header += b"\x00"
    total = 0
    for (word,) in struct.iter_unpack("!H", header):
        total += word
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


def _mac_bytes(value: int) -> bytes:
    return value.to_bytes(6, "big")


def build_ethernet_ipv4_packet(
    *,
    src_ip: int,
    dst_ip: int,
    protocol: int,
    src_port: int = 0,
    dst_port: int = 0,
    tcp_flags: TcpFlags = TcpFlags(0),
    payload_len: int = 0,
    seq: int = 0,
    ack: int = 0,
    ttl: int = 64,
    src_mac: int = 0x020000000001,
    dst_mac: int = 0x020000000002,
) -> bytes:
    """Serialise one frame.  The payload is zero-filled — only its *length*
    matters to Netflow accounting — which keeps synthetic traces cheap."""
    if payload_len < 0:
        raise ValueError("payload_len must be non-negative")
    if not 0 <= src_port <= 0xFFFF or not 0 <= dst_port <= 0xFFFF:
        raise ValueError("ports must fit in 16 bits")

    if protocol == PROTO_TCP:
        l4 = struct.pack(
            "!HHIIBBHHH",
            src_port,
            dst_port,
            seq & 0xFFFFFFFF,
            ack & 0xFFFFFFFF,
            (_TCP_MIN_HEADER_LEN // 4) << 4,
            int(tcp_flags),
            65535,  # window
            0,  # checksum (not validated by the model)
            0,  # urgent pointer
        ) + bytes(payload_len)
    elif protocol == PROTO_UDP:
        l4 = struct.pack(
            "!HHHH",
            src_port,
            dst_port,
            _UDP_HEADER_LEN + payload_len,
            0,
        ) + bytes(payload_len)
    elif protocol == PROTO_ICMP:
        # Echo request (type 8) with id/seq packed from the port fields so
        # round-tripping preserves them for flow keying.
        l4 = struct.pack(
            "!BBHHH", 8, 0, 0, src_port, dst_port
        ) + bytes(payload_len)
    else:
        l4 = bytes(payload_len)

    total_len = _IPV4_MIN_HEADER_LEN + len(l4)
    ip_wo_checksum = struct.pack(
        "!BBHHHBBH4s4s",
        (4 << 4) | (_IPV4_MIN_HEADER_LEN // 4),
        0,  # DSCP/ECN
        total_len,
        0,  # identification
        0,  # flags/fragment offset
        ttl,
        protocol,
        0,  # checksum placeholder
        (src_ip & 0xFFFFFFFF).to_bytes(4, "big"),
        (dst_ip & 0xFFFFFFFF).to_bytes(4, "big"),
    )
    checksum = ipv4_checksum(ip_wo_checksum)
    ip = ip_wo_checksum[:10] + struct.pack("!H", checksum) + ip_wo_checksum[12:]

    eth = _mac_bytes(dst_mac) + _mac_bytes(src_mac) + struct.pack(
        "!H", _ETHERTYPE_IPV4
    )
    return eth + ip + l4


def parse_ethernet_ipv4_packet(
    data: bytes, timestamp: float = 0.0
) -> ParsedPacket | None:
    """Decode one frame; returns None for non-IPv4 ethertypes.

    Frames with an IPv4 payload but an unmodelled transport protocol are
    returned with ``transport=None`` rather than dropped, so callers can
    still count them.
    """
    if len(data) < _ETH_HEADER_LEN + _IPV4_MIN_HEADER_LEN:
        return None
    (ethertype,) = struct.unpack("!H", data[12:14])
    if ethertype != _ETHERTYPE_IPV4:
        return None
    ip = data[_ETH_HEADER_LEN:]
    version_ihl = ip[0]
    if version_ihl >> 4 != 4:
        return None
    ihl = (version_ihl & 0x0F) * 4
    if ihl < _IPV4_MIN_HEADER_LEN or len(ip) < ihl:
        return None
    total_len = struct.unpack("!H", ip[2:4])[0]
    protocol = ip[9]
    src_ip = int.from_bytes(ip[12:16], "big")
    dst_ip = int.from_bytes(ip[16:20], "big")
    l4 = ip[ihl:total_len] if total_len >= ihl else b""

    src_port = dst_port = 0
    flags = TcpFlags(0)
    transport: int | None = None
    payload_len = 0

    if protocol == PROTO_TCP and len(l4) >= _TCP_MIN_HEADER_LEN:
        transport = PROTO_TCP
        src_port, dst_port = struct.unpack("!HH", l4[:4])
        data_offset = (l4[12] >> 4) * 4
        flags = TcpFlags(l4[13])
        payload_len = max(0, len(l4) - data_offset)
    elif protocol == PROTO_UDP and len(l4) >= _UDP_HEADER_LEN:
        transport = PROTO_UDP
        src_port, dst_port, udp_len, _ = struct.unpack("!HHHH", l4[:8])
        payload_len = max(0, udp_len - _UDP_HEADER_LEN)
    elif protocol == PROTO_ICMP and len(l4) >= _ICMP_HEADER_LEN:
        transport = PROTO_ICMP
        # id/seq round-trip the synthetic port fields.
        _, _, _, src_port, dst_port = struct.unpack("!BBHHH", l4[:8])
        payload_len = max(0, len(l4) - _ICMP_HEADER_LEN)

    return ParsedPacket(
        timestamp=timestamp,
        src_ip=src_ip,
        dst_ip=dst_ip,
        transport=transport,
        src_port=src_port,
        dst_port=dst_port,
        tcp_flags=flags,
        payload_len=payload_len,
        total_len=total_len,
    )
