"""Sub-graph queries: traffic motifs and host-pair aggregation.

These are the pattern queries a graph-based IDS evaluates continuously:
fan-out stars (one source, many distinct destinations — scanning), fan-in
stars (many sources converging on one destination — DDoS), and per-pair
flow aggregation (the edge-collapse a property-graph database performs
before anomaly scoring).

The motif queries read distinct-peer counts straight off the snapshot's
CSR row pointers (``np.diff`` of ``indptr``), so no per-query simple-graph
projection is performed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["fan_out_motif", "fan_in_motif", "host_pair_aggregate",
           "PairAggregate"]


def fan_out_motif(graph, min_distinct_destinations: int) -> np.ndarray:
    """Sources contacting at least ``min_distinct_destinations`` distinct
    hosts (the scanning star).  Returns the centre vertex indices."""
    if min_distinct_destinations < 1:
        raise ValueError("min_distinct_destinations must be >= 1")
    snap = graph.snapshot()
    counts = snap.distinct_out_degrees()
    return np.flatnonzero(counts >= min_distinct_destinations)


def fan_in_motif(graph, min_distinct_sources: int) -> np.ndarray:
    """Destinations contacted by at least ``min_distinct_sources`` distinct
    hosts (the DDoS convergence star)."""
    if min_distinct_sources < 1:
        raise ValueError("min_distinct_sources must be >= 1")
    snap = graph.snapshot()
    counts = snap.distinct_in_degrees()
    return np.flatnonzero(counts >= min_distinct_sources)


@dataclass(frozen=True)
class PairAggregate:
    """Aggregated traffic between one ordered host pair."""

    src: np.ndarray
    dst: np.ndarray
    n_flows: np.ndarray
    total_bytes: np.ndarray
    total_packets: np.ndarray

    def __len__(self) -> int:
        return int(self.src.size)


def host_pair_aggregate(graph) -> PairAggregate:
    """Collapse parallel edges into per-(src, dst) traffic totals.

    Requires the byte/packet Netflow attributes; one ``np.unique`` pass
    plus ``bincount`` reductions.
    """
    g = graph.snapshot().graph
    for needed in ("OUT_BYTES", "IN_BYTES", "OUT_PKTS", "IN_PKTS"):
        if needed not in g.edge_properties:
            raise KeyError(f"edge attribute {needed!r} not present")
    if g.n_edges == 0:
        empty = np.empty(0, dtype=np.int64)
        return PairAggregate(empty, empty, empty, empty, empty)
    key = g.src * np.int64(g.n_vertices) + g.dst
    uniq, inverse, counts = np.unique(
        key, return_inverse=True, return_counts=True
    )
    total_bytes = np.bincount(
        inverse,
        weights=(
            np.asarray(g.edge_properties["OUT_BYTES"], dtype=np.float64)
            + np.asarray(g.edge_properties["IN_BYTES"], dtype=np.float64)
        ),
        minlength=uniq.size,
    ).astype(np.int64)
    total_packets = np.bincount(
        inverse,
        weights=(
            np.asarray(g.edge_properties["OUT_PKTS"], dtype=np.float64)
            + np.asarray(g.edge_properties["IN_PKTS"], dtype=np.float64)
        ),
        minlength=uniq.size,
    ).astype(np.int64)
    return PairAggregate(
        src=(uniq // g.n_vertices).astype(np.int64),
        dst=(uniq % g.n_vertices).astype(np.int64),
        n_flows=counts.astype(np.int64),
        total_bytes=total_bytes,
        total_packets=total_packets,
    )
