"""Quantile-binned conditional distributions.

The seed analysis step (Fig. 1) computes the unconditional distribution of
``IN_BYTES`` and then, for every other Netflow attribute ``a``, the
conditional distribution ``p(a | IN_BYTES)``.  A flow that moved many bytes
should also report many packets and a long duration; conditioning preserves
these couplings in the synthetic attributes.

:class:`ConditionalDistribution` bins the conditioning variable into
(approximate) quantile bins and stores one :class:`EmpiricalDistribution`
per bin.  Sampling takes a vector of conditioning values and returns a
matching vector of attribute draws, grouped by bin so each bin samples once.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.stats.empirical import EmpiricalDistribution

__all__ = ["ConditionalDistribution"]


@dataclass(frozen=True)
class ConditionalDistribution:
    """``p(target | conditioner)`` with a quantile-binned conditioner.

    Attributes
    ----------
    bin_edges:
        Increasing edges of the conditioner bins; value v falls into bin
        ``searchsorted(bin_edges, v, 'right') - 1`` clamped to range.
    bin_distributions:
        One empirical distribution of the target per bin.
    """

    bin_edges: np.ndarray
    bin_distributions: tuple[EmpiricalDistribution, ...]

    @classmethod
    def fit(
        cls,
        conditioner: np.ndarray,
        target: np.ndarray,
        *,
        n_bins: int = 16,
        min_bin_count: int = 4,
    ) -> "ConditionalDistribution":
        """Estimate ``p(target | conditioner)`` from paired observations.

        Bins are quantiles of the conditioner so every bin holds comparable
        mass even for heavy-tailed conditioners.  Bins that end up with fewer
        than ``min_bin_count`` observations inherit the *global* target
        distribution to avoid degenerate point masses.
        """
        conditioner = np.asarray(conditioner)
        target = np.asarray(target)
        if conditioner.shape != target.shape or conditioner.ndim != 1:
            raise ValueError(
                "conditioner and target must be matching 1-D arrays, got "
                f"{conditioner.shape} and {target.shape}"
            )
        if conditioner.size == 0:
            raise ValueError("cannot fit a conditional on zero observations")
        n_bins = max(1, min(n_bins, conditioner.size))
        qs = np.linspace(0.0, 1.0, n_bins + 1)
        edges = np.unique(np.quantile(conditioner, qs))
        if edges.size < 2:
            # Constant conditioner: a single bin covering everything.
            edges = np.asarray([edges[0], edges[0] + 1])
        global_dist = EmpiricalDistribution.from_samples(target)
        bin_idx = cls._bin_of(edges, conditioner)
        dists: list[EmpiricalDistribution] = []
        for b in range(edges.size - 1):
            members = target[bin_idx == b]
            if members.size < min_bin_count:
                dists.append(global_dist)
            else:
                dists.append(EmpiricalDistribution.from_samples(members))
        return cls(bin_edges=edges, bin_distributions=tuple(dists))

    @staticmethod
    def _bin_of(edges: np.ndarray, values: np.ndarray) -> np.ndarray:
        idx = np.searchsorted(edges, values, side="right") - 1
        return np.clip(idx, 0, edges.size - 2)

    @property
    def n_bins(self) -> int:
        return len(self.bin_distributions)

    def distribution_for(self, value) -> EmpiricalDistribution:
        """The per-bin distribution governing a single conditioner value."""
        b = self._bin_of(self.bin_edges, np.atleast_1d(np.asarray(value)))[0]
        return self.bin_distributions[int(b)]

    def sample(
        self, conditioner_values: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Draw one target per conditioner value.

        Groups the indices by bin and issues one vectorised draw per bin,
        so cost is O(n log s) regardless of how values interleave.
        """
        cond = np.asarray(conditioner_values)
        if cond.size == 0:
            return self.bin_distributions[0].values[:0].copy()
        bins = self._bin_of(self.bin_edges, cond)
        # Allocate output with the widest dtype among bins to avoid clipping.
        sample_dtype = np.result_type(
            *[d.values.dtype for d in self.bin_distributions]
        )
        out = np.empty(cond.size, dtype=sample_dtype)
        for b in np.unique(bins):
            mask = bins == b
            out[mask] = self.bin_distributions[int(b)].sample(
                int(mask.sum()), rng
            )
        return out
