"""Common machinery for the baseline generators."""

from __future__ import annotations

import abc

import numpy as np

from repro.core.generator import SeedAnalysis
from repro.graph.property_graph import PropertyGraph

__all__ = ["BaselineGenerator", "decorate_with_properties"]


def decorate_with_properties(
    graph: PropertyGraph,
    analysis: SeedAnalysis,
    rng: np.random.Generator,
    *,
    conditional: bool = True,
) -> PropertyGraph:
    """Attach the nine Netflow attribute columns to a structural graph.

    Identical to the decoration stage of PGPBA/PGSK, so baselines produce
    fully comparable property graphs.
    """
    cols = analysis.properties.sample_columns(
        graph.n_edges, rng, conditional=conditional
    )
    return PropertyGraph(
        n_vertices=graph.n_vertices,
        src=graph.src,
        dst=graph.dst,
        vertex_properties=dict(graph.vertex_properties),
        edge_properties=cols,
    )


class BaselineGenerator(abc.ABC):
    """A structural graph generator with optional property decoration.

    Subclasses implement :meth:`edges` returning ``(n_vertices, src, dst)``;
    the base class handles validation, property decoration and the shared
    ``generate`` entry point so every baseline is interchangeable with the
    core generators in comparison experiments.
    """

    #: Human-readable model name for benchmark tables.
    name: str = "baseline"

    def __init__(self, *, seed: int = 0) -> None:
        self.seed = seed

    @abc.abstractmethod
    def edges(
        self,
        n_vertices: int,
        n_edges: int,
        rng: np.random.Generator,
        analysis: SeedAnalysis | None,
    ) -> tuple[int, np.ndarray, np.ndarray]:
        """Produce the structural edge list.

        Returns the (possibly adjusted) vertex count plus endpoint arrays;
        models with structural constraints (powers of two, ring sizes) may
        return more vertices than requested, never fewer than 1.
        """

    def generate(
        self,
        analysis: SeedAnalysis,
        n_edges: int,
        *,
        n_vertices: int | None = None,
        with_properties: bool = True,
    ) -> PropertyGraph:
        """Generate a property graph of ~``n_edges`` edges.

        ``n_vertices`` defaults to scaling the seed's vertex count by the
        requested edge growth, preserving the seed's density.
        """
        if n_edges < 1:
            raise ValueError("n_edges must be >= 1")
        if n_vertices is None:
            scale = n_edges / max(analysis.n_edges, 1)
            n_vertices = max(2, int(round(analysis.n_vertices * scale)))
        if n_vertices < 2:
            raise ValueError("n_vertices must be >= 2")
        rng = np.random.default_rng((self.seed, n_vertices, n_edges))
        n_v, src, dst = self.edges(n_vertices, n_edges, rng, analysis)
        graph = PropertyGraph(
            n_vertices=n_v,
            src=np.ascontiguousarray(src, dtype=np.int64),
            dst=np.ascontiguousarray(dst, dtype=np.int64),
        )
        if with_properties:
            graph = decorate_with_properties(graph, analysis, rng)
        return graph
