"""Plain-text table/series formatting for benchmark output."""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table", "print_series"]


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence], *, precision: int = 4
) -> str:
    """Monospace table with right-aligned numeric columns."""

    def fmt(v) -> str:
        if isinstance(v, float):
            if v == 0:
                return "0"
            if abs(v) >= 1e5 or abs(v) < 1e-3:
                return f"{v:.{precision}e}"
            return f"{v:.{precision}g}"
        return str(v)

    cells = [[fmt(v) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in cells:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def print_series(title: str, headers: Sequence[str], rows: Sequence[Sequence]) -> None:
    """Print one figure's series under a banner (what the harness emits)."""
    print(f"\n== {title} ==")
    print(format_table(headers, rows))
