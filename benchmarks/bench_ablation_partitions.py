"""Ablation — partition multiplier (the paper's tuning note).

"We found that, in most cases, using a number of partitions equal to 2x or
4x the number of executor cores leads to the best performance."  This
ablation sweeps the multiplier on a fixed workload: 1x leaves cores idle
during stragglers, 2x-4x fills the waves, and very large multipliers pay
per-task overhead without adding parallelism.

A second ablation covers PGSK's ``distinct()`` de-duplication: switching
it off keeps descent collisions as parallel edges, trading fidelity (extra
multiplicity mass the seed never had) for one less shuffle.
"""

from __future__ import annotations

from conftest import save_series
from repro.core import PGPBA, PGSK
from repro.engine import ClusterContext

MULTIPLIERS = (1, 2, 4, 8, 16)


def run_partition_sweep(seed_graph, seed_analysis):
    rows = []
    target = 64 * seed_graph.n_edges
    for mult in MULTIPLIERS:
        times = []
        for _ in range(2):
            ctx = ClusterContext(
                n_nodes=8, executor_cores=12, partition_multiplier=mult
            )
            res = PGPBA(fraction=2.0, seed=22).generate(
                seed_graph, seed_analysis, target, context=ctx
            )
            times.append(res.total_seconds)
        rows.append([mult, min(times)])
    return rows


def test_ablation_partition_multiplier(benchmark, seed_graph, seed_analysis):
    rows = run_partition_sweep(seed_graph, seed_analysis)
    save_series(
        "ablation_partitions",
        "Ablation: partition multiplier vs generation time (8 nodes)",
        ["multiplier", "seconds"],
        rows,
    )
    by_mult = dict(rows)
    best = min(by_mult.values())
    # The paper's sweet spot (2x-4x) is at or near the optimum.
    assert min(by_mult[2], by_mult[4]) <= best * 1.25

    def op():
        ctx = ClusterContext(
            n_nodes=8, executor_cores=12, partition_multiplier=2
        )
        return PGPBA(fraction=2.0, seed=23).generate(
            seed_graph, seed_analysis, 16 * seed_graph.n_edges, context=ctx
        )

    benchmark.pedantic(op, rounds=1, iterations=1)


def test_ablation_pgsk_deduplication(benchmark, seed_graph, seed_analysis):
    target = 32 * seed_graph.n_edges
    gen = PGSK(seed=24, kronfit_iterations=8, kronfit_swaps=30,
               generate_properties=False)
    initiator = gen.fit_initiator(seed_graph)
    rows = []
    for dedup in (True, False):
        ctx = ClusterContext(n_nodes=8, executor_cores=12)
        gen.deduplicate = dedup
        res = gen.generate(
            seed_graph, seed_analysis, target,
            context=ctx, initiator=initiator,
        )
        mult = res.graph.edge_multiplicities()
        rows.append(
            [
                "distinct()" if dedup else "keep collisions",
                res.total_seconds,
                float(mult.mean()),
                int(mult.max()),
            ]
        )
    save_series(
        "ablation_dedup",
        "Ablation: PGSK distinct() on/off — cost vs multiplicity fidelity",
        ["variant", "seconds", "mean_multiplicity", "max_multiplicity"],
        rows,
    )
    with_d, without_d = rows[0], rows[1]
    # Collisions inflate parallel-edge mass when dedup is off.
    assert without_d[2] >= with_d[2]

    def op():
        ctx = ClusterContext(n_nodes=8, executor_cores=12)
        gen.deduplicate = True
        return gen.generate(
            seed_graph, seed_analysis, 8 * seed_graph.n_edges,
            context=ctx, initiator=initiator,
        )

    benchmark.pedantic(op, rounds=1, iterations=1)
