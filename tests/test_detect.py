"""Tests for the Section IV anomaly-detection stack."""

import numpy as np
import pytest

from repro.core.pipeline import packets_from
from repro.detect import (
    DetectionThresholds,
    NetflowAnomalyDetector,
    build_traffic_patterns,
    evaluate_detections,
)
from repro.detect.patterns import iter_windows
from repro.detect.report import DetectionReport
from repro.detect.detector import Detection
from repro.netflow import FlowTable, assemble_flows
from repro.trace import attacks, synthesize_seed_packets
from repro.trace.hosts import ipv4

WINDOW = 5.0


def flows_from(frames):
    frames = sorted(frames, key=lambda f: f[0])
    return FlowTable.from_records(
        list(assemble_flows(packets_from(frames)))
    )


def columns(table):
    return {k: table[k] for k in FlowTable.COLUMN_NAMES}


@pytest.fixture(scope="module")
def background():
    return synthesize_seed_packets(
        duration=20.0, session_rate=40, seed=9
    )


@pytest.fixture(scope="module")
def clean_table(background):
    return flows_from(background)


@pytest.fixture(scope="module")
def thresholds(clean_table):
    return DetectionThresholds.fit_normal(
        columns(clean_table), window_seconds=WINDOW
    )


@pytest.fixture(scope="module")
def attack_set(background):
    t0 = 1_000_005.0
    atk = [
        attacks.syn_flood(
            attacker_ip=ipv4(203, 0, 113, 5),
            victim_ip=ipv4(10, 2, 0, 3), start_time=t0,
        ),
        attacks.host_scan(
            attacker_ip=ipv4(203, 0, 113, 6),
            victim_ip=ipv4(10, 2, 0, 4), start_time=t0 + 2,
        ),
        attacks.network_scan(
            attacker_ip=ipv4(203, 0, 113, 7),
            subnet_base=ipv4(10, 1, 0, 0), start_time=t0 + 4,
        ),
        attacks.udp_flood(
            attacker_ip=ipv4(203, 0, 113, 8),
            victim_ip=ipv4(10, 2, 0, 5), start_time=t0 + 6,
        ),
        attacks.icmp_flood(
            attacker_ip=ipv4(203, 0, 113, 9),
            victim_ip=ipv4(10, 2, 0, 6), start_time=t0 + 8,
        ),
        attacks.ddos_syn_flood(
            attacker_ips=tuple(ipv4(203, 0, 113, 20 + j) for j in range(8)),
            victim_ip=ipv4(10, 2, 0, 7), start_time=t0 + 10,
        ),
    ]
    frames = list(background)
    for a in atk:
        frames.extend(a.frames)
    return flows_from(frames), atk


class TestPatterns:
    def test_direction_validation(self, clean_table):
        with pytest.raises(ValueError):
            build_traffic_patterns(columns(clean_table), direction="bogus")

    def test_flow_counts_sum(self, clean_table):
        p = build_traffic_patterns(
            columns(clean_table), direction="destination"
        )
        assert p.n_flows.sum() == len(clean_table)

    def test_peer_counts_bounded_by_flows(self, clean_table):
        p = build_traffic_patterns(columns(clean_table), direction="source")
        assert (p.n_distinct_peers <= p.n_flows).all()

    def test_avg_consistent_with_sum(self, clean_table):
        p = build_traffic_patterns(
            columns(clean_table), direction="destination"
        )
        assert np.allclose(
            p.avg_flow_size, p.sum_flow_size / np.maximum(p.n_flows, 1)
        )

    def test_protocol_split_sums_to_total(self, clean_table):
        p = build_traffic_patterns(
            columns(clean_table), direction="destination"
        )
        assert np.array_equal(
            p.tcp_flows + p.udp_flows + p.icmp_flows, p.n_flows
        )

    def test_ack_syn_ratio_inf_without_syn(self):
        table = flows_from(
            attacks.udp_flood(
                attacker_ip=1, victim_ip=2, start_time=0.0, n_packets=20
            ).frames
        )
        p = build_traffic_patterns(columns(table), direction="destination")
        assert np.isinf(p.ack_syn_ratio()).all()

    def test_icmp_excluded_from_port_counts(self):
        table = flows_from(
            attacks.icmp_flood(
                attacker_ip=1, victim_ip=2, start_time=0.0, n_packets=50
            ).frames
        )
        p = build_traffic_patterns(columns(table), direction="destination")
        assert p.n_distinct_ports.max() == 0

    def test_iter_windows_partition(self, clean_table):
        total = 0
        for _, cols in iter_windows(columns(clean_table), WINDOW):
            span = cols["START_TIME"].max() - cols["START_TIME"].min()
            assert span < WINDOW
            total += len(cols["START_TIME"])
        assert total == len(clean_table)

    def test_iter_windows_validation(self, clean_table):
        with pytest.raises(ValueError):
            iter_windows(columns(clean_table), 0.0)


class TestThresholds:
    def test_fit_normal_orders_bounds(self, thresholds):
        assert thresholds.dp_lt <= thresholds.dp_ht
        assert thresholds.fs_lt <= thresholds.fs_ht
        assert thresholds.np_lt <= thresholds.np_ht

    def test_vector_roundtrip(self, thresholds):
        back = DetectionThresholds.from_vector(thresholds.as_vector())
        assert back == thresholds

    def test_from_vector_repairs_ordering(self):
        t = DetectionThresholds()
        vec = t.as_vector()
        names = [f.name for f in __import__("dataclasses").fields(t)]
        i_lt, i_ht = names.index("dp_lt"), names.index("dp_ht")
        vec[i_lt], vec[i_ht] = vec[i_ht], vec[i_lt]
        repaired = DetectionThresholds.from_vector(vec)
        assert repaired.dp_lt <= repaired.dp_ht

    def test_scaled(self):
        t = DetectionThresholds()
        loose = t.scaled(2.0)
        assert loose.nf_t == 2 * t.nf_t
        assert loose.fs_lt == t.fs_lt / 2
        with pytest.raises(ValueError):
            t.scaled(0.0)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            DetectionThresholds(nf_t=-1)

    def test_bad_ordering_rejected(self):
        with pytest.raises(ValueError):
            DetectionThresholds(dp_lt=10, dp_ht=1)


class TestDetector:
    def test_all_attack_kinds_detected(self, attack_set, thresholds):
        table, atk = attack_set
        det = NetflowAnomalyDetector(thresholds)
        found = det.detect_windowed(columns(table), window_seconds=WINDOW)
        rep = evaluate_detections(found, atk)
        assert rep.recall == 1.0
        assert rep.precision >= 0.8

    def test_clean_traffic_no_alarms(self, clean_table, thresholds):
        det = NetflowAnomalyDetector(thresholds)
        found = det.detect_windowed(
            columns(clean_table), window_seconds=WINDOW
        )
        assert found == []

    def test_syn_flood_names_victim(self, background, thresholds):
        victim = ipv4(10, 2, 0, 3)
        gt = attacks.syn_flood(
            attacker_ip=ipv4(203, 0, 113, 5), victim_ip=victim,
            start_time=1_000_005.0,
        )
        table = flows_from(list(background) + gt.frames)
        det = NetflowAnomalyDetector(thresholds)
        found = det.detect_windowed(columns(table), window_seconds=WINDOW)
        syn = [d for d in found if "syn" in d.kind or d.kind == "tcp_flood"]
        assert any(d.ip == victim for d in syn)

    def test_network_scan_names_attacker(self, background, thresholds):
        attacker = ipv4(203, 0, 113, 7)
        gt = attacks.network_scan(
            attacker_ip=attacker, subnet_base=ipv4(10, 1, 0, 0),
            start_time=1_000_005.0,
        )
        table = flows_from(list(background) + gt.frames)
        det = NetflowAnomalyDetector(thresholds)
        found = det.detect_windowed(columns(table), window_seconds=WINDOW)
        scans = [d for d in found if d.kind == "network_scan"]
        assert any(
            d.ip == attacker and d.direction == "source" for d in scans
        )

    def test_evidence_populated(self, attack_set, thresholds):
        table, _ = attack_set
        det = NetflowAnomalyDetector(thresholds)
        found = det.detect_windowed(columns(table), window_seconds=WINDOW)
        assert found
        for d in found:
            assert d.evidence["n_flows"] >= 0
            assert "avg_flow_size" in d.evidence

    def test_default_thresholds_construct(self):
        det = NetflowAnomalyDetector()
        assert det.thresholds == DetectionThresholds()


class TestReport:
    def test_perfect_report(self):
        gt = attacks.syn_flood(
            attacker_ip=1, victim_ip=2, start_time=0.0, n_packets=10
        )
        det = [Detection(kind="syn_flood", ip=2, direction="destination")]
        rep = evaluate_detections(det, [gt])
        assert rep.true_positives == 1
        assert rep.f1 == 1.0

    def test_false_positive_counted(self):
        det = [Detection(kind="syn_flood", ip=99, direction="destination")]
        rep = evaluate_detections(det, [])
        assert rep.false_positives == 1
        assert rep.precision == 0.0

    def test_missed_attack(self):
        gt = attacks.udp_flood(
            attacker_ip=1, victim_ip=2, start_time=0.0, n_packets=10
        )
        rep = evaluate_detections([], [gt])
        assert rep.false_negatives == 1
        assert rep.recall == 0.0
        assert rep.missed_attacks == ("udp_flood",)

    def test_duplicate_detections_collapse(self):
        gt = attacks.syn_flood(
            attacker_ip=1, victim_ip=2, start_time=0.0, n_packets=10
        )
        det = [
            Detection(kind="syn_flood", ip=2, direction="destination"),
            Detection(kind="tcp_flood", ip=2, direction="destination"),
        ]
        rep = evaluate_detections(det, [gt])
        assert rep.true_positives == 1
        assert rep.false_positives == 0

    def test_direction_mismatch_is_fp(self):
        gt = attacks.syn_flood(
            attacker_ip=1, victim_ip=2, start_time=0.0, n_packets=10
        )
        # names the victim but via a source-based pattern: not a match
        det = [Detection(kind="syn_flood", ip=2, direction="source")]
        rep = evaluate_detections(det, [gt])
        assert rep.true_positives == 0
        assert rep.false_positives == 1

    def test_empty_everything(self):
        rep = evaluate_detections([], [])
        assert rep.precision == 1.0 and rep.recall == 1.0

    def test_f1_zero_guard(self):
        rep = DetectionReport(0, 5, 5, (), ("x",) * 5)
        assert rep.f1 == 0.0
