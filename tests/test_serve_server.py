"""QueryServer: concurrency determinism, caching, epochs, statistics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import PropertyGraph
from repro.queries import QueryWorkload
from repro.queries.subgraph_queries import PairAggregate
from repro.serve import Query, QueryServer
from repro.serve.server import (
    _OPS,
    QUERY_CACHE_ENV_VAR,
    QUERY_THREADS_ENV_VAR,
    resolve_query_cache_size,
    resolve_query_threads,
)

from tests.test_serve import random_graph


def results_equal(a, b) -> bool:
    """Deep byte-level equality across the result types queries return."""
    if type(a) is not type(b):
        return False
    if isinstance(a, np.ndarray):
        return a.dtype == b.dtype and np.array_equal(a, b)
    if isinstance(a, PropertyGraph):
        return (
            a.n_vertices == b.n_vertices
            and np.array_equal(a.src, b.src)
            and np.array_equal(a.dst, b.dst)
            and set(a.edge_properties) == set(b.edge_properties)
            and all(
                np.array_equal(
                    np.asarray(a.edge_properties[k]),
                    np.asarray(b.edge_properties[k]),
                )
                for k in a.edge_properties
            )
        )
    if isinstance(a, PairAggregate):
        return all(
            np.array_equal(getattr(a, f), getattr(b, f))
            for f in ("src", "dst", "n_flows", "total_bytes", "total_packets")
        )
    return a == b


def full_batch(graph, workload=None) -> list:
    wl = workload or QueryWorkload(n_queries=12, k_hops=2, seed=5)
    batch = wl.build_queries(graph)
    # Widen coverage beyond the workload mix: every remaining op.
    batch += [
        Query.neighbors(0, direction="out"),
        Query.neighbors(0, direction="in"),
        Query.degree_top_k(5, kind="in"),
        Query.degree_top_k(5, kind="out"),
        Query.host_lookup(3),
        Query.shortest_path(0, graph.n_vertices - 1),
        Query.reachable(1, max_hops=2),
        Query.reachable(1),
    ]
    return batch


class TestBatchDeterminism:
    @pytest.mark.parametrize("seed", (0, 1, 2))
    @pytest.mark.parametrize("threads", (2, 4))
    def test_threaded_batch_matches_serial(self, seed, threads):
        g = random_graph(seed)
        batch = full_batch(g)
        serial = QueryServer(g, threads=1, cache_size=0).run_batch(batch)
        threaded = QueryServer(g, threads=threads, cache_size=0).run_batch(
            batch
        )
        cached = QueryServer(g, threads=threads, cache_size=256).run_batch(
            batch
        )
        assert len(serial) == len(batch)
        for s, t, c in zip(serial, threaded, cached):
            assert results_equal(s, t)
            assert results_equal(s, c)

    def test_batch_matches_direct_calls(self):
        g = random_graph(7)
        batch = full_batch(g)
        server = QueryServer(g, threads=4)
        got = server.run_batch(batch)
        snap = g.snapshot()
        for query, result in zip(batch, got):
            direct = _OPS[query.op](snap, query.kwargs())
            assert results_equal(result, direct)

    def test_execute_single(self):
        g = random_graph(8)
        server = QueryServer(g, threads=1)
        got = server.execute(Query.k_hop(0, 2))
        assert results_equal(got, _OPS["k_hop"](g.snapshot(), {"source": 0, "k": 2}))

    def test_empty_batch(self):
        server = QueryServer(random_graph(9))
        assert server.run_batch([]) == []

    def test_unknown_op_rejected(self):
        server = QueryServer(random_graph(9))
        with pytest.raises(ValueError, match="unknown query op"):
            server.execute(Query(op="nope", family="node", params=()))
        with pytest.raises(ValueError, match="threads"):
            server.run_batch([Query.fan_out(2)], threads=0)


class TestResultCache:
    def test_hits_return_identical_results(self):
        g = random_graph(10)
        server = QueryServer(g, threads=1, cache_size=64)
        batch = full_batch(g)
        first = server.run_batch(batch)
        info = server.cache_info()
        assert info["misses"] > 0
        second = server.run_batch(batch)
        info2 = server.cache_info()
        assert info2["hits"] >= len(set(q.fingerprint() for q in batch))
        for a, b in zip(first, second):
            assert results_equal(a, b)

    def test_duplicate_queries_hit_within_one_batch(self):
        g = random_graph(11)
        server = QueryServer(g, threads=1, cache_size=64)
        q = Query.degree_top_k(5)
        server.run_batch([q, q, q])
        info = server.cache_info()
        assert info["misses"] == 1
        assert info["hits"] == 2

    def test_cache_disabled(self):
        g = random_graph(12)
        server = QueryServer(g, cache_size=0, threads=1)
        q = Query.fan_out(3)
        r1, r2 = server.run_batch([q, q])
        assert results_equal(r1, r2)
        info = server.cache_info()
        assert info["hits"] == 0
        assert info["misses"] == 2
        assert info["size"] == 0

    def test_lru_eviction_bounds_size(self):
        g = random_graph(13)
        server = QueryServer(g, threads=1, cache_size=4)
        for v in range(10):
            server.execute(Query.neighbors(v))
        assert server.cache_info()["size"] == 4
        # Most recent entries survive; the oldest were evicted.
        server.execute(Query.neighbors(9))
        assert server.cache_info()["hits"] == 1
        server.execute(Query.neighbors(0))
        assert server.cache_info()["misses"] == 11

    def test_fingerprints_canonical(self):
        a = Query.edge_filter(
            equals={"DEST_PORT": 80, "PROTOCOL": 6},
            ranges={"OUT_BYTES": (1, None)},
        )
        b = Query.edge_filter(
            equals={"PROTOCOL": np.int64(6), "DEST_PORT": np.int32(80)},
            ranges={"OUT_BYTES": [1, None]},
        )
        assert a.fingerprint() == b.fingerprint()
        assert a == b
        assert Query.neighbors(3) != Query.neighbors(4)
        with pytest.raises(TypeError):
            Query._make("x", "node", bad=object())


class TestEpochInvalidation:
    def test_swap_empties_cache(self):
        g1, g2 = random_graph(20), random_graph(21)
        server = QueryServer(g1, threads=1, cache_size=64)
        batch = full_batch(g1)
        before = server.run_batch(batch)
        assert server.cache_info()["size"] > 0
        old_epoch = server.epoch
        server.swap(g2)
        assert server.epoch > old_epoch
        assert server.cache_info()["size"] == 0
        after = server.run_batch(batch)
        # Fresh results come from the new snapshot, not stale cache.
        snap2 = g2.snapshot()
        for query, result in zip(batch, after):
            assert results_equal(result, _OPS[query.op](snap2, query.kwargs()))
        # Old results unchanged (no aliasing with the new graph).
        snap1 = g1.snapshot()
        for query, result in zip(batch, before):
            assert results_equal(result, _OPS[query.op](snap1, query.kwargs()))

    def test_swap_to_same_graph_keeps_cache(self):
        g = random_graph(22)
        server = QueryServer(g, threads=1, cache_size=64)
        server.execute(Query.degree_top_k(3))
        server.swap(g)  # memoized snapshot: same epoch, nothing stale
        assert server.cache_info()["size"] == 1
        server.execute(Query.degree_top_k(3))
        assert server.cache_info()["hits"] == 1


class TestServerStats:
    def test_counters_and_summary(self):
        g = random_graph(30)
        server = QueryServer(g, threads=2, cache_size=64)
        batch = full_batch(g)
        server.run_batch(batch)
        server.run_batch(batch)
        stats = server.stats()
        assert stats.n_queries == stats.cache_hits + stats.cache_misses
        assert stats.n_queries == 2 * len(batch)
        assert 0.0 < stats.hit_ratio < 1.0
        assert stats.wall_seconds > 0
        assert stats.queries_per_second > 0
        for family in ("node", "edge", "path", "subgraph"):
            fs = stats.families[family]
            assert fs.n_queries > 0
            assert fs.p50_ms <= fs.p99_ms
            assert fs.queries_per_second > 0
        text = stats.summary()
        assert "cache" in text
        for family in ("node", "edge", "path", "subgraph"):
            assert family in text

    def test_reset_stats(self):
        g = random_graph(31)
        server = QueryServer(g, threads=1)
        server.execute(Query.fan_in(2))
        server.reset_stats()
        stats = server.stats()
        assert stats.n_queries == 0
        assert stats.wall_seconds == 0.0
        assert stats.queries_per_second == 0.0
        assert stats.hit_ratio == 0.0
        # Empty families are skipped in the summary.
        assert "node" not in stats.summary()

    def test_resolve_env_vars(self, monkeypatch):
        monkeypatch.delenv(QUERY_THREADS_ENV_VAR, raising=False)
        monkeypatch.delenv(QUERY_CACHE_ENV_VAR, raising=False)
        assert resolve_query_threads(3) == 3
        assert resolve_query_threads() >= 1
        assert resolve_query_cache_size() == 1024
        monkeypatch.setenv(QUERY_THREADS_ENV_VAR, "7")
        monkeypatch.setenv(QUERY_CACHE_ENV_VAR, "9")
        assert resolve_query_threads() == 7
        assert resolve_query_cache_size() == 9
        assert resolve_query_cache_size(0) == 0
        with pytest.raises(ValueError):
            resolve_query_threads(0)
        with pytest.raises(ValueError):
            resolve_query_cache_size(-1)


class TestWorkloadBridge:
    def test_build_queries_mirrors_run_mix(self):
        g = random_graph(40)
        wl = QueryWorkload(n_queries=6, k_hops=2, seed=9)
        batch = wl.build_queries(g)
        by_family = {}
        for q in batch:
            by_family[q.family] = by_family.get(q.family, 0) + 1
        report = wl.run(g)
        assert by_family == {
            f: c for f, c in report.queries_by_family.items() if c
        }

    def test_build_queries_family_subset(self):
        g = random_graph(41)
        wl = QueryWorkload(n_queries=4, seed=1)
        only_paths = wl.build_queries(g, families=["path"])
        assert only_paths and all(q.family == "path" for q in only_paths)
        # Target draws identical to the full mix.
        full = [q for q in wl.build_queries(g) if q.family == "path"]
        assert only_paths == full

    def test_workload_qps_never_inf(self):
        from repro.queries.workload import WorkloadReport

        report = WorkloadReport(
            n_edges=10,
            queries_per_family=5,
            seconds_by_family={"node": 0.1, "edge": 0.0, "path": 0.0},
            queries_by_family={"node": 5, "edge": 0, "path": 5},
        )
        qps = report.queries_per_second()
        assert qps["node"] == pytest.approx(50.0)
        assert qps["edge"] == 0.0  # no queries ran: 0.0, never inf
        assert qps["path"] == 0.0  # unmeasurably fast: 0.0, never inf
        assert all(np.isfinite(v) for v in qps.values())
        rows = report.summary().splitlines()[1:]
        assert any(r.lstrip().startswith("node") for r in rows)
        assert not any(r.lstrip().startswith("edge") for r in rows)
        # path ran queries (too fast to time): shown, with 0 q/s.
        assert any(r.lstrip().startswith("path") for r in rows)

    def test_bare_graph_workload_without_props(self):
        g = PropertyGraph(
            6, np.array([0, 1, 2, 3]), np.array([1, 2, 3, 4])
        )
        report = QueryWorkload(n_queries=3, seed=0).run(g)
        assert report.queries_by_family["edge"] == 0
        assert report.queries_per_second()["edge"] == 0.0
        batch = QueryWorkload(n_queries=3, seed=0).build_queries(g)
        assert all(q.family != "edge" for q in batch)


# ----------------------------------------------------------------------
# property-based determinism over random query batches
# ----------------------------------------------------------------------
_N, _SEEDS = 30, (0, 1)

_query_st = st.one_of(
    st.builds(
        Query.neighbors,
        st.integers(0, _N - 1),
        direction=st.sampled_from(["out", "in", "both"]),
    ),
    st.builds(
        Query.degree_top_k,
        st.integers(1, 12),
        kind=st.sampled_from(["in", "out", "total"]),
    ),
    st.builds(Query.host_lookup, st.integers(-2, _N + 2)),
    st.builds(
        Query.edge_filter,
        equals=st.fixed_dictionaries(
            {},
            optional={
                "PROTOCOL": st.sampled_from([6, 17]),
                "DEST_PORT": st.sampled_from([22, 53, 80, 443]),
                "STATE": st.integers(0, 4),
            },
        ),
        ranges=st.fixed_dictionaries(
            {},
            optional={
                "OUT_BYTES": st.tuples(
                    st.integers(0, 100),
                    st.one_of(st.none(), st.integers(100, 10_000)),
                )
            },
        ),
    ),
    st.builds(Query.k_hop, st.integers(0, _N - 1), st.integers(0, 3)),
    st.builds(
        Query.shortest_path, st.integers(0, _N - 1), st.integers(0, _N - 1)
    ),
    st.builds(
        Query.reachable,
        st.integers(0, _N - 1),
        max_hops=st.one_of(st.none(), st.integers(0, 3)),
    ),
    st.builds(Query.fan_out, st.integers(1, 8)),
    st.builds(Query.fan_in, st.integers(1, 8)),
    st.builds(Query.pair_aggregate),
)


@settings(max_examples=25, deadline=None)
@given(
    batch=st.lists(_query_st, min_size=1, max_size=12),
    seed=st.sampled_from(_SEEDS),
    threads=st.sampled_from([1, 3]),
    cache_size=st.sampled_from([0, 64]),
)
def test_server_matches_direct_execution(batch, seed, threads, cache_size):
    """Any random batch, any thread count, cached or not: the server
    returns exactly what direct query-function calls return."""
    g = _PROPERTY_GRAPHS[seed]
    server = QueryServer(g, threads=threads, cache_size=cache_size)
    got = server.run_batch(batch)
    snap = g.snapshot()
    for query, result in zip(batch, got):
        assert results_equal(result, _OPS[query.op](snap, query.kwargs()))
    assert server.stats().n_queries == len(batch)


_PROPERTY_GRAPHS = {
    s: random_graph(s, n=_N, e=150) for s in _SEEDS
}
