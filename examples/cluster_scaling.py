#!/usr/bin/env python3
"""Explore the simulated cluster: scaling studies from Section V-B.

Reproduces, at interactive scale, the three performance behaviours the
paper demonstrates:

* core saturation on one node (Fig. 8) — throughput plateaus at 12 of the
  20 physical cores;
* weak scaling with graph size (Figs. 9-11) — linear time and memory;
* strong scaling with node count (Fig. 12) — near-ideal for PGPBA, lower
  for PGSK because its distinct() shuffle has a serial component.

Run:  python examples/cluster_scaling.py
"""

from repro import PGPBA, PGSK, ClusterContext, build_seed
from repro.trace import synthesize_seed_packets


def section(title: str) -> None:
    print(f"\n=== {title} ===")


def main() -> None:
    seed = build_seed(
        synthesize_seed_packets(duration=20.0, session_rate=50, seed=7)
    )
    g, analysis = seed.graph, seed.analysis
    print(f"seed: {g.n_edges} edges / {g.n_vertices} vertices")

    pgsk = PGSK(seed=1, kronfit_iterations=10, kronfit_swaps=40)
    initiator = pgsk.fit_initiator(g)

    section("core saturation on a single 20-core node (Fig. 8)")
    for cores in (2, 4, 8, 12, 16, 20):
        ctx = ClusterContext(n_nodes=1, executor_cores=cores)
        res = PGPBA(fraction=1.0, seed=1).generate(
            g, analysis, 20 * g.n_edges, context=ctx
        )
        bar = "#" * int(res.edges_per_second / 4e4)
        print(f"  {cores:>2} cores: {res.edges_per_second:>12,.0f} e/s {bar}")

    section("weak scaling: size sweep on 16 nodes (Figs. 9-11)")
    for factor in (8, 32, 128):
        ctx = ClusterContext(n_nodes=16, executor_cores=12)
        res = pgsk.generate(
            g, analysis, factor * g.n_edges, context=ctx,
            initiator=initiator,
        )
        print(
            f"  {res.graph.n_edges:>8} edges: "
            f"{res.total_seconds * 1e3:>8.2f} ms, "
            f"{res.peak_node_memory_bytes / 2**20:7.1f} MiB/node"
        )

    section("strong scaling: fixed size, 4..32 nodes (Fig. 12)")
    target = 64 * g.n_edges
    base = {}
    for nodes in (4, 8, 16, 32):
        ctx_ba = ClusterContext(n_nodes=nodes, executor_cores=12)
        ctx_sk = ClusterContext(n_nodes=nodes, executor_cores=12)
        t_ba = PGPBA(fraction=2.0, seed=1).generate(
            g, analysis, target, context=ctx_ba
        ).total_seconds
        t_sk = pgsk.generate(
            g, analysis, target, context=ctx_sk, initiator=initiator
        ).total_seconds
        base.setdefault("ba", t_ba)
        base.setdefault("sk", t_sk)
        print(
            f"  {nodes:>2} nodes: PGPBA speedup "
            f"{base['ba'] / t_ba:5.2f}x | PGSK speedup "
            f"{base['sk'] / t_sk:5.2f}x | ideal {nodes / 4:.0f}x"
        )


if __name__ == "__main__":
    main()
