"""Path queries: reachability and shortest paths (lateral-movement analysis).

All traversals are frontier-at-a-time BFS over the CSR adjacency — one
sparse row-gather per level, no per-vertex Python.  The CSR comes from
the graph's memoized snapshot, so a workload of many path queries builds
the adjacency exactly once per graph (historically it was rebuilt from
scratch on every call).
"""

from __future__ import annotations

import numpy as np

__all__ = ["k_hop_neighborhood", "shortest_path_length", "reachable_within"]


def _csr(graph):
    snap = graph.snapshot()
    return snap.out_indptr, snap.out_indices


def _expand(indptr, indices, frontier: np.ndarray) -> np.ndarray:
    if frontier.size == 0:
        return frontier
    starts = indptr[frontier]
    stops = indptr[frontier + 1]
    counts = stops - starts
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=indices.dtype)
    offsets = np.repeat(starts, counts)
    within = np.arange(total) - np.repeat(
        np.concatenate(([0], np.cumsum(counts[:-1]))), counts
    )
    return indices[offsets + within]


def k_hop_neighborhood(graph, source: int, k: int) -> np.ndarray:
    """All vertices within ``k`` directed hops of ``source`` (inclusive).

    The blast-radius query: which hosts could an attacker on ``source``
    reach in at most k connection steps?
    """
    if not 0 <= source < graph.n_vertices:
        raise ValueError(f"source {source} out of range")
    if k < 0:
        raise ValueError("k must be non-negative")
    indptr, indices = _csr(graph)
    seen = np.zeros(graph.n_vertices, dtype=bool)
    seen[source] = True
    frontier = np.asarray([source], dtype=np.int64)
    for _ in range(k):
        nxt = _expand(indptr, indices, frontier)
        nxt = np.unique(nxt[~seen[nxt]])
        if nxt.size == 0:
            break
        seen[nxt] = True
        frontier = nxt
    return np.flatnonzero(seen)


def shortest_path_length(graph, source: int, target: int) -> int | None:
    """Directed hop distance from ``source`` to ``target``; None if
    unreachable."""
    if not 0 <= source < graph.n_vertices:
        raise ValueError(f"source {source} out of range")
    if not 0 <= target < graph.n_vertices:
        raise ValueError(f"target {target} out of range")
    if source == target:
        return 0
    indptr, indices = _csr(graph)
    seen = np.zeros(graph.n_vertices, dtype=bool)
    seen[source] = True
    frontier = np.asarray([source], dtype=np.int64)
    dist = 0
    while frontier.size:
        dist += 1
        nxt = _expand(indptr, indices, frontier)
        nxt = np.unique(nxt[~seen[nxt]])
        if nxt.size == 0:
            return None
        if seen[target] or target in nxt:
            return dist
        seen[nxt] = True
        frontier = nxt
    return None


def reachable_within(
    graph, source: int, max_hops: int | None = None
) -> np.ndarray:
    """Boolean reachability vector from ``source`` (optionally bounded)."""
    hops = max_hops if max_hops is not None else graph.n_vertices
    reached = np.zeros(graph.n_vertices, dtype=bool)
    reached[k_hop_neighborhood(graph, source, hops)] = True
    return reached
