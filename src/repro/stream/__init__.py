"""Micro-batch streaming: trace source → windowed flow assembly →
graph delta → online detection, as a long-running backpressured service.

The paper's §VI outlook is online detection over live traffic; this
package turns the repo's batch pipeline into that service.  Stages run
on threads connected by bounded queues (blocking-put backpressure, so
memory stays bounded no matter how fast the source runs), windows close
on a watermark with an allowed-lateness knob, and a drain protocol
flushes partial windows and the detector on stop.  Under the default
``auto`` lateness a streamed run's detections are byte-identical to the
equivalent batch run per seed — enforced by the test suite across
window sizes and queue capacities.

Entry points: :class:`StreamPipeline` (library),
``repro stream`` (CLI), ``benchmarks/bench_streaming.py`` (sustained
events/sec + backpressure proof).
"""

from repro.stream.config import (
    DEFAULT_QUEUE_CAPACITY,
    DEFAULT_WINDOW_SECONDS,
    STREAM_LATENESS_ENV_VAR,
    STREAM_QUEUE_ENV_VAR,
    STREAM_WINDOW_ENV_VAR,
    resolve_lateness,
    resolve_queue_capacity,
    resolve_window_seconds,
)
from repro.stream.pipeline import (
    DetectionLatency,
    StreamPipeline,
    StreamResult,
    match_ground_truth,
)
from repro.stream.queues import BoundedQueue, PipelineAborted
from repro.stream.sources import Batch, ReplaySource, TraceSource
from repro.stream.stages import FlowWindow, GraphAccumulator, WindowAssembler
from repro.stream.stats import QueueStats, StageStats, StreamStats

__all__ = [
    "StreamPipeline",
    "StreamResult",
    "DetectionLatency",
    "match_ground_truth",
    "TraceSource",
    "ReplaySource",
    "Batch",
    "FlowWindow",
    "WindowAssembler",
    "GraphAccumulator",
    "BoundedQueue",
    "PipelineAborted",
    "StreamStats",
    "StageStats",
    "QueueStats",
    "resolve_queue_capacity",
    "resolve_window_seconds",
    "resolve_lateness",
    "STREAM_QUEUE_ENV_VAR",
    "STREAM_WINDOW_ENV_VAR",
    "STREAM_LATENESS_ENV_VAR",
    "DEFAULT_QUEUE_CAPACITY",
    "DEFAULT_WINDOW_SECONDS",
]
