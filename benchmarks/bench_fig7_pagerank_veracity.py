"""Fig. 7 — evaluation of PageRank veracity vs synthetic-graph size.

Paper: same sweep as Fig. 6 on the PageRank distributions; scores are many
orders of magnitude below the degree scores (1e-25..1e-18 at billions of
edges) and PGPBA beats PGSK across the board.

Here: same laptop-scale sweep; asserts the decreasing trend, the
degree-vs-pagerank magnitude gap, and the PGPBA advantage at matched sizes.
"""

from __future__ import annotations

import numpy as np

from conftest import save_series
from repro.bench import default_cluster
from repro.core import PGPBA, PGSK, degree_veracity, pagerank_veracity
from repro.graph import pagerank

FRACTIONS = (0.1, 0.9)
FACTORS = (3, 10, 30)


def run_fig7(seed_graph, seed_analysis):
    pr_seed = pagerank(seed_graph)
    rows = []
    matched: dict[str, list[float]] = {"PGPBA": [], "PGSK": []}
    for fraction in FRACTIONS:
        for factor in FACTORS:
            res = PGPBA(
                fraction=fraction, seed=7, generate_properties=False
            ).generate(
                seed_graph, seed_analysis, factor * seed_graph.n_edges,
                context=default_cluster(),
            )
            score = pagerank_veracity(
                seed_graph, res.graph, seed_pagerank=pr_seed
            )
            rows.append([f"PGPBA f={fraction}", res.graph.n_edges, score])
            if fraction == 0.1:
                matched["PGPBA"].append(score)
    pgsk = PGSK(seed=7, generate_properties=False,
                kronfit_iterations=10, kronfit_swaps=40)
    initiator = pgsk.fit_initiator(seed_graph)
    for factor in FACTORS:
        res = pgsk.generate(
            seed_graph, seed_analysis, factor * seed_graph.n_edges,
            context=default_cluster(), initiator=initiator,
        )
        score = pagerank_veracity(
            seed_graph, res.graph, seed_pagerank=pr_seed
        )
        rows.append(["PGSK", res.graph.n_edges, score])
        matched["PGSK"].append(score)
    return rows, matched


def test_fig7_pagerank_veracity(benchmark, seed_graph, seed_analysis):
    rows, matched = run_fig7(seed_graph, seed_analysis)
    save_series(
        "fig7",
        "Fig. 7: PageRank veracity score vs synthetic size (lower = better)",
        ["series", "edges", "pagerank_veracity"],
        rows,
    )
    # Decreasing trend per series.
    by_series: dict[str, list[tuple[int, float]]] = {}
    for name, edges, score in rows:
        by_series.setdefault(name, []).append((edges, score))
    for name, pts in by_series.items():
        pts.sort()
        assert pts[-1][1] < pts[0][1], f"{name} must improve with size"

    # Paper: "Regarding the PageRank degree distributions, PGPBA clearly
    # performs better in all the cases."  That ordering is driven by the
    # SMIA seed's sub-1 mean degree (PGPBA inherits seed sparsity and so
    # produces more vertices per edge than PGSK's 2^k padding); our denser
    # synthetic seed flips it — a documented deviation (EXPERIMENTS.md).
    # Report the ordering, assert both stay within an order of magnitude.
    ratio = np.mean(matched["PGPBA"]) / np.mean(matched["PGSK"])
    assert 0.1 < ratio < 10.0

    def op():
        return pagerank(seed_graph)

    benchmark.pedantic(op, rounds=3, iterations=1)


def test_fig7_pagerank_scores_below_degree_scores(
    benchmark, seed_graph, seed_analysis
):
    """The magnitude gap the paper reports (1e-18 vs 1e-3 style)."""
    res = PGPBA(fraction=0.3, seed=8, generate_properties=False).generate(
        seed_graph, seed_analysis, 10 * seed_graph.n_edges,
        context=default_cluster(),
    )
    assert pagerank_veracity(seed_graph, res.graph) < degree_veracity(
        seed_graph, res.graph
    )

    benchmark.pedantic(
        lambda: pagerank_veracity(seed_graph, res.graph),
        rounds=3, iterations=1,
    )
