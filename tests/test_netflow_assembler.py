"""Unit tests for the flow assembler (packets -> Netflow records)."""

import pytest

from repro.netflow import FlowAssembler, Protocol, TcpState, assemble_flows
from repro.pcap.packet import (
    PROTO_ICMP,
    PROTO_TCP,
    PROTO_UDP,
    TcpFlags,
    build_ethernet_ipv4_packet,
    parse_ethernet_ipv4_packet,
)

A, B = 0x0A000001, 0x0A000002


def pkt(t, src, dst, sport, dport, proto=PROTO_TCP, flags=TcpFlags(0), size=0):
    raw = build_ethernet_ipv4_packet(
        src_ip=src, dst_ip=dst, protocol=proto,
        src_port=sport, dst_port=dport, tcp_flags=flags, payload_len=size,
    )
    return parse_ethernet_ipv4_packet(raw, timestamp=t)


def tcp_session(t0=0.0, size_out=100, size_in=500):
    """A full handshake + one exchange + orderly teardown."""
    f = TcpFlags
    return [
        pkt(t0 + 0.00, A, B, 1000, 80, flags=f.SYN),
        pkt(t0 + 0.01, B, A, 80, 1000, flags=f.SYN | f.ACK),
        pkt(t0 + 0.02, A, B, 1000, 80, flags=f.ACK),
        pkt(t0 + 0.03, A, B, 1000, 80, flags=f.PSH | f.ACK, size=size_out),
        pkt(t0 + 0.04, B, A, 80, 1000, flags=f.PSH | f.ACK, size=size_in),
        pkt(t0 + 0.05, A, B, 1000, 80, flags=f.FIN | f.ACK),
        pkt(t0 + 0.06, B, A, 80, 1000, flags=f.FIN | f.ACK),
        pkt(t0 + 0.07, A, B, 1000, 80, flags=f.ACK),
    ]


class TestTcpStates:
    def test_normal_session_sf(self):
        flows = list(assemble_flows(tcp_session()))
        assert len(flows) == 1
        r = flows[0]
        assert r.state is TcpState.SF
        assert r.protocol is Protocol.TCP
        assert (r.src_ip, r.dst_ip) == (A, B)

    def test_directional_counters(self):
        r = list(assemble_flows(tcp_session()))[0]
        assert r.out_bytes == 100
        assert r.in_bytes == 500
        assert r.out_pkts == 5
        assert r.in_pkts == 3

    def test_duration_ms(self):
        r = list(assemble_flows(tcp_session()))[0]
        assert r.duration_ms == pytest.approx(70.0, abs=1.0)

    def test_unanswered_syn_is_s0(self):
        flows = list(assemble_flows([pkt(0, A, B, 1, 80, flags=TcpFlags.SYN)]))
        assert flows[0].state is TcpState.S0

    def test_rejected_syn_is_rej(self):
        f = TcpFlags
        flows = list(
            assemble_flows(
                [
                    pkt(0.0, A, B, 1, 80, flags=f.SYN),
                    pkt(0.1, B, A, 80, 1, flags=f.RST | f.ACK),
                ]
            )
        )
        assert flows[0].state is TcpState.REJ

    def test_established_never_closed_is_s1(self):
        f = TcpFlags
        flows = list(
            assemble_flows(
                [
                    pkt(0.0, A, B, 1, 80, flags=f.SYN),
                    pkt(0.1, B, A, 80, 1, flags=f.SYN | f.ACK),
                    pkt(0.2, A, B, 1, 80, flags=f.ACK),
                ]
            )
        )
        assert flows[0].state is TcpState.S1

    def test_originator_rst_is_rsto(self):
        f = TcpFlags
        flows = list(
            assemble_flows(
                [
                    pkt(0.0, A, B, 1, 80, flags=f.SYN),
                    pkt(0.1, B, A, 80, 1, flags=f.SYN | f.ACK),
                    pkt(0.2, A, B, 1, 80, flags=f.ACK),
                    pkt(0.3, A, B, 1, 80, flags=f.RST),
                ]
            )
        )
        assert flows[0].state is TcpState.RSTO

    def test_responder_rst_is_rstr(self):
        f = TcpFlags
        flows = list(
            assemble_flows(
                [
                    pkt(0.0, A, B, 1, 80, flags=f.SYN),
                    pkt(0.1, B, A, 80, 1, flags=f.SYN | f.ACK),
                    pkt(0.2, A, B, 1, 80, flags=f.ACK),
                    pkt(0.3, B, A, 80, 1, flags=f.RST),
                ]
            )
        )
        assert flows[0].state is TcpState.RSTR

    def test_syn_then_fin_no_reply_is_sh(self):
        f = TcpFlags
        flows = list(
            assemble_flows(
                [
                    pkt(0.0, A, B, 1, 80, flags=f.SYN),
                    pkt(0.1, A, B, 1, 80, flags=f.FIN),
                ]
            )
        )
        assert flows[0].state is TcpState.SH

    def test_midstream_is_oth(self):
        flows = list(
            assemble_flows(
                [pkt(0.0, A, B, 1, 80, flags=TcpFlags.ACK, size=10)]
            )
        )
        assert flows[0].state is TcpState.OTH

    def test_syn_ack_counts(self):
        r = list(assemble_flows(tcp_session()))[0]
        assert r.syn_count == 2  # SYN + SYN/ACK
        assert r.ack_count == 7


class TestNonTcp:
    def test_udp_stream_aggregates(self):
        flows = list(
            assemble_flows(
                [
                    pkt(0.0, A, B, 5000, 53, proto=PROTO_UDP, size=30),
                    pkt(0.1, B, A, 53, 5000, proto=PROTO_UDP, size=120),
                ]
            )
        )
        assert len(flows) == 1
        r = flows[0]
        assert r.protocol is Protocol.UDP
        assert r.state is TcpState.NONE
        assert (r.out_bytes, r.in_bytes) == (30, 120)

    def test_icmp_flow(self):
        flows = list(
            assemble_flows(
                [pkt(0.0, A, B, 9, 0, proto=PROTO_ICMP, size=56)]
            )
        )
        assert flows[0].protocol is Protocol.ICMP


class TestLifecycle:
    def test_idle_timeout_splits_flows(self):
        packets = [
            pkt(0.0, A, B, 5000, 53, proto=PROTO_UDP, size=10),
            pkt(200.0, A, B, 5000, 53, proto=PROTO_UDP, size=10),
        ]
        flows = list(assemble_flows(packets, idle_timeout=60.0))
        assert len(flows) == 2

    def test_same_tuple_sequential_tcp_sessions(self):
        packets = tcp_session(0.0) + tcp_session(10.0)
        flows = list(assemble_flows(packets))
        assert len(flows) == 2
        assert all(f.state is TcpState.SF for f in flows)

    def test_flush_returns_open_flows(self):
        asm = FlowAssembler()
        asm.process(pkt(0.0, A, B, 1, 80, flags=TcpFlags.SYN))
        assert len(asm.flush()) == 1
        assert asm.flush() == []

    def test_max_duration_caps_flow(self):
        packets = [
            pkt(float(t), A, B, 5000, 53, proto=PROTO_UDP, size=1)
            for t in range(0, 100, 10)
        ]
        flows = list(
            assemble_flows(packets, idle_timeout=1000.0, max_flow_duration=35.0)
        )
        assert len(flows) >= 2

    def test_bad_timeouts_rejected(self):
        with pytest.raises(ValueError):
            FlowAssembler(idle_timeout=0)

    def test_unknown_transport_skipped(self):
        raw = build_ethernet_ipv4_packet(
            src_ip=A, dst_ip=B, protocol=47, payload_len=5
        )
        p = parse_ethernet_ipv4_packet(raw, timestamp=0.0)
        asm = FlowAssembler()
        assert asm.process(p) == []
        assert asm.flush() == []

    def test_concurrent_flows_tracked_separately(self):
        f = TcpFlags
        packets = [
            pkt(0.0, A, B, 1000, 80, flags=f.SYN),
            pkt(0.0, A, B, 2000, 80, flags=f.SYN),
            pkt(0.1, B, A, 80, 1000, flags=f.SYN | f.ACK),
        ]
        flows = list(assemble_flows(packets))
        assert len(flows) == 2
        states = sorted(fl.state.name for fl in flows)
        assert states == ["S0", "S0"] or "S0" in states
