"""GraphSnapshot: index correctness and byte-identity with the
pre-snapshot query implementations."""

import numpy as np
import pytest

from repro.graph import PropertyGraph
from repro.queries import (
    EdgeFilter,
    QueryWorkload,
    degree_top_k,
    fan_in_motif,
    fan_out_motif,
    filter_edges,
    host_pair_aggregate,
    k_hop_neighborhood,
    neighbors,
    reachable_within,
    shortest_path_length,
    vertex_by_host_id,
)
from repro.serve import GraphSnapshot
from repro.serve.snapshot import INDEXED_EDGE_COLUMNS


def random_graph(seed: int, n: int = 60, e: int = 500) -> PropertyGraph:
    """A random multigraph with the Netflow-ish columns the filters pin."""
    rng = np.random.default_rng(seed)
    return PropertyGraph(
        n,
        rng.integers(0, n, e),
        rng.integers(0, n, e),
        edge_properties={
            "PROTOCOL": rng.choice([6, 17], size=e),
            "DEST_PORT": rng.choice([22, 53, 80, 443, 8080], size=e),
            "STATE": rng.integers(0, 4, size=e),
            "OUT_BYTES": rng.integers(0, 10_000, size=e),
            "IN_BYTES": rng.integers(0, 10_000, size=e),
            "OUT_PKTS": rng.integers(0, 100, size=e),
            "IN_PKTS": rng.integers(0, 100, size=e),
        },
    )


SEEDS = (0, 1, 2)


class TestSnapshotStructure:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_csr_matches_scipy(self, seed):
        g = random_graph(seed)
        snap = g.snapshot()
        adj = g.simple_graph().to_sparse_adjacency(weighted=False)
        assert np.array_equal(snap.out_indptr, adj.indptr)
        assert np.array_equal(snap.out_indices, adj.indices)
        radj = g.reversed().simple_graph().to_sparse_adjacency(
            weighted=False
        )
        assert np.array_equal(snap.in_indptr, radj.indptr)
        assert np.array_equal(snap.in_indices, radj.indices)

    def test_degree_arrays(self):
        g = random_graph(3)
        snap = g.snapshot()
        assert np.array_equal(snap.out_degree, g.out_degrees())
        assert np.array_equal(snap.in_degree, g.in_degrees())
        assert np.array_equal(snap.total_degree, g.degrees())
        assert np.array_equal(
            snap.distinct_out_degrees(),
            np.bincount(g.distinct_edge_pairs()[0], minlength=g.n_vertices),
        )

    def test_arrays_are_read_only(self):
        snap = random_graph(4).snapshot()
        for arr in (
            snap.out_indptr, snap.out_indices, snap.in_indptr,
            snap.in_indices, snap.out_degree, snap.total_degree,
        ):
            assert not arr.flags.writeable
        for idx in snap.edge_indexes.values():
            assert not idx.values.flags.writeable
            assert not idx.order.flags.writeable

    def test_memoized_on_graph(self):
        g = random_graph(5)
        snap = g.snapshot()
        assert g.snapshot() is snap
        assert snap.snapshot() is snap  # a snapshot is its own snapshot

    def test_epochs_are_unique_and_monotone(self):
        a = random_graph(6).snapshot()
        b = random_graph(6).snapshot()
        assert b.epoch > a.epoch

    def test_indexed_columns(self):
        g = random_graph(7)
        snap = g.snapshot()
        assert set(snap.edge_indexes) == set(INDEXED_EDGE_COLUMNS)
        for name in INDEXED_EDGE_COLUMNS:
            col = np.asarray(g.edge_properties[name])
            for value in np.unique(col)[:3]:
                cand = snap.equality_candidates(name, value)
                assert np.array_equal(cand, np.flatnonzero(col == value))
        assert snap.memory_bytes() > 0

    def test_no_index_without_columns(self):
        g = PropertyGraph(3, np.array([0, 1]), np.array([1, 2]))
        snap = g.snapshot()
        assert snap.edge_indexes == {}
        assert snap.host_index is None
        assert not snap.has_edge_index("PROTOCOL")

    def test_host_index(self, seed_graph):
        snap = seed_graph.snapshot()
        ids = np.asarray(seed_graph.vertex_properties["ID"])
        assert snap.host_index is not None
        assert snap.host_vertex(int(ids[3])) == 3
        assert snap.host_vertex(-99) is None

    def test_empty_graphless_edges(self):
        g = PropertyGraph(5, np.empty(0, np.int64), np.empty(0, np.int64))
        snap = g.snapshot()
        assert snap.out_indptr.tolist() == [0] * 6
        assert neighbors(g, 2).size == 0
        assert fan_out_motif(g, 1).size == 0


class TestQueryByteIdentity:
    """Every family through the snapshot returns byte-identical results
    to the pre-snapshot reference implementations."""

    @pytest.mark.parametrize("seed", SEEDS)
    def test_neighbors(self, seed):
        g = random_graph(seed)
        for v in range(0, g.n_vertices, 7):
            ref_out = np.unique(g.dst[g.src == v])
            ref_in = np.unique(g.src[g.dst == v])
            for direction, ref in (
                ("out", ref_out),
                ("in", ref_in),
                ("both", np.unique(np.concatenate([ref_out, ref_in]))),
            ):
                got = neighbors(g, v, direction=direction)
                assert np.array_equal(got, ref)
                assert got.dtype == ref.dtype

    @pytest.mark.parametrize("seed", SEEDS)
    def test_degree_top_k(self, seed):
        g = random_graph(seed)
        for kind, deg in (
            ("in", g.in_degrees()),
            ("out", g.out_degrees()),
            ("total", g.degrees()),
        ):
            k = min(10, g.n_vertices)
            ref = np.argpartition(deg, -k)[-k:]
            ref = ref[np.argsort(-deg[ref], kind="stable")]
            assert np.array_equal(degree_top_k(g, 10, kind=kind), ref)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_edge_filters(self, seed):
        g = random_graph(seed)
        filters = [
            EdgeFilter(equals={"PROTOCOL": 6}),
            EdgeFilter(equals={"PROTOCOL": 6, "DEST_PORT": 80}),
            EdgeFilter(
                equals={"DEST_PORT": 443, "STATE": 1},
                ranges={"OUT_BYTES": (1, None)},
            ),
            EdgeFilter(ranges={"OUT_BYTES": (100, 5000)}),
            EdgeFilter(equals={"DEST_PORT": 4444}),  # matches nothing
            EdgeFilter(
                equals={"PROTOCOL": 17, "OUT_BYTES": 1},  # unindexed equals
                ranges={"IN_BYTES": (None, 9000)},
            ),
        ]
        for flt in filters:
            mask = flt.mask(g)
            sel = flt.selection(g)
            assert np.array_equal(sel, np.flatnonzero(mask))
            sub = filter_edges(g, flt)
            ref = g.select_edges(mask)
            assert np.array_equal(sub.src, ref.src)
            assert np.array_equal(sub.dst, ref.dst)
            for name in g.edge_properties:
                got = np.asarray(sub.edge_properties[name])
                want = np.asarray(ref.edge_properties[name])
                assert np.array_equal(got, want)
                assert got.dtype == want.dtype

    def test_edge_filter_unknown_attribute(self):
        g = random_graph(0)
        with pytest.raises(KeyError):
            filter_edges(g, EdgeFilter(equals={"NOPE": 1}))
        with pytest.raises(KeyError):
            filter_edges(
                g,
                EdgeFilter(
                    equals={"PROTOCOL": 6}, ranges={"NOPE": (0, 1)}
                ),
            )

    @pytest.mark.parametrize("seed", SEEDS)
    def test_path_queries_match_scipy_csr(self, seed):
        g = random_graph(seed, n=40, e=120)
        adj = g.simple_graph().to_sparse_adjacency(weighted=False)
        from repro.queries import path_queries

        def ref_k_hop(source, k):
            seen = np.zeros(g.n_vertices, dtype=bool)
            seen[source] = True
            frontier = np.asarray([source], dtype=np.int64)
            for _ in range(k):
                nxt = path_queries._expand(
                    adj.indptr, adj.indices, frontier
                )
                nxt = np.unique(nxt[~seen[nxt]])
                if nxt.size == 0:
                    break
                seen[nxt] = True
                frontier = nxt
            return np.flatnonzero(seen)

        for v in range(0, g.n_vertices, 5):
            for k in (0, 1, 2, 4):
                got = k_hop_neighborhood(g, v, k)
                ref = ref_k_hop(v, k)
                assert np.array_equal(got, ref)
                assert got.dtype == ref.dtype
            assert np.array_equal(
                reachable_within(g, v, max_hops=3),
                np.isin(np.arange(g.n_vertices), ref_k_hop(v, 3)),
            )

    def test_shortest_path_matches_networkx(self, seed_graph):
        import networkx as nx

        nxg = nx.DiGraph()
        nxg.add_nodes_from(range(seed_graph.n_vertices))
        s, d = seed_graph.distinct_edge_pairs()
        nxg.add_edges_from(zip(s.tolist(), d.tolist()))
        src = int(degree_top_k(seed_graph, 1, kind="out")[0])
        lengths = nx.single_source_shortest_path_length(nxg, src)
        for target in list(lengths)[:20]:
            assert shortest_path_length(seed_graph, src, target) == (
                lengths[target]
            )

    @pytest.mark.parametrize("seed", SEEDS)
    def test_subgraph_queries(self, seed):
        g = random_graph(seed)
        s, d = g.distinct_edge_pairs()
        for m in (1, 3, 10):
            assert np.array_equal(
                fan_out_motif(g, m),
                np.flatnonzero(
                    np.bincount(s, minlength=g.n_vertices) >= m
                ),
            )
            assert np.array_equal(
                fan_in_motif(g, m),
                np.flatnonzero(
                    np.bincount(d, minlength=g.n_vertices) >= m
                ),
            )
        agg = host_pair_aggregate(g)
        assert agg.n_flows.sum() == g.n_edges
        assert len(agg) == g.simple_graph().n_edges

    def test_vertex_by_host_id(self, seed_graph):
        ids = seed_graph.vertex_properties["ID"]
        assert vertex_by_host_id(seed_graph, int(ids[3])) == 3
        assert vertex_by_host_id(seed_graph, -99) is None
        bare = PropertyGraph(4, np.array([0, 1]), np.array([1, 2]))
        assert vertex_by_host_id(bare, 2) == 2
        assert vertex_by_host_id(bare, 9) is None


class TestSnapshotMemoization:
    """Regression for the historical per-query CSR rebuild: one snapshot
    construction per graph, no matter how many queries run."""

    def test_workload_builds_one_snapshot(self, monkeypatch):
        g = random_graph(11)
        builds = []
        real_build = GraphSnapshot.build.__func__

        def counting_build(cls, graph):
            builds.append(graph)
            return real_build(cls, graph)

        monkeypatch.setattr(
            GraphSnapshot, "build", classmethod(counting_build)
        )
        report = QueryWorkload(n_queries=10, seed=3).run(g)
        assert report.total_seconds > 0
        # One construction for the queried graph.  (Edge filters create
        # result sub-graphs; those are never snapshotted.)
        assert builds.count(g) == 1
        assert len(builds) == 1
        QueryWorkload(n_queries=10, seed=4).run(g)
        assert len(builds) == 1  # still memoized across workloads

    def test_repeated_path_queries_share_csr(self, monkeypatch):
        g = random_graph(12)
        calls = {"n": 0}
        real_build = GraphSnapshot.build.__func__

        def counting_build(cls, graph):
            calls["n"] += 1
            return real_build(cls, graph)

        monkeypatch.setattr(
            GraphSnapshot, "build", classmethod(counting_build)
        )
        for v in range(10):
            k_hop_neighborhood(g, v, 2)
        assert calls["n"] == 1
