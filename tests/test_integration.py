"""End-to-end integration tests across the full stack.

These walk the complete paper pipeline: synthesize trace -> pcap -> Bro-like
flow assembly -> property graph -> seed analysis -> PGPBA/PGSK generation ->
veracity -> offline detection on the *generated* data.
"""

import numpy as np
import pytest

from repro import (
    PGPBA,
    PGSK,
    ClusterContext,
    build_seed,
    evaluate_veracity,
)
from repro.detect import OfflineDetectionPipeline
from repro.graph.io import read_edge_list, write_edge_list
from repro.pcap.writer import write_pcap
from repro.trace.synthesizer import synthesize_seed_packets


@pytest.fixture(scope="module")
def pipeline_ctx():
    return ClusterContext(n_nodes=4, executor_cores=4, partition_multiplier=1)


class TestFullPipeline:
    def test_pcap_file_to_synthetic_graph(self, tmp_path, pipeline_ctx):
        """The complete Fig. 1 + Fig. 2 path starting from a real file."""
        frames = synthesize_seed_packets(
            duration=8.0, session_rate=30, seed=21
        )
        pcap = tmp_path / "capture.pcap"
        write_pcap(pcap, frames)

        seed = build_seed(pcap)
        assert seed.graph.n_edges > 50

        res = PGPBA(fraction=0.4, seed=1).generate(
            seed.graph, seed.analysis, 4 * seed.graph.n_edges,
            context=pipeline_ctx,
        )
        assert res.graph.n_edges >= 4 * seed.graph.n_edges

        report = evaluate_veracity(seed.graph, res.graph)
        assert report.degree_ks < 0.8  # same broad shape

    def test_both_generators_same_seed(self, seed_bundle):
        ctx1 = ClusterContext(n_nodes=2, executor_cores=2)
        ctx2 = ClusterContext(n_nodes=2, executor_cores=2)
        target = 3 * seed_bundle.graph.n_edges
        ba = PGPBA(fraction=0.5, seed=2).generate(
            seed_bundle.graph, seed_bundle.analysis, target, context=ctx1
        )
        sk = PGSK(seed=2, kronfit_iterations=8, kronfit_swaps=30).generate(
            seed_bundle.graph, seed_bundle.analysis, target, context=ctx2
        )
        for res in (ba, sk):
            rep = evaluate_veracity(seed_bundle.graph, res.graph)
            assert rep.degree_score >= 0
            assert rep.n_edges > 0

    def test_generated_graph_exports_and_reloads(
        self, tmp_path, seed_bundle, pipeline_ctx
    ):
        res = PGPBA(fraction=0.5, seed=3).generate(
            seed_bundle.graph, seed_bundle.analysis,
            2 * seed_bundle.graph.n_edges, context=pipeline_ctx,
        )
        path = tmp_path / "synthetic.tsv"
        write_edge_list(res.graph, path)
        back = read_edge_list(path)
        assert back.n_edges == res.graph.n_edges
        assert np.array_equal(
            back.edge_properties["PROTOCOL"],
            res.graph.edge_properties["PROTOCOL"].astype(np.int64),
        )

    def test_offline_detection_runs_on_synthetic_graph(
        self, seed_bundle, pipeline_ctx
    ):
        """The benchmark use case: an IDS workload consuming generated
        property graphs end to end."""
        res = PGSK(seed=4, kronfit_iterations=6, kronfit_swaps=20).generate(
            seed_bundle.graph, seed_bundle.analysis,
            2 * seed_bundle.graph.n_edges, context=pipeline_ctx,
        )
        detections = OfflineDetectionPipeline().detect(res.graph)
        assert isinstance(detections, list)  # runs clean, alarms optional

    def test_simulated_cluster_strong_scaling(self, seed_bundle):
        """Fig. 12's shape end-to-end: more nodes, less simulated time."""
        target = 6 * seed_bundle.graph.n_edges
        times = {}
        for nodes in (1, 4):
            ctx = ClusterContext(
                n_nodes=nodes, executor_cores=4, partition_multiplier=2,
                per_stage_overhead=0.0, per_task_overhead=0.0,
            )
            res = PGPBA(fraction=0.5, seed=5).generate(
                seed_bundle.graph, seed_bundle.analysis, target, context=ctx
            )
            times[nodes] = res.total_seconds
        assert times[4] < times[1]
