"""Tests for PSO threshold tuning and the offline graph pipeline."""

import numpy as np
import pytest

from repro.core.pipeline import build_seed, packets_from
from repro.detect import (
    DetectionThresholds,
    NetflowAnomalyDetector,
    OfflineDetectionPipeline,
    ParticleSwarmOptimizer,
    evaluate_detections,
    tune_thresholds,
)
from repro.netflow import FlowTable, assemble_flows
from repro.trace import attacks, synthesize_seed_packets
from repro.trace.hosts import ipv4


class TestPSOCore:
    def test_maximises_quadratic(self):
        # max of -(x-3)^2 - (y+1)^2 at (3, -1)
        pso = ParticleSwarmOptimizer(
            lambda v: -((v[0] - 3) ** 2) - (v[1] + 1) ** 2,
            lower=np.array([-10.0, -10.0]),
            upper=np.array([10.0, 10.0]),
            n_particles=20,
            n_iterations=60,
            seed=1,
        )
        res = pso.run()
        assert res.best_position[0] == pytest.approx(3.0, abs=0.1)
        assert res.best_position[1] == pytest.approx(-1.0, abs=0.1)

    def test_history_monotone(self):
        pso = ParticleSwarmOptimizer(
            lambda v: -np.sum(v**2),
            lower=np.full(3, -5.0),
            upper=np.full(3, 5.0),
            n_particles=8,
            n_iterations=20,
            seed=2,
        )
        res = pso.run()
        assert np.all(np.diff(res.history) >= 0)

    def test_respects_bounds(self):
        seen = []

        def obj(v):
            seen.append(v.copy())
            return 0.0

        ParticleSwarmOptimizer(
            obj, np.array([0.0]), np.array([1.0]),
            n_particles=5, n_iterations=10, seed=3,
        ).run()
        arr = np.concatenate(seen)
        assert arr.min() >= 0.0 and arr.max() <= 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ParticleSwarmOptimizer(
                lambda v: 0.0, np.array([1.0]), np.array([0.0])
            )
        with pytest.raises(ValueError):
            ParticleSwarmOptimizer(
                lambda v: 0.0, np.array([0.0]), np.array([1.0]),
                n_particles=1,
            )


class TestThresholdTuning:
    def test_pso_beats_defaults(self):
        bg = synthesize_seed_packets(duration=10.0, session_rate=30, seed=4)
        t0 = 1_000_002.0
        atk = [
            attacks.syn_flood(
                attacker_ip=ipv4(203, 0, 113, 5),
                victim_ip=ipv4(10, 2, 0, 2), start_time=t0,
            ),
            attacks.host_scan(
                attacker_ip=ipv4(203, 0, 113, 6),
                victim_ip=ipv4(10, 2, 0, 3), start_time=t0 + 1,
            ),
        ]
        frames = list(bg)
        for a in atk:
            frames.extend(a.frames)
        frames.sort(key=lambda f: f[0])
        table = FlowTable.from_records(
            list(assemble_flows(packets_from(frames)))
        )
        cols = {k: table[k] for k in FlowTable.COLUMN_NAMES}

        base = DetectionThresholds()
        f1_base = evaluate_detections(
            NetflowAnomalyDetector(base).detect(cols), atk
        ).f1
        tuned, result = tune_thresholds(
            cols, atk, n_particles=10, n_iterations=10, seed=5
        )
        f1_tuned = evaluate_detections(
            NetflowAnomalyDetector(tuned).detect(cols), atk
        ).f1
        assert f1_tuned >= f1_base
        assert result.best_value == pytest.approx(f1_tuned)


class TestOfflinePipeline:
    @pytest.fixture(scope="class")
    def attack_graph(self):
        bg = synthesize_seed_packets(duration=15.0, session_rate=40, seed=6)
        t0 = 1_000_003.0
        gt = attacks.syn_flood(
            attacker_ip=ipv4(203, 0, 113, 5),
            victim_ip=ipv4(10, 2, 0, 2), start_time=t0,
        )
        frames = sorted(list(bg) + gt.frames, key=lambda f: f[0])
        bundle = build_seed(frames)
        clean = build_seed(bg)
        th = DetectionThresholds.fit_normal(
            {k: clean.flow_table[k] for k in FlowTable.COLUMN_NAMES},
            window_seconds=5.0,
        )
        return bundle.graph, gt, th

    def test_detects_on_graph(self, attack_graph):
        graph, gt, th = attack_graph
        pipeline = OfflineDetectionPipeline(th)
        windows = pipeline.detect_windowed(graph, window_seconds=5.0)
        all_dets = [d for w in windows for d in w.detections]
        rep = evaluate_detections(all_dets, [gt])
        assert rep.recall == 1.0

    def test_whole_graph_mode(self, attack_graph):
        graph, _, th = attack_graph
        dets = OfflineDetectionPipeline(th).detect(graph)
        assert isinstance(dets, list)

    def test_synthesized_syn_ack_columns(self, seed_graph):
        """Generated graphs lack SYN/ACK tallies; the pipeline derives them
        from PROTOCOL and STATE."""
        stripped = seed_graph.select_edges(
            np.arange(seed_graph.n_edges)
        )
        cols = OfflineDetectionPipeline._columns(stripped)
        assert "SYN_COUNT" in cols and "ACK_COUNT" in cols
        from repro.netflow.attributes import Protocol

        tcp = cols["PROTOCOL"] == int(Protocol.TCP)
        assert (cols["SYN_COUNT"][tcp] == 1).all()
        assert (cols["SYN_COUNT"][~tcp] == 0).all()

    def test_missing_attributes_rejected(self):
        from repro.graph import PropertyGraph

        bare = PropertyGraph(2, np.array([0]), np.array([1]))
        with pytest.raises(ValueError, match="lacks"):
            OfflineDetectionPipeline().detect(bare)

    def test_window_validation(self, attack_graph):
        graph, _, th = attack_graph
        with pytest.raises(ValueError):
            OfflineDetectionPipeline(th).detect_windowed(
                graph, window_seconds=0
            )
