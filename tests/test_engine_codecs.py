"""Block codecs + external-sort shuffle.

The contract under test: the on-disk representation of spilled blocks
(raw ``.npz`` vs chunk-compressed columnar ``.blk``) and the shuffle
strategy of ``distinct()`` (hash exchange vs external merge sort) are
pure *physical* knobs — for any codec x shuffle x backend x budget the
engine produces byte-identical datasets and identical simulated stage
structure, while only disk bytes, peak reduce memory and wall-clock
encode/decode time change.

Layers covered:

* ``resolve_block_codec`` / ``resolve_shuffle`` /
  ``resolve_codec_chunk_bytes``: env/argument precedence;
* per-codec round-trips over awkward shapes (empty, 0-d, 2-D,
  big-endian, zero columns) plus a Hypothesis sweep over arbitrary
  dtype/shape arrays;
* chunked (streaming-append) writers and ``iter_column_chunks``
  read-back;
* the ``mmap`` codec's memory-mapped reload fast path;
* external-sort ``distinct()`` equivalence against the hash exchange on
  every available backend, with and without a memory budget, for single
  and pair keys — output *and* stage records;
* the bounded-reduce-memory property of the external sort, asserted
  with ``tracemalloc`` on a worst-case skew (every row hashed to one
  reducer);
* spill filename extensions and compression accounting;
* the ``engine-info`` codec/shuffle rows.
"""

from __future__ import annotations

import hashlib
import os
import tracemalloc

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.cli import main
from repro.core import PGPBA, PGSK
from repro.engine import (
    BLOCK_CODEC_ENV_VAR,
    CODECS,
    DEFAULT_CODEC,
    SHUFFLE_ENV_VAR,
    ClusterContext,
    available_backends,
    get_codec,
    resolve_block_codec,
    resolve_codec_chunk_bytes,
    resolve_shuffle,
)
from repro.engine.storage.codecs import (
    array_dtypes,
    iter_column_chunks,
    read_block_file,
    read_named_file,
)
from repro.engine.stream import (
    EXTSORT_CHUNK_ROWS_ENV_VAR,
    iter_repeat_chunks,
    resolve_emit_chunk_rows,
    resolve_extsort_chunk_rows,
)

BACKENDS = tuple(available_backends())
CODEC_NAMES = tuple(CODECS)


def _digest(cols) -> str:
    h = hashlib.sha256()
    for c in cols:
        h.update(np.ascontiguousarray(c).tobytes())
    return h.hexdigest()


def _stage_structure(ctx) -> list:
    return [(t.stage, t.partition, t.bytes_out) for t in ctx.metrics.tasks]


# ----------------------------------------------------------------------
class TestResolution:
    def test_default_is_raw(self, monkeypatch):
        monkeypatch.delenv(BLOCK_CODEC_ENV_VAR, raising=False)
        assert resolve_block_codec() == DEFAULT_CODEC == "raw"

    def test_env_overrides_default(self, monkeypatch):
        monkeypatch.setenv(BLOCK_CODEC_ENV_VAR, "zlib")
        assert resolve_block_codec() == "zlib"

    def test_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv(BLOCK_CODEC_ENV_VAR, "zlib")
        assert resolve_block_codec("lzma") == "lzma"

    @pytest.mark.parametrize("bad", ["gzip", "snappy"])
    def test_unknown_codec_rejected(self, bad):
        with pytest.raises(ValueError, match="unknown block codec"):
            resolve_block_codec(bad)

    def test_empty_means_unset(self, monkeypatch):
        # "" mirrors an empty env var: fall through to the default.
        monkeypatch.delenv(BLOCK_CODEC_ENV_VAR, raising=False)
        assert resolve_block_codec("") == DEFAULT_CODEC

    def test_unknown_env_codec_rejected(self, monkeypatch):
        monkeypatch.setenv(BLOCK_CODEC_ENV_VAR, "brotli")
        with pytest.raises(ValueError, match="unknown block codec"):
            resolve_block_codec()

    def test_shuffle_default_env_arg(self, monkeypatch):
        monkeypatch.delenv(SHUFFLE_ENV_VAR, raising=False)
        assert resolve_shuffle() == "exchange"
        monkeypatch.setenv(SHUFFLE_ENV_VAR, "extsort")
        assert resolve_shuffle() == "extsort"
        assert resolve_shuffle("exchange") == "exchange"
        with pytest.raises(ValueError, match="unknown shuffle"):
            resolve_shuffle("radix")

    def test_chunk_bytes_parses_sizes(self, monkeypatch):
        assert resolve_codec_chunk_bytes("64KB") == 64 * 1024
        assert resolve_codec_chunk_bytes(4096) == 4096
        with pytest.raises(ValueError):
            resolve_codec_chunk_bytes(0)

    def test_chunk_rows_resolvers(self, monkeypatch):
        monkeypatch.setenv(EXTSORT_CHUNK_ROWS_ENV_VAR, "1234")
        assert resolve_extsort_chunk_rows() == 1234
        assert resolve_extsort_chunk_rows(77) == 77
        assert resolve_emit_chunk_rows() == 262144
        with pytest.raises(ValueError):
            resolve_extsort_chunk_rows(0)

    def test_context_rejects_bad_codec(self):
        with pytest.raises(ValueError, match="unknown block codec"):
            ClusterContext(n_nodes=1, block_codec="nope")


# ----------------------------------------------------------------------
def _cases() -> dict:
    rng = np.random.default_rng(0)
    return {
        "ints": (np.arange(257, dtype=np.int64),
                 rng.integers(0, 1 << 40, 257)),
        "mixed": (np.arange(50, dtype=np.int32),
                  rng.random(50).astype(np.float32),
                  rng.integers(0, 255, 50).astype(np.uint8)),
        "empty": (np.empty(0, np.int64), np.empty(0, np.float64)),
        "zerod": (np.array(3.5), np.array(7, dtype=np.int16)),
        "twod": (np.arange(24, dtype=np.float64).reshape(4, 6),),
        "none": (),
        "bigendian": (np.arange(9, dtype=np.int32).astype(">i4"),),
        "bool": (np.array([True, False, True]),),
    }


@pytest.mark.parametrize("codec_name", CODEC_NAMES)
class TestCodecRoundTrip:
    @pytest.mark.parametrize("case", sorted(_cases()))
    def test_write_read(self, tmp_path, codec_name, case):
        cols = _cases()[case]
        codec = get_codec(codec_name)
        path = str(tmp_path / f"b{codec.extension}")
        info = codec.write(path, cols)
        assert info.rows == (int(cols[0].shape[0]) if cols and
                             cols[0].ndim else 0) or info.rows >= 0
        got = read_block_file(path)
        assert len(got) == len(cols)
        for g, c in zip(got, cols):
            assert g.dtype == c.dtype
            assert g.shape == c.shape
            np.testing.assert_array_equal(g, c)

    def test_named_round_trip(self, tmp_path, codec_name):
        codec = get_codec(codec_name)
        path = str(tmp_path / f"n{codec.extension}")
        arrays = {"alpha": np.arange(10), "beta": np.linspace(0, 1, 7)}
        info = codec.write_named(path, arrays)
        assert info.disk_bytes == os.path.getsize(path)
        assert info.logical_bytes == sum(a.nbytes for a in arrays.values())
        got = read_named_file(path)
        assert set(got) == set(arrays)
        for k, v in arrays.items():
            np.testing.assert_array_equal(got[k], v)
        assert {k: d for k, d in array_dtypes(path).items()} == {
            k: v.dtype for k, v in arrays.items()
        }

    def test_chunked_writer_round_trip(self, tmp_path, codec_name):
        codec = get_codec(codec_name)
        path = str(tmp_path / f"c{codec.extension}")
        rng = np.random.default_rng(1)
        a = rng.integers(0, 1 << 30, 10_000)
        b = rng.random(10_000)
        w = codec.open_writer(path)
        for lo in range(0, 10_000, 1_337):
            hi = min(lo + 1_337, 10_000)
            w.append_columns((a[lo:hi], b[lo:hi]))
        info = w.close()
        assert info.rows == 10_000
        got = read_block_file(path)
        np.testing.assert_array_equal(got[0], a)
        np.testing.assert_array_equal(got[1], b)
        # Chunked read-back reassembles the same columns.
        for j, ref in enumerate((a, b)):
            parts = list(iter_column_chunks(path, f"c{j}"))
            np.testing.assert_array_equal(np.concatenate(parts), ref)

    def test_empty_chunked_writer(self, tmp_path, codec_name):
        codec = get_codec(codec_name)
        path = str(tmp_path / f"e{codec.extension}")
        w = codec.open_writer(path)
        w.append_columns((np.empty(0, np.int64), np.empty(0, np.float32)))
        info = w.close()
        assert info.rows == 0
        got = read_block_file(path)
        assert got[0].dtype == np.int64 and got[0].size == 0
        assert got[1].dtype == np.float32 and got[1].size == 0


def test_mmap_codec_memory_maps(tmp_path):
    codec = get_codec("mmap")
    path = str(tmp_path / "m.blk")
    arr = np.arange(4_096, dtype=np.int64)
    codec.write(path, (arr,))
    got = read_block_file(path)[0]
    assert isinstance(got, np.memmap)
    np.testing.assert_array_equal(np.asarray(got), arr)


def test_zlib_compresses_redundant_data(tmp_path):
    cols = (np.zeros(100_000, dtype=np.int64),)
    raw = get_codec("raw").write(str(tmp_path / "r.npz"), cols)
    zl = get_codec("zlib").write(str(tmp_path / "z.blk"), cols)
    assert zl.logical_bytes == raw.logical_bytes == 800_000
    assert zl.disk_bytes < raw.disk_bytes // 10
    assert zl.seconds >= 0.0


@pytest.mark.parametrize("codec_name", CODEC_NAMES)
@settings(max_examples=25, deadline=None)
@given(
    data=st.data(),
    dtype=st.sampled_from(
        [np.int8, np.uint16, np.int32, np.int64, np.uint64,
         np.float32, np.float64, np.bool_]
    ),
)
def test_codec_round_trip_property(tmp_path_factory, codec_name, data, dtype):
    """Any dtype/shape combination — including empty and 0-d — survives
    a write/read cycle bit-exactly under every codec."""
    shape = data.draw(
        st.one_of(
            st.just(()),
            st.tuples(st.integers(0, 200)),
            st.tuples(st.integers(0, 12), st.integers(0, 12)),
        )
    )
    arr = data.draw(hnp.arrays(dtype=dtype, shape=shape))
    codec = get_codec(codec_name)
    tmp = tmp_path_factory.mktemp("prop")
    path = str(tmp / f"p{codec.extension}")
    codec.write(path, (arr,))
    got = read_block_file(path)[0]
    assert got.dtype == arr.dtype
    assert got.shape == arr.shape
    np.testing.assert_array_equal(got, arr)


# ----------------------------------------------------------------------
def _dup_columns(n_rows: int = 6_000, n_keys: int = 251):
    rng = np.random.default_rng(11)
    k1 = rng.integers(0, n_keys, n_rows).astype(np.int64)
    k2 = rng.integers(0, 7, n_rows).astype(np.int64)
    payload = rng.integers(0, 1 << 50, n_rows).astype(np.int64)
    return k1, k2, payload


class TestExternalSortDistinct:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("budget", [None, 1 << 14])
    @pytest.mark.parametrize("key_columns", [(0,), (0, 1)])
    def test_matches_exchange(self, backend, budget, key_columns):
        cols = _dup_columns()

        def run(shuffle):
            ctx = ClusterContext(
                n_nodes=4, executor=backend,
                memory_budget_bytes=budget, shuffle=shuffle,
            )
            out = ctx.parallelize(cols, n_partitions=7).distinct(
                key_columns=key_columns
            ).collect()
            stages = _stage_structure(ctx)
            ctx.close()
            return out, stages

        ex, ex_stages = run("exchange")
        es, es_stages = run("extsort")
        assert len(es) == len(ex)
        for a, b in zip(es, ex):
            assert a.dtype == b.dtype
            np.testing.assert_array_equal(a, b)
        assert es_stages == ex_stages

    def test_env_var_selects_strategy(self, monkeypatch):
        monkeypatch.setenv(SHUFFLE_ENV_VAR, "extsort")
        ctx = ClusterContext(n_nodes=2)
        assert ctx.shuffle_strategy == "extsort"
        cols = _dup_columns(500, 31)
        got = ctx.parallelize(cols, n_partitions=3).distinct().collect()
        ctx.close()
        ref_ctx = ClusterContext(n_nodes=2, shuffle="exchange")
        ref = ref_ctx.parallelize(cols, n_partitions=3).distinct().collect()
        ref_ctx.close()
        for a, b in zip(got, ref):
            np.testing.assert_array_equal(a, b)

    def test_per_call_override(self):
        ctx = ClusterContext(n_nodes=2, shuffle="exchange")
        cols = _dup_columns(400, 17)
        rdd = ctx.parallelize(cols, n_partitions=3)
        a = rdd.distinct(shuffle="extsort").collect()
        b = rdd.distinct(shuffle="exchange").collect()
        ctx.close()
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)

    def test_bounded_reduce_memory_under_skew(self, monkeypatch):
        """Worst-case reduce skew: every partition holds the same keys
        (unique *within* the partition, so the map-side combiner removes
        nothing) and every key is 0 mod n_parts, so all rows land on
        reducer 0.  The hash exchange must concatenate and sort the full
        800k-row bucket at once; the external sort streams it through
        chunk-sized merge windows and only ever holds the 100k distinct
        survivors, so its traced peak stays well under half the exchange
        peak.  The backend is pinned serial: tracemalloc only sees
        driver-process allocations, so the comparison is meaningless on
        the process-based backends."""
        monkeypatch.setenv(EXTSORT_CHUNK_ROWS_ENV_VAR, "1024")
        n_parts = 8
        keys_per = 100_000
        rng = np.random.default_rng(5)
        base = rng.permutation(keys_per).astype(np.int64) * n_parts
        col = np.concatenate(
            [np.roll(base, 17 * i) for i in range(n_parts)]
        )

        def peak(shuffle):
            ctx = ClusterContext(
                n_nodes=n_parts, shuffle=shuffle, executor="serial"
            )
            rdd = ctx.parallelize((col,), n_partitions=n_parts)
            tracemalloc.start()
            tracemalloc.reset_peak()
            out = rdd.distinct(key_columns=(0,)).collect()
            _, peak_bytes = tracemalloc.get_traced_memory()
            tracemalloc.stop()
            ctx.close()
            return out, peak_bytes

        ex_out, ex_peak = peak("exchange")
        es_out, es_peak = peak("extsort")
        for a, b in zip(es_out, ex_out):
            np.testing.assert_array_equal(a, b)
        assert es_peak < ex_peak / 2, (es_peak, ex_peak)


# ----------------------------------------------------------------------
class TestSpillFiles:
    @pytest.mark.parametrize(
        ("codec_name", "ext"),
        [("raw", ".npz"), ("zlib", ".blk"), ("lzma", ".blk"),
         ("mmap", ".blk")],
    )
    def test_spill_extension_follows_codec(self, tmp_path, codec_name, ext):
        ctx = ClusterContext(
            n_nodes=2, memory_budget_bytes=1_000,
            spill_dir=tmp_path, block_codec=codec_name,
        )
        rdd = ctx.parallelize(
            (np.arange(5_000, dtype=np.int64),), n_partitions=4
        ).persist()
        rdd.count()
        spilled = [
            p for p in (ctx.storage.spill_dir or tmp_path).rglob("*")
            if p.is_file()
        ]
        assert spilled, "budget of 1 kB must force spills"
        assert all(p.suffix == ext for p in spilled), spilled
        assert ctx.storage.codec == codec_name
        rdd.unpersist()
        ctx.close()

    def test_compression_accounting(self, tmp_path):
        ctx = ClusterContext(
            n_nodes=2, memory_budget_bytes=1_000,
            spill_dir=tmp_path, block_codec="zlib",
        )
        cols = (np.zeros(50_000, dtype=np.int64),)
        rdd = ctx.parallelize(cols, n_partitions=2).persist()
        rdd.count()
        stats = ctx.storage.stats
        assert stats.disk_logical_bytes > stats.disk_bytes
        assert stats.compression_ratio() > 5.0
        assert ctx.metrics.storage_compression_ratio > 5.0
        assert ctx.metrics.storage_disk_logical_bytes == (
            stats.disk_logical_bytes
        )
        assert ctx.metrics.storage_codec_seconds >= 0.0
        rdd.unpersist()
        ctx.close()

    def test_mixed_codec_directory_readable(self, tmp_path):
        """Reads dispatch on the file, not the configured codec: blocks
        written under one codec reload under another configuration."""
        a = (np.arange(100, dtype=np.int64),)
        get_codec("zlib").write(str(tmp_path / "x.blk"), a)
        get_codec("raw").write(str(tmp_path / "y.npz"), a)
        for name in ("x.blk", "y.npz"):
            np.testing.assert_array_equal(
                read_block_file(str(tmp_path / name))[0], a[0]
            )


# ----------------------------------------------------------------------
class TestGeneratorDigestMatrix:
    """Codec x shuffle x budget never changes generator output."""

    @pytest.mark.parametrize("algo", [PGPBA, PGSK])
    def test_digests_invariant(self, algo, seed_graph, seed_analysis,
                               tmp_path):
        def run(**ctx_kw):
            ctx = ClusterContext(n_nodes=4, spill_dir=tmp_path, **ctx_kw)
            gen = algo(seed=3)
            res = gen.generate(
                seed_graph, seed_analysis, 2_000, context=ctx
            )
            g = res.graph
            d = _digest(
                (g.src, g.dst)
                + tuple(g.edge_properties[k]
                        for k in sorted(g.edge_properties))
            )
            stages = _stage_structure(ctx)
            ctx.close()
            return d, stages

        base_d, base_s = run()
        for codec in CODEC_NAMES:
            for shuffle in ("exchange", "extsort"):
                d, s = run(
                    block_codec=codec, shuffle=shuffle,
                    memory_budget_bytes=1 << 14,
                )
                assert d == base_d, (codec, shuffle)
                assert s == base_s, (codec, shuffle)


# ----------------------------------------------------------------------
class TestStreamHelpers:
    def test_iter_repeat_chunks_matches_np_repeat(self):
        rng = np.random.default_rng(2)
        values = rng.integers(0, 99, 400).astype(np.int64)
        counts = rng.integers(0, 9, 400).astype(np.int64)
        chunks = list(
            iter_repeat_chunks((values, values * 2), counts, chunk_rows=64)
        )
        got0 = np.concatenate([c[0] for c in chunks])
        got1 = np.concatenate([c[1] for c in chunks])
        np.testing.assert_array_equal(got0, np.repeat(values, counts))
        np.testing.assert_array_equal(got1, np.repeat(values * 2, counts))
        assert all(c[0].size <= 64 for c in chunks)

    def test_iter_repeat_chunks_empty(self):
        chunks = list(
            iter_repeat_chunks(
                (np.empty(0, np.int64),), np.empty(0, np.int64)
            )
        )
        assert len(chunks) == 1
        assert chunks[0][0].size == 0
        assert chunks[0][0].dtype == np.int64


# ----------------------------------------------------------------------
class TestEngineInfoCli:
    def test_reports_codec_and_shuffle(self, capsys, monkeypatch):
        monkeypatch.delenv(BLOCK_CODEC_ENV_VAR, raising=False)
        monkeypatch.delenv(SHUFFLE_ENV_VAR, raising=False)
        assert main(["engine-info"]) == 0
        out = capsys.readouterr().out
        assert "block codec      : raw (*.npz)" in out
        assert "shuffle          : exchange" in out
        assert out.count("[default]") >= 2

    def test_flag_source(self, capsys):
        assert main(
            ["engine-info", "--block-codec", "zlib",
             "--shuffle", "extsort"]
        ) == 0
        out = capsys.readouterr().out
        assert "zlib (*.blk)" in out
        assert "extsort" in out

    def test_env_source(self, capsys, monkeypatch):
        monkeypatch.setenv(BLOCK_CODEC_ENV_VAR, "lzma")
        assert main(["engine-info"]) == 0
        out = capsys.readouterr().out
        assert "lzma (*.blk)" in out
        assert f"[env {BLOCK_CODEC_ENV_VAR}]" in out
