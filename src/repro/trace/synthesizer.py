"""Packet-level trace synthesis.

:class:`TraceSynthesizer` turns the host population + workload mix into a
time-ordered stream of raw Ethernet frames.  Every TCP session performs a
full three-way handshake, data exchanges, and a FIN teardown; UDP and ICMP
sessions are plain request/response exchanges.  The result is a trace the
:mod:`repro.pcap` reader and :mod:`repro.netflow` assembler parse exactly
like a real capture — the same code path a SMIA-2011 pcap would take.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.pcap.packet import (
    PROTO_ICMP,
    PROTO_TCP,
    PROTO_UDP,
    TcpFlags,
    build_ethernet_ipv4_packet,
)
from repro.trace.hosts import HostPopulation
from repro.trace.workloads import (
    ApplicationProfile,
    STANDARD_WORKLOADS,
    sample_workload,
)

__all__ = ["TraceSynthesizer", "synthesize_seed_packets"]

TimedFrame = tuple[float, bytes]


@dataclass
class TraceSynthesizer:
    """Generates a deterministic synthetic capture.

    Parameters
    ----------
    population:
        Host model; defaults to a 200-client / 40-server enterprise.
    workloads:
        Application mix.
    session_rate:
        Mean new sessions per second (Poisson arrivals).
    seed:
        RNG seed; identical seeds give byte-identical traces.
    """

    population: HostPopulation | None = None
    workloads: tuple[ApplicationProfile, ...] = STANDARD_WORKLOADS
    session_rate: float = 50.0
    seed: int = 7

    def __post_init__(self) -> None:
        if self.population is None:
            self.population = HostPopulation()
        if self.session_rate <= 0:
            raise ValueError("session_rate must be positive")

    # ------------------------------------------------------------------
    def generate(
        self, duration: float, *, start_time: float = 1_000_000.0
    ) -> list[TimedFrame]:
        """Synthesize ``duration`` seconds of traffic, time-sorted."""
        if duration <= 0:
            raise ValueError("duration must be positive")
        rng = np.random.default_rng(self.seed)
        n_sessions = int(rng.poisson(self.session_rate * duration))
        starts = start_time + np.sort(rng.random(n_sessions) * duration)
        clients = self.population.sample_clients(n_sessions, rng)
        dests = self.population.sample_destinations(n_sessions, rng)
        frames: list[TimedFrame] = []
        for i in range(n_sessions):
            profile = sample_workload(rng, self.workloads)
            frames.extend(
                self._session(
                    rng,
                    float(starts[i]),
                    int(clients[i]),
                    int(dests[i]),
                    profile,
                )
            )
        frames.sort(key=lambda f: f[0])
        return frames

    # ------------------------------------------------------------------
    def _session(
        self,
        rng: np.random.Generator,
        t0: float,
        client: int,
        server: int,
        profile: ApplicationProfile,
    ) -> list[TimedFrame]:
        sport = int(rng.integers(32768, 61000))
        if profile.transport == PROTO_TCP:
            return self._tcp_session(rng, t0, client, server, sport, profile)
        if profile.transport == PROTO_UDP:
            return self._udp_session(rng, t0, client, server, sport, profile)
        if profile.transport == PROTO_ICMP:
            return self._icmp_session(rng, t0, client, server, sport, profile)
        raise ValueError(f"unsupported transport {profile.transport}")

    def _gap(self, rng: np.random.Generator, profile: ApplicationProfile) -> float:
        return float(rng.exponential(profile.inter_packet_gap))

    def _tcp_session(
        self, rng, t0, client, server, sport, profile
    ) -> list[TimedFrame]:
        dport = profile.dst_port
        t = t0
        out: list[TimedFrame] = []

        def pkt(src, dst, sp, dp, flags, payload=0):
            return build_ethernet_ipv4_packet(
                src_ip=src, dst_ip=dst, protocol=PROTO_TCP,
                src_port=sp, dst_port=dp, tcp_flags=flags,
                payload_len=payload,
            )

        c2s = (client, server, sport, dport)
        s2c = (server, client, dport, sport)
        # Three-way handshake.
        out.append((t, pkt(*c2s, TcpFlags.SYN)))
        t += self._gap(rng, profile)
        out.append((t, pkt(*s2c, TcpFlags.SYN | TcpFlags.ACK)))
        t += self._gap(rng, profile)
        out.append((t, pkt(*c2s, TcpFlags.ACK)))
        # Data exchanges.
        for _ in range(profile.sample_exchanges(rng)):
            t += self._gap(rng, profile)
            out.append(
                (t, pkt(*c2s, TcpFlags.PSH | TcpFlags.ACK,
                        profile.sample_request_size(rng)))
            )
            t += self._gap(rng, profile)
            out.append(
                (t, pkt(*s2c, TcpFlags.PSH | TcpFlags.ACK,
                        profile.sample_response_size(rng)))
            )
        # Orderly teardown: FIN/ACK both ways + final ACK.
        t += self._gap(rng, profile)
        out.append((t, pkt(*c2s, TcpFlags.FIN | TcpFlags.ACK)))
        t += self._gap(rng, profile)
        out.append((t, pkt(*s2c, TcpFlags.FIN | TcpFlags.ACK)))
        t += self._gap(rng, profile)
        out.append((t, pkt(*c2s, TcpFlags.ACK)))
        return out

    def _udp_session(
        self, rng, t0, client, server, sport, profile
    ) -> list[TimedFrame]:
        dport = profile.dst_port
        t = t0
        out: list[TimedFrame] = []
        for _ in range(profile.sample_exchanges(rng)):
            out.append(
                (
                    t,
                    build_ethernet_ipv4_packet(
                        src_ip=client, dst_ip=server, protocol=PROTO_UDP,
                        src_port=sport, dst_port=dport,
                        payload_len=profile.sample_request_size(rng),
                    ),
                )
            )
            t += self._gap(rng, profile)
            out.append(
                (
                    t,
                    build_ethernet_ipv4_packet(
                        src_ip=server, dst_ip=client, protocol=PROTO_UDP,
                        src_port=dport, dst_port=sport,
                        payload_len=profile.sample_response_size(rng),
                    ),
                )
            )
            t += self._gap(rng, profile)
        return out

    def _icmp_session(
        self, rng, t0, client, server, ident, profile
    ) -> list[TimedFrame]:
        t = t0
        out: list[TimedFrame] = []
        for seq in range(profile.sample_exchanges(rng)):
            out.append(
                (
                    t,
                    build_ethernet_ipv4_packet(
                        src_ip=client, dst_ip=server, protocol=PROTO_ICMP,
                        src_port=ident, dst_port=seq,
                        payload_len=profile.sample_request_size(rng),
                    ),
                )
            )
            t += self._gap(rng, profile)
            out.append(
                (
                    t,
                    build_ethernet_ipv4_packet(
                        src_ip=server, dst_ip=client, protocol=PROTO_ICMP,
                        src_port=ident, dst_port=seq,
                        payload_len=profile.sample_request_size(rng),
                    ),
                )
            )
            t += self._gap(rng, profile)
        return out


def synthesize_seed_packets(
    *,
    duration: float = 60.0,
    session_rate: float = 50.0,
    n_clients: int = 200,
    n_servers: int = 40,
    seed: int = 7,
) -> list[TimedFrame]:
    """One-call seed trace: enterprise mix, deterministic for a given seed."""
    synth = TraceSynthesizer(
        population=HostPopulation(n_clients=n_clients, n_servers=n_servers),
        session_rate=session_rate,
        seed=seed,
    )
    return synth.generate(duration)
