"""PCAP substrate: libpcap-format file I/O and packet codecs.

The paper's seed pipeline starts "with some source data in PCAP format"
(Fig. 1).  The original experiments used the SMIA 2011 trace; this package
provides everything needed to consume *any* pcap file — a reader/writer for
the classic libpcap container and builders/parsers for Ethernet + IPv4 +
TCP/UDP/ICMP packets — so the synthetic trace generator in
:mod:`repro.trace` can emit byte-exact pcap files that the pipeline then
re-parses, exercising the identical code path as a captured trace.
"""

from repro.pcap.format import PcapGlobalHeader, PcapRecordHeader, LINKTYPE_ETHERNET
from repro.pcap.packet import (
    ParsedPacket,
    TcpFlags,
    build_ethernet_ipv4_packet,
    parse_ethernet_ipv4_packet,
    ipv4_checksum,
)
from repro.pcap.reader import PcapReader, read_pcap
from repro.pcap.writer import PcapWriter, write_pcap

__all__ = [
    "PcapGlobalHeader",
    "PcapRecordHeader",
    "LINKTYPE_ETHERNET",
    "ParsedPacket",
    "TcpFlags",
    "build_ethernet_ipv4_packet",
    "parse_ethernet_ipv4_packet",
    "ipv4_checksum",
    "PcapReader",
    "read_pcap",
    "PcapWriter",
    "write_pcap",
]
