"""Wire protocol for the cluster backend (DESIGN.md §12).

The "cluster" executor promotes the pool backend's pipe protocol to
sockets: the driver speaks to standalone ``repro worker`` daemons over
TCP or unix-domain sockets, and this module defines the only thing both
sides must agree on — the framing, the handshake, and the heartbeat
knobs.  The *content* of the frames is exactly the pool protocol
(``("run", blob, descriptors)`` batches, in-order ``("ok"/"err", key,
...)`` replies); sockets merely length-prefix it.

Frame layout (one frame per message, all integers big-endian)::

    u32 n_buffers | u64 meta_len | meta | (u64 buf_len | buf) * n_buffers

``meta`` is a stdlib-pickle blob of a small control tuple (the task
payload inside a ``"run"`` meta is itself a cloudpickle blob produced by
the driver, so the daemon never needs to unpickle closures).  The
out-of-band ``buf`` sections carry pickle protocol-5 buffers — the same
large array buffers the pool backend parks in shared-memory arenas ride
the socket in frame order instead.

Handshake: the connecting side sends ``("hello", PROTOCOL_VERSION,
config)``; the daemon answers ``("hello-ok", PROTOCOL_VERSION, info)``
or ``("hello-err", reason)`` and closes.  ``config`` is a plain dict;
the driver uses it to announce its role, its peer list (for the
worker-to-worker block-fetch tier) and its spill roots (which the
daemon then agrees to serve).

Heartbeats: the driver pings every busy worker every
``heartbeat_interval`` seconds and declares a worker dead after
``heartbeat_timeout`` seconds of silence (``REPRO_HEARTBEAT_SECONDS`` /
``REPRO_HEARTBEAT_TIMEOUT``).  The daemon answers pings from its event
loop even while its task child computes, so a long task never trips the
timeout — only a hung or dead peer does.
"""

from __future__ import annotations

import asyncio
import os
import pickle
import socket
import struct
from typing import Any, Iterable, Sequence

__all__ = [
    "PROTOCOL_VERSION",
    "HEARTBEAT_INTERVAL_ENV_VAR",
    "HEARTBEAT_TIMEOUT_ENV_VAR",
    "DEFAULT_HEARTBEAT_INTERVAL",
    "DEFAULT_HEARTBEAT_TIMEOUT",
    "ProtocolError",
    "parse_address",
    "format_address",
    "connect",
    "send_message",
    "recv_message",
    "a_send_message",
    "a_recv_message",
    "client_handshake",
    "resolve_heartbeat_interval",
    "resolve_heartbeat_timeout",
]

PROTOCOL_VERSION = 1

HEARTBEAT_INTERVAL_ENV_VAR = "REPRO_HEARTBEAT_SECONDS"
HEARTBEAT_TIMEOUT_ENV_VAR = "REPRO_HEARTBEAT_TIMEOUT"
DEFAULT_HEARTBEAT_INTERVAL = 0.5
DEFAULT_HEARTBEAT_TIMEOUT = 15.0

_HEADER = struct.Struct(">IQ")
_BUF_HEADER = struct.Struct(">Q")

# Sanity bound on any single length field: a corrupt or hostile peer
# must not make the receiver allocate petabytes.
MAX_FRAME_BYTES = 1 << 40


class ProtocolError(RuntimeError):
    """Handshake or framing violation on a cluster connection."""


# ----------------------------------------------------------------------
# Addresses
# ----------------------------------------------------------------------

def parse_address(spec: str) -> tuple:
    """Parse a worker address: ``host:port`` (TCP) or ``unix:/path``.

    Returns ``("tcp", host, port)`` or ``("unix", path)``.
    """
    spec = spec.strip()
    if not spec:
        raise ValueError("empty worker address")
    if spec.startswith("unix:"):
        path = spec[len("unix:"):]
        if not path:
            raise ValueError(f"unix worker address needs a path: {spec!r}")
        return ("unix", path)
    host, sep, port_text = spec.rpartition(":")
    if not sep or not host:
        raise ValueError(
            f"worker address {spec!r} is not 'host:port' or 'unix:/path'"
        )
    try:
        port = int(port_text)
    except ValueError as exc:
        raise ValueError(
            f"worker address {spec!r} has a non-integer port"
        ) from exc
    if not 0 <= port <= 65535:
        raise ValueError(f"worker address {spec!r} port out of range")
    return ("tcp", host, port)


def format_address(addr: tuple) -> str:
    if addr[0] == "unix":
        return f"unix:{addr[1]}"
    return f"{addr[1]}:{addr[2]}"


def connect(spec: str, timeout: float | None = 10.0) -> socket.socket:
    """Open a blocking socket to a worker address spec.

    The timeout stays armed on the returned socket so the follow-up
    :func:`client_handshake` cannot block forever against a peer whose
    port accepts but never answers (e.g. a SIGKILLed daemon whose
    orphaned child still holds the listening fd).  A successful
    handshake disarms it."""
    addr = parse_address(spec)
    if addr[0] == "unix":
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(timeout)
        sock.connect(addr[1])
    else:
        sock = socket.create_connection((addr[1], addr[2]), timeout=timeout)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        sock.settimeout(timeout)
    return sock


# ----------------------------------------------------------------------
# Blocking-socket framing (driver / fetch-client side)
# ----------------------------------------------------------------------

def _frame_parts(obj: Any, buffers: Sequence) -> tuple[list, int]:
    meta = pickle.dumps(obj, protocol=5)
    parts: list = [_HEADER.pack(len(buffers), len(meta)), meta]
    total = _HEADER.size + len(meta)
    for buf in buffers:
        view = memoryview(buf)
        if view.ndim != 1 or view.format != "B":
            view = view.cast("B")
        parts.append(_BUF_HEADER.pack(view.nbytes))
        parts.append(view)
        total += _BUF_HEADER.size + view.nbytes
    return parts, total


def send_message(sock: socket.socket, obj: Any, buffers: Sequence = ()) -> int:
    """Send one framed message; returns the wire byte count."""
    parts, total = _frame_parts(obj, buffers)
    for part in parts:
        sock.sendall(part)
    return total


def _recv_exact(sock: socket.socket, n: int, *, at_boundary: bool) -> bytes | None:
    """Read exactly ``n`` bytes; ``None`` on a clean EOF at a message
    boundary, :class:`ConnectionError` on EOF mid-frame."""
    data = bytearray(n)
    view = memoryview(data)
    got = 0
    while got < n:
        read = sock.recv_into(view[got:])
        if read == 0:
            if got == 0 and at_boundary:
                return None
            raise ConnectionError("peer closed the connection mid-frame")
        got += read
    return bytes(data)


def recv_message(sock: socket.socket) -> "tuple[Any, list[bytes], int] | None":
    """Receive one framed message.

    Returns ``(obj, buffers, wire_bytes)`` or ``None`` on clean EOF.
    """
    head = _recv_exact(sock, _HEADER.size, at_boundary=True)
    if head is None:
        return None
    n_buffers, meta_len = _HEADER.unpack(head)
    if meta_len > MAX_FRAME_BYTES:
        raise ProtocolError(f"oversized frame ({meta_len} bytes)")
    meta = _recv_exact(sock, meta_len, at_boundary=False)
    total = _HEADER.size + meta_len
    buffers: list[bytes] = []
    for _ in range(n_buffers):
        head = _recv_exact(sock, _BUF_HEADER.size, at_boundary=False)
        (buf_len,) = _BUF_HEADER.unpack(head)
        if buf_len > MAX_FRAME_BYTES:
            raise ProtocolError(f"oversized buffer ({buf_len} bytes)")
        buffers.append(_recv_exact(sock, buf_len, at_boundary=False))
        total += _BUF_HEADER.size + buf_len
    return pickle.loads(meta), buffers, total


# ----------------------------------------------------------------------
# Asyncio framing (daemon side)
# ----------------------------------------------------------------------

async def a_send_message(
    writer: asyncio.StreamWriter, obj: Any, buffers: Sequence = ()
) -> int:
    """Asyncio twin of :func:`send_message`.

    All ``write`` calls happen before the single ``drain`` await, so a
    frame is appended to the transport buffer atomically — concurrent
    senders on one writer (result pump vs. pong replies) can never
    interleave mid-frame.
    """
    parts, total = _frame_parts(obj, buffers)
    for part in parts:
        writer.write(bytes(part) if isinstance(part, memoryview) else part)
    await writer.drain()
    return total


async def _a_read_exact(
    reader: asyncio.StreamReader, n: int, *, at_boundary: bool
) -> bytes | None:
    try:
        return await reader.readexactly(n)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial and at_boundary:
            return None
        raise ConnectionError("peer closed the connection mid-frame") from exc


async def a_recv_message(
    reader: asyncio.StreamReader,
) -> "tuple[Any, list[bytes], int] | None":
    """Asyncio twin of :func:`recv_message`."""
    head = await _a_read_exact(reader, _HEADER.size, at_boundary=True)
    if head is None:
        return None
    n_buffers, meta_len = _HEADER.unpack(head)
    if meta_len > MAX_FRAME_BYTES:
        raise ProtocolError(f"oversized frame ({meta_len} bytes)")
    meta = await _a_read_exact(reader, meta_len, at_boundary=False)
    total = _HEADER.size + meta_len
    buffers: list[bytes] = []
    for _ in range(n_buffers):
        head = await _a_read_exact(reader, _BUF_HEADER.size, at_boundary=False)
        (buf_len,) = _BUF_HEADER.unpack(head)
        if buf_len > MAX_FRAME_BYTES:
            raise ProtocolError(f"oversized buffer ({buf_len} bytes)")
        buffers.append(await _a_read_exact(reader, buf_len, at_boundary=False))
        total += _BUF_HEADER.size + buf_len
    return pickle.loads(meta), buffers, total


# ----------------------------------------------------------------------
# Handshake
# ----------------------------------------------------------------------

def client_handshake(sock: socket.socket, config: dict) -> dict:
    """Run the connecting side of the handshake; returns the worker's
    info dict.  Raises :class:`ProtocolError` on rejection or version
    mismatch (the daemon rejects before looking at the config)."""
    send_message(sock, ("hello", PROTOCOL_VERSION, dict(config)))
    reply = recv_message(sock)
    if reply is None:
        raise ProtocolError("worker closed the connection during handshake")
    obj, _buffers, _nbytes = reply
    if not isinstance(obj, tuple) or not obj:
        raise ProtocolError(f"malformed handshake reply: {obj!r}")
    if obj[0] == "hello-err":
        raise ProtocolError(f"worker rejected handshake: {obj[1]}")
    if obj[0] != "hello-ok" or len(obj) < 3:
        raise ProtocolError(f"malformed handshake reply: {obj!r}")
    if obj[1] != PROTOCOL_VERSION:
        raise ProtocolError(
            f"protocol version mismatch: worker speaks {obj[1]}, "
            f"driver speaks {PROTOCOL_VERSION}"
        )
    # Handshake done: disarm the connect timeout — from here on the
    # socket is select()-driven (driver loop) or request/response with
    # its own timeout discipline (fetch client).
    sock.settimeout(None)
    return obj[2]


# ----------------------------------------------------------------------
# Heartbeat knobs
# ----------------------------------------------------------------------

def _resolve_seconds(value, env_var: str, default: float) -> float:
    if value is None:
        env = os.environ.get(env_var)
        if env is None or not env.strip():
            return default
        try:
            value = float(env)
        except ValueError as exc:
            raise ValueError(
                f"{env_var} must be a number of seconds, got {env!r}"
            ) from exc
    value = float(value)
    if value <= 0:
        raise ValueError(f"{env_var} must be > 0, got {value!r}")
    return value


def resolve_heartbeat_interval(value: "float | None" = None) -> float:
    """Seconds between pings to a busy worker: explicit argument >
    ``REPRO_HEARTBEAT_SECONDS`` > 0.5."""
    return _resolve_seconds(
        value, HEARTBEAT_INTERVAL_ENV_VAR, DEFAULT_HEARTBEAT_INTERVAL
    )


def resolve_heartbeat_timeout(value: "float | None" = None) -> float:
    """Seconds of silence before a busy worker is declared dead:
    explicit argument > ``REPRO_HEARTBEAT_TIMEOUT`` > 15."""
    return _resolve_seconds(
        value, HEARTBEAT_TIMEOUT_ENV_VAR, DEFAULT_HEARTBEAT_TIMEOUT
    )
