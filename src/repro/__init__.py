"""repro — property-graph synthetic data generators for IDS benchmarking.

A faithful, laptop-scale reproduction of *"A Comparison of Graph-Based
Synthetic Data Generators for Benchmarking Next-Generation Intrusion
Detection Systems"* (Iannucci et al., IEEE CLUSTER 2017): the PGPBA and
PGSK generators, the Netflow/property-graph substrate they run on, the
Map-Reduce engine that models their Spark deployment, and the Netflow
anomaly-detection approach of Section IV.

Quickstart::

    from repro import build_seed, PGPBA, evaluate_veracity
    from repro.trace import synthesize_seed_packets

    seed = build_seed(synthesize_seed_packets(duration=20.0))
    result = PGPBA(fraction=0.1).generate(
        seed.graph, seed.analysis, desired_size=50_000
    )
    print(evaluate_veracity(seed.graph, result.graph))
"""

from repro.core import (
    PGPBA,
    PGSK,
    GenerationResult,
    SeedAnalysis,
    SeedBundle,
    analyze_seed,
    build_seed,
    degree_veracity,
    evaluate_veracity,
    pagerank_veracity,
    veracity_score,
)
from repro.engine import ClusterContext
from repro.graph import PropertyGraph

__version__ = "1.0.0"

__all__ = [
    "PGPBA",
    "PGSK",
    "GenerationResult",
    "SeedAnalysis",
    "SeedBundle",
    "analyze_seed",
    "build_seed",
    "degree_veracity",
    "evaluate_veracity",
    "pagerank_veracity",
    "veracity_score",
    "ClusterContext",
    "PropertyGraph",
    "__version__",
]
