"""Executor backends: determinism, shuffle equivalence, metadata caches.

The contract under test: every backend (serial / threads / processes)
produces bit-identical datasets and identical simulated-cluster
accounting for fixed seeds, because RNG streams are keyed by partition
index and per-task costs are measured inside the tasks.
"""

import os

import numpy as np
import pytest

from repro.core import PGPBA, PGSK
from repro.engine import (
    ClusterContext,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    available_backends,
    make_executor,
)
from repro.engine.executor import (
    EXECUTOR_ENV_VAR,
    WORKERS_ENV_VAR,
    resolve_backend,
)
from repro.engine.rdd import _unique_pair_index

BACKENDS = available_backends()


def _ctx(backend: str, **kw) -> ClusterContext:
    kw.setdefault("n_nodes", 2)
    kw.setdefault("executor_cores", 2)
    return ClusterContext(executor=backend, local_workers=4, **kw)


class TestExecutorBasics:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_results_in_task_order(self, backend):
        ex = make_executor(backend, 4)
        # Heavier early tasks finish last on a pool; order must hold.
        tasks = [
            (lambda n=n: int(np.arange(n).sum()))
            for n in (100_000, 10, 50_000, 1)
        ]
        try:
            assert ex.run(tasks) == [
                sum(range(100_000)), sum(range(10)), sum(range(50_000)), 0
            ]
        finally:
            ex.close()

    def test_backend_registry(self, monkeypatch):
        assert BACKENDS == (
            "serial", "threads", "processes", "pool", "cluster",
        )
        # Without daemon addresses the cluster backend refuses to build,
        # and the error says where addresses come from.
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        with pytest.raises(ValueError, match="REPRO_WORKERS"):
            make_executor("cluster")
        with pytest.raises(ValueError):
            make_executor("bogus")
        with pytest.raises(ValueError):
            make_executor("serial", 0)

    def test_env_var_selection(self, monkeypatch):
        monkeypatch.delenv(EXECUTOR_ENV_VAR, raising=False)
        assert resolve_backend() == "serial"
        monkeypatch.setenv(EXECUTOR_ENV_VAR, "threads")
        assert resolve_backend() == "threads"
        # An explicit argument beats the environment.
        assert resolve_backend("serial") == "serial"
        monkeypatch.setenv(WORKERS_ENV_VAR, "3")
        ex = make_executor()
        assert isinstance(ex, ThreadExecutor)
        assert ex.workers == 3
        ex.close()
        monkeypatch.setenv(WORKERS_ENV_VAR, "not-a-number")
        with pytest.raises(ValueError):
            make_executor()

    def test_context_accepts_instance_and_closes(self):
        ex = SerialExecutor(2)
        with ClusterContext(n_nodes=1, executor=ex) as ctx:
            assert ctx.executor is ex

    def test_process_backend_large_array_roundtrip(self):
        """Arrays above the shared-memory threshold survive the segment
        round-trip intact (and land driver-owned)."""
        if "fork" not in __import__("multiprocessing").get_all_start_methods():
            pytest.skip("fork unavailable")
        ex = ProcessExecutor(2)
        big = np.arange(200_000, dtype=np.int64)
        outs = ex.run([lambda: (big * 2, 1.5), lambda: (big + 1, 0.5)])
        assert np.array_equal(outs[0][0], big * 2)
        assert np.array_equal(outs[1][0], big + 1)
        assert outs[0][1] == 1.5 and outs[1][1] == 0.5
        assert outs[0][0].flags.owndata


class TestBackendEquivalence:
    """serial == threads == processes, bit for bit."""

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_rdd_pipeline_matches_serial(self, backend):
        def run(name):
            ctx = _ctx(name)
            rdd = ctx.parallelize(
                [np.arange(5000) % 701, np.arange(5000) % 499]
            )
            out = (
                rdd.sample(0.5, seed=3)
                .distinct(key_columns=(0, 1))
                .repartition(3)
                .collect()
            )
            ctx.close()
            return out, ctx.metrics

        ref, ref_metrics = run("serial")
        got, got_metrics = run(backend)
        for a, b in zip(ref, got):
            assert np.array_equal(a, b)
        assert got_metrics.n_tasks == ref_metrics.n_tasks
        assert [t.stage for t in got_metrics.tasks] == [
            t.stage for t in ref_metrics.tasks
        ]
        assert [t.bytes_out for t in got_metrics.tasks] == [
            t.bytes_out for t in ref_metrics.tasks
        ]
        assert [t.node for t in got_metrics.tasks] == [
            t.node for t in ref_metrics.tasks
        ]
        assert np.array_equal(
            got_metrics.node_peak_bytes, ref_metrics.node_peak_bytes
        )

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_pgpba_bit_identical(self, backend, seed_graph, seed_analysis):
        def run(name):
            with _ctx(name) as ctx:
                res = PGPBA(fraction=0.5, seed=5).generate(
                    seed_graph, seed_analysis,
                    4 * seed_graph.n_edges, context=ctx,
                )
            return res, ctx.metrics.n_tasks

        ref, ref_tasks = run("serial")
        got, got_tasks = run(backend)
        assert np.array_equal(got.graph.src, ref.graph.src)
        assert np.array_equal(got.graph.dst, ref.graph.dst)
        assert set(got.graph.edge_properties) == set(
            ref.graph.edge_properties
        )
        for name, col in ref.graph.edge_properties.items():
            assert np.array_equal(got.graph.edge_properties[name], col)
        assert got_tasks == ref_tasks
        assert got.extra["executor"] == backend

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_pgsk_bit_identical(self, backend, seed_graph, seed_analysis):
        gen = PGSK(seed=5, kronfit_iterations=4, kronfit_swaps=10)
        initiator = gen.fit_initiator(seed_graph)

        def run(name):
            with _ctx(name) as ctx:
                return gen.generate(
                    seed_graph, seed_analysis, 2 * seed_graph.n_edges,
                    context=ctx, initiator=initiator,
                )

        ref = run("serial")
        got = run(backend)
        assert np.array_equal(got.graph.src, ref.graph.src)
        assert np.array_equal(got.graph.dst, ref.graph.dst)
        for name, col in ref.graph.edge_properties.items():
            assert np.array_equal(got.graph.edge_properties[name], col)


class TestExchangeShuffle:
    def test_exchange_agrees_with_collect_path(self):
        """The hash exchange and the legacy collect shuffle keep exactly
        the same row set for multi-column keys spanning partitions."""
        rng = np.random.default_rng(9)
        src = rng.integers(0, 200, size=4000, dtype=np.int64)
        dst = rng.integers(0, 200, size=4000, dtype=np.int64)
        tag = rng.integers(0, 10, size=4000, dtype=np.int64)
        outs = {}
        for shuffle in ("exchange", "collect"):
            ctx = _ctx("serial")
            out = ctx.parallelize([src, dst, tag]).distinct(
                key_columns=(0, 1), shuffle=shuffle
            ).collect()
            outs[shuffle] = set(zip(out[0].tolist(), out[1].tolist()))
        expected = set(zip(src.tolist(), dst.tolist()))
        assert outs["exchange"] == outs["collect"] == expected

    def test_invalid_shuffle_mode(self):
        ctx = _ctx("serial")
        with pytest.raises(ValueError):
            ctx.parallelize([np.arange(4)]).distinct(shuffle="teleport")

    def test_exchange_balances_partitions(self):
        """The hash spreads contiguous ids over all reducers instead of
        landing them in one."""
        ctx = _ctx("serial")
        rdd = ctx.parallelize([np.arange(8000, dtype=np.int64)])
        out = rdd.distinct()
        sizes = out.partition_sizes()
        assert out.count() == 8000
        assert (sizes > 0).all()

    def test_repartition_matches_array_split(self):
        ctx = _ctx("serial")
        data = np.arange(101, dtype=np.int64) * 3
        rdd = ctx.parallelize([data], n_partitions=4)
        parts = rdd.repartition(3)
        expected = np.array_split(data, 3)
        for got, want in zip(parts._parts, expected):
            assert np.array_equal(got[0], want)


class TestLargeIdKeys:
    """Regression: a*span+b row keying silently wrapped int64 for vertex
    ids near 2^32 with large spans, merging distinct rows."""

    def test_colliding_pairs_under_old_packing_stay_distinct(self):
        # Old scheme: span = b.max()+1 = 2^32+1;
        # key(2^32, 0) = 2^32 * (2^32+1) == 2^32 (mod 2^64) == key(0, 2^32)
        big = np.int64(2**32)
        a = np.array([big, 0, big], dtype=np.int64)
        b = np.array([0, big, 0], dtype=np.int64)
        idx = _unique_pair_index(a, b)
        assert sorted(idx.tolist()) == [0, 1]

        ctx = _ctx("serial")
        out = ctx.parallelize([a, b]).distinct(key_columns=(0, 1)).collect()
        pairs = set(zip(out[0].tolist(), out[1].tolist()))
        assert pairs == {(int(big), 0), (0, int(big))}

    def test_true_duplicates_at_large_ids_removed(self):
        a = np.array([2**62, 2**62, 2**40], dtype=np.int64)
        b = np.array([2**61, 2**61, 2**39], dtype=np.int64)
        ctx = _ctx("serial")
        out = ctx.parallelize([a, b]).distinct(key_columns=(0, 1)).collect()
        assert out[0].size == 2

    def test_small_id_fast_path_unchanged(self):
        a = np.array([1, 2, 1, 3], dtype=np.int64)
        b = np.array([9, 9, 9, 7], dtype=np.int64)
        idx = _unique_pair_index(a, b)
        assert sorted(idx.tolist()) == [0, 1, 3]

    def test_negative_ids_fall_back_exactly(self):
        a = np.array([-1, -1, 0], dtype=np.int64)
        b = np.array([5, 5, 5], dtype=np.int64)
        idx = _unique_pair_index(a, b)
        assert sorted(idx.tolist()) == [0, 2]


class TestMetadataCache:
    def test_metadata_computed_once_and_read_only(self):
        ctx = _ctx("serial")
        rdd = ctx.parallelize([np.arange(1000)])
        sizes = rdd.partition_sizes()
        assert rdd.partition_sizes() is sizes  # cached, not re-scanned
        assert rdd.partition_bytes() is rdd.partition_bytes()
        assert rdd.count() == 1000
        assert not sizes.flags.writeable
        with pytest.raises(ValueError):
            sizes[0] = 7

    def test_cache_consistency_after_transforms(self):
        ctx = _ctx("serial")
        rdd = ctx.parallelize([np.arange(100)])
        doubled = rdd.map_partitions(
            lambda cols, i: (np.repeat(cols[0], 2),)
        )
        assert doubled.count() == 200
        assert doubled.partition_bytes().sum() == 2 * (
            rdd.partition_bytes().sum()
        )


class TestWorkerCountIndependence:
    """Worker count changes wall-clock only, never results or metrics."""

    @pytest.mark.parametrize("workers", [1, 2, 7])
    def test_thread_worker_count_invariant(self, workers):
        def run(w):
            ctx = ClusterContext(
                n_nodes=2, executor_cores=2,
                executor="threads", local_workers=w,
            )
            out = ctx.parallelize([np.arange(3000)]).sample(
                0.3, seed=1
            ).distinct().collect()
            ctx.close()
            return out, ctx.metrics.n_tasks

        ref, ref_tasks = run(1)
        got, got_tasks = run(workers)
        assert np.array_equal(got[0], ref[0])
        assert got_tasks == ref_tasks


@pytest.mark.skipif(
    os.environ.get(EXECUTOR_ENV_VAR, "") != "",
    reason="REPRO_EXECUTOR already pinned in this environment",
)
class TestDefaultBackend:
    def test_default_is_serial(self):
        ctx = ClusterContext(n_nodes=1)
        assert ctx.executor.name == "serial"
