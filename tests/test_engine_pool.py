"""Persistent worker pool, zero-copy transport, adaptive coalescing.

Three contracts under test:

* **Pool lifecycle** — workers are forked once and reused across
  batches (the shared-memory arenas are recycled, not re-created), a
  worker killed mid-batch is respawned and its unfinished work retried
  through the ordinary :func:`run_with_recovery` machinery, and
  ``close()`` is idempotent.
* **Coalescing is invisible to the simulated cluster** — merging small
  partitions into fewer physical dispatches (and running empty chains
  inline in the driver) changes ``tasks_dispatched`` only; datasets,
  stage records, makespans and memory meters are byte-identical under
  any ``target_partition_bytes`` x backend x memory-budget combination.
* **Transport metering** — every backend reports a wall-clock overhead
  breakdown (submit/serialize/ipc/compute) without touching the
  simulated series.
"""

from __future__ import annotations

import hashlib
import multiprocessing as mp
import os

import numpy as np
import pytest

from repro.core import PGPBA, PGSK
from repro.engine import (
    ClusterContext,
    DEFAULT_TARGET_PARTITION_BYTES,
    FaultPlan,
    PoolExecutor,
    RecoveryStats,
    SpeculationPolicy,
    TARGET_PARTITION_BYTES_ENV_VAR,
    TASK_BATCH_ENV_VAR,
    make_executor,
    resolve_target_partition_bytes,
    resolve_task_batch,
    run_with_recovery,
)
from repro.engine.partitioner import chunk_weights, split_array

pytestmark = pytest.mark.skipif(
    "fork" not in mp.get_all_start_methods(),
    reason="pool backend needs the fork start method",
)


def digest(arrays) -> str:
    h = hashlib.sha256()
    for a in arrays:
        h.update(np.ascontiguousarray(a).tobytes())
    return h.hexdigest()


def stage_structure(ctx):
    """Everything about the simulated stages except the measured times."""
    return [
        (r.stage, r.partition, r.node, r.bytes_out)
        for r in ctx.metrics.tasks
    ]


def _ctx(backend="serial", **kw):
    kw.setdefault("n_nodes", 2)
    kw.setdefault("executor_cores", 2)
    kw.setdefault("local_workers", 2)
    return ClusterContext(executor=backend, **kw)


# ----------------------------------------------------------------------
# chunk_weights: the deterministic coalescer kernel
# ----------------------------------------------------------------------
class TestChunkWeights:
    def test_groups_are_contiguous_and_cover(self):
        groups = chunk_weights([5, 1, 1, 9, 2, 2], target=8)
        flat = [i for g in groups for i in g]
        assert flat == list(range(6))
        assert all(g for g in groups)

    def test_small_partitions_merge_toward_target(self):
        groups = chunk_weights([1] * 64, target=16)
        assert len(groups) == 4
        assert {len(g) for g in groups} == {16}

    def test_min_chunks_floor(self):
        # Plenty of data in one target's worth: the floor still forces
        # at least 8 chunks so small clusters keep their parallelism.
        groups = chunk_weights([1] * 64, target=1000, min_chunks=8)
        assert len(groups) == 8

    def test_never_more_chunks_than_weights(self):
        assert chunk_weights([3, 3], target=1, min_chunks=8) == [[0], [1]]

    def test_deterministic(self):
        w = [7, 0, 3, 12, 1, 1, 1, 5, 0, 2]
        assert chunk_weights(w, target=6) == chunk_weights(w, target=6)

    def test_large_partitions_stay_separate(self):
        groups = chunk_weights([100, 100, 100, 100], target=10, min_chunks=1)
        assert groups == [[0], [1], [2], [3]]


# ----------------------------------------------------------------------
# Knob resolution: flag > env > default
# ----------------------------------------------------------------------
class TestKnobResolution:
    def test_target_partition_bytes_default(self, monkeypatch):
        monkeypatch.delenv(TARGET_PARTITION_BYTES_ENV_VAR, raising=False)
        assert (
            resolve_target_partition_bytes()
            == DEFAULT_TARGET_PARTITION_BYTES
        )

    def test_target_partition_bytes_env_and_arg(self, monkeypatch):
        monkeypatch.setenv(TARGET_PARTITION_BYTES_ENV_VAR, "256KB")
        assert resolve_target_partition_bytes() == 256 * 1024
        # An explicit argument beats the environment.
        assert resolve_target_partition_bytes("1MB") == 1 << 20
        assert resolve_target_partition_bytes(4096) == 4096

    @pytest.mark.parametrize("token", ["off", "none", "0", "disabled"])
    def test_off_tokens_disable(self, token):
        assert resolve_target_partition_bytes(token) == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_target_partition_bytes(-1)

    def test_task_batch_resolution(self, monkeypatch):
        monkeypatch.delenv(TASK_BATCH_ENV_VAR, raising=False)
        assert resolve_task_batch() == 0
        monkeypatch.setenv(TASK_BATCH_ENV_VAR, "5")
        assert resolve_task_batch() == 5
        assert resolve_task_batch(2) == 2
        monkeypatch.setenv(TASK_BATCH_ENV_VAR, "-3")
        with pytest.raises(ValueError):
            resolve_task_batch()

    def test_context_threads_the_knobs(self, monkeypatch):
        monkeypatch.delenv(TARGET_PARTITION_BYTES_ENV_VAR, raising=False)
        with _ctx("serial", target_partition_bytes="64KB") as ctx:
            assert ctx.target_partition_bytes == 64 * 1024
        monkeypatch.setenv(TARGET_PARTITION_BYTES_ENV_VAR, "off")
        with _ctx("serial") as ctx:
            assert ctx.target_partition_bytes == 0

    def test_make_executor_pool_task_batch(self, monkeypatch):
        monkeypatch.setenv(TASK_BATCH_ENV_VAR, "3")
        with make_executor("pool", 2) as ex:
            assert isinstance(ex, PoolExecutor)
            assert ex.task_batch == 3


# ----------------------------------------------------------------------
# Pool lifecycle
# ----------------------------------------------------------------------
class TestPoolLifecycle:
    def test_workers_persist_and_arenas_recycle(self):
        """Three result-bearing batches reuse the same forked workers and
        the same shared-memory segments — no per-task fork, no segment
        churn."""
        big = np.arange(50_000, dtype=np.int64)  # 400 KB: out-of-band
        with PoolExecutor(2) as ex:
            for round_no in range(3):
                out = ex.run(
                    [lambda k=k: big + k for k in range(4 * round_no, 4 * round_no + 4)]
                )
                for j, arr in enumerate(out):
                    assert np.array_equal(arr, big + 4 * round_no + j)
                    assert arr.flags.owndata  # survives arena recycling
            assert ex.workers_forked == 2
            assert ex.workers_respawned == 0
            assert ex.batches_sent >= 3
            stats = ex.arena_stats()
        # Grow-only reuse: each worker ever created at most 2 task
        # segments (initial + one growth) and the driver maps at most 2
        # result segments per worker.
        assert all(n <= 2 for n in stats["task_segments"])
        assert all(n <= 2 for n in stats["result_segments"])

    def test_worker_death_mid_batch_recovered(self):
        """An injected kill takes down a real pooled worker; the driver
        blames exactly the killed task, respawns the worker, and the
        retry round completes bit-identically."""
        plan = FaultPlan(seed=1, p_kill=1.0, max_failures_per_task=1)
        with PoolExecutor(2, task_batch=2) as ex:
            stats = RecoveryStats()
            out = run_with_recovery(
                ex,
                [lambda i=i: np.full(6, i) for i in range(4)],
                fault_plan=plan,
                backoff_seconds=0.0,
                stats=stats,
            )
            assert ex.workers_respawned >= 1
        for i in range(4):
            assert np.array_equal(out[i], np.full(6, i))
        assert stats.tasks_failed == 4
        assert stats.tasks_retried == 4

    def test_error_transport(self):
        def bad():
            raise KeyError("from the worker")

        with PoolExecutor(2) as ex:
            outcomes = ex.run_outcomes([bad, lambda: 7, lambda: 8])
        assert not outcomes[0].ok
        assert "from the worker" in str(outcomes[0].error)
        assert outcomes[1].value == 7 and outcomes[2].value == 8

    def test_results_in_task_order_with_batching(self):
        with PoolExecutor(2, task_batch=2) as ex:
            out = ex.run(
                [
                    (lambda n=n: int(np.arange(n).sum()))
                    for n in (80_000, 10, 40_000, 1, 500, 9)
                ]
            )
        assert out == [
            sum(range(n)) for n in (80_000, 10, 40_000, 1, 500, 9)
        ]

    def test_close_idempotent(self):
        ex = PoolExecutor(2)
        ex.run([lambda: 1, lambda: 2])
        ex.close()
        ex.close()
        assert ex.run([lambda: 3]) == [3]  # single task: inline fallback

    def test_speculation_first_result_wins(self):
        plan = FaultPlan(
            seed=4, p_straggler=0.3, straggler_seconds=0.4,
            max_failures_per_task=1,
        )
        policy = SpeculationPolicy(
            min_runtime_seconds=0.05, poll_interval_seconds=0.005
        )
        with PoolExecutor(4) as ex:
            stats = RecoveryStats()
            out = run_with_recovery(
                ex,
                [lambda i=i: np.full(10, i) for i in range(4)],
                fault_plan=plan,
                speculation=policy,
                backoff_seconds=0.0,
                stats=stats,
            )
        for i in range(4):
            assert np.array_equal(out[i], np.full(10, i))
        assert stats.tasks_speculated >= 1
        assert stats.tasks_failed == 0


# ----------------------------------------------------------------------
# Adaptive coalescing: fewer dispatches, identical simulation
# ----------------------------------------------------------------------
class TestCoalescing:
    def _chain(self, ctx):
        rdd = ctx.parallelize(
            [np.arange(64_000, dtype=np.int64)], n_partitions=64
        )
        return rdd.map_partitions(
            lambda cols, i: (cols[0] * 3 + 1,), stage="xform"
        ).collect()

    def test_dispatch_reduced_4x_simulation_unchanged(self):
        with _ctx("serial", target_partition_bytes=0) as ref_ctx:
            ref = self._chain(ref_ctx)
            ref_structure = stage_structure(ref_ctx)
            ref_tasks = ref_ctx.metrics.n_tasks
        # 64 partitions x 8 KB against a 64 KB grain: 8 physical tasks.
        with _ctx("serial", target_partition_bytes="64KiB") as ctx:
            out = self._chain(ctx)
            m = ctx.metrics
            assert digest(out) == digest(ref)
            # Simulated side: byte-identical stage records.
            assert m.n_tasks == ref_tasks
            assert stage_structure(ctx) == ref_structure
            # Physical side: >= 4x fewer executor dispatches.
            assert m.tasks_emitted > 0
            assert m.tasks_dispatched * 4 <= m.tasks_emitted
            assert m.dispatch_ratio >= 4.0

    def test_empty_partitions_pruned_not_scheduled(self):
        """Regression: split_array pads short inputs with empty
        partitions (its documented contract) — those chains must run
        inline in the driver, not occupy executor dispatch slots."""
        parts = split_array(np.arange(3, dtype=np.int64), 16)
        assert len(parts) == 16  # the padding contract this guards

        def build(ctx):
            # generate() keeps all 16 real partitions, 13 of them empty
            # (parallelize clamps to the element count, generate cannot:
            # the counts are the data).
            rdd = ctx.generate(
                3,
                lambda count, pidx: (
                    np.full(count, pidx, dtype=np.int64),
                ),
                n_partitions=16,
            )
            return rdd.map_partitions(
                lambda cols, i: (cols[0] + 1,), stage="bump"
            ).collect()

        with _ctx("serial", target_partition_bytes=0) as ref_ctx:
            ref = build(ref_ctx)
            ref_structure = stage_structure(ref_ctx)
        with _ctx("serial", target_partition_bytes="1MB") as ctx:
            out = build(ctx)
            m = ctx.metrics
            assert digest(out) == digest(ref)
            assert stage_structure(ctx) == ref_structure
            assert m.tasks_inlined > 0  # the 13 empty chains
            assert m.tasks_dispatched < m.tasks_emitted

    @pytest.mark.parametrize("backend", ["serial", "pool"])
    @pytest.mark.parametrize("target", [0, "256KB"])
    @pytest.mark.parametrize("budget", [None, "32KB"])
    def test_chain_digest_matrix(self, backend, target, budget):
        """Coalescing x backend x memory budget: one digest."""
        def run(name, tgt, bud):
            with _ctx(
                name, target_partition_bytes=tgt, memory_budget_bytes=bud
            ) as ctx:
                rdd = ctx.parallelize(
                    [np.arange(5000) % 701, np.arange(5000) % 499]
                )
                out = (
                    rdd.sample(0.5, seed=3)
                    .distinct(key_columns=(0, 1))
                    .repartition(3)
                    .collect()
                )
                return digest(out), stage_structure(ctx)

        ref_digest, ref_structure = run("serial", 0, None)
        got_digest, got_structure = run(backend, target, budget)
        assert got_digest == ref_digest
        assert got_structure == ref_structure

    @pytest.mark.parametrize("backend", ["serial", "pool"])
    @pytest.mark.parametrize("target", [0, "256KB"])
    def test_pgpba_digest_matrix(self, backend, target, seed_graph,
                                 seed_analysis):
        def run(name, tgt):
            with _ctx(name, target_partition_bytes=tgt) as ctx:
                res = PGPBA(fraction=0.5, seed=5).generate(
                    seed_graph, seed_analysis,
                    4 * seed_graph.n_edges, context=ctx,
                )
                cols = [res.graph.src, res.graph.dst] + [
                    res.graph.edge_properties[k]
                    for k in sorted(res.graph.edge_properties)
                ]
                return digest(cols), stage_structure(ctx)

        ref_digest, ref_structure = run("serial", 0)
        got_digest, got_structure = run(backend, target)
        assert got_digest == ref_digest
        assert got_structure == ref_structure

    @pytest.mark.parametrize("backend", ["serial", "pool"])
    @pytest.mark.parametrize("target", [0, "256KB"])
    def test_pgsk_digest_matrix(self, backend, target, seed_graph,
                                seed_analysis):
        gen = PGSK(seed=5, kronfit_iterations=4, kronfit_swaps=10)
        initiator = gen.fit_initiator(seed_graph)

        def run(name, tgt):
            with _ctx(name, target_partition_bytes=tgt) as ctx:
                res = gen.generate(
                    seed_graph, seed_analysis, 2 * seed_graph.n_edges,
                    context=ctx, initiator=initiator,
                )
                cols = [res.graph.src, res.graph.dst] + [
                    res.graph.edge_properties[k]
                    for k in sorted(res.graph.edge_properties)
                ]
                return digest(cols), stage_structure(ctx)

        ref_digest, ref_structure = run("serial", 0)
        got_digest, got_structure = run(backend, target)
        assert got_digest == ref_digest
        assert got_structure == ref_structure

    def test_coalescing_under_faults_conserves_recovery(self):
        """Fault coordinates are per physical dispatch, so coalesced runs
        still recover bit-identically and the recompute meter balances."""
        plan = FaultPlan(
            seed=13, p_exception=0.4, max_failures_per_task=2,
        )
        with _ctx(
            "serial", target_partition_bytes=0, retry_backoff_seconds=0.0
        ) as ref_ctx:
            rdd = ref_ctx.parallelize(
                [np.arange(32_000, dtype=np.int64)], n_partitions=32
            )
            ref = rdd.map_partitions(
                lambda cols, i: (cols[0] % 97,), stage="mod"
            ).collect()
        with _ctx(
            "serial", target_partition_bytes="64KiB",
            fault_plan=plan, retry_backoff_seconds=0.0,
        ) as ctx:
            rdd = ctx.parallelize(
                [np.arange(32_000, dtype=np.int64)], n_partitions=32
            )
            out = rdd.map_partitions(
                lambda cols, i: (cols[0] % 97,), stage="mod"
            ).collect()
            m = ctx.metrics
        assert digest(out) == digest(ref)
        assert m.tasks_failed > 0
        assert m.tasks_retried == m.tasks_failed
        assert m.recovery_recompute_bytes > 0


# ----------------------------------------------------------------------
# Transport metering
# ----------------------------------------------------------------------
class TestTransportMetering:
    EXPECTED_KEYS = {
        "submit_seconds", "serialize_seconds", "ipc_wait_seconds",
        "compute_seconds", "payload_bytes", "network_bytes",
        "network_raw_bytes", "round_trips", "overlap_seconds",
    }

    def test_serial_profile(self):
        with _ctx("serial") as ctx:
            ctx.parallelize([np.arange(4000)]).map_partitions(
                lambda cols, i: (np.sort(cols[0])[::-1].copy(),)
            ).collect()
            profile = ctx.metrics.transport_breakdown()
        assert set(profile) == self.EXPECTED_KEYS
        assert profile["compute_seconds"] > 0
        assert profile["ipc_wait_seconds"] == 0.0

    def test_pool_profile_counts_ipc_and_payload(self):
        big = np.arange(60_000, dtype=np.int64)
        with PoolExecutor(2) as ex:
            ex.run([lambda k=k: big + k for k in range(4)])
            profile = ex.transport.as_dict()
        assert set(profile) == self.EXPECTED_KEYS
        assert profile["compute_seconds"] > 0
        assert profile["ipc_wait_seconds"] > 0
        assert profile["serialize_seconds"] > 0
        assert profile["payload_bytes"] >= 4 * big.nbytes

    def test_profile_resets_with_metrics(self):
        with _ctx("serial") as ctx:
            ctx.parallelize([np.arange(100)]).map_partitions(
                lambda cols, i: (cols[0] * 2,)
            ).collect()
            assert ctx.metrics.transport_breakdown()["compute_seconds"] > 0
            ctx.reset_metrics()
            assert (
                ctx.metrics.transport_breakdown()["compute_seconds"] == 0.0
            )

    def test_detached_metrics_report_zeros(self):
        from repro.engine import SimulationMetrics

        m = SimulationMetrics(n_nodes=1)
        assert m.transport_breakdown()["payload_bytes"] == 0
        assert m.dispatch_ratio == 1.0


# ----------------------------------------------------------------------
# Shared-memory hygiene: close() must leave no arena segments behind
# and the whole lifecycle must be silent under warnings-as-errors.
# ----------------------------------------------------------------------
_SHM_HYGIENE_SCRIPT = """
import gc, os
import numpy as np
from repro.engine.executor import PoolExecutor

shm_dir = "/dev/shm"
before = set(os.listdir(shm_dir)) if os.path.isdir(shm_dir) else None

big = np.arange(200_000, dtype=np.int64)
driver = os.getpid()

def work(k):
    # Half the tasks kill their worker mid-batch: killed workers leave
    # result-arena segments only the driver can unlink.
    if k % 2 == 0 and os.getpid() != driver:
        os._exit(9)
    return big + k

ex = PoolExecutor(2)
for _ in range(2):
    ex.run_outcomes([(lambda k=k: work(k)) for k in range(8)])
assert ex.workers_respawned > 0
ex.close()
gc.collect()

if before is not None:
    leaked = set(os.listdir(shm_dir)) - before
    assert not leaked, f"leaked shm segments: {sorted(leaked)}"
print("HYGIENE-OK")
"""


class TestShmHygiene:
    def test_pool_lifecycle_is_resourcewarning_free(self, tmp_path):
        """Run a kill-heavy pool lifecycle in a fresh interpreter with
        ResourceWarning promoted to an error: close() must unlink every
        recycled arena segment (even those of killed workers) and leave
        no unclosed fds for -X dev to complain about."""
        import subprocess
        import sys

        script = tmp_path / "shm_hygiene.py"
        script.write_text(_SHM_HYGIENE_SCRIPT)
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        src = os.path.abspath(src)
        env["PYTHONPATH"] = (
            src + os.pathsep + env["PYTHONPATH"]
            if env.get("PYTHONPATH")
            else src
        )
        proc = subprocess.run(
            [
                sys.executable, "-X", "dev",
                "-W", "error::ResourceWarning",
                str(script),
            ],
            capture_output=True, text=True, timeout=180, env=env,
        )
        output = proc.stdout + proc.stderr
        assert proc.returncode == 0, output
        assert "HYGIENE-OK" in output
        assert "ResourceWarning" not in output
