"""Stochastic block model (Holland, Laskey & Leinhardt 1983).

Vertices partition into blocks; edge probability depends only on the
(source block, destination block) pair.  Proposed "to study the community
structures found in many real-world systems" (§II).  The default
parameterisation mimics an enterprise network: a small server block that
most traffic targets plus several client blocks with sparse lateral
traffic.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaselineGenerator

__all__ = ["StochasticBlockModel"]


class StochasticBlockModel(BaselineGenerator):
    """Directed SBM with relative block sizes and a block affinity matrix.

    Parameters
    ----------
    block_fractions:
        Relative sizes of the blocks (normalised internally).
    affinity:
        ``affinity[i, j]`` is the relative rate of edges from block i to
        block j; the matrix is scaled so the expected total matches the
        requested edge count.
    """

    name = "SBM"

    def __init__(
        self,
        *,
        block_fractions=(0.1, 0.3, 0.3, 0.3),
        affinity=None,
        seed: int = 0,
    ) -> None:
        super().__init__(seed=seed)
        fractions = np.asarray(block_fractions, dtype=np.float64)
        if fractions.ndim != 1 or fractions.size < 1:
            raise ValueError("need at least one block")
        if np.any(fractions <= 0):
            raise ValueError("block fractions must be positive")
        self.block_fractions = fractions / fractions.sum()
        b = fractions.size
        if affinity is None:
            # Client blocks talk mostly to the (first) server block.
            affinity = np.full((b, b), 0.05)
            affinity[:, 0] = 1.0
            np.fill_diagonal(affinity, 0.3)
            affinity[0, 0] = 0.5
        affinity = np.asarray(affinity, dtype=np.float64)
        if affinity.shape != (b, b):
            raise ValueError(
                f"affinity must be {b}x{b}, got {affinity.shape}"
            )
        if np.any(affinity < 0):
            raise ValueError("affinity entries must be non-negative")
        self.affinity = affinity

    def edges(self, n_vertices, n_edges, rng, analysis):
        b = self.block_fractions.size
        sizes = np.maximum(
            1, np.round(self.block_fractions * n_vertices).astype(np.int64)
        )
        sizes[-1] = max(1, n_vertices - int(sizes[:-1].sum()))
        starts = np.concatenate(([0], np.cumsum(sizes[:-1])))
        # Expected edges per block pair proportional to size_i*size_j*aff.
        weights = (
            sizes[:, None] * sizes[None, :] * self.affinity
        ).astype(np.float64)
        probs = (weights / weights.sum()).ravel()
        pair_counts = rng.multinomial(n_edges, probs).reshape(b, b)
        src_parts = []
        dst_parts = []
        for i in range(b):
            for j in range(b):
                m = int(pair_counts[i, j])
                if m == 0:
                    continue
                src_parts.append(
                    starts[i] + rng.integers(0, sizes[i], size=m)
                )
                dst_parts.append(
                    starts[j] + rng.integers(0, sizes[j], size=m)
                )
        if src_parts:
            src = np.concatenate(src_parts)
            dst = np.concatenate(dst_parts)
        else:
            src = np.empty(0, np.int64)
            dst = np.empty(0, np.int64)
        return int(sizes.sum()), src, dst
