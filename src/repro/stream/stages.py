"""Pipeline stage logic: windowed flow assembly and the graph delta.

These classes are pure single-threaded machines — the thread/queue
plumbing lives in :mod:`repro.stream.pipeline` — so the watermark and
incremental-graph semantics are unit-testable without concurrency.

Windowing & the byte-identity argument
--------------------------------------
Flows are bucketed by ``start_time`` into consecutive ``[k*W, (k+1)*W)``
windows.  The watermark is ``packet clock - lateness``; a window is
emitted once the watermark passes its end, with its flows stably sorted
by ``start_time``.  The batch reference sorts *all* flows by
``start_time`` (one stable sort over assembler emission order) and feeds
them to the detector in that order.  The streamed feed is identical
when no flow arrives for an already-emitted window, because then the
windows partition the stream into increasing ``start_time`` ranges and
each window's stable sort preserves the assembler emission order among
ties — exactly the global stable sort, delivered in pieces.

The ``auto`` lateness guarantees that condition: a flow still open at
packet clock ``C`` has ``start_time >= C - max_flow_duration`` (the
assembler force-expires anything older), so with ``lateness >=
max(idle_timeout, max_flow_duration)`` every flow the assembler can
still emit lands at or beyond the watermark.  Smaller lateness values
close windows earlier; any genuinely late flow is then rerouted into the
next emitted window and counted (``late_flows``), trading strict batch
equality for freshness — the standard streaming trade-off, made
explicit.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

import numpy as np

from repro.graph.property_graph import PropertyGraph
from repro.netflow.attributes import NETFLOW_EDGE_ATTRIBUTES
from repro.netflow.flow_assembler import FlowAssembler
from repro.netflow.record import FlowTable, NetflowRecord

__all__ = ["FlowWindow", "WindowAssembler", "GraphAccumulator"]


@dataclass(frozen=True)
class FlowWindow:
    """One closed micro-batch window of flows, sorted by start time."""

    index: int
    start: float
    end: float
    records: tuple[NetflowRecord, ...]
    # Wall-clock stamp at emission; the sink measures end-to-end window
    # latency against it.  Excluded from equality.
    closed_at_wall: float = field(compare=False, default=0.0)

    def __len__(self) -> int:
        return len(self.records)


class WindowAssembler:
    """Packets (or records) in, watermark-closed :class:`FlowWindow`s out.

    Parameters
    ----------
    window_seconds:
        Window length ``W``; windows are aligned to multiples of ``W``.
    lateness:
        Allowed lateness in seconds, or ``None`` for the safe ``auto``
        bound ``max(idle_timeout, max_flow_duration)`` (packet mode) /
        ``0`` (record mode, where input is already start-ordered).
    idle_timeout, max_flow_duration:
        Passed through to the :class:`FlowAssembler`.
    """

    def __init__(
        self,
        *,
        window_seconds: float,
        lateness: float | None = None,
        idle_timeout: float = 60.0,
        max_flow_duration: float = 3600.0,
    ) -> None:
        if window_seconds <= 0:
            raise ValueError("window_seconds must be positive")
        self.window_seconds = window_seconds
        self.idle_timeout = idle_timeout
        self.max_flow_duration = max_flow_duration
        self._assembler = FlowAssembler(
            idle_timeout=idle_timeout, max_flow_duration=max_flow_duration
        )
        self._packet_lateness = (
            max(idle_timeout, max_flow_duration)
            if lateness is None
            else lateness
        )
        self._record_lateness = 0.0 if lateness is None else lateness
        self._buckets: dict[int, list[NetflowRecord]] = {}
        self._clock = -math.inf
        # Windows with index < _next_index have been emitted.
        self._next_index: int | None = None
        self.late_flows = 0
        self.flows_out = 0

    # ------------------------------------------------------------------
    def _index_of(self, start_time: float) -> int:
        return int(math.floor(start_time / self.window_seconds))

    def _admit(self, record: NetflowRecord) -> None:
        idx = self._index_of(record.start_time)
        if self._next_index is not None and idx < self._next_index:
            # Its window is already gone: reroute into the next emitted
            # window rather than dropping it (counted, not silent).
            self.late_flows += 1
            idx = self._next_index
        self._buckets.setdefault(idx, []).append(record)

    def _emit_through(self, watermark: float) -> list[FlowWindow]:
        """Emit every window whose end the watermark has passed."""
        if not self._buckets:
            return []
        out = []
        cutoff = self._index_of(watermark)  # windows < cutoff are closed
        for idx in sorted(self._buckets):
            if idx >= cutoff:
                break
            out.append(self._window(idx, self._buckets.pop(idx)))
        if out:
            self._next_index = max(
                self._next_index or -(2**62), out[-1].index + 1
            )
        return out

    def _window(self, idx: int, records: list[NetflowRecord]) -> FlowWindow:
        records.sort(key=lambda r: r.start_time)  # stable: keeps tie order
        self.flows_out += len(records)
        return FlowWindow(
            index=idx,
            start=idx * self.window_seconds,
            end=(idx + 1) * self.window_seconds,
            records=tuple(records),
            closed_at_wall=time.perf_counter(),
        )

    # ------------------------------------------------------------------
    def process_packets(self, packets) -> list[FlowWindow]:
        """Feed one packet micro-batch; returns any windows it closed."""
        for pkt in packets:
            for record in self._assembler.process(pkt):
                self._admit(record)
            if pkt.timestamp > self._clock:
                self._clock = pkt.timestamp
        return self._emit_through(self._clock - self._packet_lateness)

    def process_records(self, records) -> list[FlowWindow]:
        """Feed pre-assembled records (replay mode, start-time order)."""
        for record in records:
            self._admit(record)
            if record.start_time > self._clock:
                self._clock = record.start_time
        return self._emit_through(self._clock - self._record_lateness)

    def drain(self) -> list[FlowWindow]:
        """End of stream: flush open flows and emit every remaining
        window, including the partial last one."""
        for record in self._assembler.flush():
            self._admit(record)
        out = [
            self._window(idx, self._buckets.pop(idx))
            for idx in sorted(self._buckets)
        ]
        if out:
            self._next_index = max(
                self._next_index or -(2**62), out[-1].index + 1
            )
        return out


class GraphAccumulator:
    """Folds flow windows into an incrementally updated property graph.

    Edge columns live in amortized-doubling buffers, so each fold
    appends O(window) work; vertex ids are indices into the sorted
    distinct-host array (the same layout
    :func:`repro.netflow.mapping.flow_table_to_property_graph` builds
    from a batch table, so the live graph equals the batch graph over
    the same flows).  Endpoint index columns are cached and remapped
    only when a window introduces previously unseen hosts.
    """

    # Endpoints + the batch mapping's edge payload (the paper's nine
    # Netflow attributes and START_TIME), so the live graph matches
    # flow_table_to_property_graph() over the same flows exactly.
    _GRAPH_COLUMNS = ("SRC_IP", "DST_IP") + NETFLOW_EDGE_ATTRIBUTES + (
        "START_TIME",
    )

    def __init__(self) -> None:
        self._n = 0
        self._cap = 1024
        self._cols = {
            name: np.empty(self._cap, dtype=np.float64 if name in
                           ("START_TIME", "DURATION") else np.int64)
            for name in self._GRAPH_COLUMNS
        }
        self._hosts = np.empty(0, dtype=np.int64)
        self._src_idx = np.empty(self._cap, dtype=np.int64)
        self._dst_idx = np.empty(self._cap, dtype=np.int64)

    # ------------------------------------------------------------------
    @property
    def n_edges(self) -> int:
        return self._n

    @property
    def n_vertices(self) -> int:
        return int(self._hosts.size)

    def _grow(self, needed: int) -> None:
        if needed <= self._cap:
            return
        new_cap = self._cap
        while new_cap < needed:
            new_cap *= 2
        for name, buf in self._cols.items():
            grown = np.empty(new_cap, dtype=buf.dtype)
            grown[: self._n] = buf[: self._n]
            self._cols[name] = grown
        for attr in ("_src_idx", "_dst_idx"):
            buf = getattr(self, attr)
            grown = np.empty(new_cap, dtype=np.int64)
            grown[: self._n] = buf[: self._n]
            setattr(self, attr, grown)
        self._cap = new_cap

    def fold(self, window: FlowWindow) -> PropertyGraph:
        """Append one window's flows and return the updated live graph."""
        if window.records:
            table = FlowTable.from_records(list(window.records))
            k = len(table)
            self._grow(self._n + k)
            for name in self._GRAPH_COLUMNS:
                self._cols[name][self._n : self._n + k] = table[name]
            new_hosts = table.hosts()
            merged = np.union1d(self._hosts, new_hosts)
            lo, hi = self._n, self._n + k
            self._n = hi
            if merged.size != self._hosts.size:
                # New hosts shift sorted positions: remap everything.
                self._hosts = merged
                self._src_idx[: self._n] = np.searchsorted(
                    merged, self._cols["SRC_IP"][: self._n]
                )
                self._dst_idx[: self._n] = np.searchsorted(
                    merged, self._cols["DST_IP"][: self._n]
                )
            else:
                self._src_idx[lo:hi] = np.searchsorted(
                    self._hosts, table["SRC_IP"]
                )
                self._dst_idx[lo:hi] = np.searchsorted(
                    self._hosts, table["DST_IP"]
                )
        return self.graph()

    def graph(self) -> PropertyGraph:
        """The current live graph (copied arrays: safe to publish)."""
        n = self._n
        edge_props = {
            name: self._cols[name][:n].copy()
            for name in self._GRAPH_COLUMNS
            if name not in ("SRC_IP", "DST_IP")
        }
        return PropertyGraph(
            n_vertices=int(self._hosts.size),
            src=self._src_idx[:n].copy(),
            dst=self._dst_idx[:n].copy(),
            vertex_properties={"ID": self._hosts.copy()},
            edge_properties=edge_props,
        )
