"""Disk-backed block storage: budgeted spill, levels, checkpoints.

The contract under test — the storage subsystem's invariant: for any
memory budget (including "everything spills") and any storage level, on
any executor backend, every pipeline produces the byte-identical dataset
and the identical simulated stage structure as the unlimited in-memory
run.  The budget moves bytes between tiers; it never changes results.

Layers covered:

* ``parse_size`` / ``resolve_memory_budget`` / ``resolve_spill_dir``:
  the env/argument precedence knobs;
* ``BlockStore``: put/get round-trips, LRU eviction + transparent
  reload, level semantics (pinned / evictable / stream-through),
  reference counting, durable checkpoint blocks, tier accounting;
* ``ArrayRDD.persist(level)`` / ``unpersist`` / ``checkpoint``, the
  ``persisted_bytes`` drift regression, and GC-based release;
* the budget x backend x level digest matrix for raw pipelines and the
  PGPBA / PGSK generators;
* checkpoint-vs-persist recovery accounting under a fault plan: the
  checkpointed anchor charges zero bytes to
  ``recovery_recompute_bytes``, so it is strictly cheaper.
"""

from __future__ import annotations

import gc
import hashlib
import os
import pickle

import numpy as np
import pytest

from repro.core import PGPBA, PGSK
from repro.engine import (
    BlockId,
    BlockStore,
    ClusterContext,
    FaultPlan,
    MEMORY_BUDGET_ENV_VAR,
    SPILL_DIR_ENV_VAR,
    StorageLevel,
    available_backends,
    parse_size,
    resolve_memory_budget,
    resolve_spill_dir,
)
from repro.engine.storage import BlockWriter, SpilledBlockHandle
from repro.engine.storage.blocks import load_block_file, write_block_file

BACKENDS = tuple(available_backends())


def _digest(cols) -> str:
    h = hashlib.sha256()
    for c in cols:
        h.update(np.ascontiguousarray(c).tobytes())
    return h.hexdigest()


def _cols(n: int, seed: int = 0) -> tuple:
    rng = np.random.default_rng(seed)
    return (rng.integers(0, 1 << 30, size=n, dtype=np.int64),)


# ----------------------------------------------------------------------
class TestParseSize:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("4096", 4096),
            ("1kb", 1024),
            ("8MB", 8 * 2**20),
            ("8MiB", 8 * 2**20),
            ("  64 mb ", 64 * 2**20),
            ("1.5GB", int(1.5 * 2**30)),
            ("2TiB", 2 * 2**40),
            ("512B", 512),
            ("3K", 3 * 1024),
        ],
    )
    def test_sizes(self, text, expected):
        assert parse_size(text) == expected

    @pytest.mark.parametrize("text", ["", "MB", "-5MB", "8 peta", "1..5MB"])
    def test_rejects_garbage(self, text):
        with pytest.raises(ValueError):
            parse_size(text)


class TestResolvers:
    def test_argument_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(MEMORY_BUDGET_ENV_VAR, "8MB")
        assert resolve_memory_budget("64MB") == 64 * 2**20
        assert resolve_memory_budget(4096) == 4096

    def test_env_wins_over_default(self, monkeypatch):
        monkeypatch.setenv(MEMORY_BUDGET_ENV_VAR, "8MB")
        assert resolve_memory_budget() == 8 * 2**20
        monkeypatch.delenv(MEMORY_BUDGET_ENV_VAR)
        assert resolve_memory_budget() is None

    @pytest.mark.parametrize("token", ["none", "off", "unlimited", "inf", ""])
    def test_unlimited_tokens(self, token):
        assert resolve_memory_budget(token) is None

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            resolve_memory_budget(-1)

    def test_spill_dir_precedence(self, monkeypatch, tmp_path):
        monkeypatch.setenv(SPILL_DIR_ENV_VAR, str(tmp_path / "env"))
        assert resolve_spill_dir(str(tmp_path / "arg")) == str(
            tmp_path / "arg"
        )
        assert resolve_spill_dir() == str(tmp_path / "env")
        monkeypatch.delenv(SPILL_DIR_ENV_VAR)
        assert resolve_spill_dir() is None

    def test_context_reads_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv(MEMORY_BUDGET_ENV_VAR, "1kb")
        monkeypatch.setenv(SPILL_DIR_ENV_VAR, str(tmp_path / "spills"))
        with ClusterContext(n_nodes=1) as ctx:
            assert ctx.storage.memory_budget_bytes == 1024
            assert ctx.storage.spill_base == str(tmp_path / "spills")
            ctx.parallelize([np.arange(4096)]).count()
            assert str(ctx.storage.spill_dir).startswith(
                str(tmp_path / "spills")
            )


class TestStorageLevel:
    def test_coerce(self):
        assert StorageLevel.coerce("disk_only") is StorageLevel.DISK_ONLY
        assert (
            StorageLevel.coerce(" Memory_And_Disk ")
            is StorageLevel.MEMORY_AND_DISK
        )
        assert (
            StorageLevel.coerce(StorageLevel.MEMORY_ONLY)
            is StorageLevel.MEMORY_ONLY
        )

    def test_coerce_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown storage level"):
            StorageLevel.coerce("ram_and_tape")


# ----------------------------------------------------------------------
class TestBlockStore:
    def _store(self, tmp_path, budget=None) -> BlockStore:
        return BlockStore(memory_budget_bytes=budget, spill_dir=str(tmp_path))

    def test_put_get_roundtrip(self, tmp_path):
        store = self._store(tmp_path)
        cols = _cols(100)
        store.put(BlockId(0, 0), cols)
        got = store.get(BlockId(0, 0))
        np.testing.assert_array_equal(got[0], cols[0])
        assert store.stats.memory_bytes == cols[0].nbytes
        assert store.stats.disk_bytes == 0
        store.close()

    def test_duplicate_put_rejected(self, tmp_path):
        store = self._store(tmp_path)
        store.put(BlockId(0, 0), _cols(10))
        with pytest.raises(ValueError, match="duplicate block"):
            store.put(BlockId(0, 0), _cols(10))
        store.close()

    def test_lru_eviction_and_reload(self, tmp_path):
        # Budget holds exactly two 800-byte blocks.
        store = self._store(tmp_path, budget=1700)
        a, b, c = _cols(100, 1), _cols(100, 2), _cols(100, 3)
        store.put(BlockId(0, 0), a)
        store.put(BlockId(0, 1), b)
        store.put(BlockId(0, 2), c)
        # The least recently used block (a) was spilled.
        assert store.stats.spill_count == 1
        assert store.stats.memory_bytes == 1600
        assert store.stats.disk_logical_bytes == 800
        assert store.meta(BlockId(0, 0)).columns is None
        # Reloading a is transparent and evicts the new LRU (b).
        got = store.get(BlockId(0, 0))
        np.testing.assert_array_equal(got[0], a[0])
        assert store.stats.reload_count == 1
        assert store.meta(BlockId(0, 1)).columns is None
        # Every block still reads back byte-identical.
        for bid, cols in ((BlockId(0, 1), b), (BlockId(0, 2), c)):
            np.testing.assert_array_equal(store.get(bid)[0], cols[0])
        store.close()

    def test_spill_does_not_rewrite_clean_file(self, tmp_path):
        store = self._store(tmp_path, budget=800)
        store.put(BlockId(0, 0), _cols(100, 1))
        store.put(BlockId(0, 1), _cols(100, 2))  # evicts block 0
        assert store.stats.spill_count == 1
        store.get(BlockId(0, 0))  # reload; evicts block 1
        store.get(BlockId(0, 1))  # reload; evicts block 0 again
        # Block 0's file is still on disk and clean: no second write.
        assert store.stats.spill_count == 2
        store.close()

    def test_memory_only_is_pinned(self, tmp_path):
        store = self._store(tmp_path, budget=1)
        store.put(BlockId(0, 0), _cols(100, 1), level=StorageLevel.MEMORY_ONLY)
        store.put(BlockId(0, 1), _cols(100, 2))
        # The evictable block spilled; the pinned one stayed resident
        # even though the store is far over budget.
        assert store.meta(BlockId(0, 0)).columns is not None
        assert store.meta(BlockId(0, 1)).columns is None
        store.close()

    def test_disk_only_streams_through(self, tmp_path):
        store = self._store(tmp_path)
        cols = _cols(100)
        store.put(BlockId(0, 0), cols, level=StorageLevel.DISK_ONLY)
        assert store.stats.memory_bytes == 0
        assert store.stats.disk_logical_bytes == cols[0].nbytes
        for expected_reloads in (1, 2):
            got = store.get(BlockId(0, 0))
            np.testing.assert_array_equal(got[0], cols[0])
            assert store.stats.reload_count == expected_reloads
        assert store.stats.memory_bytes == 0  # never cached
        store.close()

    def test_refcounting_frees_at_zero(self, tmp_path):
        store = self._store(tmp_path, budget=0)
        store.put(BlockId(0, 0), _cols(100))
        path = store.meta(BlockId(0, 0)).path
        assert path is not None and os.path.exists(path)
        store.share(BlockId(0, 0))
        store.release(BlockId(0, 0))
        assert store.n_blocks == 1  # one reference left
        store.release(BlockId(0, 0))
        assert store.n_blocks == 0
        assert not os.path.exists(path)
        assert store.stats.memory_bytes == 0
        assert store.stats.disk_bytes == 0
        store.release(BlockId(0, 0))  # idempotent
        store.close()

    def test_adopt_task_written_block(self, tmp_path):
        store = self._store(tmp_path, budget=0)
        writer = store.block_writer()
        assert isinstance(pickle.loads(pickle.dumps(writer)), BlockWriter)
        cols = _cols(50)
        handle = writer.write(BlockId(7, 3).filename, cols)
        assert isinstance(handle, SpilledBlockHandle)
        spills_before = store.stats.spill_count
        store.adopt(BlockId(7, 3), handle)
        assert store.stats.spill_count == spills_before + 1
        np.testing.assert_array_equal(store.get(BlockId(7, 3))[0], cols[0])
        store.close()

    def test_checkpoint_block_is_durable(self, tmp_path):
        store = self._store(tmp_path)
        cols = _cols(100)
        store.put(BlockId(0, 0), cols)
        path = store.checkpoint_block(BlockId(0, 0))
        entry = store.meta(BlockId(0, 0))
        assert os.sep + "checkpoints" + os.sep in path
        assert entry.durable and entry.level is StorageLevel.DISK_ONLY
        assert entry.columns is None  # reads go through the file
        np.testing.assert_array_equal(store.get(BlockId(0, 0))[0], cols[0])
        # Re-checkpointing and re-levelling are no-ops on durable blocks.
        assert store.checkpoint_block(BlockId(0, 0)) == path
        store.set_level(BlockId(0, 0), StorageLevel.MEMORY_ONLY)
        assert store.meta(BlockId(0, 0)).level is StorageLevel.DISK_ONLY
        store.close()

    def test_block_file_roundtrip_bit_exact(self, tmp_path):
        cols = (
            np.arange(100, dtype=np.int64),
            np.linspace(0, 1, 100),
            np.arange(100, dtype=np.uint16),
        )
        path = str(tmp_path / "block.npz")
        handle = write_block_file(path, cols)
        assert handle.rows == 100 and handle.n_columns == 3
        loaded = load_block_file(path)
        assert len(loaded) == 3
        for got, want in zip(loaded, cols):
            assert got.dtype == want.dtype
            np.testing.assert_array_equal(got, want)

    def test_close_removes_session_dir(self, tmp_path):
        store = self._store(tmp_path, budget=0)
        store.put(BlockId(0, 0), _cols(10))
        session = store.spill_dir
        assert session is not None and session.exists()
        store.close()
        assert not session.exists()
        store.close()  # idempotent


# ----------------------------------------------------------------------
class TestPersistLevels:
    def test_disk_only_persist_collects_identically(self):
        ref = None
        for level in (None, "disk_only", "memory_only"):
            with ClusterContext(n_nodes=2, executor_cores=4) as ctx:
                rdd = ctx.parallelize([np.arange(10_000) % 97])
                rdd = rdd.map_partitions(
                    lambda c, p: (c[0] * 3 + 1,), stage="t"
                ).persist(level)
                out = _digest(rdd.collect())
                if level == "disk_only":
                    assert ctx.metrics.storage_disk_bytes > 0
            ref = ref or out
            assert out == ref

    def test_double_persist_accounting_is_idempotent(self):
        """Regression: repeated persist()/unpersist() must never drift
        ``persisted_bytes``."""
        with ClusterContext(n_nodes=1) as ctx:
            rdd = ctx.parallelize([np.arange(50_000)]).persist()
            rdd.count()
            nbytes = ctx.metrics.persisted_bytes
            assert nbytes > 0
            rdd.persist()
            rdd.persist("memory_only")
            rdd.persist("memory_and_disk")
            assert ctx.metrics.persisted_bytes == nbytes
            rdd.unpersist()
            assert ctx.metrics.persisted_bytes == 0
            rdd.unpersist()
            assert ctx.metrics.persisted_bytes == 0
            rdd.persist()
            assert ctx.metrics.persisted_bytes == nbytes
            assert ctx.metrics.peak_persisted_bytes == nbytes

    def test_gc_releases_persist_accounting_and_blocks(self):
        """Regression: a persisted RDD that is garbage collected without
        ``unpersist()`` must not leak meter bytes or store blocks."""
        with ClusterContext(n_nodes=1) as ctx:
            rdd = ctx.parallelize([np.arange(10_000)]).persist()
            rdd.count()
            assert ctx.metrics.persisted_bytes > 0
            assert ctx.storage.n_blocks > 0
            del rdd
            gc.collect()
            assert ctx.metrics.persisted_bytes == 0
            assert ctx.storage.n_blocks == 0

    def test_metrics_surface_storage_stats(self):
        with ClusterContext(n_nodes=1, memory_budget_bytes=1) as ctx:
            rdd = ctx.parallelize([np.arange(100_000)])
            rdd = rdd.map_partitions(lambda c, p: (c[0] + 1,), stage="t")
            rdd.collect()
            m = ctx.metrics
            assert m.storage_spill_count > 0
            assert m.storage_reload_count > 0
            assert m.storage_disk_high_water_bytes > 0
            assert m.storage_disk_bytes == ctx.storage.stats.disk_bytes
            ctx.reset_metrics()  # stays attached to the same store
            assert (
                ctx.metrics.storage_disk_bytes == ctx.storage.stats.disk_bytes
            )

    def test_checkpoint_truncates_to_durable_blocks(self):
        with ClusterContext(n_nodes=2, executor_cores=4) as ctx:
            rdd = ctx.parallelize([np.arange(20_000)])
            rdd = rdd.map_partitions(
                lambda c, p: (c[0] * 7,), stage="t"
            ).persist()
            before = _digest(rdd.collect())
            rdd.checkpoint()
            assert rdd.is_checkpointed
            store = ctx.storage
            for block_id in rdd._blocks:
                entry = store.meta(block_id)
                assert entry.durable
                assert os.sep + "checkpoints" + os.sep in entry.path
            assert _digest(rdd.collect()) == before
            # Downstream work reads through the checkpoint files.
            out = rdd.map_partitions(lambda c, p: (c[0] + 1,), stage="u")
            np.testing.assert_array_equal(
                out.collect()[0], np.arange(20_000) * 7 + 1
            )


# ----------------------------------------------------------------------
def _chain_collect(ctx, rows: int = 60_000):
    """A growth-shaped pipeline exercising fusion, shuffle and
    repartition; returns collected columns."""
    rng = np.random.default_rng(7)
    src = rng.integers(0, rows // 3, size=rows, dtype=np.int64)
    dst = rng.integers(0, rows // 3, size=rows, dtype=np.int64)
    base = ctx.parallelize([src, dst])
    grown = base.map_partitions(
        lambda c, p: (np.repeat(c[0], 3), np.repeat(c[1], 3)),
        stage="t:grow",
    )
    mixed = grown.map_partitions(
        lambda c, p: (c[0] * 5 + p, c[0] ^ c[1]), stage="t:mix"
    )
    dis = mixed.distinct(key_columns=(0, 1), stage="t:distinct")
    rep = dis.repartition(max(2, dis.n_partitions // 2))
    return rep.collect()


def _stage_structure(ctx):
    return [
        (r.stage, r.partition, r.node, r.bytes_out)
        for r in ctx.metrics.tasks
    ]


class TestBudgetDigestMatrix:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("budget", [None, 1, "64KB"])
    def test_chain_identical_under_any_budget(self, backend, budget):
        with ClusterContext(
            n_nodes=2, executor_cores=4, executor=backend, local_workers=2,
            memory_budget_bytes=budget,
        ) as ctx:
            cols = _chain_collect(ctx)
            structure = _stage_structure(ctx)
            if budget is not None:
                assert ctx.metrics.storage_spill_count > 0
                # Shuffle segments are deleted once consumed.
                assert ctx.storage._shuffle_disk_bytes == 0
        if not hasattr(type(self), "_ref"):
            type(self)._ref = (_digest(cols), structure)
        ref_digest, ref_structure = type(self)._ref
        assert _digest(cols) == ref_digest
        assert structure == ref_structure

    @pytest.mark.parametrize(
        "budget,level",
        [(None, "memory_and_disk"), ("4KB", "memory_and_disk"),
         (None, "disk_only")],
    )
    def test_pgpba_identical_under_any_budget(
        self, seed_graph, seed_analysis, budget, level
    ):
        with ClusterContext(
            n_nodes=2, executor_cores=4, memory_budget_bytes=budget
        ) as ctx:
            result = PGPBA(
                fraction=2.0, seed=11, storage_level=level
            ).generate(
                seed_graph, seed_analysis, 4 * seed_graph.n_edges,
                context=ctx,
            )
            digest = _digest(
                (result.graph.src, result.graph.dst)
                + tuple(
                    result.graph.edge_properties[k]
                    for k in sorted(result.graph.edge_properties)
                )
            )
        if not hasattr(type(self), "_pgpba_ref"):
            type(self)._pgpba_ref = digest
        assert digest == type(self)._pgpba_ref

    @pytest.mark.parametrize(
        "budget,level",
        [(None, "memory_and_disk"), ("4KB", "memory_and_disk"),
         (None, "disk_only")],
    )
    def test_pgsk_identical_under_any_budget(
        self, seed_graph, seed_analysis, budget, level
    ):
        pgsk = PGSK(
            seed=11, kronfit_iterations=4, kronfit_swaps=10,
            storage_level=level,
        )
        initiator = pgsk.fit_initiator(seed_graph)
        with ClusterContext(
            n_nodes=2, executor_cores=4, memory_budget_bytes=budget
        ) as ctx:
            result = pgsk.generate(
                seed_graph, seed_analysis, 2 * seed_graph.n_edges,
                context=ctx, initiator=initiator,
            )
            digest = _digest(
                (result.graph.src, result.graph.dst)
                + tuple(
                    result.graph.edge_properties[k]
                    for k in sorted(result.graph.edge_properties)
                )
            )
        if not hasattr(type(self), "_pgsk_ref"):
            type(self)._pgsk_ref = digest
        assert digest == type(self)._pgsk_ref


# ----------------------------------------------------------------------
class TestCheckpointRecovery:
    def _run(self, checkpoint: bool):
        plan = FaultPlan(
            seed=5, p_exception=0.4, max_failures_per_task=2
        )
        with ClusterContext(
            n_nodes=2, executor_cores=4, executor="serial",
            fault_plan=plan, retry_backoff_seconds=0.0,
        ) as ctx:
            rng = np.random.default_rng(3)
            src = rng.integers(0, 1000, size=40_000, dtype=np.int64)
            base = ctx.parallelize([src]).persist()
            base.count()
            if checkpoint:
                base.checkpoint()
            out = base.map_partitions(
                lambda c, p: (c[0] * 2 + 1,), stage="x"
            ).map_partitions(lambda c, p: (c[0] ^ 7,), stage="y")
            cols = out.collect()
            assert ctx.metrics.tasks_failed > 0
            return (
                _digest(cols),
                _stage_structure(ctx),
                ctx.metrics.recovery_recompute_bytes,
            )

    def test_checkpoint_strictly_cheaper_to_recover(self):
        """The acceptance assertion: under the same fault plan, the
        checkpointed pipeline recomputes strictly fewer bytes than the
        persist()-only one — a lost task re-reads the durable anchor
        instead of re-charging its bytes — while producing the identical
        dataset and simulated stage structure."""
        persist_digest, persist_stages, persist_bytes = self._run(False)
        ckpt_digest, ckpt_stages, ckpt_bytes = self._run(True)
        assert ckpt_digest == persist_digest
        assert ckpt_stages == persist_stages
        assert persist_bytes > 0
        assert ckpt_bytes < persist_bytes

    def test_chain_recovers_identically_under_budget_and_faults(self):
        """Fault recovery composes with the spill path: a fully budgeted
        run under an aggressive plan still produces the byte-identical
        dataset as the clean unlimited run."""
        ref = None
        for budget, plan in (
            (None, None),
            (1, FaultPlan(seed=9, p_exception=0.3, max_failures_per_task=2)),
        ):
            with ClusterContext(
                n_nodes=2, executor_cores=4, memory_budget_bytes=budget,
                fault_plan=plan, retry_backoff_seconds=0.0,
            ) as ctx:
                digest = _digest(_chain_collect(ctx, rows=20_000))
                structure = _stage_structure(ctx)
                if plan is not None:
                    assert ctx.metrics.tasks_failed > 0
            if ref is None:
                ref = (digest, structure)
            assert (digest, structure) == ref
