"""Netflow records and the columnar flow table.

:class:`NetflowRecord` is the per-flow view the assembler emits;
:class:`FlowTable` is the struct-of-arrays form everything downstream
consumes.  Beyond the paper's nine edge attributes the table carries
``SRC_IP``/``DST_IP``/``START_TIME``/``SYN_COUNT``/``ACK_COUNT`` columns —
the graph mapping needs the endpoints, and the Section IV anomaly detector
needs SYN/ACK tallies (Table I's ``N(SYN)``, ``N(ACK)``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.netflow.attributes import (
    NETFLOW_EDGE_ATTRIBUTES,
    Protocol,
    TcpState,
)

__all__ = ["NetflowRecord", "FlowTable"]


@dataclass(frozen=True)
class NetflowRecord:
    """One unidirectionally-keyed, bidirectionally-counted flow.

    ``out_*`` counts originator→responder traffic, ``in_*`` the reverse,
    matching the paper's OUT_BYTES/IN_BYTES/OUT_PKTS/IN_PKTS semantics.
    ``duration_ms`` is milliseconds as the paper specifies.
    """

    src_ip: int
    dst_ip: int
    protocol: Protocol
    src_port: int
    dst_port: int
    start_time: float
    duration_ms: float
    out_bytes: int
    in_bytes: int
    out_pkts: int
    in_pkts: int
    state: TcpState
    syn_count: int = 0
    ack_count: int = 0


# Column name -> dtype of the FlowTable arrays.
_COLUMNS: tuple[tuple[str, np.dtype], ...] = (
    ("SRC_IP", np.dtype(np.int64)),
    ("DST_IP", np.dtype(np.int64)),
    ("PROTOCOL", np.dtype(np.int64)),
    ("SRC_PORT", np.dtype(np.int64)),
    ("DEST_PORT", np.dtype(np.int64)),
    ("START_TIME", np.dtype(np.float64)),
    ("DURATION", np.dtype(np.float64)),
    ("OUT_BYTES", np.dtype(np.int64)),
    ("IN_BYTES", np.dtype(np.int64)),
    ("OUT_PKTS", np.dtype(np.int64)),
    ("IN_PKTS", np.dtype(np.int64)),
    ("STATE", np.dtype(np.int64)),
    ("SYN_COUNT", np.dtype(np.int64)),
    ("ACK_COUNT", np.dtype(np.int64)),
)
_COLUMN_NAMES = tuple(name for name, _ in _COLUMNS)


class FlowTable:
    """Columnar table of flows; one NumPy array per column.

    All columns are aligned; ``len(table)`` is the flow count.  Column
    access is by name (``table["OUT_BYTES"]``) and always returns the
    underlying array (no copy), so analytics stay allocation-free.
    """

    COLUMN_NAMES = _COLUMN_NAMES

    def __init__(self, columns: dict[str, np.ndarray]) -> None:
        missing = set(_COLUMN_NAMES) - set(columns)
        if missing:
            raise ValueError(f"missing flow columns: {sorted(missing)}")
        n = len(columns[_COLUMN_NAMES[0]])
        self._cols: dict[str, np.ndarray] = {}
        for name, dtype in _COLUMNS:
            arr = np.ascontiguousarray(columns[name], dtype=dtype)
            if arr.ndim != 1 or arr.size != n:
                raise ValueError(
                    f"column {name!r} has shape {arr.shape}, expected ({n},)"
                )
            self._cols[name] = arr

    # ------------------------------------------------------------------
    @classmethod
    def from_records(cls, records: Sequence[NetflowRecord]) -> "FlowTable":
        """Materialise a table from record objects (assembler output)."""
        n = len(records)
        cols = {name: np.empty(n, dtype=dtype) for name, dtype in _COLUMNS}
        for i, r in enumerate(records):
            cols["SRC_IP"][i] = r.src_ip
            cols["DST_IP"][i] = r.dst_ip
            cols["PROTOCOL"][i] = int(r.protocol)
            cols["SRC_PORT"][i] = r.src_port
            cols["DEST_PORT"][i] = r.dst_port
            cols["START_TIME"][i] = r.start_time
            cols["DURATION"][i] = r.duration_ms
            cols["OUT_BYTES"][i] = r.out_bytes
            cols["IN_BYTES"][i] = r.in_bytes
            cols["OUT_PKTS"][i] = r.out_pkts
            cols["IN_PKTS"][i] = r.in_pkts
            cols["STATE"][i] = int(r.state)
            cols["SYN_COUNT"][i] = r.syn_count
            cols["ACK_COUNT"][i] = r.ack_count
        return cls(cols)

    @classmethod
    def empty(cls) -> "FlowTable":
        return cls.from_records([])

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return int(self._cols["SRC_IP"].size)

    def __getitem__(self, name: str) -> np.ndarray:
        return self._cols[name]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FlowTable({len(self)} flows)"

    def records(self) -> Iterable[NetflowRecord]:
        """Yield record objects (test/debug convenience; O(n) Python)."""
        c = self._cols
        for i in range(len(self)):
            yield NetflowRecord(
                src_ip=int(c["SRC_IP"][i]),
                dst_ip=int(c["DST_IP"][i]),
                protocol=Protocol(int(c["PROTOCOL"][i])),
                src_port=int(c["SRC_PORT"][i]),
                dst_port=int(c["DEST_PORT"][i]),
                start_time=float(c["START_TIME"][i]),
                duration_ms=float(c["DURATION"][i]),
                out_bytes=int(c["OUT_BYTES"][i]),
                in_bytes=int(c["IN_BYTES"][i]),
                out_pkts=int(c["OUT_PKTS"][i]),
                in_pkts=int(c["IN_PKTS"][i]),
                state=TcpState(int(c["STATE"][i])),
                syn_count=int(c["SYN_COUNT"][i]),
                ack_count=int(c["ACK_COUNT"][i]),
            )

    def select(self, mask_or_index: np.ndarray) -> "FlowTable":
        """Row subset as a new table."""
        sel = np.asarray(mask_or_index)
        return FlowTable({k: v[sel] for k, v in self._cols.items()})

    def concat(self, other: "FlowTable") -> "FlowTable":
        """Row-wise concatenation."""
        return FlowTable(
            {
                k: np.concatenate([v, other._cols[k]])
                for k, v in self._cols.items()
            }
        )

    def edge_attribute_columns(self) -> dict[str, np.ndarray]:
        """The paper's nine edge attributes, in canonical order."""
        return {name: self._cols[name] for name in NETFLOW_EDGE_ATTRIBUTES}

    def hosts(self) -> np.ndarray:
        """Sorted distinct host addresses appearing as either endpoint."""
        return np.union1d(self._cols["SRC_IP"], self._cols["DST_IP"])

    # ------------------------------------------------------------------
    def save_npz(self, path) -> None:
        np.savez_compressed(path, **self._cols)

    @classmethod
    def load_npz(cls, path) -> "FlowTable":
        with np.load(path, allow_pickle=False) as data:
            return cls({k: data[k] for k in data.files})
