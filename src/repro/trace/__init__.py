"""Synthetic network-trace substrate.

The paper seeds its generators with the SMIA 2011 capture from the Swedish
Department of Defense, which is not redistributable here.  This package is
the documented substitution (see DESIGN.md): a deterministic enterprise
traffic synthesizer that emits *byte-exact pcap frames* for a population of
hosts running realistic application mixes, plus injectors for the attack
classes the Section IV detector must catch.  Because the data generators
only consume the seed's empirical distributions, any heavy-tailed trace
exercises the same code path as the original capture.
"""

from repro.trace.hosts import HostPopulation
from repro.trace.workloads import ApplicationProfile, STANDARD_WORKLOADS
from repro.trace.synthesizer import TraceSynthesizer, synthesize_seed_packets
from repro.trace import attacks

__all__ = [
    "HostPopulation",
    "ApplicationProfile",
    "STANDARD_WORKLOADS",
    "TraceSynthesizer",
    "synthesize_seed_packets",
    "attacks",
]
