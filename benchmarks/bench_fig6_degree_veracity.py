"""Fig. 6 — evaluation of degree veracity vs synthetic-graph size.

Paper: degree veracity scores of PGSK and of PGPBA at fractions 0.1, 0.3,
0.6, 0.9 all decrease roughly linearly (log-log) as the generated graph
grows; PGSK can start below the seed size while PGPBA only grows; PGPBA at
fraction 0.1 is comparable to PGSK.

Here: the same sweep at laptop scale (multiples of the ~2k-edge seed).
"""

from __future__ import annotations

import numpy as np

from conftest import save_series
from repro.bench import default_cluster
from repro.core import PGPBA, PGSK, degree_veracity

FRACTIONS = (0.1, 0.3, 0.6, 0.9)
PGPBA_FACTORS = (3, 10, 30, 100)
PGSK_TARGETS_FACTORS = (0.05, 0.5, 3, 10, 30, 100)  # can go below the seed


def run_fig6(seed_graph, seed_analysis):
    rows = []
    for fraction in FRACTIONS:
        for factor in PGPBA_FACTORS:
            res = PGPBA(
                fraction=fraction, seed=6, generate_properties=False
            ).generate(
                seed_graph, seed_analysis, factor * seed_graph.n_edges,
                context=default_cluster(),
            )
            rows.append(
                [
                    f"PGPBA f={fraction}",
                    res.graph.n_edges,
                    degree_veracity(seed_graph, res.graph),
                ]
            )
    pgsk = PGSK(seed=6, generate_properties=False,
                kronfit_iterations=10, kronfit_swaps=40)
    initiator = pgsk.fit_initiator(seed_graph)
    for factor in PGSK_TARGETS_FACTORS:
        target = max(16, int(factor * seed_graph.n_edges))
        res = pgsk.generate(
            seed_graph, seed_analysis, target,
            context=default_cluster(), initiator=initiator,
        )
        rows.append(
            [
                "PGSK",
                res.graph.n_edges,
                degree_veracity(seed_graph, res.graph),
            ]
        )
    return rows


def test_fig6_degree_veracity(benchmark, seed_graph, seed_analysis):
    rows = run_fig6(seed_graph, seed_analysis)
    save_series(
        "fig6",
        "Fig. 6: degree veracity score vs synthetic size (lower = better)",
        ["series", "edges", "degree_veracity"],
        rows,
    )
    # The paper's trend: within each series, veracity decreases with size.
    by_series: dict[str, list[tuple[int, float]]] = {}
    for name, edges, score in rows:
        by_series.setdefault(name, []).append((edges, score))
    for name, pts in by_series.items():
        pts.sort()
        sizes = np.log([p[0] for p in pts])
        scores = np.log([max(p[1], 1e-300) for p in pts])
        slope = np.polyfit(sizes, scores, 1)[0]
        assert slope < 0, f"veracity must improve with size for {name}"

    def op():
        return degree_veracity(seed_graph, seed_graph)

    benchmark.pedantic(op, rounds=3, iterations=1)
