"""The preliminary steps of Fig. 1: pcap → Netflow → property-graph → analysis.

``build_seed`` accepts either a pcap file path or an in-memory list of
timestamped frames (as produced by :mod:`repro.trace`), runs the flow
assembler over it, maps the flow table onto a property graph, and analyses
its structural and attribute distributions.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.core.generator import SeedAnalysis
from repro.graph.property_graph import PropertyGraph
from repro.netflow.flow_assembler import assemble_flows
from repro.netflow.mapping import flow_table_to_property_graph
from repro.netflow.record import FlowTable
from repro.pcap.packet import parse_ethernet_ipv4_packet
from repro.pcap.reader import PcapReader

__all__ = ["SeedBundle", "build_seed", "analyze_seed", "packets_from"]


@dataclass(frozen=True)
class SeedBundle:
    """Everything the preliminary pipeline produces."""

    flow_table: FlowTable
    graph: PropertyGraph
    analysis: SeedAnalysis


def analyze_seed(graph: PropertyGraph, *, n_bins: int = 16) -> SeedAnalysis:
    """Analysis of structural + attribute properties (Fig. 1 last step)."""
    return SeedAnalysis.from_graph(graph, n_bins=n_bins)


def build_seed(
    source,
    *,
    idle_timeout: float = 60.0,
    n_bins: int = 16,
) -> SeedBundle:
    """Run the full preliminary pipeline.

    Parameters
    ----------
    source:
        Either a pcap file path, or an iterable of ``(timestamp, frame
        bytes)`` pairs (e.g. :func:`repro.trace.synthesize_seed_packets`
        output), or an iterable of already-parsed packets.
    """
    packets = packets_from(source)
    records = list(assemble_flows(packets, idle_timeout=idle_timeout))
    if not records:
        raise ValueError("the source produced no flows")
    table = FlowTable.from_records(records)
    graph = flow_table_to_property_graph(table)
    analysis = analyze_seed(graph, n_bins=n_bins)
    return SeedBundle(flow_table=table, graph=graph, analysis=analysis)


def packets_from(source):
    """Normalise a packet source into a :class:`ParsedPacket` iterator.

    Accepts a pcap file path, an iterable of ``(timestamp, frame bytes)``
    pairs, or an iterable of already-parsed packets; unparseable frames
    are skipped.
    """
    from repro.pcap.packet import ParsedPacket

    if isinstance(source, (str, Path)):
        with PcapReader(source) as reader:
            yield from reader.parsed_packets()
        return
    for item in source:
        if isinstance(item, ParsedPacket):
            yield item
            continue
        ts, frame = item
        pkt = parse_ethernet_ipv4_packet(frame, timestamp=ts)
        if pkt is not None:
            yield pkt


def _packets_from(source):
    """Deprecated alias of :func:`packets_from` (pre-public name)."""
    import warnings

    warnings.warn(
        "_packets_from is deprecated; use repro.core.pipeline.packets_from",
        DeprecationWarning,
        stacklevel=2,
    )
    return packets_from(source)
