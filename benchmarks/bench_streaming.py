"""Streaming-pipeline benchmark: sustained rate, backpressure, latency.

The §VI outlook of the paper is online detection over a live stream; the
:mod:`repro.stream` pipeline serves it.  This bench writes the
``streaming`` section of ``benchmarks/results/BENCH_engine.json``:

* **throughput** — a synthetic trace (background + two timed attacks)
  pushed through the four-stage pipeline at the default queue capacity:
  sustained source events/sec, per-stage rates, and end-to-end window
  latency p50/p99 (window close in the assembly stage → detection sink
  done);
* **backpressure** — the same source against a deliberately slow sink
  (``sink_delay_seconds``) at a tiny queue capacity: every queue's depth
  high-water must stay ≤ its capacity (the bounded-memory guarantee)
  while the stall counters prove the source actually blocked;
* **identity** — the streamed detections compared against the batch
  reference (global sort + the same :class:`OnlineDetector`): must be
  byte-identical, and each injected attack's time-to-detection is
  recorded.

``REPRO_BENCH_SMOKE=1`` shrinks the trace to a CI-sized run (~10 s).

Run directly (``PYTHONPATH=src python benchmarks/bench_streaming.py``)
or via pytest like the figure benches.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.core.pipeline import packets_from
from repro.detect import DetectionThresholds, OnlineDetector
from repro.netflow import FlowTable, assemble_flows
from repro.stream import StreamPipeline, TraceSource
from repro.trace import attacks
from repro.trace.hosts import ipv4
from repro.trace.synthesizer import TraceSynthesizer

RESULTS_DIR = Path(__file__).parent / "results"
JSON_PATH = RESULTS_DIR / "BENCH_engine.json"

DETECT_WINDOW = 5.0
STREAM_SEED = 17


def _trace_params() -> tuple[float, float]:
    """(duration seconds, session rate) for the synthetic trace."""
    if os.environ.get("REPRO_BENCH_SMOKE"):
        return 10.0, 30.0
    return 40.0, 60.0


def _build_source(duration: float, rate: float) -> TraceSource:
    flood = attacks.syn_flood(
        attacker_ip=ipv4(203, 0, 113, 5), victim_ip=ipv4(10, 2, 0, 2),
        start_time=1_000_000.0 + duration * 0.25,
        duration=min(4.0, duration / 4),
    )
    scan = attacks.host_scan(
        attacker_ip=ipv4(203, 0, 113, 6), victim_ip=ipv4(10, 2, 0, 3),
        start_time=1_000_000.0 + duration * 0.6,
        duration=min(6.0, duration / 4),
    )
    return TraceSource(
        synthesizer=TraceSynthesizer(session_rate=rate, seed=STREAM_SEED),
        duration=duration,
        attacks=(flood, scan),
    )


def _thresholds(duration: float, rate: float) -> DetectionThresholds:
    clean = TraceSynthesizer(
        session_rate=rate, seed=STREAM_SEED
    ).generate(duration, start_time=1_000_000.0)
    table = FlowTable.from_records(
        list(assemble_flows(packets_from(clean)))
    )
    return DetectionThresholds.fit_normal(
        {k: table[k] for k in FlowTable.COLUMN_NAMES},
        window_seconds=DETECT_WINDOW,
    )


def _batch_reference(source: TraceSource, thresholds) -> list:
    records = list(assemble_flows(packets_from(iter(source.frames()))))
    records.sort(key=lambda r: r.start_time)
    return list(
        OnlineDetector(thresholds, window_seconds=DETECT_WINDOW).run(records)
    )


def _queue_rows(stats) -> list[dict]:
    return [
        {
            "name": q.name,
            "capacity": q.capacity,
            "depth_high_water": q.depth_high_water,
            "backpressure_stalls": q.backpressure_stalls,
            "stall_seconds": round(q.stall_seconds, 4),
        }
        for q in stats.queues
    ]


def run_streaming() -> dict:
    duration, rate = _trace_params()
    thresholds = _thresholds(duration, rate)

    # -- throughput at the default capacity, no artificial delay -------
    source = _build_source(duration, rate)
    result = StreamPipeline(
        source,
        detector=OnlineDetector(thresholds, window_seconds=DETECT_WINDOW),
        window_seconds=DETECT_WINDOW,
    ).run()
    stats = result.stats
    throughput = {
        "trace_seconds": duration,
        "session_rate": rate,
        "packets": stats.packets,
        "flows": stats.flows,
        "windows": stats.windows,
        "late_flows": stats.late_flows,
        "wall_seconds": round(stats.wall_seconds, 4),
        "events_per_second": round(stats.events_per_second, 1),
        "stage_events_per_second": {
            s.name: round(s.events_per_second, 1)
            for s in stats.stages
            if s.busy_seconds > 0
        },
        "window_latency_ms": {
            "p50": round(stats.window_latency_p50_ms, 3),
            "p99": round(stats.window_latency_p99_ms, 3),
            "mean": round(stats.window_latency_mean_ms, 3),
        },
        "queues": _queue_rows(stats),
    }

    # -- identity + time-to-detection ----------------------------------
    batch = _batch_reference(source, thresholds)
    identity = {
        "batch_detections": len(batch),
        "stream_detections": len(result.detections),
        "identical": list(result.detections) == batch,
    }
    detection = {
        "attacks": [
            {
                "kind": lat.kind,
                "detected": lat.detected,
                "seconds_to_detection": (
                    round(lat.seconds_to_detection, 3)
                    if lat.detected else None
                ),
            }
            for lat in result.latencies
        ],
        "all_detected": all(lat.detected for lat in result.latencies),
    }

    # -- backpressure: fast source, deliberately slow sink -------------
    bp_capacity = 2
    bp_delay = 0.05
    bp_source = _build_source(duration, rate)
    bp_result = StreamPipeline(
        bp_source,
        detector=OnlineDetector(thresholds, window_seconds=DETECT_WINDOW),
        window_seconds=DETECT_WINDOW,
        queue_capacity=bp_capacity,
        sink_delay_seconds=bp_delay,
    ).run()
    bp_stats = bp_result.stats
    queues = _queue_rows(bp_stats)
    backpressure = {
        "queue_capacity": bp_capacity,
        "sink_delay_seconds": bp_delay,
        "queues": queues,
        "max_depth_high_water": max(
            q["depth_high_water"] for q in queues
        ),
        "within_capacity": all(
            q["depth_high_water"] <= q["capacity"] for q in queues
        ),
        "total_stalls": sum(q["backpressure_stalls"] for q in queues),
        "identical_to_batch": list(bp_result.detections) == batch,
    }

    section = {
        "smoke": bool(os.environ.get("REPRO_BENCH_SMOKE")),
        "detect_window_seconds": DETECT_WINDOW,
        "throughput": throughput,
        "detection": detection,
        "identity": identity,
        "backpressure": backpressure,
    }

    # Read-modify-write: this section rides alongside the engine report.
    RESULTS_DIR.mkdir(exist_ok=True)
    report = {}
    if JSON_PATH.exists():
        report = json.loads(JSON_PATH.read_text())
    report["streaming"] = section
    JSON_PATH.write_text(json.dumps(report, indent=2) + "\n")

    print(f"== streaming throughput ({duration:g}s trace @ {rate:g} "
          "sessions/s) ==")
    print(stats.summary())
    print("\n== backpressure (capacity "
          f"{bp_capacity}, sink delay {bp_delay * 1e3:.0f} ms/window) ==")
    print(bp_stats.summary())
    print("\ntime-to-detection:")
    for entry in detection["attacks"]:
        ttd = entry["seconds_to_detection"]
        print(f"  {entry['kind']:<14} "
              f"{'MISSED' if ttd is None else f'{ttd:.1f}s after onset'}")
    print(f"stream == batch: {identity['identical']}")
    print(f"\nwritten to {JSON_PATH}")
    return section


# ----------------------------------------------------------------------
def test_streaming(benchmark):
    section = run_streaming()

    # Byte-identity: the streamed detections equal the batch reference,
    # even under backpressure with a tiny queue.
    assert section["identity"]["identical"], section["identity"]
    assert section["backpressure"]["identical_to_batch"]

    # Bounded memory: no queue ever exceeded its configured capacity,
    # and the slow sink really did stall upstream stages.
    bp = section["backpressure"]
    assert bp["within_capacity"], bp["queues"]
    assert bp["max_depth_high_water"] <= bp["queue_capacity"]
    assert bp["total_stalls"] > 0, "slow sink produced no backpressure"

    # The pipeline made progress and the latency percentiles are sane.
    tp = section["throughput"]
    assert tp["events_per_second"] > 0
    assert tp["windows"] > 0 and tp["flows"] > 0
    assert tp["late_flows"] == 0  # auto lateness never mis-windows
    lat = tp["window_latency_ms"]
    assert 0 < lat["p50"] <= lat["p99"]

    # Both injected attacks were caught while streaming.
    assert section["detection"]["all_detected"], section["detection"]

    duration, rate = _trace_params()
    thresholds = _thresholds(duration, rate)
    benchmark.pedantic(
        lambda: StreamPipeline(
            _build_source(duration, rate),
            detector=OnlineDetector(
                thresholds, window_seconds=DETECT_WINDOW
            ),
            window_seconds=DETECT_WINDOW,
        ).run(),
        rounds=1,
        iterations=1,
    )


if __name__ == "__main__":
    run_streaming()
