"""Command-line interface: the CSB-suite-style entry points.

The released suite the paper points to is driven from the command line;
this module provides the equivalent:

* ``synth``    — synthesize a pcap trace (the seed substitute);
* ``analyze``  — pcap -> seed property graph + analysis summary;
* ``generate`` — grow a synthetic property graph (PGPBA or PGSK) and save
  it as .npz and/or an attribute-bearing edge list;
* ``detect``   — run the Fig. 4 anomaly detector over a pcap capture;
* ``veracity`` — score a generated graph against its seed;
* ``query``    — serve the benchmark query workload (nodes, edges,
  paths, sub-graphs) over a saved graph through the concurrent
  ``repro.serve`` layer and report per-family latency percentiles,
  cache hit ratio and queries/second;
* ``engine-info`` — print the resolved engine configuration (backend,
  workers, fusion, fault plan, memory budget, spill dir, task grain)
  with the source of each setting, for debugging env-vs-flag precedence;
* ``worker``   — run a cluster worker daemon that executes task batches
  for a driver using the ``cluster`` executor backend and serves
  spill/shuffle blocks to peer workers.

Usage: ``python -m repro.cli <command> --help``.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path

import numpy as np

__all__ = ["main", "build_parser"]


def _add_engine_args(p: argparse.ArgumentParser) -> None:
    """Engine/runtime flags shared by ``generate`` and ``engine-info``."""
    p.add_argument("--nodes", type=int, default=1,
                   help="simulated cluster size")
    p.add_argument("--cores", type=int, default=12,
                   help="executor cores per node")
    p.add_argument(
        "--executor",
        choices=("serial", "threads", "processes", "pool", "cluster"),
        default=None,
        help="real execution backend for partition tasks (default: "
        "REPRO_EXECUTOR env var, then serial); 'pool' reuses persistent "
        "forked workers with shared-memory transport, 'cluster' "
        "dispatches to remote 'repro worker' daemons over sockets; only "
        "wall-clock time changes, the simulated cluster metrics do not",
    )
    p.add_argument(
        "--workers", type=str, default=None, metavar="N|ADDRS",
        help="an integer sizes the local backends (threads/processes/"
        "pool; default: REPRO_LOCAL_WORKERS env var, then the CPU "
        "count); a comma-separated address list (host:port or "
        "unix:/path) names the 'cluster' backend's worker daemons "
        "(default: REPRO_WORKERS env var)",
    )
    p.add_argument(
        "--target-partition-bytes", type=str, default=None, metavar="SIZE",
        help="coalesce adjacent small partitions into physical tasks of "
        "roughly this size before dispatch, e.g. '4MB' or 'off' "
        "(default: REPRO_TARGET_PARTITION_BYTES env var, then 4MB); "
        "results and simulated cluster metrics are byte-identical under "
        "any setting, only wall-clock dispatch overhead changes",
    )
    p.add_argument(
        "--task-batch", type=int, default=None, metavar="N",
        help="tasks shipped per worker IPC round on the pool backend; 0 "
        "adapts to ~n/(2*workers) (default: REPRO_TASK_BATCH env var, "
        "then 0)",
    )
    p.add_argument(
        "--no-fusion", action="store_true",
        help="disable lazy stage fusion and run every transformation "
        "eagerly (default: fused; also settable via REPRO_FUSION=off); "
        "results and simulated cluster metrics are identical, only "
        "wall-clock time and local peak memory change",
    )
    p.add_argument(
        "--faults", type=str, default=None, metavar="JSON",
        help="deterministic fault-injection plan as JSON, e.g. "
        '\'{"seed": 1, "p_exception": 0.1, "p_kill": 0.05}\' '
        "(default: REPRO_FAULTS env var, then no injection); recovery "
        "keeps results and simulated metrics bit-identical, only "
        "wall-clock time and the recovery counters change",
    )
    p.add_argument(
        "--max-task-retries", type=int, default=None,
        help="retry budget per failed task before the run aborts "
        "(default: REPRO_MAX_TASK_RETRIES env var, then 3)",
    )
    p.add_argument(
        "--speculation", action="store_true", default=None,
        help="speculatively re-execute straggler tasks, first result "
        "wins (default: REPRO_SPECULATION env var, then off)",
    )
    p.add_argument(
        "--memory-budget", type=str, default=None, metavar="SIZE",
        help="cap on memory-resident partition blocks, e.g. '64MB' or "
        "'none' (default: REPRO_MEMORY_BUDGET env var, then unlimited); "
        "excess blocks spill to the spill dir and reload transparently — "
        "results and simulated metrics are byte-identical under any "
        "budget, only wall-clock time and disk usage change",
    )
    p.add_argument(
        "--spill-dir", type=str, default=None, metavar="DIR",
        help="base directory for spilled blocks, shuffle segments and "
        "checkpoints (default: REPRO_SPILL_DIR env var, then the system "
        "tempdir); each run uses its own session subdirectory, removed "
        "on close",
    )
    p.add_argument(
        "--block-codec", choices=("raw", "zlib", "lzma", "mmap"),
        default=None,
        help="on-disk format for spilled blocks, shuffle segments and "
        "checkpoints: 'raw' = uncompressed .npz, 'zlib'/'lzma' = "
        "chunk-compressed columnar .blk, 'mmap' = uncompressed .blk "
        "read back via memory mapping (default: REPRO_BLOCK_CODEC env "
        "var, then raw); results and simulated metrics are "
        "byte-identical under every codec, only disk bytes and "
        "wall-clock encode/decode time change",
    )
    p.add_argument(
        "--shuffle", choices=("exchange", "extsort"), default=None,
        help="distinct() shuffle strategy: 'exchange' hash-exchanges "
        "whole partitions, 'extsort' spills sorted runs and streams a "
        "k-way merge so reduce-side memory stays bounded by the run "
        "chunk size (default: REPRO_SHUFFLE env var, then exchange); "
        "output and simulated metrics are byte-identical either way",
    )


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser with all sub-commands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Property-graph synthetic data generators for IDS "
        "benchmarking (CLUSTER 2017 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("synth", help="synthesize a pcap seed trace")
    p.add_argument("output", type=Path, help="pcap file to write")
    p.add_argument("--duration", type=float, default=30.0)
    p.add_argument("--session-rate", type=float, default=50.0)
    p.add_argument("--clients", type=int, default=200)
    p.add_argument("--servers", type=int, default=40)
    p.add_argument("--seed", type=int, default=7)

    p = sub.add_parser("analyze", help="build + summarise the seed graph")
    p.add_argument("pcap", type=Path, help="input pcap capture")
    p.add_argument(
        "--save", type=Path, default=None,
        help="write the seed property graph to this .npz",
    )

    p = sub.add_parser("generate", help="generate a synthetic graph")
    p.add_argument("pcap", type=Path, help="seed pcap capture")
    p.add_argument(
        "--algorithm", choices=("pgpba", "pgsk"), default="pgpba"
    )
    p.add_argument("--edges", type=int, required=True,
                   help="desired synthetic size in edges")
    p.add_argument("--fraction", type=float, default=0.1,
                   help="PGPBA growth fraction")
    _add_engine_args(p)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--save-npz", type=Path, default=None)
    p.add_argument("--save-edges", type=Path, default=None)

    p = sub.add_parser(
        "engine-info",
        help="print the resolved engine configuration and where each "
        "setting came from (flag, environment variable, or default)",
    )
    _add_engine_args(p)

    p = sub.add_parser(
        "worker",
        help="run a cluster worker daemon: listens for a driver using "
        "the 'cluster' executor backend, executes its task batches and "
        "serves spill/shuffle blocks to peer workers",
    )
    p.add_argument(
        "--listen", type=str, default="127.0.0.1:0", metavar="ADDR",
        help="bind address, host:port (port 0 picks an ephemeral port, "
        "announced on stdout) or unix:/path (default 127.0.0.1:0)",
    )
    p.add_argument(
        "--root", type=Path, action="append", default=[], metavar="DIR",
        help="additionally serve block files under this directory to "
        "fetch requests (repeatable; drivers register their session "
        "spill roots automatically at handshake)",
    )

    p = sub.add_parser("detect", help="detect anomalies in a capture")
    p.add_argument("pcap", type=Path, help="capture to analyse")
    p.add_argument(
        "--baseline", type=Path, default=None,
        help="attack-free pcap used to calibrate the Table I thresholds "
        "(defaults to the analysed capture itself)",
    )
    p.add_argument("--window", type=float, default=5.0)

    p = sub.add_parser("veracity", help="score synthetic vs seed graph")
    p.add_argument("seed_graph", type=Path, help="seed graph .npz")
    p.add_argument("synthetic_graph", type=Path, help="synthetic graph .npz")

    p = sub.add_parser(
        "query",
        help="serve the benchmark query workload over a saved graph "
        "and report per-family latency percentiles, cache hit ratio "
        "and queries/second",
    )
    p.add_argument("graph", type=Path,
                   help="property graph .npz (e.g. generate --save-npz)")
    p.add_argument("--n-queries", type=int, default=20,
                   help="queries per family (default 20)")
    p.add_argument("--k-hops", type=int, default=2,
                   help="depth of the path queries")
    p.add_argument("--seed", type=int, default=0,
                   help="RNG seed for query target selection")
    p.add_argument(
        "--families", type=str, default=None, metavar="LIST",
        help="comma-separated subset of node,edge,path,subgraph "
        "(default: all four)",
    )
    p.add_argument(
        "--threads", type=int, default=None,
        help="worker threads for batched execution (default: "
        "REPRO_QUERY_THREADS env var, then the CPU count)",
    )
    p.add_argument(
        "--cache-size", type=int, default=None, metavar="N",
        help="LRU result-cache capacity in entries, 0 disables "
        "(default: REPRO_QUERY_CACHE env var, then 1024)",
    )
    p.add_argument(
        "--repeat", type=int, default=2,
        help="batch rounds; rounds after the first exercise the warm "
        "cache (default 2)",
    )

    p = sub.add_parser(
        "stream",
        help="run the micro-batch streaming pipeline for a bounded "
        "session: synthetic traffic + injected attacks flow through "
        "windowed assembly, the live graph and the online detector; "
        "prints per-stage throughput, backpressure and time-to-detection",
    )
    p.add_argument("--duration", type=float, default=30.0,
                   help="seconds of background traffic (default 30)")
    p.add_argument("--session-rate", type=float, default=40.0)
    p.add_argument("--seed", type=int, default=17)
    p.add_argument(
        "--attacks", type=str, default="syn_flood,host_scan",
        metavar="LIST",
        help="comma-separated attacks to inject out of syn_flood, "
        "host_scan, network_scan, udp_flood, icmp_flood, ddos_syn_flood "
        "(default syn_flood,host_scan; 'none' for a clean run)",
    )
    p.add_argument(
        "--replay", type=Path, default=None, metavar="FILE",
        help="replay a .pcap packet trace or a .npz flow-table archive "
        "instead of synthesizing traffic",
    )
    p.add_argument(
        "--window", type=str, default=None,
        help="micro-batch window seconds (default: REPRO_STREAM_WINDOW "
        "env var, then 5.0)",
    )
    p.add_argument(
        "--lateness", type=str, default=None,
        help="allowed lateness seconds, or 'auto' for the safe bound "
        "(default: REPRO_STREAM_LATENESS env var, then auto)",
    )
    p.add_argument(
        "--queue-capacity", type=str, default=None, metavar="N",
        help="bounded-queue capacity in micro-batches (default: "
        "REPRO_STREAM_QUEUE env var, then 8)",
    )
    p.add_argument("--batch-packets", type=int, default=256,
                   help="packets per source micro-batch (default 256)")
    p.add_argument("--idle-timeout", type=float, default=60.0,
                   help="flow-assembly idle timeout seconds")
    p.add_argument(
        "--sink-delay", type=float, default=0.0,
        help="artificial per-window sink delay in seconds (demonstrates "
        "backpressure)",
    )

    return parser


# ----------------------------------------------------------------------
def _split_workers(value):
    """The --workers flag is dual-mode: an integer sizes the local
    backends, anything else is a cluster daemon address list.  Returns
    ``(local_workers, cluster_workers)`` with the unused side None."""
    if value is None:
        return None, None
    text = str(value).strip()
    if text.lstrip("+-").isdigit():
        return int(text), None
    return None, text


def _make_context(args):
    """Build a ClusterContext from the shared engine flags."""
    from repro.engine import ClusterContext

    local_workers, cluster_workers = _split_workers(args.workers)
    return ClusterContext(
        n_nodes=args.nodes,
        executor_cores=args.cores,
        executor=args.executor,
        local_workers=local_workers,
        workers=cluster_workers,
        fusion=False if args.no_fusion else None,
        fault_plan=args.faults,
        max_task_retries=args.max_task_retries,
        speculation=args.speculation,
        memory_budget_bytes=args.memory_budget,
        spill_dir=args.spill_dir,
        block_codec=args.block_codec,
        shuffle=args.shuffle,
        target_partition_bytes=args.target_partition_bytes,
        task_batch=args.task_batch,
    )


def _cmd_synth(args) -> int:
    from repro.pcap.writer import write_pcap
    from repro.trace.synthesizer import synthesize_seed_packets

    frames = synthesize_seed_packets(
        duration=args.duration,
        session_rate=args.session_rate,
        n_clients=args.clients,
        n_servers=args.servers,
        seed=args.seed,
    )
    count = write_pcap(args.output, frames)
    print(f"wrote {count} packets to {args.output}")
    return 0


def _cmd_analyze(args) -> int:
    from repro.core.pipeline import build_seed

    bundle = build_seed(args.pcap)
    g, a = bundle.graph, bundle.analysis
    print(f"hosts (vertices)     : {g.n_vertices}")
    print(f"flows (edges)        : {g.n_edges}")
    print(f"edge attributes      : {sorted(g.edge_properties)}")
    print(f"mean in-degree       : {a.in_degree.mean():.3f}")
    print(f"mean out-degree      : {a.out_degree.mean():.3f}")
    print(f"mean edge multiplicity: {a.multiplicity.mean():.3f}")
    print(f"mean IN_BYTES        : {a.properties.anchor.mean():.1f}")
    if args.save:
        g.save_npz(args.save)
        print(f"seed graph saved to {args.save}")
    return 0


def _cmd_generate(args) -> int:
    import time

    from repro.core import PGPBA, PGSK
    from repro.core.pipeline import build_seed
    from repro.graph.io import write_edge_list

    bundle = build_seed(args.pcap)
    ctx = _make_context(args)
    if args.algorithm == "pgpba":
        gen = PGPBA(fraction=args.fraction, seed=args.seed)
    else:
        gen = PGSK(seed=args.seed)
    t0 = time.perf_counter()
    result = gen.generate(
        bundle.graph, bundle.analysis, args.edges, context=ctx
    )
    wall = time.perf_counter() - t0
    ctx.close()
    print(f"algorithm            : {result.algorithm}")
    print(f"edges                : {result.graph.n_edges}")
    print(f"vertices             : {result.graph.n_vertices}")
    print(f"iterations           : {result.iterations}")
    print(
        "executor             : "
        f"{ctx.executor.name} x{ctx.executor.workers}"
    )
    print(f"wall-clock time      : {wall * 1e3:.2f} ms")
    print(f"simulated time       : {result.total_seconds * 1e3:.2f} ms")
    print(f"throughput           : {result.edges_per_second:,.0f} edges/s")
    print(
        "peak node memory     : "
        f"{result.peak_node_memory_bytes / 2**20:.1f} MiB"
    )
    m = ctx.metrics
    if ctx.fault_plan is not None or m.tasks_failed or m.tasks_speculated:
        print(
            "fault recovery       : "
            f"{m.tasks_failed} failed, {m.tasks_retried} retried, "
            f"{m.tasks_speculated} speculated, "
            f"{m.recovery_recompute_bytes / 2**20:.1f} MiB recomputed"
        )
    if args.save_npz:
        result.graph.save_npz(args.save_npz)
        print(f"graph saved to {args.save_npz}")
    if args.save_edges:
        write_edge_list(result.graph, args.save_edges)
        print(f"edge list saved to {args.save_edges}")
    return 0


def _fmt_bytes(n: int) -> str:
    for unit, shift in (("GiB", 30), ("MiB", 20), ("KiB", 10)):
        if n >= 1 << shift:
            return f"{n / (1 << shift):.1f} {unit}"
    return f"{n} B"


def _cmd_engine_info(args) -> int:
    from repro.engine import (
        BLOCK_CODEC_ENV_VAR,
        MEMORY_BUDGET_ENV_VAR,
        SHUFFLE_ENV_VAR,
        SPILL_DIR_ENV_VAR,
        TARGET_PARTITION_BYTES_ENV_VAR,
        TASK_BATCH_ENV_VAR,
        get_codec,
        resolve_task_batch,
    )

    def source(flag_set: bool, env_var: str) -> str:
        if flag_set:
            return "flag"
        if os.environ.get(env_var):
            return f"env {env_var}"
        return "default"

    ctx = _make_context(args)
    try:
        plan = ctx.fault_plan
        budget = ctx.storage.memory_budget_bytes
        spill_base = ctx.storage.spill_base
        rows = [
            ("nodes", str(ctx.n_nodes), "flag" if args.nodes != 1 else "default"),
            ("cores", str(ctx.scheduler.executor_cores),
             "flag" if args.cores != 12 else "default"),
            ("executor", f"{ctx.executor.name} x{ctx.executor.workers}",
             source(args.executor is not None, "REPRO_EXECUTOR")),
            ("workers", str(ctx.executor.workers),
             source(args.workers is not None, "REPRO_LOCAL_WORKERS")),
        ]
        if ctx.executor.name == "cluster":
            from repro.engine.cluster import FETCH_PREFETCH_ENV_VAR
            from repro.engine.netproto import (
                HEARTBEAT_INTERVAL_ENV_VAR,
                HEARTBEAT_TIMEOUT_ENV_VAR,
                MAX_INFLIGHT_ENV_VAR,
                WIRE_CODEC_ENV_VAR,
            )

            rows += [
                ("cluster workers", ", ".join(ctx.executor.addresses),
                 source(args.workers is not None, "REPRO_WORKERS")),
                ("heartbeat",
                 f"ping every {ctx.executor.heartbeat_interval}s, "
                 f"dead after {ctx.executor.heartbeat_timeout}s",
                 source(False, HEARTBEAT_INTERVAL_ENV_VAR)
                 if os.environ.get(HEARTBEAT_INTERVAL_ENV_VAR)
                 else source(False, HEARTBEAT_TIMEOUT_ENV_VAR)),
                ("max in-flight",
                 f"{ctx.executor.max_inflight} batches/link",
                 source(False, MAX_INFLIGHT_ENV_VAR)),
                ("wire codec", ctx.executor.wire_codec,
                 source(False, WIRE_CODEC_ENV_VAR)),
                ("fetch prefetch",
                 (lambda n: f"{n} connections" if n else "off")(
                     ctx.executor.fetch_prefetch
                 ),
                 source(False, FETCH_PREFETCH_ENV_VAR)),
            ]
        rows += [
            ("fusion", "on" if ctx.fusion_enabled else "off",
             source(args.no_fusion, "REPRO_FUSION")),
            ("fault plan", plan.to_json() if plan is not None else "off",
             source(args.faults is not None, "REPRO_FAULTS")),
            ("max task retries", str(ctx.max_task_retries),
             source(args.max_task_retries is not None,
                    "REPRO_MAX_TASK_RETRIES")),
            ("speculation", "on" if ctx.speculation is not None else "off",
             source(bool(args.speculation), "REPRO_SPECULATION")),
            ("memory budget",
             _fmt_bytes(budget) if budget is not None else "unlimited",
             source(args.memory_budget is not None, MEMORY_BUDGET_ENV_VAR)),
            ("spill dir",
             spill_base if spill_base is not None else "(system tempdir)",
             source(args.spill_dir is not None, SPILL_DIR_ENV_VAR)),
            ("block codec",
             f"{ctx.storage.codec} "
             f"(*{get_codec(ctx.storage.codec).extension})",
             source(args.block_codec is not None, BLOCK_CODEC_ENV_VAR)),
            ("shuffle",
             ctx.shuffle_strategy,
             source(args.shuffle is not None, SHUFFLE_ENV_VAR)),
            ("target partition",
             _fmt_bytes(ctx.target_partition_bytes)
             if ctx.target_partition_bytes else "off (no coalescing)",
             source(args.target_partition_bytes is not None,
                    TARGET_PARTITION_BYTES_ENV_VAR)),
            ("task batch",
             (lambda b: str(b) if b else "adaptive")(
                 resolve_task_batch(args.task_batch)
             ),
             source(args.task_batch is not None, TASK_BATCH_ENV_VAR)),
        ]
        for name, value, src in rows:
            print(f"{name:<17}: {value:<40} [{src}]")
    finally:
        ctx.close()
    return 0


def _cmd_detect(args) -> int:
    from repro.core.pipeline import build_seed
    from repro.detect import DetectionThresholds, NetflowAnomalyDetector
    from repro.netflow.record import FlowTable

    bundle = build_seed(args.pcap)
    cols = {
        k: bundle.flow_table[k] for k in FlowTable.COLUMN_NAMES
    }
    if args.baseline is not None:
        base = build_seed(args.baseline)
        base_cols = {
            k: base.flow_table[k] for k in FlowTable.COLUMN_NAMES
        }
    else:
        base_cols = cols
    thresholds = DetectionThresholds.fit_normal(
        base_cols, window_seconds=args.window
    )
    detector = NetflowAnomalyDetector(thresholds)
    detections = detector.detect_windowed(
        cols, window_seconds=args.window
    )
    if not detections:
        print("no anomalies detected")
        return 0
    for det in detections:
        ip = det.ip
        dotted = ".".join(str((ip >> s) & 0xFF) for s in (24, 16, 8, 0))
        print(
            f"{det.kind:<18} {det.direction:<11} {dotted:<15} "
            f"flows={det.evidence['n_flows']}"
        )
    return 0


def _cmd_veracity(args) -> int:
    from repro.core import evaluate_veracity
    from repro.graph import PropertyGraph

    seed = PropertyGraph.load_npz(args.seed_graph)
    synthetic = PropertyGraph.load_npz(args.synthetic_graph)
    report = evaluate_veracity(seed, synthetic)
    print(f"synthetic edges      : {report.n_edges}")
    print(f"degree veracity      : {report.degree_score:.6e}")
    print(f"pagerank veracity    : {report.pagerank_score:.6e}")
    print(f"degree shape KS      : {report.degree_ks:.4f}")
    print(f"pagerank shape KS    : {report.pagerank_ks:.4f}")
    return 0


def _cmd_query(args) -> int:
    import time

    from repro.graph import PropertyGraph
    from repro.queries import QueryWorkload
    from repro.serve import QueryServer

    graph = PropertyGraph.load_npz(args.graph)
    if graph.n_vertices == 0 or graph.n_edges == 0:
        print("graph is empty; nothing to query", file=sys.stderr)
        return 1
    families = None
    if args.families:
        families = [f.strip() for f in args.families.split(",") if f.strip()]
        unknown = set(families) - {"node", "edge", "path", "subgraph"}
        if unknown:
            print(f"unknown families: {sorted(unknown)}", file=sys.stderr)
            return 2
    if args.repeat < 1:
        print("--repeat must be >= 1", file=sys.stderr)
        return 2
    workload = QueryWorkload(
        n_queries=args.n_queries, k_hops=args.k_hops, seed=args.seed
    )
    t0 = time.perf_counter()
    snapshot = graph.snapshot()
    build_seconds = time.perf_counter() - t0
    batch = workload.build_queries(snapshot, families=families)
    if not batch:
        print("no queries to run (edge-only families need Netflow "
              "attributes)", file=sys.stderr)
        return 1
    server = QueryServer(
        snapshot, threads=args.threads, cache_size=args.cache_size
    )
    print(f"graph                : {graph.n_vertices:,} vertices, "
          f"{graph.n_edges:,} edges")
    print(f"snapshot build       : {build_seconds * 1e3:.2f} ms "
          f"({snapshot.memory_bytes() / 2**20:.1f} MiB of indexes, "
          f"epoch {snapshot.epoch})")
    print(f"batch                : {len(batch)} queries x {args.repeat} "
          f"rounds, {server.threads} threads, cache "
          f"{server.cache_size} entries")
    for round_no in range(1, args.repeat + 1):
        t0 = time.perf_counter()
        server.run_batch(batch)
        wall = time.perf_counter() - t0
        label = "cold" if round_no == 1 else "warm"
        print(f"round {round_no} ({label})       : {wall * 1e3:10.2f} ms  "
              f"{len(batch) / wall:12,.0f} q/s")
    print(server.stats().summary())
    return 0


def _build_cli_attacks(names: str, duration: float, start: float):
    """Instantiate the requested injectors on a schedule inside the run."""
    from repro.trace import attacks
    from repro.trace.hosts import ipv4

    builders = {
        "syn_flood": lambda t: attacks.syn_flood(
            attacker_ip=ipv4(203, 0, 113, 5), victim_ip=ipv4(10, 2, 0, 2),
            start_time=t, duration=min(4.0, duration / 4),
        ),
        "host_scan": lambda t: attacks.host_scan(
            attacker_ip=ipv4(203, 0, 113, 6), victim_ip=ipv4(10, 2, 0, 3),
            start_time=t, duration=min(6.0, duration / 4),
        ),
        "network_scan": lambda t: attacks.network_scan(
            attacker_ip=ipv4(203, 0, 113, 7), subnet_base=ipv4(10, 2, 0, 0),
            start_time=t, duration=min(8.0, duration / 4),
        ),
        "udp_flood": lambda t: attacks.udp_flood(
            attacker_ip=ipv4(203, 0, 113, 8), victim_ip=ipv4(10, 2, 0, 4),
            start_time=t, duration=min(4.0, duration / 4),
        ),
        "icmp_flood": lambda t: attacks.icmp_flood(
            attacker_ip=ipv4(203, 0, 113, 9), victim_ip=ipv4(10, 2, 0, 5),
            start_time=t, duration=min(4.0, duration / 4),
        ),
        "ddos_syn_flood": lambda t: attacks.ddos_syn_flood(
            attacker_ips=tuple(ipv4(198, 51, 100, i) for i in range(1, 9)),
            victim_ip=ipv4(10, 2, 0, 6),
            start_time=t, duration=min(4.0, duration / 4),
        ),
    }
    wanted = [n.strip() for n in names.split(",") if n.strip()]
    if wanted == ["none"]:
        return []
    unknown = set(wanted) - set(builders)
    if unknown:
        raise ValueError(f"unknown attacks: {sorted(unknown)}")
    # Space the onsets evenly over the middle of the session so each
    # attack has clean traffic before it and room to finish.
    out = []
    for i, name in enumerate(wanted):
        onset = start + duration * (i + 1) / (len(wanted) + 1)
        out.append(builders[name](onset))
    return out


def _cmd_stream(args) -> int:
    from repro.core.pipeline import packets_from
    from repro.detect import DetectionThresholds, OnlineDetector
    from repro.netflow import FlowTable, assemble_flows
    from repro.serve import QueryServer
    from repro.stream import (
        STREAM_LATENESS_ENV_VAR,
        STREAM_QUEUE_ENV_VAR,
        STREAM_WINDOW_ENV_VAR,
        GraphAccumulator,
        ReplaySource,
        StreamPipeline,
        TraceSource,
    )
    from repro.trace.synthesizer import TraceSynthesizer

    def source_of(flag_set: bool, env_var: str) -> str:
        if flag_set:
            return "flag"
        if os.environ.get(env_var):
            return f"env {env_var}"
        return "default"

    detect_window = 5.0
    if args.replay is not None:
        source = ReplaySource(args.replay, batch_packets=args.batch_packets)
        # Calibrate on the capture itself (same default as `detect`).
        if args.replay.suffix.lower() == ".npz":
            table = FlowTable.load_npz(args.replay)
        else:
            records = list(
                assemble_flows(packets_from(args.replay),
                               idle_timeout=args.idle_timeout)
            )
            table = FlowTable.from_records(records)
    else:
        start_time = 1_000_000.0
        try:
            gts = _build_cli_attacks(
                args.attacks, args.duration, start_time
            )
        except ValueError as exc:
            print(exc, file=sys.stderr)
            return 2
        source = TraceSource(
            synthesizer=TraceSynthesizer(
                session_rate=args.session_rate, seed=args.seed
            ),
            duration=args.duration,
            attacks=tuple(gts),
            batch_packets=args.batch_packets,
            start_time=start_time,
        )
        # Calibrate thresholds on the clean background (same seed, no
        # attacks) so the injected attacks stand out.
        clean = TraceSynthesizer(
            session_rate=args.session_rate, seed=args.seed
        ).generate(args.duration, start_time=start_time)
        table = FlowTable.from_records(
            list(assemble_flows(packets_from(clean),
                                idle_timeout=args.idle_timeout))
        )
    thresholds = DetectionThresholds.fit_normal(
        {k: table[k] for k in FlowTable.COLUMN_NAMES},
        window_seconds=detect_window,
    )
    detector = OnlineDetector(thresholds, window_seconds=detect_window)
    server = QueryServer(GraphAccumulator().graph(), threads=1)

    pipeline = StreamPipeline(
        source,
        detector=detector,
        window_seconds=args.window,
        lateness=args.lateness,
        queue_capacity=args.queue_capacity,
        idle_timeout=args.idle_timeout,
        server=server,
        sink_delay_seconds=args.sink_delay,
    )
    rows = [
        ("window", f"{pipeline.window_seconds:g} s",
         source_of(args.window is not None, STREAM_WINDOW_ENV_VAR)),
        ("lateness",
         "auto" if pipeline.lateness is None else f"{pipeline.lateness:g} s",
         source_of(args.lateness is not None, STREAM_LATENESS_ENV_VAR)),
        ("queue capacity", str(pipeline.queue_capacity),
         source_of(args.queue_capacity is not None, STREAM_QUEUE_ENV_VAR)),
        ("batch packets", str(args.batch_packets),
         "flag" if args.batch_packets != 256 else "default"),
        ("source",
         str(args.replay) if args.replay is not None
         else f"synthetic {args.duration:g}s @ {args.session_rate:g} "
              f"sessions/s, seed {args.seed}",
         "flag" if args.replay is not None else "default"),
    ]
    for name, value, src in rows:
        print(f"{name:<15}: {value:<44} [{src}]")

    print("\nstreaming ...")
    result = pipeline.run()
    print(result.stats.summary())
    if result.graph is not None:
        print(
            f"live graph            : {result.graph.n_vertices:,} vertices, "
            f"{result.graph.n_edges:,} edges "
            f"(served epoch {server.epoch})"
        )

    print("\nalarms (stream time):")
    for alert in result.detections:
        det = alert.detection
        ip = det.ip
        dotted = ".".join(str((ip >> s) & 0xFF) for s in (24, 16, 8, 0))
        print(f"  t={alert.time:.1f}s  {det.kind:<16} ({det.direction}) "
              f"{dotted}")
    if not result.detections:
        print("  (none)")
    if result.latencies:
        print("\ntime-to-detection:")
        for lat in result.latencies:
            if lat.detected:
                print(f"  {lat.kind:<16} detected as {lat.detected_kind} "
                      f"{lat.seconds_to_detection:.1f}s after onset")
            else:
                print(f"  {lat.kind:<16} MISSED")
    return 0


def _cmd_worker(args) -> int:
    from repro.engine.cluster import WorkerDaemon

    daemon = WorkerDaemon(args.listen, served_roots=args.root)

    def _announce(address: str) -> None:
        # The exact banner launch_worker() and operators key off.
        print(f"listening on {address}", flush=True)

    try:
        daemon.run(announce=_announce)
    except KeyboardInterrupt:
        pass
    return 0


_COMMANDS = {
    "synth": _cmd_synth,
    "analyze": _cmd_analyze,
    "generate": _cmd_generate,
    "engine-info": _cmd_engine_info,
    "worker": _cmd_worker,
    "stream": _cmd_stream,
    "detect": _cmd_detect,
    "veracity": _cmd_veracity,
    "query": _cmd_query,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    np.set_printoptions(suppress=True)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
