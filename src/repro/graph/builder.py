"""Incremental construction of :class:`PropertyGraph` instances.

The generators grow graphs over many iterations; appending to NumPy arrays
one edge at a time would be quadratic.  :class:`GraphBuilder` buffers edge
blocks (whole arrays per iteration) and concatenates once at ``build()``,
so the amortised cost stays linear in the final edge count.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.graph.property_graph import PropertyGraph

__all__ = ["GraphBuilder"]


class GraphBuilder:
    """Accumulates edge blocks and edge-property blocks.

    Usage::

        b = GraphBuilder.from_graph(seed)
        b.add_edges(src_block, dst_block)
        ...
        g = b.build()
    """

    def __init__(self, n_vertices: int = 0) -> None:
        if n_vertices < 0:
            raise ValueError("n_vertices must be non-negative")
        self._n_vertices = int(n_vertices)
        self._src_blocks: list[np.ndarray] = []
        self._dst_blocks: list[np.ndarray] = []
        self._prop_blocks: dict[str, list[np.ndarray]] = {}
        self._n_edges = 0

    # ------------------------------------------------------------------
    @classmethod
    def from_graph(cls, graph: PropertyGraph) -> "GraphBuilder":
        """Start from an existing graph (copies nothing; shares arrays)."""
        b = cls(graph.n_vertices)
        if graph.n_edges:
            b._src_blocks.append(graph.src)
            b._dst_blocks.append(graph.dst)
            b._n_edges = graph.n_edges
            for name, arr in graph.edge_properties.items():
                b._prop_blocks[name] = [np.asarray(arr)]
        else:
            for name in graph.edge_properties:
                b._prop_blocks[name] = []
        return b

    # ------------------------------------------------------------------
    @property
    def n_vertices(self) -> int:
        return self._n_vertices

    @property
    def n_edges(self) -> int:
        return self._n_edges

    def add_vertices(self, count: int) -> np.ndarray:
        """Allocate ``count`` fresh vertex ids; returns the new id block."""
        if count < 0:
            raise ValueError("count must be non-negative")
        new = np.arange(
            self._n_vertices, self._n_vertices + count, dtype=np.int64
        )
        self._n_vertices += count
        return new

    def add_edges(
        self,
        src: np.ndarray,
        dst: np.ndarray,
        properties: Mapping[str, np.ndarray] | None = None,
    ) -> None:
        """Append a block of edges (and optionally aligned property blocks).

        Property columns must be consistent across blocks: once a property
        appears it must appear in every subsequent block, and vice versa.
        """
        src = np.ascontiguousarray(src, dtype=np.int64)
        dst = np.ascontiguousarray(dst, dtype=np.int64)
        if src.shape != dst.shape or src.ndim != 1:
            raise ValueError("src and dst must be matching 1-D arrays")
        if src.size == 0:
            return
        if src.max() >= self._n_vertices or dst.max() >= self._n_vertices:
            raise ValueError("edge endpoint exceeds allocated vertex count")
        if src.min() < 0 or dst.min() < 0:
            raise ValueError("edge endpoints must be non-negative")
        props = dict(properties or {})
        known = set(self._prop_blocks)
        incoming = set(props)
        if self._n_edges and known != incoming:
            raise ValueError(
                f"inconsistent property columns: builder has {sorted(known)}, "
                f"block has {sorted(incoming)}"
            )
        self._src_blocks.append(src)
        self._dst_blocks.append(dst)
        for name, arr in props.items():
            arr = np.asarray(arr)
            if len(arr) != src.size:
                raise ValueError(
                    f"property {name!r} block length {len(arr)} != "
                    f"edge block length {src.size}"
                )
            self._prop_blocks.setdefault(name, []).append(arr)
        self._n_edges += src.size

    def set_edge_property(self, name: str, values: np.ndarray) -> None:
        """Attach a full-length property column after the fact.

        Used by the decoration phase (Fig. 2 lines 15-20 / Fig. 3 lines
        13-18), which samples properties for *all* edges in one pass.
        """
        values = np.asarray(values)
        if len(values) != self._n_edges:
            raise ValueError(
                f"property column length {len(values)} != edge count "
                f"{self._n_edges}"
            )
        self._prop_blocks[name] = [values]
        # A post-hoc column replaces any per-block history for that name;
        # other columns must already be full-length or absent.

    def build(self) -> PropertyGraph:
        """Concatenate all blocks into an immutable-ish PropertyGraph."""
        if self._src_blocks:
            src = np.concatenate(self._src_blocks)
            dst = np.concatenate(self._dst_blocks)
        else:
            src = np.empty(0, np.int64)
            dst = np.empty(0, np.int64)
        props: dict[str, np.ndarray] = {}
        for name, blocks in self._prop_blocks.items():
            if not blocks:
                continue
            col = blocks[0] if len(blocks) == 1 else np.concatenate(blocks)
            if len(col) != src.size:
                raise ValueError(
                    f"property {name!r} covers {len(col)} of {src.size} edges"
                )
            props[name] = col
        return PropertyGraph(
            n_vertices=self._n_vertices,
            src=src,
            dst=dst,
            edge_properties=props,
        )
