"""Unit tests for the Map-Reduce engine: RDDs, scheduler, context."""

import numpy as np
import pytest

from repro.engine import ClusterContext, ClusterScheduler, NodeSpec
from repro.engine.partitioner import split_array, split_count


class TestPartitioner:
    def test_split_array_covers_everything(self):
        parts = split_array(np.arange(10), 3)
        assert len(parts) == 3
        assert np.array_equal(np.concatenate(parts), np.arange(10))

    def test_split_count_even(self):
        assert split_count(10, 3).tolist() == [4, 3, 3]
        assert split_count(0, 4).tolist() == [0, 0, 0, 0]

    def test_validation(self):
        with pytest.raises(ValueError):
            split_array(np.arange(3), 0)
        with pytest.raises(ValueError):
            split_count(-1, 2)


class TestScheduler:
    def test_contention_saturates(self):
        node = NodeSpec(physical_cores=20, saturation_cores=12)
        s12 = ClusterScheduler(1, 12, node)
        s20 = ClusterScheduler(1, 20, node)
        assert s12.contention_factor == 1.0
        assert s20.contention_factor == pytest.approx(20 / 12)

    def test_executor_cores_capped_at_physical(self):
        s = ClusterScheduler(1, 100, NodeSpec(physical_cores=20))
        assert s.executor_cores == 20

    def test_makespan_scales_with_nodes(self):
        # 480 tasks divide evenly into waves on both cluster sizes.
        costs = np.full(480, 0.1)
        t1, _ = ClusterScheduler(1, 12, per_task_overhead=0).stage_makespan(
            "s", costs, np.zeros(480, dtype=np.int64)
        )
        t4, _ = ClusterScheduler(4, 12, per_task_overhead=0).stage_makespan(
            "s", costs, np.zeros(480, dtype=np.int64)
        )
        assert t1 == pytest.approx(4 * t4, rel=0.01)

    def test_twelve_core_plateau(self):
        """Fig. 8: throughput stops improving past the saturation point."""
        costs = np.full(240, 0.1)
        times = {}
        for cores in (4, 8, 12, 16, 20):
            s = ClusterScheduler(1, cores, per_task_overhead=0)
            times[cores], _ = s.stage_makespan(
                "s", costs, np.zeros(240, dtype=np.int64)
            )
        assert times[4] > times[8] > times[12] * 1.2
        assert times[16] == pytest.approx(times[12], rel=0.05)
        assert times[20] == pytest.approx(times[12], rel=0.05)

    def test_round_robin_assignment(self):
        s = ClusterScheduler(3, 2)
        assert s.assign_nodes(7).tolist() == [0, 1, 2, 0, 1, 2, 0]

    def test_per_node_bytes_includes_overhead(self):
        s = ClusterScheduler(2, 2)
        per_node = s.per_node_bytes(np.array([100, 200, 300]))
        overhead = s.node.memory_overhead_bytes
        assert per_node.tolist() == [400 + overhead, 200 + overhead]

    def test_empty_stage(self):
        s = ClusterScheduler(2, 2)
        t, recs = s.stage_makespan("s", np.array([]), np.array([]))
        assert t == 0.0 and recs == []

    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterScheduler(0, 1)
        with pytest.raises(ValueError):
            ClusterScheduler(1, 0)


class TestRDD:
    @pytest.fixture
    def ctx(self):
        return ClusterContext(
            n_nodes=2, executor_cores=2, partition_multiplier=1
        )

    def test_parallelize_collect_roundtrip(self, ctx):
        data = np.arange(100)
        rdd = ctx.parallelize([data])
        (out,) = rdd.collect()
        assert np.array_equal(out, data)

    def test_partition_count_rule(self, ctx):
        rdd = ctx.parallelize([np.arange(100)])
        assert rdd.n_partitions == ctx.default_partitions == 4

    def test_multi_column_alignment(self, ctx):
        a, b = np.arange(50), np.arange(50) * 2
        out_a, out_b = ctx.parallelize([a, b]).collect()
        assert np.array_equal(out_b, out_a * 2)

    def test_map_partitions(self, ctx):
        rdd = ctx.parallelize([np.arange(10)])
        doubled = rdd.map_partitions(lambda cols, i: (cols[0] * 2,))
        assert np.array_equal(doubled.collect()[0], np.arange(10) * 2)

    def test_map_partitions_records_metrics(self, ctx):
        rdd = ctx.parallelize([np.arange(10)])
        before = ctx.metrics.n_tasks
        # count() is the forcing action: lazily planned stages are only
        # charged to the simulated clock once something materializes.
        rdd.map_partitions(lambda cols, i: cols).count()
        assert ctx.metrics.n_tasks == before + rdd.n_partitions
        assert ctx.metrics.simulated_seconds > 0

    def test_sample_without_replacement(self, ctx):
        rdd = ctx.parallelize([np.arange(1000)])
        s = rdd.sample(0.1, seed=1)
        (vals,) = s.collect()
        assert vals.size == pytest.approx(100, abs=4)  # per-partition rounding
        assert np.unique(vals).size == vals.size

    def test_sample_with_replacement_over_one(self, ctx):
        rdd = ctx.parallelize([np.arange(100)])
        (vals,) = rdd.sample(2.0, seed=1).collect()
        assert vals.size == 200

    def test_sample_bad_fraction(self, ctx):
        with pytest.raises(ValueError):
            ctx.parallelize([np.arange(10)]).sample(0.0)

    def test_distinct_single_column(self, ctx):
        rdd = ctx.parallelize([np.array([1, 2, 2, 3, 3, 3, 1])])
        (vals,) = rdd.distinct().collect()
        assert sorted(vals.tolist()) == [1, 2, 3]

    def test_distinct_pair_key(self, ctx):
        src = np.array([0, 0, 1, 0])
        dst = np.array([1, 1, 2, 1])
        out_s, out_d = ctx.parallelize([src, dst]).distinct(
            key_columns=(0, 1)
        ).collect()
        pairs = set(zip(out_s.tolist(), out_d.tolist()))
        assert pairs == {(0, 1), (1, 2)}

    def test_distinct_across_partitions(self, ctx):
        # Same value in different partitions must still deduplicate.
        rdd = ctx.parallelize([np.array([7] * 40)])
        assert rdd.n_partitions > 1
        (vals,) = rdd.distinct().collect()
        assert vals.tolist() == [7]

    def test_union(self, ctx):
        a = ctx.parallelize([np.arange(5)])
        b = ctx.parallelize([np.arange(5, 10)])
        u = a.union(b)
        assert u.count() == 10
        assert u.n_partitions == a.n_partitions + b.n_partitions

    def test_union_column_mismatch(self, ctx):
        a = ctx.parallelize([np.arange(5)])
        b = ctx.parallelize([np.arange(5), np.arange(5)])
        with pytest.raises(ValueError):
            a.union(b)

    def test_repartition(self, ctx):
        rdd = ctx.parallelize([np.arange(100)])
        r = rdd.repartition(2)
        assert r.n_partitions == 2
        assert np.array_equal(np.sort(r.collect()[0]), np.arange(100))

    def test_reduce_columns(self, ctx):
        rdd = ctx.parallelize([np.arange(10)])
        sums = rdd.reduce_columns(lambda cols: cols[0].sum())
        assert sums.sum() == 45

    def test_generate(self, ctx):
        rdd = ctx.generate(
            100, lambda count, pidx: (np.full(count, pidx),)
        )
        (vals,) = rdd.collect()
        assert vals.size == 100

    def test_partition_sizes(self, ctx):
        rdd = ctx.parallelize([np.arange(10)])
        assert rdd.partition_sizes().sum() == 10


class TestContextMetrics:
    def test_memory_settles_after_stage(self):
        ctx = ClusterContext(n_nodes=2, executor_cores=2)
        rdd = ctx.parallelize([np.arange(10_000)])
        rdd.map_partitions(lambda cols, i: (np.repeat(cols[0], 4),)).count()
        assert ctx.metrics.peak_node_memory_bytes > (
            ctx.scheduler.node.memory_overhead_bytes
        )

    def test_reset(self):
        ctx = ClusterContext(n_nodes=1, executor_cores=1)
        ctx.parallelize([np.arange(10)]).map_partitions(
            lambda cols, i: cols
        ).count()
        ctx.reset_metrics()
        assert ctx.metrics.simulated_seconds == 0.0
        assert ctx.metrics.n_tasks == 0

    def test_utilisation_bounded(self):
        ctx = ClusterContext(n_nodes=2, executor_cores=2)
        ctx.parallelize([np.arange(1000)]).map_partitions(
            lambda cols, i: (np.sort(cols[0]),)
        ).count()
        assert 0.0 <= ctx.metrics.utilisation() <= 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterContext(partition_multiplier=0)


class TestTaskModel:
    def test_per_byte_cost_scales_with_output(self):
        s_free = ClusterScheduler(1, 1, per_byte_cost=0.0,
                                  per_task_overhead=0.0)
        s_io = ClusterScheduler(1, 1, per_byte_cost=1e-6,
                                per_task_overhead=0.0)
        cpu = np.array([0.0])
        small, _ = s_io.stage_makespan("s", cpu, np.array([1_000]))
        big, _ = s_io.stage_makespan("s", cpu, np.array([1_000_000]))
        none, _ = s_free.stage_makespan("s", cpu, np.array([1_000_000]))
        assert big > small > none == 0.0

    def test_task_multiplier_preserves_total_cost(self):
        """Expanding a real partition into k simulated tasks must leave the
        1-node serial makespan unchanged (cost is split, not duplicated)."""
        ctx1 = ClusterContext(
            n_nodes=1, executor_cores=1, max_real_partitions=4,
            per_stage_overhead=0.0, per_task_overhead=0.0, per_byte_cost=0.0,
        )
        ctx1._record_stage("s", [0.8], [0], None, multiplier=1)
        ctx8 = ClusterContext(
            n_nodes=1, executor_cores=1, max_real_partitions=4,
            per_stage_overhead=0.0, per_task_overhead=0.0, per_byte_cost=0.0,
        )
        ctx8._record_stage("s", [0.8], [0], None, multiplier=8)
        assert ctx8.metrics.simulated_seconds == pytest.approx(
            ctx1.metrics.simulated_seconds
        )

    def test_multiplier_enables_parallelism(self):
        """On a many-core cluster the expanded tasks spread over slots."""
        ctx = ClusterContext(
            n_nodes=4, executor_cores=2, max_real_partitions=4,
            per_stage_overhead=0.0, per_task_overhead=0.0, per_byte_cost=0.0,
        )
        ctx._record_stage("s", [0.8], [0], None, multiplier=8)
        # 8 simulated tasks of 0.1s over 8 slots -> one 0.1s wave.
        assert ctx.metrics.simulated_seconds == pytest.approx(0.1)

    def test_real_partitions_capped(self):
        ctx = ClusterContext(
            n_nodes=60, executor_cores=12, partition_multiplier=2,
            max_real_partitions=16,
        )
        rdd = ctx.parallelize([np.arange(100_000)])
        assert rdd.n_partitions <= 16
        assert rdd.task_multiplier >= ctx.default_partitions // 16

    def test_distinct_charges_serial_driver_component(self):
        ctx = ClusterContext(n_nodes=2, executor_cores=2)
        rdd = ctx.parallelize([np.arange(1000) % 50])
        rdd.distinct()
        stages = {t.stage for t in ctx.metrics.tasks}
        assert any(s.endswith(":driver") for s in stages)

    def test_sample_ceil_guarantees_progress(self):
        """A tiny positive fraction still samples at least one row per
        partition (PGPBA's clamped final iteration relies on this)."""
        ctx = ClusterContext(n_nodes=1, executor_cores=1)
        rdd = ctx.parallelize([np.arange(100)], n_partitions=4)
        out = rdd.sample(1e-9, seed=0)
        assert out.count() >= 1


class TestClampedPGPBA:
    def test_clamping_limits_overshoot(self, seed_graph, seed_analysis):
        from repro.core import PGPBA

        target = 30 * seed_graph.n_edges
        ctx = ClusterContext(n_nodes=2, executor_cores=2)
        res = PGPBA(fraction=2.0, seed=1).generate(
            seed_graph, seed_analysis, target, context=ctx
        )
        assert res.graph.n_edges == pytest.approx(target, rel=0.25)

    def test_unclamped_matches_literal_algorithm(
        self, seed_graph, seed_analysis
    ):
        from repro.core import PGPBA

        target = 30 * seed_graph.n_edges
        ctx = ClusterContext(n_nodes=2, executor_cores=2)
        res = PGPBA(
            fraction=2.0, seed=1, clamp_final_iteration=False
        ).generate(seed_graph, seed_analysis, target, context=ctx)
        # The literal algorithm overshoots by up to a full growth factor.
        assert res.graph.n_edges >= target
