"""Node-level queries: lookups, rankings, neighbourhoods."""

from __future__ import annotations

import numpy as np

from repro.graph.property_graph import PropertyGraph

__all__ = ["vertex_by_host_id", "degree_top_k", "neighbors"]


def vertex_by_host_id(graph: PropertyGraph, host_id: int) -> int | None:
    """Vertex index of the host with vertex-property ``ID == host_id``.

    Binary search over the sorted ID column (the mapping stage stores hosts
    sorted); returns None when the host is unknown.
    """
    ids = graph.vertex_properties.get("ID")
    if ids is None:
        # Generated graphs use vertex indices as identities.
        return int(host_id) if 0 <= host_id < graph.n_vertices else None
    ids = np.asarray(ids)
    pos = int(np.searchsorted(ids, host_id))
    if pos < ids.size and ids[pos] == host_id:
        return pos
    return None


def degree_top_k(
    graph: PropertyGraph, k: int, *, kind: str = "total"
) -> np.ndarray:
    """Vertex indices of the k highest-degree hosts (busiest talkers).

    ``kind`` selects ``"in"`` (popular services), ``"out"`` (chatty
    clients) or ``"total"``.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    if kind == "in":
        deg = graph.in_degrees()
    elif kind == "out":
        deg = graph.out_degrees()
    elif kind == "total":
        deg = graph.degrees()
    else:
        raise ValueError(f"unknown degree kind {kind!r}")
    k = min(k, graph.n_vertices)
    top = np.argpartition(deg, -k)[-k:]
    return top[np.argsort(-deg[top], kind="stable")]


def neighbors(
    graph: PropertyGraph, vertex: int, *, direction: str = "out"
) -> np.ndarray:
    """Distinct neighbour vertices of ``vertex``.

    ``direction``: "out" (hosts this one contacted), "in" (hosts that
    contacted it), or "both".
    """
    if not 0 <= vertex < graph.n_vertices:
        raise ValueError(f"vertex {vertex} out of range")
    parts = []
    if direction in ("out", "both"):
        parts.append(graph.dst[graph.src == vertex])
    if direction in ("in", "both"):
        parts.append(graph.src[graph.dst == vertex])
    if not parts:
        raise ValueError(f"unknown direction {direction!r}")
    return np.unique(np.concatenate(parts))
