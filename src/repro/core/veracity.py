"""Veracity scoring (Section V-A of the paper).

The veracity score of a synthetic dataset w.r.t. its seed is "the average
Euclidean distance of their normalized degree and PageRank distributions";
smaller is better.  Distributions over different supports are aligned on
the union of their supports before the norm is taken, and the norm is
averaged over the aligned support size — which is what produces the
paper's characteristic behaviour: scores *decrease* as the synthetic graph
grows (Figs. 6-7), because a larger graph spreads its probability mass over
a much larger support.  Degree scores land around 1e-10..1e-7 and PageRank
scores around 1e-25..1e-18 in the paper at billions of edges; at this
reproduction's laptop scale the same decreasing trend appears at
proportionally larger magnitudes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.pagerank import pagerank
from repro.graph.property_graph import PropertyGraph
from repro.stats.histogram import (
    aligned_euclidean_distance,
    kolmogorov_smirnov_distance,
)

__all__ = [
    "veracity_score",
    "degree_veracity",
    "pagerank_veracity",
    "VeracityReport",
    "evaluate_veracity",
]


def veracity_score(
    seed_values: np.ndarray, synthetic_values: np.ndarray
) -> float:
    """Average Euclidean distance between two normalised distributions.

    ``*_values`` are raw per-vertex observations (degrees or PageRank);
    normalisation and union-support alignment happen inside.
    """
    return aligned_euclidean_distance(seed_values, synthetic_values)


def _normalized_degrees(graph: PropertyGraph) -> np.ndarray:
    """Per-vertex degree divided by the total degree mass, as the paper's
    "normalized degree distribution" prescribes."""
    deg = graph.degrees().astype(np.float64)
    total = deg.sum()
    if total == 0:
        raise ValueError("graph has no edges; degrees cannot be normalised")
    return deg / total


def degree_veracity(
    seed: PropertyGraph, synthetic: PropertyGraph
) -> float:
    """Degree veracity score (Fig. 6's metric)."""
    return veracity_score(
        _normalized_degrees(seed), _normalized_degrees(synthetic)
    )


def pagerank_veracity(
    seed: PropertyGraph,
    synthetic: PropertyGraph,
    *,
    damping: float = 0.85,
    seed_pagerank: np.ndarray | None = None,
) -> float:
    """PageRank veracity score (Fig. 7's metric).

    PageRank already sums to 1 per graph, i.e. it is self-normalising —
    the "divide by the sum" step of the paper is a no-op here.  Pass a
    precomputed ``seed_pagerank`` to amortise the seed sweep across a
    size sweep.
    """
    pr_seed = (
        seed_pagerank
        if seed_pagerank is not None
        else pagerank(seed, damping=damping)
    )
    pr_syn = pagerank(synthetic, damping=damping)
    return veracity_score(pr_seed, pr_syn)


@dataclass(frozen=True)
class VeracityReport:
    """Both scores plus shape diagnostics for one synthetic graph."""

    n_edges: int
    n_vertices: int
    degree_score: float
    pagerank_score: float
    degree_ks: float
    pagerank_ks: float


def evaluate_veracity(
    seed: PropertyGraph,
    synthetic: PropertyGraph,
    *,
    seed_pagerank: np.ndarray | None = None,
) -> VeracityReport:
    """Full veracity evaluation of one synthetic graph against the seed.

    The KS distances compare the *shapes* of the normalised distributions
    (scale-free alignment), complementing the size-sensitive Euclidean
    scores the paper plots.
    """
    nd_seed = _normalized_degrees(seed)
    nd_syn = _normalized_degrees(synthetic)
    pr_seed = (
        seed_pagerank
        if seed_pagerank is not None
        else pagerank(seed)
    )
    pr_syn = pagerank(synthetic)
    # Compare shape on size-normalised values: multiply by vertex count so
    # both graphs sit on the "relative to uniform" scale.
    deg_ks = kolmogorov_smirnov_distance(
        nd_seed * seed.n_vertices, nd_syn * synthetic.n_vertices
    )
    pr_ks = kolmogorov_smirnov_distance(
        pr_seed * seed.n_vertices, pr_syn * synthetic.n_vertices
    )
    return VeracityReport(
        n_edges=synthetic.n_edges,
        n_vertices=synthetic.n_vertices,
        degree_score=veracity_score(nd_seed, nd_syn),
        pagerank_score=veracity_score(pr_seed, pr_syn),
        degree_ks=deg_ks,
        pagerank_ks=pr_ks,
    )
