"""Watts–Strogatz small-world model, directed adaptation.

Vertices form a ring where each connects to its ``k`` nearest clockwise
neighbours; each edge endpoint is rewired to a uniform random vertex with
probability ``beta``.  Captures small diameters and clustering but, like
ER, produces a sharply concentrated degree distribution (§II).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaselineGenerator

__all__ = ["WattsStrogatz"]


class WattsStrogatz(BaselineGenerator):
    """Ring-lattice + rewiring; ``n_edges`` fixes the neighbour count."""

    name = "WS"

    def __init__(self, *, beta: float = 0.1, seed: int = 0) -> None:
        super().__init__(seed=seed)
        if not 0.0 <= beta <= 1.0:
            raise ValueError("beta must lie in [0, 1]")
        self.beta = beta

    def edges(self, n_vertices, n_edges, rng, analysis):
        # Pick k so that n_vertices * k ~ n_edges, then trim.
        k = max(1, int(np.ceil(n_edges / n_vertices)))
        src = np.repeat(np.arange(n_vertices, dtype=np.int64), k)
        offsets = np.tile(np.arange(1, k + 1, dtype=np.int64), n_vertices)
        dst = (src + offsets) % n_vertices
        # Rewire destinations with probability beta.
        rewire = rng.random(src.size) < self.beta
        dst = dst.copy()
        dst[rewire] = rng.integers(0, n_vertices, size=int(rewire.sum()))
        if src.size > n_edges:
            keep = rng.choice(src.size, size=n_edges, replace=False)
            keep.sort()
            src, dst = src[keep], dst[keep]
        return n_vertices, src, dst
