"""Unit tests for FlowTable, codecs, and the graph mapping."""

import numpy as np
import pytest

from repro.graph import PropertyGraph
from repro.netflow import (
    FlowTable,
    NetflowRecord,
    Protocol,
    TcpState,
    codec,
    flow_table_to_property_graph,
)
from repro.netflow.attributes import NETFLOW_EDGE_ATTRIBUTES
from repro.netflow.mapping import property_graph_to_flow_columns


def records():
    return [
        NetflowRecord(
            src_ip=10, dst_ip=20, protocol=Protocol.TCP,
            src_port=1000, dst_port=80, start_time=5.0, duration_ms=120.0,
            out_bytes=300, in_bytes=4000, out_pkts=5, in_pkts=6,
            state=TcpState.SF, syn_count=2, ack_count=9,
        ),
        NetflowRecord(
            src_ip=11, dst_ip=20, protocol=Protocol.UDP,
            src_port=5000, dst_port=53, start_time=6.5, duration_ms=3.0,
            out_bytes=40, in_bytes=100, out_pkts=1, in_pkts=1,
            state=TcpState.NONE,
        ),
        NetflowRecord(
            src_ip=10, dst_ip=20, protocol=Protocol.TCP,
            src_port=1001, dst_port=443, start_time=7.0, duration_ms=80.0,
            out_bytes=200, in_bytes=999, out_pkts=4, in_pkts=4,
            state=TcpState.S1, syn_count=2, ack_count=5,
        ),
    ]


class TestFlowTable:
    def test_from_records(self):
        t = FlowTable.from_records(records())
        assert len(t) == 3
        assert t["OUT_BYTES"].tolist() == [300, 40, 200]
        assert t["STATE"].tolist() == [
            int(TcpState.SF), int(TcpState.NONE), int(TcpState.S1)
        ]

    def test_records_roundtrip(self):
        t = FlowTable.from_records(records())
        assert list(t.records()) == records()

    def test_empty(self):
        t = FlowTable.empty()
        assert len(t) == 0
        assert t.hosts().size == 0

    def test_missing_column_rejected(self):
        with pytest.raises(ValueError, match="missing"):
            FlowTable({"SRC_IP": np.array([1])})

    def test_select(self):
        t = FlowTable.from_records(records())
        sub = t.select(t["PROTOCOL"] == int(Protocol.TCP))
        assert len(sub) == 2

    def test_concat(self):
        t = FlowTable.from_records(records())
        both = t.concat(t)
        assert len(both) == 6

    def test_hosts_sorted_unique(self):
        t = FlowTable.from_records(records())
        assert t.hosts().tolist() == [10, 11, 20]

    def test_edge_attribute_columns_order(self):
        t = FlowTable.from_records(records())
        assert tuple(t.edge_attribute_columns()) == NETFLOW_EDGE_ATTRIBUTES

    def test_npz_roundtrip(self, tmp_path):
        t = FlowTable.from_records(records())
        p = tmp_path / "flows.npz"
        t.save_npz(p)
        back = FlowTable.load_npz(p)
        assert list(back.records()) == records()


class TestCodecs:
    def test_csv_roundtrip(self, tmp_path):
        t = FlowTable.from_records(records())
        p = tmp_path / "flows.csv"
        codec.write_csv(t, p)
        back = codec.read_csv(p)
        assert len(back) == 3
        assert np.allclose(back["DURATION"], t["DURATION"])
        assert np.array_equal(back["SRC_IP"], t["SRC_IP"])

    def test_csv_empty(self, tmp_path):
        p = tmp_path / "e.csv"
        codec.write_csv(FlowTable.empty(), p)
        assert len(codec.read_csv(p)) == 0

    def test_csv_bad_header(self, tmp_path):
        p = tmp_path / "bad.csv"
        p.write_text("nope\n1,2\n")
        with pytest.raises(ValueError, match="header"):
            codec.read_csv(p)

    def test_binary_roundtrip(self, tmp_path):
        t = FlowTable.from_records(records())
        p = tmp_path / "flows.bin"
        codec.write_binary(t, p)
        back = codec.read_binary(p)
        assert list(back.records()) == records()

    def test_binary_bad_magic(self, tmp_path):
        p = tmp_path / "bad.bin"
        p.write_bytes(b"XXXX" + b"\x00" * 16)
        with pytest.raises(ValueError, match="binary flow"):
            codec.read_binary(p)

    def test_binary_truncated(self, tmp_path):
        t = FlowTable.from_records(records())
        p = tmp_path / "flows.bin"
        codec.write_binary(t, p)
        p.write_bytes(p.read_bytes()[:-10])
        with pytest.raises(ValueError, match="truncated"):
            codec.read_binary(p)


class TestGraphMapping:
    def test_hosts_become_vertices(self):
        g = flow_table_to_property_graph(FlowTable.from_records(records()))
        assert g.n_vertices == 3
        assert g.vertex_properties["ID"].tolist() == [10, 11, 20]

    def test_flows_become_edges_multiset(self):
        g = flow_table_to_property_graph(FlowTable.from_records(records()))
        assert g.n_edges == 3
        # Two flows 10 -> 20 are parallel edges.
        assert sorted(g.edge_multiplicities().tolist()) == [1, 2]

    def test_nine_attributes_present(self):
        g = flow_table_to_property_graph(FlowTable.from_records(records()))
        for name in NETFLOW_EDGE_ATTRIBUTES:
            assert name in g.edge_properties

    def test_attribute_alignment(self):
        t = FlowTable.from_records(records())
        g = flow_table_to_property_graph(t)
        assert np.array_equal(g.edge_properties["OUT_BYTES"], t["OUT_BYTES"])

    def test_empty_table(self):
        g = flow_table_to_property_graph(FlowTable.empty())
        assert g.n_vertices == 0

    def test_columns_roundtrip(self):
        t = FlowTable.from_records(records())
        g = flow_table_to_property_graph(t)
        cols = property_graph_to_flow_columns(g)
        assert np.array_equal(np.sort(cols["SRC_IP"]), np.sort(t["SRC_IP"]))
        assert np.array_equal(cols["DEST_PORT"], t["DEST_PORT"])

    def test_columns_without_id_property(self):
        g = PropertyGraph(
            3, np.array([0, 1]), np.array([2, 2]),
            edge_properties={"OUT_BYTES": np.array([1, 2])},
        )
        cols = property_graph_to_flow_columns(g)
        assert cols["SRC_IP"].tolist() == [0, 1]
