"""Unit tests for repro.graph.builder."""

import numpy as np
import pytest

from repro.graph import GraphBuilder, PropertyGraph


class TestVertices:
    def test_add_vertices_allocates_contiguous_ids(self):
        b = GraphBuilder(5)
        new = b.add_vertices(3)
        assert new.tolist() == [5, 6, 7]
        assert b.n_vertices == 8

    def test_add_zero_vertices(self):
        b = GraphBuilder()
        assert b.add_vertices(0).size == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            GraphBuilder().add_vertices(-1)

    def test_negative_initial_rejected(self):
        with pytest.raises(ValueError):
            GraphBuilder(-1)


class TestEdges:
    def test_add_edges_and_build(self):
        b = GraphBuilder(3)
        b.add_edges(np.array([0, 1]), np.array([1, 2]))
        b.add_edges(np.array([2]), np.array([0]))
        g = b.build()
        assert g.n_edges == 3
        assert g.src.tolist() == [0, 1, 2]

    def test_edge_beyond_vertices_rejected(self):
        b = GraphBuilder(2)
        with pytest.raises(ValueError, match="exceeds"):
            b.add_edges(np.array([0]), np.array([5]))

    def test_negative_edge_rejected(self):
        b = GraphBuilder(2)
        with pytest.raises(ValueError, match="non-negative"):
            b.add_edges(np.array([-1]), np.array([0]))

    def test_empty_block_noop(self):
        b = GraphBuilder(2)
        b.add_edges(np.array([], dtype=np.int64), np.array([], dtype=np.int64))
        assert b.n_edges == 0

    def test_property_blocks_concatenate(self):
        b = GraphBuilder(3)
        b.add_edges(np.array([0]), np.array([1]), {"W": np.array([1.0])})
        b.add_edges(np.array([1]), np.array([2]), {"W": np.array([2.0])})
        g = b.build()
        assert g.edge_properties["W"].tolist() == [1.0, 2.0]

    def test_inconsistent_property_columns_rejected(self):
        b = GraphBuilder(3)
        b.add_edges(np.array([0]), np.array([1]), {"W": np.array([1.0])})
        with pytest.raises(ValueError, match="inconsistent"):
            b.add_edges(np.array([1]), np.array([2]))

    def test_property_block_length_mismatch(self):
        b = GraphBuilder(3)
        with pytest.raises(ValueError, match="block length"):
            b.add_edges(
                np.array([0]), np.array([1]), {"W": np.array([1.0, 2.0])}
            )


class TestFromGraph:
    def test_seed_carried_over(self):
        seed = PropertyGraph(
            2, np.array([0]), np.array([1]),
            edge_properties={"W": np.array([9.0])},
        )
        b = GraphBuilder.from_graph(seed)
        b.add_edges(np.array([1]), np.array([0]), {"W": np.array([1.0])})
        g = b.build()
        assert g.n_edges == 2
        assert g.edge_properties["W"].tolist() == [9.0, 1.0]

    def test_empty_seed(self):
        b = GraphBuilder.from_graph(PropertyGraph.empty())
        assert b.n_vertices == 0 and b.n_edges == 0


class TestSetEdgeProperty:
    def test_post_hoc_column(self):
        b = GraphBuilder(3)
        b.add_edges(np.array([0, 1]), np.array([1, 2]))
        b.set_edge_property("W", np.array([5.0, 6.0]))
        g = b.build()
        assert g.edge_properties["W"].tolist() == [5.0, 6.0]

    def test_wrong_length_rejected(self):
        b = GraphBuilder(3)
        b.add_edges(np.array([0]), np.array([1]))
        with pytest.raises(ValueError, match="column length"):
            b.set_edge_property("W", np.array([1.0, 2.0]))


def test_build_empty():
    g = GraphBuilder(4).build()
    assert g.n_vertices == 4
    assert g.n_edges == 0


def test_linear_growth_many_blocks():
    """Appending many blocks stays cheap and correct."""
    b = GraphBuilder(1)
    for i in range(200):
        new = b.add_vertices(1)
        b.add_edges(new, np.zeros(1, dtype=np.int64))
    g = b.build()
    assert g.n_edges == 200
    assert g.in_degrees()[0] == 200
