"""Netflow attribute vocabulary.

``NETFLOW_EDGE_ATTRIBUTES`` lists, in order, the nine edge attributes the
paper attaches to property-graph edges (Section III).  ``Protocol`` and
``TcpState`` give them integer codings so attribute columns stay numeric
NumPy arrays end to end.
"""

from __future__ import annotations

from enum import IntEnum

__all__ = [
    "Protocol",
    "TcpState",
    "NETFLOW_EDGE_ATTRIBUTES",
    "CONDITIONING_ATTRIBUTE",
]


class Protocol(IntEnum):
    """Transport protocol of a flow.  The paper supports TCP and UDP; ICMP
    is carried as well because the anomaly detector (Section IV) must see
    ICMP flood traffic."""

    TCP = 6
    UDP = 17
    ICMP = 1


class TcpState(IntEnum):
    """Bro-style TCP connection summary states.

    Mirrors Bro's ``conn_state`` vocabulary, which is what analysing the
    seed trace "with Bro IDS" (Fig. 1) would produce:

    * ``S0``  — connection attempt seen, no reply (scan signature).
    * ``S1``  — established, never closed.
    * ``SF``  — normal establish + finish.
    * ``REJ`` — attempt rejected (RST to SYN).
    * ``RSTO`` — established, originator aborted with RST.
    * ``RSTR`` — established, responder aborted with RST.
    * ``SH``  — originator sent SYN then FIN, no responder traffic.
    * ``OTH`` — mid-stream traffic, no SYN observed.
    * ``NONE`` — used for non-TCP flows.
    """

    NONE = 0
    S0 = 1
    S1 = 2
    SF = 3
    REJ = 4
    RSTO = 5
    RSTR = 6
    SH = 7
    OTH = 8


#: The nine per-edge attributes from Section III, in canonical column order.
NETFLOW_EDGE_ATTRIBUTES: tuple[str, ...] = (
    "PROTOCOL",
    "SRC_PORT",
    "DEST_PORT",
    "DURATION",
    "OUT_BYTES",
    "IN_BYTES",
    "OUT_PKTS",
    "IN_PKTS",
    "STATE",
)

#: Attribute whose unconditional distribution anchors the conditional model
#: p(a | IN_BYTES) computed by the seed-analysis step (Fig. 1).
CONDITIONING_ATTRIBUTE = "IN_BYTES"
