"""Table I: the anomaly-detection threshold parameters.

Field names follow the paper's notation (``dip_t`` = ``dip-T`` etc.):

======================  =====================================================
``dip_t``               max normal distinct destination IPs per source IP
``sip_t``               max normal distinct source IPs per destination IP
``dp_lt``, ``dp_ht``    low / high bounds on destination-port counts
``nf_t``                max normal flow count per detection IP
``fs_lt``, ``fs_ht``    low / high bounds on flow size (bytes)
``np_lt``, ``np_ht``    low / high bounds on packet counts
``sa_t``                min normal ACK/SYN ratio (below = half-open storm)
======================  =====================================================

The paper notes these values are "network driven" and must be trained per
target network; :meth:`DetectionThresholds.fit_normal` calibrates them from
attack-free traffic quantiles, and :func:`repro.detect.pso.tune_thresholds`
optimises them against labelled data.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace

import numpy as np

__all__ = ["DetectionThresholds"]


@dataclass(frozen=True)
class DetectionThresholds:
    """One concrete setting of the Table I parameters."""

    dip_t: float = 50.0
    sip_t: float = 50.0
    dp_lt: float = 5.0
    dp_ht: float = 100.0
    nf_t: float = 100.0
    fs_lt: float = 60.0
    fs_ht: float = 1_000_000.0
    np_lt: float = 4.0
    np_ht: float = 10_000.0
    sa_t: float = 0.5

    def __post_init__(self) -> None:
        for f in fields(self):
            if getattr(self, f.name) < 0:
                raise ValueError(f"threshold {f.name} must be non-negative")
        if self.dp_lt > self.dp_ht:
            raise ValueError("dp_lt must not exceed dp_ht")
        if self.fs_lt > self.fs_ht:
            raise ValueError("fs_lt must not exceed fs_ht")
        if self.np_lt > self.np_ht:
            raise ValueError("np_lt must not exceed np_ht")

    # ------------------------------------------------------------------
    @classmethod
    def fit_normal(
        cls,
        flow_columns: dict[str, np.ndarray],
        *,
        quantile: float = 0.99,
        margin: float = 2.0,
        window_seconds: float | None = None,
    ) -> "DetectionThresholds":
        """Calibrate from attack-free traffic: the ``quantile`` of each
        per-IP aggregate times ``margin`` becomes the normal bound.

        This is the paper's "training must be used to set the threshold
        values based on the parameters of each target network".  When
        ``window_seconds`` is given, aggregates are computed per START_TIME
        window and the quantiles taken across (IP, window) pairs — use the
        same window length at detection time
        (:meth:`NetflowAnomalyDetector.detect_windowed`).
        """
        from repro.detect.patterns import build_traffic_patterns, iter_windows

        if not 0.0 < quantile <= 1.0:
            raise ValueError("quantile must lie in (0, 1]")
        if margin < 1.0:
            raise ValueError("margin must be >= 1")

        if window_seconds is not None:
            slices = [c for _, c in iter_windows(flow_columns, window_seconds)]
        else:
            slices = [flow_columns]
        dst_parts = [
            build_traffic_patterns(c, direction="destination") for c in slices
        ]
        src_parts = [
            build_traffic_patterns(c, direction="source") for c in slices
        ]

        class _Cat:
            """Concatenated view over the per-window pattern arrays."""

            def __init__(self, parts):
                self._parts = parts

            def __getattr__(self, name):
                return np.concatenate(
                    [getattr(p, name) for p in self._parts]
                )

        dst = _Cat(dst_parts)
        src = _Cat(src_parts)

        def q(arr: np.ndarray, default: float, at: float = quantile) -> float:
            if arr.size == 0:
                return default
            return float(np.quantile(arr, at))

        flow_sizes = (
            flow_columns["OUT_BYTES"] + flow_columns["IN_BYTES"]
        ).astype(np.float64)
        pkts = (
            flow_columns["OUT_PKTS"] + flow_columns["IN_PKTS"]
        ).astype(np.float64)
        # Upper bounds ("maximum normal ...") sit a margin above the largest
        # value attack-free traffic ever produced, so a popular server's
        # legitimate fan-in never trips them.  Lower bounds sit below the
        # bulk of normal flows: probe/SYN traffic carries ~0 payload bytes
        # and a single packet, while any real exchange moves >= 2 packets.
        return cls(
            dip_t=margin * q(src.n_distinct_peers, 50.0, 1.0),
            sip_t=margin * q(dst.n_distinct_peers, 50.0, 1.0),
            dp_lt=max(1.0, q(dst.n_distinct_ports, 5.0, 0.5)),
            dp_ht=margin * q(dst.n_distinct_ports, 100.0, 1.0),
            nf_t=margin * q(
                np.concatenate([dst.n_flows, src.n_flows]), 100.0, 0.75
            ),
            fs_lt=max(2.0, q(flow_sizes, 60.0, 0.5) / margin),
            fs_ht=margin * q(
                np.concatenate([dst.sum_flow_size, src.sum_flow_size]),
                1e6,
                1.0,
            ),
            np_lt=max(2.0, q(pkts, 4.0, 0.5) / margin),
            np_ht=margin * q(
                np.concatenate([dst.sum_packets, src.sum_packets]),
                1e4,
                1.0,
            ),
            sa_t=0.5,
        )

    # ------------------------------------------------------------------
    def as_vector(self) -> np.ndarray:
        """Pack into the optimisation vector used by the PSO tuner."""
        return np.asarray(
            [getattr(self, f.name) for f in fields(self)], dtype=np.float64
        )

    @classmethod
    def from_vector(cls, vec: np.ndarray) -> "DetectionThresholds":
        names = [f.name for f in fields(cls)]
        if len(vec) != len(names):
            raise ValueError(
                f"expected {len(names)} threshold values, got {len(vec)}"
            )
        values = dict(zip(names, (float(v) for v in vec)))
        # Repair ordering constraints instead of failing: PSO particles roam.
        values["dp_lt"], values["dp_ht"] = sorted(
            (values["dp_lt"], values["dp_ht"])
        )
        values["fs_lt"], values["fs_ht"] = sorted(
            (values["fs_lt"], values["fs_ht"])
        )
        values["np_lt"], values["np_ht"] = sorted(
            (values["np_lt"], values["np_ht"])
        )
        values = {k: max(0.0, v) for k, v in values.items()}
        return cls(**values)

    def scaled(self, factor: float) -> "DetectionThresholds":
        """Uniformly loosen (>1) or tighten (<1) every bound — a quick
        sensitivity knob for the Table I benchmark."""
        if factor <= 0:
            raise ValueError("factor must be positive")
        upper = dict(
            dip_t=self.dip_t * factor,
            sip_t=self.sip_t * factor,
            dp_ht=self.dp_ht * factor,
            nf_t=self.nf_t * factor,
            fs_ht=self.fs_ht * factor,
            np_ht=self.np_ht * factor,
        )
        lower = dict(
            dp_lt=self.dp_lt / factor,
            fs_lt=self.fs_lt / factor,
            np_lt=self.np_lt / factor,
            sa_t=self.sa_t / factor,
        )
        return replace(self, **upper, **lower)
