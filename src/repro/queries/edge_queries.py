"""Edge-level queries: attribute-filtered flow selection.

An :class:`EdgeFilter` is a conjunction of per-attribute predicates over
the Netflow edge columns — the property-graph equivalent of a Netflow
query like "all TCP flows to port 445 in state S0 moving fewer than 100
bytes" (a scan signature).

Evaluation routes through the graph's snapshot: when an equality
predicate pins one of the indexed columns (PROTOCOL, DEST_PORT, STATE),
the most selective index supplies a sorted candidate list via two
``searchsorted`` probes and the remaining predicates are verified by
gathers over just those candidates — a full-column boolean scan happens
only when no pinned column is indexed.  Either path selects the same
edges in the same order.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graph.property_graph import PropertyGraph

__all__ = ["EdgeFilter", "filter_edges"]


@dataclass(frozen=True)
class EdgeFilter:
    """Conjunctive predicate over edge attributes.

    ``equals`` pins attributes to exact values; ``ranges`` bounds them with
    inclusive ``(low, high)`` intervals (either side may be None).
    """

    equals: dict = field(default_factory=dict)
    ranges: dict = field(default_factory=dict)

    def _column(self, graph, name: str) -> np.ndarray:
        col = graph.edge_properties.get(name)
        if col is None:
            raise KeyError(f"edge attribute {name!r} not present")
        return np.asarray(col)

    def mask(self, graph) -> np.ndarray:
        """Boolean edge mask (full-column scan); raises on unknown
        attributes."""
        out = np.ones(graph.n_edges, dtype=bool)
        for name, value in self.equals.items():
            out &= self._column(graph, name) == value
        for name, (low, high) in self.ranges.items():
            col = self._column(graph, name)
            if low is not None:
                out &= col >= low
            if high is not None:
                out &= col <= high
        return out

    def selection(self, graph) -> np.ndarray:
        """Matching edge ids in ascending order, using the snapshot's
        sorted indexes when an equality predicate pins an indexed
        column; equivalent to ``np.flatnonzero(self.mask(graph))``."""
        snap = graph.snapshot()
        # Validate every referenced column up front so the indexed and
        # scanning paths raise identically.
        for name in (*self.equals, *self.ranges):
            self._column(snap, name)
        indexed = {
            name: value
            for name, value in self.equals.items()
            if snap.has_edge_index(name)
        }
        if not indexed:
            return np.flatnonzero(self.mask(snap))
        # Probe the most selective index; stable argsort means the
        # candidate ids come back ascending, i.e. in edge order.
        probe = min(
            indexed, key=lambda n: snap.edge_indexes[n].count(indexed[n])
        )
        cand = snap.equality_candidates(probe, indexed[probe])
        for name, value in self.equals.items():
            if name == probe or cand.size == 0:
                continue
            cand = cand[self._column(snap, name)[cand] == value]
        for name, (low, high) in self.ranges.items():
            if cand.size == 0:
                break
            col = self._column(snap, name)[cand]
            keep = np.ones(cand.size, dtype=bool)
            if low is not None:
                keep &= col >= low
            if high is not None:
                keep &= col <= high
            cand = cand[keep]
        return np.ascontiguousarray(cand, dtype=np.int64)


def filter_edges(graph, flt: EdgeFilter) -> PropertyGraph:
    """Sub-multigraph of the edges matching ``flt`` (vertices preserved)."""
    snap = graph.snapshot()
    return snap.graph.select_edges(flt.selection(snap))
