"""Bounded-chunk streaming helpers for generators and the shuffle.

The paper's cluster never materializes a partition's whole edge array in
one worker: map tasks emit edges as they are drawn (Yoo & Henderson's
independent per-worker draws) and the runtime absorbs them in bounded
buffers.  This module holds the local engine's equivalents:

* :func:`resolve_emit_chunk_rows` — how many rows a streaming generator
  op yields per chunk (``REPRO_EMIT_CHUNK_ROWS``, default 262144 — 4 MB
  of int64 edge pairs per chunk);
* :func:`resolve_extsort_chunk_rows` — run-file chunk granularity of the
  external-sort shuffle (``REPRO_EXTSORT_CHUNK_ROWS``): the reduce-side
  k-way merge holds one chunk per run per column, so this bounds reduce
  memory;
* :func:`iter_repeat_chunks` — the chunked equivalent of
  ``np.repeat`` over value/count column pairs, bit-identical to the
  unchunked expansion when concatenated.  The random draws happen
  *before* chunking (whole-partition arrays), so the RNG stream is
  untouched and digests match the monolithic path exactly.
"""

from __future__ import annotations

import os
from typing import Iterator, Sequence

import numpy as np

__all__ = [
    "EMIT_CHUNK_ROWS_ENV_VAR",
    "EXTSORT_CHUNK_ROWS_ENV_VAR",
    "DEFAULT_EMIT_CHUNK_ROWS",
    "DEFAULT_EXTSORT_CHUNK_ROWS",
    "resolve_emit_chunk_rows",
    "resolve_extsort_chunk_rows",
    "iter_repeat_chunks",
]

EMIT_CHUNK_ROWS_ENV_VAR = "REPRO_EMIT_CHUNK_ROWS"
EXTSORT_CHUNK_ROWS_ENV_VAR = "REPRO_EXTSORT_CHUNK_ROWS"

DEFAULT_EMIT_CHUNK_ROWS = 262144
DEFAULT_EXTSORT_CHUNK_ROWS = 65536


def _resolve_rows(value: "int | str | None", env_var: str, default: int) -> int:
    if value is None:
        env = os.environ.get(env_var)
        if not env:
            return default
        value = env
    rows = int(value)
    if rows <= 0:
        raise ValueError(f"chunk rows must be > 0, got {rows}")
    return rows


def resolve_emit_chunk_rows(value: "int | str | None" = None) -> int:
    """Rows per streamed generator chunk: argument > env > 262144."""

    return _resolve_rows(
        value, EMIT_CHUNK_ROWS_ENV_VAR, DEFAULT_EMIT_CHUNK_ROWS
    )


def resolve_extsort_chunk_rows(value: "int | str | None" = None) -> int:
    """Rows per external-sort run chunk: argument > env > 65536."""

    return _resolve_rows(
        value, EXTSORT_CHUNK_ROWS_ENV_VAR, DEFAULT_EXTSORT_CHUNK_ROWS
    )


def iter_repeat_chunks(
    values: Sequence[np.ndarray],
    counts: np.ndarray,
    *,
    chunk_rows: "int | None" = None,
) -> Iterator[tuple[np.ndarray, ...]]:
    """Yield ``tuple(np.repeat(v, counts) for v in values)`` in chunks.

    Each yielded tuple holds at most ``chunk_rows`` output rows.
    Concatenating the chunks column-wise is bit-identical to the
    monolithic ``np.repeat`` — the expansion is deterministic, so
    chunking it cannot shift any RNG stream.  Peak extra memory is one
    output chunk instead of the whole expansion (PGPBA emits ~2|E| rows
    per growth step through this).
    """

    chunk_rows = resolve_emit_chunk_rows(chunk_rows)
    counts = np.asarray(counts, dtype=np.int64)
    values = tuple(np.asarray(v) for v in values)
    if counts.size == 0:
        yield tuple(v[:0] for v in values)
        return
    ends = np.cumsum(counts)
    total = int(ends[-1])
    if total == 0:
        yield tuple(v[:0] for v in values)
        return
    starts = ends - counts
    out_pos = 0
    while out_pos < total:
        hi = min(out_pos + chunk_rows, total)
        # Source rows overlapping output window [out_pos, hi): every row
        # whose expansion ends after out_pos and starts before hi.
        first = int(np.searchsorted(ends, out_pos, side="right"))
        last = int(np.searchsorted(starts, hi, side="left"))
        window_counts = counts[first:last].copy()
        # Clip the edge rows to the window.
        window_counts[0] -= out_pos - int(starts[first])
        window_counts[-1] -= int(ends[last - 1]) - hi
        yield tuple(
            np.repeat(v[first:last], window_counts) for v in values
        )
        out_pos = hi
