"""Streaming-pipeline knobs and their env/flag/default precedence.

Every knob follows the engine convention (see ``repro.engine.context``):
an explicit argument wins, then the environment variable, then the
default.

* ``REPRO_STREAM_QUEUE`` / ``--queue-capacity`` — bounded-queue capacity
  in batches/windows between adjacent stages (default 8).  Blocking-put
  backpressure means total in-flight memory is bounded by
  ``capacity x batch size`` per queue no matter how fast the source runs.
* ``REPRO_STREAM_WINDOW`` / ``--window`` — micro-batch window length in
  stream seconds (default 5.0).  Flows are grouped into consecutive
  ``[k*W, (k+1)*W)`` windows of their ``start_time``.
* ``REPRO_STREAM_LATENESS`` / ``--lateness`` — allowed lateness in
  seconds, or ``auto``.  The watermark is ``packet clock - lateness``; a
  window closes when the watermark passes its end.  ``auto`` resolves to
  the flow assembler's safe bound ``max(idle_timeout,
  max_flow_duration)``, which guarantees no flow can ever arrive for an
  already-emitted window — the condition under which a streamed run is
  byte-identical to the batch run.  Smaller values close windows sooner
  but may route late flows into a later window (counted in
  :class:`~repro.stream.stats.StreamStats`).
"""

from __future__ import annotations

import os

__all__ = [
    "STREAM_QUEUE_ENV_VAR",
    "STREAM_WINDOW_ENV_VAR",
    "STREAM_LATENESS_ENV_VAR",
    "DEFAULT_QUEUE_CAPACITY",
    "DEFAULT_WINDOW_SECONDS",
    "resolve_queue_capacity",
    "resolve_window_seconds",
    "resolve_lateness",
]

STREAM_QUEUE_ENV_VAR = "REPRO_STREAM_QUEUE"
STREAM_WINDOW_ENV_VAR = "REPRO_STREAM_WINDOW"
STREAM_LATENESS_ENV_VAR = "REPRO_STREAM_LATENESS"

DEFAULT_QUEUE_CAPACITY = 8
DEFAULT_WINDOW_SECONDS = 5.0


def resolve_queue_capacity(capacity: int | str | None = None) -> int:
    """Bounded-queue capacity between stages, in batches/windows."""
    if capacity is None:
        env = os.environ.get(STREAM_QUEUE_ENV_VAR)
        capacity = env if env else DEFAULT_QUEUE_CAPACITY
    try:
        capacity = int(capacity)
    except (TypeError, ValueError):
        raise ValueError(
            f"invalid stream queue capacity {capacity!r} "
            f"(set {STREAM_QUEUE_ENV_VAR} or --queue-capacity to a "
            "positive integer)"
        ) from None
    if capacity < 1:
        raise ValueError(
            f"stream queue capacity must be >= 1, got {capacity}"
        )
    return capacity


def resolve_window_seconds(window: float | str | None = None) -> float:
    """Micro-batch window length in stream seconds."""
    if window is None:
        env = os.environ.get(STREAM_WINDOW_ENV_VAR)
        window = env if env else DEFAULT_WINDOW_SECONDS
    try:
        window = float(window)
    except (TypeError, ValueError):
        raise ValueError(
            f"invalid stream window {window!r} "
            f"(set {STREAM_WINDOW_ENV_VAR} or --window to seconds)"
        ) from None
    if window <= 0:
        raise ValueError(f"stream window must be positive, got {window}")
    return window


def resolve_lateness(lateness: float | str | None = None) -> float | None:
    """Allowed lateness in seconds; ``None`` means ``auto`` (the safe
    bound derived from the flow assembler's timeouts)."""
    if lateness is None:
        lateness = os.environ.get(STREAM_LATENESS_ENV_VAR) or "auto"
    if isinstance(lateness, str) and lateness.strip().lower() == "auto":
        return None
    try:
        lateness = float(lateness)
    except (TypeError, ValueError):
        raise ValueError(
            f"invalid stream lateness {lateness!r} "
            f"(set {STREAM_LATENESS_ENV_VAR} or --lateness to seconds "
            "or 'auto')"
        ) from None
    if lateness < 0:
        raise ValueError(
            f"stream lateness must be non-negative, got {lateness}"
        )
    return lateness
