"""Statistical substrate: empirical distributions, power laws, conditionals.

The generators in :mod:`repro.core` never look at the seed trace directly;
they consume the *empirical distributions* extracted from it (in/out degree,
Netflow attribute histograms, conditional attribute distributions).  This
package provides those distribution objects together with fast vectorised
samplers built on inverse-CDF lookup (``np.searchsorted``), a maximum
likelihood power-law fitter, and quantile-binned conditional distributions.
"""

from repro.stats.empirical import EmpiricalDistribution
from repro.stats.powerlaw import PowerLawFit, fit_power_law, sample_power_law
from repro.stats.conditional import ConditionalDistribution
from repro.stats.histogram import (
    normalized_distribution,
    log_binned_histogram,
    aligned_euclidean_distance,
)

__all__ = [
    "EmpiricalDistribution",
    "PowerLawFit",
    "fit_power_law",
    "sample_power_law",
    "ConditionalDistribution",
    "normalized_distribution",
    "log_binned_histogram",
    "aligned_euclidean_distance",
]
