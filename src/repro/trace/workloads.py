"""Application workload profiles.

Each :class:`ApplicationProfile` describes how one protocol behaves on the
wire: destination port, transport, how many request/response exchanges a
session contains, and how large the payloads are.  The standard mix below
is weighted roughly like enterprise edge traffic (web-dominant, steady DNS
chatter, occasional bulk transfers), producing the long-tailed byte and
packet distributions the paper's attribute model must reproduce.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.pcap.packet import PROTO_ICMP, PROTO_TCP, PROTO_UDP

__all__ = ["ApplicationProfile", "STANDARD_WORKLOADS", "sample_workload"]


@dataclass(frozen=True)
class ApplicationProfile:
    """Wire behaviour of one application.

    ``request_bytes`` / ``response_bytes`` are (log-mean, log-sigma) of a
    lognormal per-exchange payload size; ``exchanges`` is (min, max) count
    of request/response rounds per session; ``inter_packet_gap`` is the
    mean seconds between packets of a session (exponential).
    """

    name: str
    transport: int
    dst_port: int
    weight: float
    exchanges: tuple[int, int]
    request_bytes: tuple[float, float]
    response_bytes: tuple[float, float]
    inter_packet_gap: float

    def sample_exchanges(self, rng: np.random.Generator) -> int:
        lo, hi = self.exchanges
        return int(rng.integers(lo, hi + 1))

    def sample_request_size(self, rng: np.random.Generator) -> int:
        mu, sigma = self.request_bytes
        return int(np.clip(rng.lognormal(mu, sigma), 1, 1_400))

    def sample_response_size(self, rng: np.random.Generator) -> int:
        mu, sigma = self.response_bytes
        return int(np.clip(rng.lognormal(mu, sigma), 1, 1_400))


#: Default enterprise mix.  Weights need not sum to 1; they are normalised.
STANDARD_WORKLOADS: tuple[ApplicationProfile, ...] = (
    ApplicationProfile(
        name="http",
        transport=PROTO_TCP,
        dst_port=80,
        weight=0.30,
        exchanges=(1, 8),
        request_bytes=(5.5, 0.6),
        response_bytes=(7.2, 1.0),
        inter_packet_gap=0.02,
    ),
    ApplicationProfile(
        name="https",
        transport=PROTO_TCP,
        dst_port=443,
        weight=0.32,
        exchanges=(2, 12),
        request_bytes=(5.8, 0.7),
        response_bytes=(7.0, 1.1),
        inter_packet_gap=0.02,
    ),
    ApplicationProfile(
        name="dns",
        transport=PROTO_UDP,
        dst_port=53,
        weight=0.20,
        exchanges=(1, 2),
        request_bytes=(3.7, 0.3),
        response_bytes=(4.6, 0.5),
        inter_packet_gap=0.005,
    ),
    ApplicationProfile(
        name="ssh",
        transport=PROTO_TCP,
        dst_port=22,
        weight=0.05,
        exchanges=(5, 60),
        request_bytes=(4.2, 0.8),
        response_bytes=(4.6, 0.9),
        inter_packet_gap=0.15,
    ),
    ApplicationProfile(
        name="smtp",
        transport=PROTO_TCP,
        dst_port=25,
        weight=0.05,
        exchanges=(3, 10),
        request_bytes=(6.5, 1.2),
        response_bytes=(4.0, 0.4),
        inter_packet_gap=0.05,
    ),
    ApplicationProfile(
        name="ntp",
        transport=PROTO_UDP,
        dst_port=123,
        weight=0.04,
        exchanges=(1, 1),
        request_bytes=(3.9, 0.1),
        response_bytes=(3.9, 0.1),
        inter_packet_gap=0.001,
    ),
    ApplicationProfile(
        name="bulk-transfer",
        transport=PROTO_TCP,
        dst_port=8080,
        weight=0.03,
        exchanges=(20, 200),
        request_bytes=(4.0, 0.3),
        response_bytes=(7.2, 0.2),
        inter_packet_gap=0.01,
    ),
    ApplicationProfile(
        name="ping",
        transport=PROTO_ICMP,
        dst_port=0,
        weight=0.01,
        exchanges=(1, 4),
        request_bytes=(4.0, 0.1),
        response_bytes=(4.0, 0.1),
        inter_packet_gap=1.0,
    ),
)


def sample_workload(
    rng: np.random.Generator,
    workloads: tuple[ApplicationProfile, ...] = STANDARD_WORKLOADS,
) -> ApplicationProfile:
    """Weighted draw of an application profile."""
    weights = np.asarray([w.weight for w in workloads], dtype=np.float64)
    weights /= weights.sum()
    return workloads[int(rng.choice(len(workloads), p=weights))]
