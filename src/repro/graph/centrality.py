"""Approximate betweenness centrality.

The paper (Section III) lists betweenness centrality as a structural
property its architecture "can easily support" beyond degree and PageRank.
Exact Brandes is O(|V||E|); we implement the standard source-sampled
approximation: run Brandes' single-source dependency accumulation from a
random subset of sources and rescale.  Each source runs a BFS expressed as
frontier-at-a-time array operations over a CSR adjacency.
"""

from __future__ import annotations

import numpy as np

from repro.graph.property_graph import PropertyGraph

__all__ = ["approximate_betweenness"]


def _csr_neighbors(indptr: np.ndarray, indices: np.ndarray, frontier: np.ndarray):
    """All neighbours (with repetition) of the frontier vertices."""
    starts = indptr[frontier]
    stops = indptr[frontier + 1]
    counts = stops - starts
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, np.int64), np.empty(0, np.int64)
    # Build a gather index covering [starts[i], stops[i]) for each i.
    offsets = np.repeat(stops - counts, counts)
    within = np.arange(total) - np.repeat(
        np.concatenate(([0], np.cumsum(counts[:-1]))), counts
    )
    gather = offsets + within
    sources = np.repeat(frontier, counts)
    return indices[gather].astype(np.int64), sources


def approximate_betweenness(
    graph: PropertyGraph,
    *,
    n_sources: int | None = None,
    rng: np.random.Generator | None = None,
    normalized: bool = True,
) -> np.ndarray:
    """Betweenness estimate for every vertex via sampled Brandes.

    Parameters
    ----------
    n_sources:
        Number of BFS sources to sample (default: min(64, |V|)).  With
        ``n_sources == |V|`` (and all vertices chosen) the result is exact
        for unweighted shortest paths.
    """
    n = graph.n_vertices
    if n == 0:
        return np.empty(0, dtype=np.float64)
    rng = rng or np.random.default_rng(0)
    if n_sources is None:
        n_sources = min(64, n)
    n_sources = min(n_sources, n)
    sources = (
        np.arange(n)
        if n_sources == n
        else rng.choice(n, size=n_sources, replace=False)
    )

    adj = graph.simple_graph().to_sparse_adjacency(weighted=False)
    indptr, indices = adj.indptr, adj.indices

    centrality = np.zeros(n, dtype=np.float64)
    for s in sources:
        dist = np.full(n, -1, dtype=np.int64)
        sigma = np.zeros(n, dtype=np.float64)  # shortest-path counts
        dist[s] = 0
        sigma[s] = 1.0
        layers: list[np.ndarray] = [np.asarray([s], dtype=np.int64)]
        frontier = layers[0]
        d = 0
        while frontier.size:
            nbrs, froms = _csr_neighbors(indptr, indices, frontier)
            if nbrs.size == 0:
                break
            # Path counts flow along edges into vertices at distance d+1.
            fresh_mask = dist[nbrs] == -1
            dist[nbrs[fresh_mask]] = d + 1
            on_next = dist[nbrs] == d + 1
            np.add.at(sigma, nbrs[on_next], sigma[froms[on_next]])
            nxt = np.unique(nbrs[fresh_mask])
            layers.append(nxt)
            frontier = nxt
            d += 1
        # Dependency accumulation, deepest layer first.
        delta = np.zeros(n, dtype=np.float64)
        for layer in reversed(layers[1:]):
            nbrs, froms = _csr_neighbors(indptr, indices, layer)
            if nbrs.size:
                downstream = dist[nbrs] == dist[froms] + 1
                contrib = (
                    sigma[froms[downstream]]
                    / np.maximum(sigma[nbrs[downstream]], 1.0)
                    * (1.0 + delta[nbrs[downstream]])
                )
                np.add.at(delta, froms[downstream], contrib)
            mask = layer != s
            centrality[layer[mask]] += delta[layer[mask]]
    # Rescale sampled estimate to the full-source equivalent.
    centrality *= n / max(1, len(sources))
    if normalized and n > 2:
        centrality /= (n - 1) * (n - 2)
    return centrality
