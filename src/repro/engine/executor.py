"""Pluggable local execution backends for the Map-Reduce engine.

The engine keeps two clocks.  The *simulated* clock (Fig. 8-12) is driven
by per-partition CPU costs measured *inside* each task with
``time.perf_counter`` and fed to the :class:`~repro.engine.scheduler.
ClusterScheduler` makespan model — it is independent of how the partition
tasks are actually executed.  The *wall* clock is whatever the hardware
delivers, and that is what this module accelerates: an
:class:`Executor` runs a batch of independent partition tasks and returns
their results in task order, so any backend can stand behind
``ArrayRDD.map_partitions`` without changing observable behaviour.

Four backends are provided:

``serial``
    The original driver-loop behaviour; the default, and the reference
    for determinism.
``threads``
    ``concurrent.futures.ThreadPoolExecutor``.  The hot kernels are NumPy
    calls (``np.unique``, ``np.repeat``, ``np.concatenate``, RNG fills)
    which release the GIL, so threads give real parallelism without any
    serialisation cost.
``processes``
    Fork-per-task worker processes.  Tasks are *inherited* by the forked
    workers (copy-on-write), never pickled; result arrays travel back
    through ``multiprocessing.shared_memory`` segments so a
    multi-hundred-MB partition costs one memcpy instead of a pickle
    round-trip.  Requires the ``fork`` start method (Linux/macOS).
    One process per task (rather than a shared pool) is what makes a
    crashed worker survivable: the driver detects the death through the
    process sentinel and fails only that task.
``pool``
    Persistent forked workers running a task loop over a duplex pipe —
    the fork cost is paid ``workers`` times per executor instead of once
    per task.  Task closures ship as one pickle protocol-5 batch per IPC
    round (``cloudpickle`` for the closures), with large array buffers
    carried out-of-band through a grow-only shared-memory *arena* per
    direction that is recycled across batches: no per-task segment
    create/unlink, one memcpy each way.  Death detection matches the
    ``processes`` backend — the driver waits on each busy worker's pipe
    *and* process sentinel, so an injected ``os._exit(73)`` kill fails
    only the in-progress task, requeues the not-yet-started remainder of
    the batch, and respawns the worker.  Spilled-block task outputs
    (:class:`~repro.engine.storage.SpilledBlockHandle`) carry no arrays
    and therefore bypass the arena entirely — budgeted runs ship file
    paths, not data.

A fifth backend, ``cluster``, promotes this pool protocol to sockets
against standalone ``repro worker`` daemons (possibly on other hosts);
it lives in :mod:`repro.engine.cluster` and is registered lazily here
so the two modules can share the worker loop without an import cycle.

Every RNG stream in the engine is keyed by ``(seed, partition_index)``
and results are gathered in partition order, so all three backends
produce bit-identical datasets for identical seeds (tested).

Fault tolerance lives in two layers here:

* :meth:`Executor.run_outcomes` runs a batch and reports one
  :class:`TaskOutcome` per task instead of raising, so a single failed
  partition no longer aborts its siblings.  Subclasses override *either*
  :meth:`Executor.run` (simple backends — the base ``run_outcomes``
  guards each task and dispatches through ``run``) *or*
  ``run_outcomes`` natively (the process backend, which must observe
  worker death, and the thread backend's speculative path).
* :func:`run_with_recovery` drives rounds of ``run_outcomes`` with
  per-task retry budgets and exponential backoff — the engine analogue
  of Spark's lineage recomputation.  Because every engine task closure
  captures its *materialised* anchor partitions (source arrays or
  ``persist()``-ed blocks, see ``plan._make_fused_task``), re-running a
  failed task IS recomputing the lost partition's fused chain from its
  narrowest persisted or source ancestor; nothing else is touched.
  Stragglers get speculative re-execution (:class:`SpeculationPolicy`)
  with first-result-wins.

Selection: ``ClusterContext(executor="threads", local_workers=8)``, or
the environment variables ``REPRO_EXECUTOR`` / ``REPRO_LOCAL_WORKERS``
when the constructor arguments are left unset.  Executors are context
managers (``with make_executor(...) as ex:``) and ``close()`` is
idempotent; the process backend additionally reaps any leaked worker
children at interpreter exit.
"""

from __future__ import annotations

import atexit
import math
import multiprocessing as mp
import os
import pickle
import statistics
import time
import traceback
import weakref
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor
from concurrent.futures import wait as futures_wait
from dataclasses import dataclass
from multiprocessing import connection as mp_connection
from multiprocessing import shared_memory
from typing import Any, Callable, Sequence

import numpy as np

from .faults import FaultPlan

try:  # the pool backend needs cloudpickle for task-closure transport
    import cloudpickle as _cloudpickle
except Exception:  # pragma: no cover - baked into the image, but gated
    _cloudpickle = None

__all__ = [
    "Executor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "PoolExecutor",
    "TaskOutcome",
    "SpeculationPolicy",
    "RecoveryStats",
    "TransportProfile",
    "WorkerDied",
    "RemoteTaskError",
    "run_with_recovery",
    "make_executor",
    "available_backends",
    "resolve_backend",
    "resolve_task_batch",
    "default_workers",
    "EXECUTOR_ENV_VAR",
    "WORKERS_ENV_VAR",
    "TASK_BATCH_ENV_VAR",
    "CLUSTER_BACKEND_NAME",
]

EXECUTOR_ENV_VAR = "REPRO_EXECUTOR"
WORKERS_ENV_VAR = "REPRO_LOCAL_WORKERS"
TASK_BATCH_ENV_VAR = "REPRO_TASK_BATCH"

Task = Callable[[], Any]


def default_workers() -> int:
    """Worker count when none is configured: one per visible CPU."""
    return max(1, os.cpu_count() or 1)


class WorkerDied(RuntimeError):
    """A worker process exited without reporting a result."""


class RemoteTaskError(RuntimeError):
    """Stand-in for a worker exception that could not be pickled back;
    carries the original type name and formatted traceback as text."""


@dataclass
class TaskOutcome:
    """Per-task result-or-error record returned by ``run_outcomes``."""

    value: Any = None
    error: BaseException | None = None

    @property
    def ok(self) -> bool:
        return self.error is None

    def unwrap(self) -> Any:
        if self.error is not None:
            raise self.error
        return self.value


@dataclass(frozen=True)
class SpeculationPolicy:
    """When to launch a backup copy of a slow task (first result wins).

    Once at least ``quantile`` of the batch has completed, any task still
    running after ``max(min_runtime_seconds, multiplier * median)`` of
    the completed durations is speculated once.  Mirrors Spark's
    ``spark.speculation.{multiplier,quantile}`` knobs.
    """

    multiplier: float = 1.5
    quantile: float = 0.5
    min_runtime_seconds: float = 0.01
    poll_interval_seconds: float = 0.005

    def threshold(
        self, durations: Sequence[float], n_total: int
    ) -> float | None:
        """Straggler cutoff, or ``None`` while too few tasks finished."""
        need = max(1, math.ceil(self.quantile * n_total))
        if len(durations) < need:
            return None
        return max(
            self.min_runtime_seconds,
            self.multiplier * statistics.median(durations),
        )


@dataclass
class RecoveryStats:
    """Counters produced by one :func:`run_with_recovery` batch."""

    tasks_failed: int = 0
    tasks_retried: int = 0
    tasks_speculated: int = 0
    recompute_bytes: int = 0


@dataclass
class TransportProfile:
    """Wall-clock breakdown of where an executor's overhead goes.

    Accumulated over the executor's lifetime (one instance per
    :class:`~repro.engine.context.ClusterContext`); purely diagnostic —
    it never feeds the simulated clock.  The buckets:

    ``submit_seconds``
        Handing work to a worker: ``Process.start()`` on the fork-per-
        task backend, ``Connection.send`` of a task batch on the pool.
    ``serialize_seconds``
        Pickling task batches / unpickling and copying out results
        (driver side only; worker-side compute is reported separately).
    ``ipc_wait_seconds``
        Driver time blocked in ``multiprocessing.connection.wait`` for
        worker pipes/sentinels.
    ``compute_seconds``
        In-task time: measured in the driver for in-driver backends,
        reported by the worker for process-based ones.
    ``payload_bytes``
        Bytes that crossed a process boundary (pickle blobs plus
        out-of-band arena buffers), both directions.
    ``network_bytes``
        Bytes that crossed a *socket* (frame headers included), both
        directions — zero for every local backend, the wire total for
        the cluster backend (task batches, results, heartbeats, remote
        block fetches).
    ``network_raw_bytes``
        The same traffic *before* wire compression (cluster-only).
        Equal to ``network_bytes`` when ``REPRO_WIRE_CODEC=off``;
        the gap between the two is the compression saving.
    ``round_trips``
        Framed socket messages exchanged (again cluster-only): batch
        dispatches, result/err replies, ping/pong pairs, fetches.
    ``overlap_seconds``
        Driver serialize/send time spent while at least one other link
        already had work in flight (cluster-only) — the pipelining win:
        wall clock the dispatch path hid behind remote compute.
    """

    submit_seconds: float = 0.0
    serialize_seconds: float = 0.0
    ipc_wait_seconds: float = 0.0
    compute_seconds: float = 0.0
    payload_bytes: int = 0
    network_bytes: int = 0
    network_raw_bytes: int = 0
    round_trips: int = 0
    overlap_seconds: float = 0.0

    def reset(self) -> None:
        self.submit_seconds = 0.0
        self.serialize_seconds = 0.0
        self.ipc_wait_seconds = 0.0
        self.compute_seconds = 0.0
        self.payload_bytes = 0
        self.network_bytes = 0
        self.network_raw_bytes = 0
        self.round_trips = 0
        self.overlap_seconds = 0.0

    def as_dict(self) -> dict[str, float | int]:
        return {
            "submit_seconds": self.submit_seconds,
            "serialize_seconds": self.serialize_seconds,
            "ipc_wait_seconds": self.ipc_wait_seconds,
            "compute_seconds": self.compute_seconds,
            "payload_bytes": self.payload_bytes,
            "network_bytes": self.network_bytes,
            "network_raw_bytes": self.network_raw_bytes,
            "round_trips": self.round_trips,
            "overlap_seconds": self.overlap_seconds,
        }


def _guard(task: Task) -> Callable[[], TaskOutcome]:
    """Turn a task into one that reports failure instead of raising."""

    def guarded() -> TaskOutcome:
        try:
            return TaskOutcome(value=task())
        except Exception as exc:  # noqa: BLE001 - outcome channel
            return TaskOutcome(error=exc)

    return guarded


def _result_nbytes(obj: Any) -> int:
    """Total ndarray payload bytes in a task result tree."""
    if isinstance(obj, np.ndarray):
        return obj.nbytes
    if isinstance(obj, (tuple, list)):
        return sum(_result_nbytes(o) for o in obj)
    if isinstance(obj, dict):
        return sum(_result_nbytes(v) for v in obj.values())
    return 0


class Executor:
    """Runs a batch of independent zero-argument tasks, preserving order.

    Results are positionally aligned with ``tasks`` no matter in which
    order the backend completes them — the determinism contract the RDD
    layer relies on.  Subclasses must override at least one of ``run``
    (raise-on-first-error values) or ``run_outcomes`` (per-task
    :class:`TaskOutcome` records); each base method is implemented in
    terms of the other.
    """

    name = "abstract"

    def __init__(self, workers: int | None = None) -> None:
        workers = default_workers() if workers is None else int(workers)
        if workers < 1:
            raise ValueError("local_workers must be >= 1")
        self.workers = workers
        self.transport = TransportProfile()
        self._closed = False

    def run(self, tasks: Sequence[Task]) -> list[Any]:
        return [outcome.unwrap() for outcome in self.run_outcomes(tasks)]

    def _run_inline(
        self, tasks: Sequence[Task]
    ) -> list[TaskOutcome]:
        """In-driver fallback shared by the process-based backends for
        degenerate batches (one task, or one worker)."""
        outcomes = []
        for task in tasks:
            started = time.perf_counter()
            outcomes.append(_guard(task)())
            self.transport.compute_seconds += time.perf_counter() - started
        return outcomes

    def run_outcomes(
        self,
        tasks: Sequence[Task],
        *,
        speculation: SpeculationPolicy | None = None,
        speculative_tasks: Sequence[Task] | None = None,
        on_speculate: Callable[[int], None] | None = None,
    ) -> list[TaskOutcome]:
        """Run a batch, one :class:`TaskOutcome` per task.

        ``speculative_tasks`` are clean backup copies, positionally
        aligned with ``tasks``; backends that cannot observe in-flight
        tasks (this base implementation, used by ``serial``) ignore
        speculation — it is an optimisation, never a correctness hook.
        """
        del speculation, speculative_tasks, on_speculate
        return list(self.run([_guard(task) for task in tasks]))

    def close(self) -> None:
        """Release pooled resources (idempotent)."""
        self._closed = True

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}(workers={self.workers})"


class SerialExecutor(Executor):
    """The original behaviour: run every task in the driver loop."""

    name = "serial"

    def run(self, tasks: Sequence[Task]) -> list[Any]:
        results = []
        for task in tasks:
            started = time.perf_counter()
            results.append(task())
            self.transport.compute_seconds += time.perf_counter() - started
        return results


class _TimedCall:
    """Callable wrapper recording its own start time and duration, so
    speculation only considers tasks that actually started running."""

    __slots__ = ("fn", "started", "duration")

    def __init__(self, fn: Callable[[], TaskOutcome]) -> None:
        self.fn = fn
        self.started: float | None = None
        self.duration: float | None = None

    def __call__(self) -> TaskOutcome:
        self.started = time.monotonic()
        outcome = self.fn()
        self.duration = time.monotonic() - self.started
        return outcome


class ThreadExecutor(Executor):
    """Thread-pool backend; parallel because the kernels release the GIL."""

    name = "threads"

    def __init__(self, workers: int | None = None) -> None:
        super().__init__(workers)
        self._pool: ThreadPoolExecutor | None = None

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="repro-exec"
            )
        return self._pool

    def run(self, tasks: Sequence[Task]) -> list[Any]:
        def _timed(task: Task) -> Any:
            started = time.perf_counter()
            result = task()
            # float += is a single bytecode pair under the GIL; worst
            # case a racing update is lost, which is fine for a
            # diagnostic counter.
            self.transport.compute_seconds += time.perf_counter() - started
            return result

        if len(tasks) <= 1 or self.workers == 1:
            return [_timed(task) for task in tasks]
        return list(self._ensure_pool().map(_timed, tasks))

    def run_outcomes(
        self,
        tasks: Sequence[Task],
        *,
        speculation: SpeculationPolicy | None = None,
        speculative_tasks: Sequence[Task] | None = None,
        on_speculate: Callable[[int], None] | None = None,
    ) -> list[TaskOutcome]:
        if speculation is None or len(tasks) <= 1 or self.workers == 1:
            return super().run_outcomes(tasks)
        return self._run_speculative(
            tasks, speculation, speculative_tasks or tasks, on_speculate
        )

    def _run_speculative(
        self,
        tasks: Sequence[Task],
        policy: SpeculationPolicy,
        duplicates: Sequence[Task],
        on_speculate: Callable[[int], None] | None,
    ) -> list[TaskOutcome]:
        n = len(tasks)
        pool = self._ensure_pool()
        outcomes: list[TaskOutcome | None] = [None] * n
        durations: list[float] = []
        speculated: set[int] = set()
        futures: dict[Any, tuple[int, _TimedCall]] = {}
        for i, task in enumerate(tasks):
            call = _TimedCall(_guard(task))
            futures[pool.submit(call)] = (i, call)
        while any(o is None for o in outcomes):
            done, _ = futures_wait(
                list(futures),
                timeout=policy.poll_interval_seconds,
                return_when=FIRST_COMPLETED,
            )
            for fut in done:
                i, call = futures.pop(fut)
                outcome = fut.result()  # guarded: never raises
                if outcomes[i] is None:
                    outcomes[i] = outcome
                    if call.duration is not None:
                        durations.append(call.duration)
                        self.transport.compute_seconds += call.duration
            threshold = policy.threshold(durations, n)
            if threshold is None:
                continue
            now = time.monotonic()
            for fut, (i, call) in list(futures.items()):
                if (
                    outcomes[i] is None
                    and i not in speculated
                    and call.started is not None
                    and now - call.started > threshold
                ):
                    speculated.add(i)
                    backup = _TimedCall(_guard(duplicates[i]))
                    futures[pool.submit(backup)] = (i, backup)
                    if on_speculate is not None:
                        on_speculate(i)
        # Loser duplicates still queued or running are abandoned: their
        # results are pure values with no external resources to release.
        return outcomes  # type: ignore[return-value]

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        super().close()


# ----------------------------------------------------------------------
# Process backend: fork-per-task workers, shared-memory result transport.
# ----------------------------------------------------------------------

# Arrays smaller than this ride the normal pickle channel; the fixed cost
# of creating/opening a shared-memory segment only pays off above it.
_SHM_MIN_BYTES = 1 << 16


class _ShmArray:
    """Pickle-cheap handle to an ndarray parked in shared memory."""

    __slots__ = ("segment", "shape", "dtype")

    def __init__(self, segment: str, shape: tuple, dtype: str) -> None:
        self.segment = segment
        self.shape = shape
        self.dtype = dtype

    def __getstate__(self):
        return (self.segment, self.shape, self.dtype)

    def __setstate__(self, state):
        self.segment, self.shape, self.dtype = state


def _pack(obj: Any) -> Any:
    """Swap large ndarrays in a result tree for shared-memory handles."""
    if isinstance(obj, np.ndarray) and obj.nbytes >= _SHM_MIN_BYTES:
        seg = shared_memory.SharedMemory(create=True, size=obj.nbytes)
        np.ndarray(obj.shape, obj.dtype, buffer=seg.buf)[...] = obj
        handle = _ShmArray(seg.name, obj.shape, obj.dtype.str)
        seg.close()
        return handle
    if isinstance(obj, tuple):
        return tuple(_pack(o) for o in obj)
    if isinstance(obj, list):
        return [_pack(o) for o in obj]
    if isinstance(obj, dict):
        return {k: _pack(v) for k, v in obj.items()}
    return obj


def _unpack(obj: Any) -> Any:
    """Materialise shared-memory handles back into driver-owned arrays."""
    if isinstance(obj, _ShmArray):
        seg = shared_memory.SharedMemory(name=obj.segment)
        try:
            arr = np.ndarray(
                obj.shape, np.dtype(obj.dtype), buffer=seg.buf
            ).copy()
        finally:
            seg.close()
            seg.unlink()
        return arr
    if isinstance(obj, tuple):
        return tuple(_unpack(o) for o in obj)
    if isinstance(obj, list):
        return [_unpack(o) for o in obj]
    if isinstance(obj, dict):
        return {k: _unpack(v) for k, v in obj.items()}
    return obj


def _discard_packed(obj: Any) -> None:
    """Release a packed result without materialising it — used to drain
    the losing copy of a speculated task so its segments don't leak."""
    if isinstance(obj, _ShmArray):
        try:
            seg = shared_memory.SharedMemory(name=obj.segment)
        except FileNotFoundError:  # already unlinked
            return
        seg.close()
        seg.unlink()
    elif isinstance(obj, (tuple, list)):
        for item in obj:
            _discard_packed(item)
    elif isinstance(obj, dict):
        for item in obj.values():
            _discard_packed(item)


def _picklable_error(exc: BaseException) -> BaseException:
    """The exception itself if it pickles, else a text stand-in."""
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:  # noqa: BLE001 - any pickle failure
        detail = "".join(
            traceback.format_exception(type(exc), exc, exc.__traceback__)
        )
        return RemoteTaskError(f"{type(exc).__name__}: {exc}\n{detail}")


def _child_main(fn: Task, conn: mp_connection.Connection) -> None:
    """Worker-child body: run one task, report, exit immediately.

    ``os._exit`` skips the forked interpreter's atexit/cleanup machinery
    on purpose — the child must never run driver-side teardown.  An
    injected "kill" never reaches the send: the task itself ``os._exit``s
    with a nonzero code and the driver sees a silent death.
    """
    status = 0
    try:
        try:
            value = fn()
        except BaseException as exc:  # noqa: BLE001 - outcome channel
            conn.send(("err", _picklable_error(exc)))
        else:
            conn.send(("ok", _pack(value)))
        conn.close()
    except BaseException:  # pragma: no cover - broken pipe to driver
        status = 1
    finally:
        os._exit(status)


@dataclass
class _Child:
    """Driver-side record of one in-flight worker process."""

    index: int
    proc: Any
    conn: mp_connection.Connection
    started: float
    speculative: bool = False


# Process executors with possibly-live children, reaped at interpreter
# exit so an aborted run can't leave orphan workers behind.
_LIVE_PROCESS_EXECUTORS: "weakref.WeakSet[ProcessExecutor]" = weakref.WeakSet()
_REAPER_REGISTERED = False


def _reap_leaked_children() -> None:
    for executor in list(_LIVE_PROCESS_EXECUTORS):
        executor.close()


class ProcessExecutor(Executor):
    """Fork-per-task process backend with shared-memory result transport.

    Each task runs in its own forked child (inheriting the task closure
    copy-on-write), reporting through a dedicated pipe; the driver waits
    on both the pipe and the process *sentinel*, so a child that dies
    without reporting — a crash, an injected kill — surfaces as a
    :class:`WorkerDied` outcome for that one task instead of hanging or
    aborting the batch.
    """

    name = "processes"

    def __init__(self, workers: int | None = None) -> None:
        super().__init__(workers)
        if "fork" not in mp.get_all_start_methods():
            raise ValueError(
                "the 'processes' backend needs the fork start method "
                "(unavailable on this platform); use 'threads' instead"
            )
        self._children: set[Any] = set()
        global _REAPER_REGISTERED
        _LIVE_PROCESS_EXECUTORS.add(self)
        if not _REAPER_REGISTERED:
            atexit.register(_reap_leaked_children)
            _REAPER_REGISTERED = True

    def run_outcomes(
        self,
        tasks: Sequence[Task],
        *,
        speculation: SpeculationPolicy | None = None,
        speculative_tasks: Sequence[Task] | None = None,
        on_speculate: Callable[[int], None] | None = None,
    ) -> list[TaskOutcome]:
        if not tasks:
            return []
        if len(tasks) <= 1 or self.workers == 1:
            # In-driver fallback: injected kills degrade to
            # SimulatedWorkerDeath (see FaultPlan.wrap), handled the same
            # way by the recovery layer.
            return self._run_inline(tasks)
        return self._run_forked(
            tasks, speculation, speculative_tasks or tasks, on_speculate
        )

    # ------------------------------------------------------------------
    def _spawn(
        self, ctx: Any, index: int, fn: Task, *, speculative: bool
    ) -> _Child:
        recv_conn, send_conn = ctx.Pipe(duplex=False)
        proc = ctx.Process(
            target=_child_main, args=(fn, send_conn), daemon=True
        )
        started = time.perf_counter()
        proc.start()
        self.transport.submit_seconds += time.perf_counter() - started
        send_conn.close()
        self._children.add(proc)
        return _Child(
            index=index,
            proc=proc,
            conn=recv_conn,
            started=time.monotonic(),
            speculative=speculative,
        )

    def _retire(self, child: _Child, *, kill: bool = False) -> None:
        """Drain, stop and reap one child (used for losers and cleanup)."""
        try:
            if child.conn.poll(0.05 if kill else 0):
                tag, payload = child.conn.recv()
                if tag == "ok":
                    _discard_packed(payload)
        except (EOFError, OSError):
            pass
        if kill and child.proc.is_alive():
            child.proc.terminate()
        child.proc.join(timeout=5.0)
        child.conn.close()
        self._children.discard(child.proc)

    def _run_forked(
        self,
        tasks: Sequence[Task],
        policy: SpeculationPolicy | None,
        duplicates: Sequence[Task],
        on_speculate: Callable[[int], None] | None,
    ) -> list[TaskOutcome]:
        # Start the resource tracker *before* forking so parent and
        # workers share one tracker: segments registered by a worker at
        # create are unregistered by the driver's unlink, and nothing is
        # reported leaked.
        from multiprocessing import resource_tracker

        resource_tracker.ensure_running()
        ctx = mp.get_context("fork")
        n = len(tasks)
        outcomes: list[TaskOutcome | None] = [None] * n
        held_errors: dict[int, BaseException] = {}
        durations: list[float] = []
        speculated: set[int] = set()
        pending: deque[int] = deque(range(n))
        active: list[_Child] = []
        try:
            while any(o is None for o in outcomes):
                while pending and len(active) < self.workers:
                    i = pending.popleft()
                    active.append(
                        self._spawn(ctx, i, tasks[i], speculative=False)
                    )
                waitmap: dict[Any, _Child] = {}
                for child in active:
                    waitmap[child.conn] = child
                    waitmap[child.proc.sentinel] = child
                timeout = (
                    policy.poll_interval_seconds if policy is not None else None
                )
                wait_started = time.perf_counter()
                ready = mp_connection.wait(list(waitmap), timeout=timeout)
                self.transport.ipc_wait_seconds += (
                    time.perf_counter() - wait_started
                )
                handled: set[int] = set()
                for obj in ready:
                    child = waitmap[obj]
                    if id(child) in handled:
                        continue
                    handled.add(id(child))
                    self._complete(child, outcomes, held_errors, durations, active)
                if policy is None:
                    continue
                threshold = policy.threshold(durations, n)
                if threshold is None:
                    continue
                now = time.monotonic()
                for child in list(active):
                    if (
                        not child.speculative
                        and child.index not in speculated
                        and outcomes[child.index] is None
                        and now - child.started > threshold
                        and len(active) < self.workers
                    ):
                        speculated.add(child.index)
                        active.append(
                            self._spawn(
                                ctx,
                                child.index,
                                duplicates[child.index],
                                speculative=True,
                            )
                        )
                        if on_speculate is not None:
                            on_speculate(child.index)
        finally:
            for child in list(active):
                self._retire(child, kill=True)
        return outcomes  # type: ignore[return-value]

    def _complete(
        self,
        child: _Child,
        outcomes: list[TaskOutcome | None],
        held_errors: dict[int, BaseException],
        durations: list[float],
        active: list[_Child],
    ) -> None:
        """Absorb one ready child: a result, an error, or a death."""
        msg = None
        try:
            if child.conn.poll():
                msg = child.conn.recv()
        except (EOFError, OSError):
            msg = None
        active.remove(child)
        child.proc.join(timeout=5.0)
        child.conn.close()
        self._children.discard(child.proc)
        i = child.index
        if msg is not None and msg[0] == "ok":
            if outcomes[i] is None:
                unpack_started = time.perf_counter()
                outcomes[i] = TaskOutcome(value=_unpack(msg[1]))
                self.transport.serialize_seconds += (
                    time.perf_counter() - unpack_started
                )
                duration = time.monotonic() - child.started
                durations.append(duration)
                self.transport.compute_seconds += duration
                self.transport.payload_bytes += _result_nbytes(
                    outcomes[i].value
                )
            else:  # losing copy of a speculated task
                _discard_packed(msg[1])
            return
        if msg is not None:  # ("err", exception)
            held_errors[i] = msg[1]
        else:
            exitcode = child.proc.exitcode
            held_errors.setdefault(
                i,
                WorkerDied(
                    f"worker for task {i} exited with code {exitcode} "
                    "before reporting a result"
                ),
            )
        # Only conclude failure once no other copy of the task is still
        # running (a speculative duplicate may yet succeed).
        if outcomes[i] is None and not any(c.index == i for c in active):
            outcomes[i] = TaskOutcome(error=held_errors[i])

    def close(self) -> None:
        for proc in list(self._children):
            if proc.is_alive():
                proc.terminate()
            proc.join(timeout=5.0)
            self._children.discard(proc)
        super().close()


# ----------------------------------------------------------------------
# Pool backend: persistent forked workers, protocol-5 arena transport.
# ----------------------------------------------------------------------

# Buffers below this ride inside the pickle blob; parking them in the
# arena only pays once the memcpy beats the pickle-copy + descriptor cost.
_ARENA_MIN_BYTES = 1 << 14
# First arena segment size; segments double (at least) on overflow, so a
# steady-state workload settles into one segment per direction quickly.
_ARENA_INITIAL_BYTES = 1 << 20


def _unlink_segment_names(names: Sequence[str]) -> None:
    """Best-effort unlink of shared-memory segments by name (cleanup of
    a dead or stopped worker's arena; already-gone segments are fine)."""
    for name in names:
        try:
            seg = shared_memory.SharedMemory(name=name)
        except FileNotFoundError:
            continue
        try:
            seg.unlink()
        except FileNotFoundError:  # pragma: no cover - unlink race
            pass
        seg.close()


class _Arena:
    """Grow-only shared-memory bump allocator, recycled between batches.

    ``write`` appends raw bytes at the current offset and returns a
    ``(segment_name, offset, nbytes)`` descriptor the peer can map.  When
    a batch overflows the current segment, a larger one is created and
    the old segment is *retired* — kept alive until the next ``recycle``
    because descriptors already handed out may still point into it.
    ``recycle`` (called once per batch, after the peer is done with the
    previous batch's buffers) rewinds the offset and unlinks retired
    segments, so steady state is zero segment churn: one mapping reused
    for every task.
    """

    __slots__ = ("shm", "capacity", "offset", "retired", "segments_created")

    def __init__(self) -> None:
        self.shm: shared_memory.SharedMemory | None = None
        self.capacity = 0
        self.offset = 0
        self.retired: list[shared_memory.SharedMemory] = []
        self.segments_created = 0

    def recycle(self) -> None:
        self.offset = 0
        for seg in self.retired:
            try:
                seg.unlink()
            except FileNotFoundError:  # pragma: no cover - unlink race
                pass
            seg.close()
        self.retired.clear()

    def write(self, raw) -> tuple[str, int, int]:
        nbytes = raw.nbytes
        if self.shm is None or self.offset + nbytes > self.capacity:
            grown = shared_memory.SharedMemory(
                create=True,
                size=max(_ARENA_INITIAL_BYTES, 2 * self.capacity, nbytes),
            )
            if self.shm is not None:
                self.retired.append(self.shm)
            self.shm = grown
            self.capacity = grown.size
            self.offset = 0
            self.segments_created += 1
        offset = self.offset
        self.shm.buf[offset : offset + nbytes] = raw
        self.offset = offset + nbytes
        return (self.shm.name, offset, nbytes)

    def destroy(self) -> None:
        for seg in [*self.retired, self.shm]:
            if seg is None:
                continue
            try:
                seg.unlink()
            except FileNotFoundError:
                pass
            seg.close()
        self.retired.clear()
        self.shm = None
        self.capacity = 0
        self.offset = 0


class _ArenaReader:
    """Read side of a peer's arena: maps segments by name, caches the
    mappings so steady state opens no new segment per batch."""

    __slots__ = ("segments",)

    def __init__(self) -> None:
        self.segments: dict[str, shared_memory.SharedMemory] = {}

    def view(self, name: str, offset: int, nbytes: int):
        seg = self.segments.get(name)
        if seg is None or seg.buf is None:
            # seg.buf is None for a mapping a previous prune half-closed:
            # SharedMemory.close() releases its memoryview before closing
            # the mmap, so a BufferError from live views leaves the object
            # unusable but cached.  Re-attach by name.
            seg = shared_memory.SharedMemory(name=name)
            self.segments[name] = seg
        return seg.buf[offset : offset + nbytes]

    def prune(self, keep: frozenset | set) -> None:
        """Drop mappings of segments the peer has retired.  A mapping
        with live buffer views can't be closed yet (BufferError); it is
        kept and retried on the next prune."""
        for name in list(self.segments):
            if name in keep:
                continue
            seg = self.segments.pop(name)
            try:
                seg.close()
            except BufferError:  # pragma: no cover - views still alive
                self.segments[name] = seg

    def close(self) -> None:
        self.prune(frozenset())


def _dump_with_arena(obj: Any, arena: _Arena, pickler: Any):
    """Pickle ``obj`` with protocol 5, parking large contiguous buffers
    in ``arena``; returns ``(blob, descriptors)``.  Non-contiguous or
    small buffers stay in-band — correctness never depends on a buffer
    taking the arena path."""
    descriptors: list[tuple[str, int, int]] = []

    # buffer_callback contract (PEP 574): a *truthy* return keeps the
    # buffer in-band, a *falsy* one emits a NEXT_BUFFER opcode and makes
    # the caller responsible for transporting it — here, via the arena.
    def _callback(buffer: pickle.PickleBuffer) -> bool:
        try:
            raw = buffer.raw()
        except Exception:  # noqa: BLE001 - non-contiguous: keep in-band
            return True
        if raw.nbytes < _ARENA_MIN_BYTES:
            return True
        descriptors.append(arena.write(raw))
        return False

    blob = pickler.dumps(obj, protocol=5, buffer_callback=_callback)
    return blob, descriptors


def _load_with_arena(
    blob: bytes,
    descriptors: Sequence[tuple[str, int, int]],
    reader: _ArenaReader,
) -> Any:
    """Inverse of :func:`_dump_with_arena`; the result may hold views
    into the peer's arena — copy before the next batch recycles it."""
    buffers = [reader.view(*descriptor) for descriptor in descriptors]
    return pickle.loads(blob, buffers=buffers)


def _own_tree(obj: Any) -> Any:
    """Deep-copy ndarrays that don't own writable data (arena views,
    in-band protocol-5 buffers) so results outlive the arena slot they
    arrived in — one memcpy per array, same cost as the shm path."""
    if isinstance(obj, np.ndarray):
        if obj.flags.owndata and obj.flags.writeable:
            return obj
        return obj.copy()
    if isinstance(obj, tuple):
        return tuple(_own_tree(o) for o in obj)
    if isinstance(obj, list):
        return [_own_tree(o) for o in obj]
    if isinstance(obj, dict):
        return {k: _own_tree(v) for k, v in obj.items()}
    return obj


def _pool_worker_main(
    conn: mp_connection.Connection, result_arenas: int = 1
) -> None:
    """Long-lived worker body: loop over task batches until "stop".

    One ``("run", blob, descriptors)`` message carries a whole batch of
    ``(key, fn)`` pairs; task buffers are read from the driver's task
    arena, results are pickled per task with buffers parked in this
    worker's own result arena (recycled each batch — no per-task segment
    create/unlink).  Tasks run strictly in batch order, which is what
    lets the driver attribute a silent death to the first unreported
    task.  An injected kill ``os._exit``s inside ``fn`` — the arena
    segments it leaves behind are unlinked by the driver (it learned
    their names from earlier result descriptors) or, as a last resort,
    by the shared resource tracker at interpreter exit.

    ``result_arenas`` sizes a ring of result arenas cycled per batch.
    The pool's strict alternation (the driver copies a batch's results
    out before dispatching the next one) only needs 1.  A pipelined
    peer — the cluster daemon — may still be copying batch N's result
    buffers while this worker computes batch N+1, so it passes its
    in-flight window: recycling a slot is then safe because the peer
    never dispatches batch N+W before batch N is fully drained.
    """
    reader = _ArenaReader()
    arenas = [_Arena() for _ in range(max(1, result_arenas))]
    batch_seq = 0
    status = 0
    try:
        while True:
            msg = conn.recv()
            if msg[0] == "stop":
                break
            _tag, blob, descriptors = msg
            arena = arenas[batch_seq % len(arenas)]
            batch_seq += 1
            arena.recycle()
            reader.prune({descriptor[0] for descriptor in descriptors})
            items = _load_with_arena(blob, descriptors, reader)
            for key, fn in items:
                started = time.perf_counter()
                try:
                    value = fn()
                except BaseException as exc:  # noqa: BLE001 - outcome channel
                    conn.send(
                        (
                            "err",
                            key,
                            _picklable_error(exc),
                            time.perf_counter() - started,
                        )
                    )
                    continue
                payload, out_descriptors = _dump_with_arena(
                    value, arena, pickle
                )
                del value
                conn.send(
                    (
                        "ok",
                        key,
                        payload,
                        out_descriptors,
                        time.perf_counter() - started,
                    )
                )
            del items
    except (EOFError, OSError, KeyboardInterrupt):
        pass
    except BaseException:  # pragma: no cover - unexpected protocol error
        status = 1
    finally:
        for arena in arenas:
            arena.destroy()
        reader.close()
        try:
            conn.close()
        except Exception:  # noqa: BLE001 - teardown
            pass
        os._exit(status)


@dataclass
class _PoolWorker:
    """Driver-side record of one persistent pool worker."""

    proc: Any
    conn: mp_connection.Connection
    task_arena: _Arena
    reader: _ArenaReader
    assigned: deque  # of (key, is_backup) in dispatch order
    batch_started: float = 0.0


class PoolExecutor(Executor):
    """Persistent forked worker pool with zero-copy batch transport.

    Workers are forked once (lazily, on the first multi-task batch) and
    reused for every subsequent batch, so the fork + import-state cost is
    paid ``workers`` times per executor lifetime instead of once per
    task.  See the module docstring for the transport protocol; the
    fault-tolerance contract (sentinel death detection, requeue of
    unstarted work, respawn) matches the ``processes`` backend, so the
    whole :class:`FaultPlan` / :func:`run_with_recovery` machinery works
    unchanged on top of it.

    ``task_batch`` caps how many tasks ship per IPC round; ``0`` picks
    an adaptive size (``ceil(n / (2 * workers))``) that gives every
    worker two rounds of work for tail balancing.  Batching only affects
    transport — task identity, result order and fault-injection
    coordinates are those of the flat task list.
    """

    name = "pool"

    def __init__(
        self, workers: int | None = None, *, task_batch: int | None = None
    ) -> None:
        super().__init__(workers)
        if "fork" not in mp.get_all_start_methods():
            raise ValueError(
                "the 'pool' backend needs the fork start method "
                "(unavailable on this platform); use 'threads' instead"
            )
        if _cloudpickle is None:
            raise ValueError(
                "the 'pool' backend needs cloudpickle for task transport; "
                "use 'processes' instead"
            )
        task_batch = 0 if task_batch is None else int(task_batch)
        if task_batch < 0:
            raise ValueError("task_batch must be >= 0 (0 = adaptive)")
        self.task_batch = task_batch
        self._pool: list[_PoolWorker] = []
        self._mp_ctx: Any = None
        self.workers_forked = 0
        self.workers_respawned = 0
        self.batches_sent = 0
        global _REAPER_REGISTERED
        _LIVE_PROCESS_EXECUTORS.add(self)
        if not _REAPER_REGISTERED:
            atexit.register(_reap_leaked_children)
            _REAPER_REGISTERED = True

    # ------------------------------------------------------------------
    def arena_stats(self) -> dict[str, list[int]]:
        """Per-live-worker arena segment counts (diagnostic/test hook):
        how many task-arena segments the driver ever created for each
        worker, and how many result-arena segments it currently maps.
        Steady state is 1 and 1 — reuse, not churn."""
        return {
            "task_segments": [
                w.task_arena.segments_created for w in self._pool
            ],
            "result_segments": [len(w.reader.segments) for w in self._pool],
        }

    def run_outcomes(
        self,
        tasks: Sequence[Task],
        *,
        speculation: SpeculationPolicy | None = None,
        speculative_tasks: Sequence[Task] | None = None,
        on_speculate: Callable[[int], None] | None = None,
    ) -> list[TaskOutcome]:
        if not tasks:
            return []
        if len(tasks) <= 1 or self.workers == 1:
            # In-driver fallback: injected kills degrade to
            # SimulatedWorkerDeath (see FaultPlan.wrap).
            return self._run_inline(tasks)
        return self._run_pooled(
            tasks, speculation, speculative_tasks or tasks, on_speculate
        )

    # ------------------------------------------------------------------
    def _ensure_pool(self) -> None:
        if self._mp_ctx is None:
            # Shared resource tracker before the first fork, for the same
            # register/unregister balance reason as the processes backend.
            from multiprocessing import resource_tracker

            resource_tracker.ensure_running()
            self._mp_ctx = mp.get_context("fork")
        while len(self._pool) < self.workers:
            self._pool.append(self._fork_worker())

    def _fork_worker(self) -> _PoolWorker:
        parent_conn, child_conn = self._mp_ctx.Pipe(duplex=True)
        proc = self._mp_ctx.Process(
            target=_pool_worker_main, args=(child_conn,), daemon=True
        )
        started = time.perf_counter()
        proc.start()
        self.transport.submit_seconds += time.perf_counter() - started
        child_conn.close()
        self.workers_forked += 1
        return _PoolWorker(
            proc=proc,
            conn=parent_conn,
            task_arena=_Arena(),
            reader=_ArenaReader(),
            assigned=deque(),
        )

    def _retire_worker(self, worker: _PoolWorker) -> None:
        """Reap one worker (already stopped or dead) and unlink every
        arena segment tied to it."""
        worker.proc.join(timeout=5.0)
        if worker.proc.is_alive():  # pragma: no cover - stuck worker
            worker.proc.terminate()
            worker.proc.join(timeout=5.0)
        result_segments = list(worker.reader.segments)
        worker.reader.close()
        # A cleanly-stopped worker unlinked its own result arena; a
        # killed one did not — unlink whatever is still there.
        _unlink_segment_names(result_segments)
        worker.task_arena.destroy()
        try:
            worker.conn.close()
        except OSError:  # pragma: no cover - already closed
            pass

    def _replace_worker(self, worker: _PoolWorker) -> None:
        self._retire_worker(worker)
        self._pool[self._pool.index(worker)] = self._fork_worker()
        self.workers_respawned += 1

    def _send_batch(
        self,
        worker: _PoolWorker,
        entries: list[tuple[int, Task, bool]],
    ) -> bool:
        """Ship one batch to a worker; False if the worker is gone (the
        caller requeues the entries and replaces the worker)."""
        worker.task_arena.recycle()
        serialize_started = time.perf_counter()
        payload = [(key, fn) for key, fn, _ in entries]
        blob, descriptors = _dump_with_arena(
            payload, worker.task_arena, _cloudpickle
        )
        send_started = time.perf_counter()
        try:
            worker.conn.send(("run", blob, descriptors))
        except (OSError, ValueError):
            return False
        now = time.perf_counter()
        self.transport.serialize_seconds += send_started - serialize_started
        self.transport.submit_seconds += now - send_started
        self.transport.payload_bytes += len(blob) + sum(
            descriptor[2] for descriptor in descriptors
        )
        for key, _fn, is_backup in entries:
            worker.assigned.append((key, is_backup))
        worker.batch_started = time.monotonic()
        self.batches_sent += 1
        return True

    def _copies_in_flight(self, key: int) -> bool:
        return any(
            assigned_key == key
            for worker in self._pool
            for assigned_key, _backup in worker.assigned
        )

    def _run_pooled(
        self,
        tasks: Sequence[Task],
        policy: SpeculationPolicy | None,
        duplicates: Sequence[Task],
        on_speculate: Callable[[int], None] | None,
    ) -> list[TaskOutcome]:
        self._ensure_pool()
        n = len(tasks)
        outcomes: list[TaskOutcome | None] = [None] * n
        held_errors: dict[int, BaseException] = {}
        durations: list[float] = []
        speculated: set[int] = set()
        pending: deque[int] = deque(range(n))
        limit = self.task_batch or max(1, -(-n // (2 * self.workers)))
        while any(o is None for o in outcomes):
            for worker in list(self._pool):
                if worker.assigned or not pending:
                    continue
                entries = []
                while pending and len(entries) < limit:
                    i = pending.popleft()
                    if outcomes[i] is None:
                        entries.append((i, tasks[i], False))
                if not entries:
                    continue
                if not self._send_batch(worker, entries):
                    # Worker died while idle; requeue and respawn.
                    pending.extendleft(
                        key for key, _fn, _b in reversed(entries)
                    )
                    self._replace_worker(worker)
            waitmap: dict[Any, _PoolWorker] = {}
            for worker in self._pool:
                if worker.assigned:
                    waitmap[worker.conn] = worker
                    waitmap[worker.proc.sentinel] = worker
            if not waitmap:
                continue  # conclusions above freed work; loop re-feeds
            timeout = (
                policy.poll_interval_seconds if policy is not None else None
            )
            wait_started = time.perf_counter()
            ready = mp_connection.wait(list(waitmap), timeout=timeout)
            self.transport.ipc_wait_seconds += (
                time.perf_counter() - wait_started
            )
            handled: set[int] = set()
            for obj in ready:
                worker = waitmap[obj]
                if id(worker) in handled:
                    continue
                handled.add(id(worker))
                self._drain_worker(
                    worker, outcomes, held_errors, durations, pending
                )
            if policy is not None:
                self._maybe_speculate(
                    policy,
                    duplicates,
                    outcomes,
                    durations,
                    speculated,
                    on_speculate,
                    n,
                )
        return outcomes  # type: ignore[return-value]

    def _drain_worker(
        self,
        worker: _PoolWorker,
        outcomes: list[TaskOutcome | None],
        held_errors: dict[int, BaseException],
        durations: list[float],
        pending: deque[int],
    ) -> None:
        """Absorb everything a ready worker has to say, then check for
        death.  Messages are drained before the liveness check so results
        a worker managed to send before dying are never lost."""
        while True:
            try:
                if not worker.conn.poll():
                    break
                msg = worker.conn.recv()
            except (EOFError, OSError):
                break
            self._absorb(worker, msg, outcomes, held_errors, durations)
        if not worker.proc.is_alive() and worker.assigned:
            self._handle_death(worker, outcomes, held_errors, pending)

    def _absorb(
        self,
        worker: _PoolWorker,
        msg: tuple,
        outcomes: list[TaskOutcome | None],
        held_errors: dict[int, BaseException],
        durations: list[float],
    ) -> None:
        # Workers process and report strictly in dispatch order.
        if worker.assigned:
            worker.assigned.popleft()
        worker.batch_started = time.monotonic()
        key = msg[1]
        if msg[0] == "ok":
            _tag, _key, payload, descriptors, duration = msg
            if outcomes[key] is None:
                unpack_started = time.perf_counter()
                value = _own_tree(
                    _load_with_arena(payload, descriptors, worker.reader)
                )
                self.transport.serialize_seconds += (
                    time.perf_counter() - unpack_started
                )
                outcomes[key] = TaskOutcome(value=value)
                durations.append(duration)
                self.transport.compute_seconds += duration
                self.transport.payload_bytes += len(payload) + sum(
                    descriptor[2] for descriptor in descriptors
                )
            # A losing speculative copy needs no drain: its arena slot is
            # reclaimed wholesale at the worker's next batch recycle.
            return
        # ("err", key, exception, duration)
        held_errors[key] = msg[2]
        if outcomes[key] is None and not self._copies_in_flight(key):
            outcomes[key] = TaskOutcome(error=held_errors[key])

    def _handle_death(
        self,
        worker: _PoolWorker,
        outcomes: list[TaskOutcome | None],
        held_errors: dict[int, BaseException],
        pending: deque[int],
    ) -> None:
        """A worker died with work outstanding.  In-order processing
        means the first unreported assigned task was in progress and
        takes the blame; the rest never started and are requeued (same
        wrapped callables — the deterministic fault verdict is per
        (batch, index, attempt), not per dispatch)."""
        blamed_key, _blamed_backup = worker.assigned.popleft()
        exitcode = worker.proc.exitcode
        held_errors.setdefault(
            blamed_key,
            WorkerDied(
                f"worker for task {blamed_key} exited with code {exitcode} "
                "before reporting a result"
            ),
        )
        unstarted = list(worker.assigned)
        worker.assigned.clear()
        self._replace_worker(worker)
        for key, is_backup in unstarted:
            if outcomes[key] is not None:
                continue
            if not is_backup:
                pending.append(key)
            elif not self._copies_in_flight(key) and key in held_errors:
                # The backup vanished and its original already failed.
                outcomes[key] = TaskOutcome(error=held_errors[key])
        if outcomes[blamed_key] is None and not self._copies_in_flight(
            blamed_key
        ):
            outcomes[blamed_key] = TaskOutcome(error=held_errors[blamed_key])

    def _maybe_speculate(
        self,
        policy: SpeculationPolicy,
        duplicates: Sequence[Task],
        outcomes: list[TaskOutcome | None],
        durations: list[float],
        speculated: set[int],
        on_speculate: Callable[[int], None] | None,
        n: int,
    ) -> None:
        threshold = policy.threshold(durations, n)
        if threshold is None:
            return
        idle = [
            w for w in self._pool if not w.assigned and w.proc.is_alive()
        ]
        if not idle:
            return
        now = time.monotonic()
        for worker in self._pool:
            if not worker.assigned or not idle:
                continue
            key, is_backup = worker.assigned[0]
            if (
                is_backup
                or key in speculated
                or outcomes[key] is not None
                or now - worker.batch_started <= threshold
            ):
                continue
            target = idle.pop()
            if self._send_batch(target, [(key, duplicates[key], True)]):
                speculated.add(key)
                if on_speculate is not None:
                    on_speculate(key)

    def close(self) -> None:
        for worker in self._pool:
            try:
                worker.conn.send(("stop",))
            except (OSError, ValueError):
                pass
        for worker in self._pool:
            self._retire_worker(worker)
        self._pool.clear()
        super().close()


# ----------------------------------------------------------------------
# Lineage-based recovery: retry rounds with backoff over run_outcomes.
# ----------------------------------------------------------------------

def run_with_recovery(
    executor: Executor,
    tasks: Sequence[Task],
    *,
    fault_plan: FaultPlan | None = None,
    batch: int = 0,
    max_task_retries: int = 3,
    backoff_seconds: float = 0.01,
    speculation: SpeculationPolicy | None = None,
    stats: RecoveryStats | None = None,
) -> list[Any]:
    """Run a task batch, retrying failed tasks from lineage.

    Each engine task closure captures its materialised anchor partitions
    (source arrays or ``persist()``-ed blocks), so re-invoking a failed
    task recomputes exactly the lost partition's fused operator chain
    from its narrowest persisted or source ancestor — the Spark recovery
    model at batch granularity.  A task may fail up to
    ``max_task_retries`` times; rounds are separated by exponential
    backoff (``backoff_seconds * 2**(round-1)``, capped at 1s).  When the
    budget is exhausted the *original* exception is re-raised.

    ``fault_plan`` wraps each attempt with its deterministic injection
    verdict (attempt numbers advance per failure, so a plan with
    ``max_failures_per_task <= max_task_retries`` always converges);
    speculative duplicates are dispatched at the injection horizon and
    therefore always run clean.
    """
    n = len(tasks)
    if n == 0:
        return []
    plan = (
        fault_plan
        if fault_plan is not None and not fault_plan.is_zero
        else None
    )
    driver_pid = os.getpid()
    if stats is None:
        stats = RecoveryStats()
    results: list[Any] = [None] * n
    failures = [0] * n
    pending = list(range(n))
    round_no = 0
    while pending:
        if round_no > 0:
            time.sleep(min(backoff_seconds * (2 ** (round_no - 1)), 1.0))
        if plan is not None:
            wrapped = [
                plan.wrap(
                    tasks[i],
                    batch=batch,
                    index=i,
                    attempt=failures[i],
                    driver_pid=driver_pid,
                )
                for i in pending
            ]
            backups = [
                plan.wrap(
                    tasks[i],
                    batch=batch,
                    index=i,
                    attempt=plan.max_failures_per_task,
                    driver_pid=driver_pid,
                )
                for i in pending
            ]
        else:
            wrapped = [tasks[i] for i in pending]
            backups = wrapped

        def _count_speculation(_index: int) -> None:
            stats.tasks_speculated += 1

        outcomes = executor.run_outcomes(
            wrapped,
            speculation=speculation,
            speculative_tasks=backups,
            on_speculate=_count_speculation,
        )
        next_pending: list[int] = []
        for pos, i in enumerate(pending):
            outcome = outcomes[pos]
            if outcome.ok:
                results[i] = outcome.value
                if round_no > 0:
                    # Tasks that know their lineage (fused chains) expose
                    # a `recovery_bytes` accountant covering every re-run
                    # operator segment plus any non-durable anchor; plain
                    # tasks fall back to the result's payload size.
                    accountant = getattr(tasks[i], "recovery_bytes", None)
                    if accountant is not None:
                        stats.recompute_bytes += int(
                            accountant(outcome.value)
                        )
                    else:
                        stats.recompute_bytes += _result_nbytes(
                            outcome.value
                        )
                continue
            stats.tasks_failed += 1
            failures[i] += 1
            if failures[i] > max_task_retries:
                error = outcome.error
                if hasattr(error, "add_note"):
                    error.add_note(
                        f"task {i} of batch {batch} failed {failures[i]} "
                        f"time(s); max_task_retries={max_task_retries} "
                        "exhausted"
                    )
                raise error
            stats.tasks_retried += 1
            next_pending.append(i)
        pending = next_pending
        round_no += 1
    return results


# ----------------------------------------------------------------------
_BACKENDS: dict[str, type[Executor]] = {
    SerialExecutor.name: SerialExecutor,
    ThreadExecutor.name: ThreadExecutor,
    ProcessExecutor.name: ProcessExecutor,
    PoolExecutor.name: PoolExecutor,
}

# The multi-host backend lives in repro.engine.cluster (which imports
# this module for the worker loop and arena transport), so it is named
# here and instantiated lazily rather than registered in _BACKENDS.
CLUSTER_BACKEND_NAME = "cluster"


def available_backends() -> tuple[str, ...]:
    return (*_BACKENDS, CLUSTER_BACKEND_NAME)


def resolve_backend(name: str | None = None) -> str:
    """Resolve a backend name: explicit argument > env var > ``serial``."""
    if name is None:
        name = os.environ.get(EXECUTOR_ENV_VAR) or SerialExecutor.name
    name = name.strip().lower()
    if name not in _BACKENDS and name != CLUSTER_BACKEND_NAME:
        raise ValueError(
            f"unknown executor backend {name!r}; "
            f"choose from {', '.join(available_backends())}"
        )
    return name


def _resolve_workers(workers: int | None) -> int | None:
    if workers is not None:
        return workers
    env = os.environ.get(WORKERS_ENV_VAR)
    if env is None or not env.strip():
        return None
    try:
        value = int(env)
    except ValueError as exc:
        raise ValueError(
            f"{WORKERS_ENV_VAR} must be an integer, got {env!r}"
        ) from exc
    if value < 1:
        raise ValueError(f"{WORKERS_ENV_VAR} must be >= 1, got {env!r}")
    return value


def resolve_task_batch(task_batch: int | None = None) -> int:
    """Tasks per pool IPC round: explicit argument > ``REPRO_TASK_BATCH``
    env var > ``0`` (adaptive — see :class:`PoolExecutor`)."""
    if task_batch is None:
        env = os.environ.get(TASK_BATCH_ENV_VAR)
        if env is None or not env.strip():
            return 0
        try:
            task_batch = int(env)
        except ValueError as exc:
            raise ValueError(
                f"{TASK_BATCH_ENV_VAR} must be an integer, got {env!r}"
            ) from exc
    task_batch = int(task_batch)
    if task_batch < 0:
        raise ValueError(
            f"task_batch must be >= 0 (0 = adaptive), got {task_batch}"
        )
    return task_batch


def make_executor(
    name: str | None = None,
    workers: int | None = None,
    *,
    task_batch: int | None = None,
    cluster_workers: "Sequence[str] | str | None" = None,
) -> Executor:
    """Instantiate a backend; ``None`` arguments fall back to the
    ``REPRO_EXECUTOR`` / ``REPRO_LOCAL_WORKERS`` / ``REPRO_TASK_BATCH``
    environment variables, then to ``serial`` with one worker per CPU.
    ``cluster_workers`` (addresses, or ``REPRO_WORKERS``) selects the
    daemons of the ``cluster`` backend and is ignored by local ones."""
    backend = resolve_backend(name)
    if backend == CLUSTER_BACKEND_NAME:
        from .cluster import ClusterExecutor

        return ClusterExecutor(
            cluster_workers, task_batch=resolve_task_batch(task_batch)
        )
    if backend == PoolExecutor.name:
        return PoolExecutor(
            _resolve_workers(workers),
            task_batch=resolve_task_batch(task_batch),
        )
    return _BACKENDS[backend](_resolve_workers(workers))
