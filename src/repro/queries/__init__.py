"""Cyber-security query workloads over property graphs.

The paper's benchmark vision requires "typical operations executed in the
cyber-security domain, such as queries on nodes, edges, paths, and
sub-graphs".  This package supplies those four query families plus a
composable workload runner, so a generated dataset can be exercised the
way a deployed graph-based IDS would exercise it:

* **node queries** — host lookup, degree ranking, neighbourhoods;
* **edge queries** — attribute-filtered flow selection (protocol, port,
  state, byte thresholds);
* **path queries** — k-hop reachability and shortest paths (lateral
  movement analysis);
* **sub-graph queries** — traffic motifs: fan-out (scanning), fan-in
  (DDoS convergence), and host-pair aggregation.
"""

from repro.queries.node_queries import (
    degree_top_k,
    neighbors,
    vertex_by_host_id,
)
from repro.queries.edge_queries import EdgeFilter, filter_edges
from repro.queries.path_queries import (
    k_hop_neighborhood,
    reachable_within,
    shortest_path_length,
)
from repro.queries.subgraph_queries import (
    fan_in_motif,
    fan_out_motif,
    host_pair_aggregate,
)
from repro.queries.workload import QueryWorkload, WorkloadReport

__all__ = [
    "vertex_by_host_id",
    "degree_top_k",
    "neighbors",
    "EdgeFilter",
    "filter_edges",
    "k_hop_neighborhood",
    "shortest_path_length",
    "reachable_within",
    "fan_out_motif",
    "fan_in_motif",
    "host_pair_aggregate",
    "QueryWorkload",
    "WorkloadReport",
]
