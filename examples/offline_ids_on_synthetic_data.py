#!/usr/bin/env python3
"""Offline intrusion detection over a *generated* property graph.

The paper's §VI future work is an offline IDS running on the generated
datasets.  This example closes that loop:

1. Build a seed whose capture contains real (injected) attacks, so the
   seed's attribute distributions include attack-like flows.
2. Generate a larger synthetic property graph with PGPBA — the benchmark
   dataset a graph-based IDS would be evaluated on.
3. Run the offline detection pipeline over the synthetic graph (SYN/ACK
   tallies are reconstructed from the PROTOCOL and STATE attributes) and
   over the seed, comparing alarm volumes and detection timing.

Run:  python examples/offline_ids_on_synthetic_data.py
"""

import time

from repro import PGPBA, ClusterContext, build_seed
from repro.detect import DetectionThresholds, OfflineDetectionPipeline
from repro.netflow import FlowTable
from repro.trace import attacks, synthesize_seed_packets
from repro.trace.hosts import ipv4


def main() -> None:
    print("building an attack-bearing seed capture ...")
    background = synthesize_seed_packets(
        duration=20.0, session_rate=40, seed=11
    )
    gt = attacks.syn_flood(
        attacker_ip=ipv4(203, 0, 113, 5),
        victim_ip=ipv4(10, 2, 0, 2),
        start_time=1_000_004.0,
    )
    frames = sorted(background + gt.frames, key=lambda f: f[0])
    seed = build_seed(frames)
    print(
        f"  seed: {seed.graph.n_edges} flows / "
        f"{seed.graph.n_vertices} hosts (includes a SYN flood)"
    )

    print("calibrating thresholds on the clean portion ...")
    clean = build_seed(background)
    thresholds = DetectionThresholds.fit_normal(
        {k: clean.flow_table[k] for k in FlowTable.COLUMN_NAMES},
        window_seconds=5.0,
    )

    print("generating the 20x synthetic benchmark graph ...")
    ctx = ClusterContext(n_nodes=8, executor_cores=12)
    result = PGPBA(fraction=0.3, seed=3).generate(
        seed.graph, seed.analysis, 20 * seed.graph.n_edges, context=ctx
    )
    print(
        f"  synthetic: {result.graph.n_edges} edges / "
        f"{result.graph.n_vertices} vertices"
    )

    pipeline = OfflineDetectionPipeline(thresholds)

    print("\noffline detection on the SEED graph (windowed) ...")
    t0 = time.perf_counter()
    windows = pipeline.detect_windowed(seed.graph, window_seconds=5.0)
    elapsed = time.perf_counter() - t0
    n_alarms = sum(len(w.detections) for w in windows)
    print(
        f"  {len(windows)} windows, {n_alarms} alarms "
        f"in {elapsed * 1e3:.1f} ms"
    )
    for w in windows:
        for det in w.detections:
            print(
                f"    t={w.window_start:.0f}s  {det.kind} "
                f"({det.direction}) ip={det.ip}"
            )

    print("\noffline detection on the SYNTHETIC graph (whole graph) ...")
    t0 = time.perf_counter()
    detections = pipeline.detect(result.graph)
    elapsed = time.perf_counter() - t0
    print(
        f"  {len(detections)} alarms over {result.graph.n_edges} edges "
        f"in {elapsed * 1e3:.1f} ms "
        f"({result.graph.n_edges / max(elapsed, 1e-9):,.0f} edges/s scanned)"
    )
    print(
        "  (the synthetic graph inherits the seed's *distributions*, not "
        "its attack bursts — alarm volume reflects how strongly attack-like "
        "attribute mass survives generation)"
    )


if __name__ == "__main__":
    main()
