"""Array partitioning helpers."""

from __future__ import annotations

import numpy as np

__all__ = ["split_array", "split_count"]


def split_array(arr: np.ndarray, n_partitions: int) -> list[np.ndarray]:
    """Split a 1-D array into ``n_partitions`` contiguous, near-equal views.

    Views, not copies: the engine only copies when a transformation
    actually produces new data.
    """
    if n_partitions < 1:
        raise ValueError("need at least one partition")
    return list(np.array_split(arr, n_partitions))


def split_count(total: int, n_partitions: int) -> np.ndarray:
    """Distribute ``total`` work items over partitions as evenly as
    possible (used to parallelise "generate N edges" stages that have no
    input data, like the PGSK descent)."""
    if n_partitions < 1:
        raise ValueError("need at least one partition")
    if total < 0:
        raise ValueError("total must be non-negative")
    base = total // n_partitions
    counts = np.full(n_partitions, base, dtype=np.int64)
    counts[: total - base * n_partitions] += 1
    return counts
