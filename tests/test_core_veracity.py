"""Tests for veracity scoring (Section V-A)."""

import numpy as np
import pytest

from repro.core import (
    PGPBA,
    degree_veracity,
    evaluate_veracity,
    pagerank_veracity,
    veracity_score,
)
from repro.engine import ClusterContext
from repro.graph import PropertyGraph, pagerank


def ba_like(n_edges, seed=0):
    """Quick preferential-attachment-ish graph for comparison tests."""
    rng = np.random.default_rng(seed)
    src = [0]
    dst = [1]
    for v in range(2, n_edges + 1):
        # attach to a uniformly chosen endpoint of a uniform edge
        e = int(rng.integers(0, len(src)))
        target = src[e] if rng.random() < 0.5 else dst[e]
        src.append(v)
        dst.append(target)
    return PropertyGraph.from_edge_list(
        np.asarray(src), np.asarray(dst)
    )


class TestScore:
    def test_zero_for_identical(self):
        g = ba_like(200)
        assert degree_veracity(g, g) == pytest.approx(0.0)

    def test_nonnegative(self):
        a, b = ba_like(100, 1), ba_like(300, 2)
        assert degree_veracity(a, b) >= 0.0
        assert pagerank_veracity(a, b) >= 0.0

    def test_decreases_with_synthetic_size(self):
        """The Fig. 6/7 trend: larger synthetic graphs score lower."""
        seed = ba_like(150, 1)
        sizes = [300, 1200, 5000]
        scores = [degree_veracity(seed, ba_like(s, 3)) for s in sizes]
        assert scores[0] > scores[1] > scores[2]

    def test_pagerank_scores_much_smaller_than_degree(self):
        """PageRank supports are near-continuous, so union-support scores
        are orders of magnitude below degree scores — the paper reports
        1e-25..1e-18 vs 1e-10..1e-3."""
        seed = ba_like(200, 1)
        syn = ba_like(2000, 2)
        assert pagerank_veracity(seed, syn) < degree_veracity(seed, syn)

    def test_precomputed_seed_pagerank(self):
        seed = ba_like(150, 1)
        syn = ba_like(400, 2)
        pr = pagerank(seed)
        assert pagerank_veracity(seed, syn, seed_pagerank=pr) == (
            pagerank_veracity(seed, syn)
        )

    def test_raw_score_function(self):
        a = np.array([1, 2, 2, 3])
        assert veracity_score(a, a.copy()) == 0.0

    def test_empty_graph_rejected(self):
        with pytest.raises(ValueError):
            degree_veracity(
                PropertyGraph(2, np.empty(0, np.int64), np.empty(0, np.int64)),
                ba_like(10),
            )


class TestReport:
    def test_full_report(self):
        seed = ba_like(150, 1)
        syn = ba_like(600, 2)
        rep = evaluate_veracity(seed, syn)
        assert rep.n_edges == syn.n_edges
        assert rep.degree_score > 0
        assert 0 <= rep.degree_ks <= 1
        assert 0 <= rep.pagerank_ks <= 1

    def test_pgpba_output_has_seedlike_shape(
        self, seed_graph, seed_analysis
    ):
        """End-to-end veracity sanity: a PGPBA graph 10x the seed keeps the
        degree-shape KS distance clearly below that of a shape-destroying
        uniform random graph of the same size."""
        ctx = ClusterContext(
            n_nodes=2, executor_cores=2, partition_multiplier=1
        )
        res = PGPBA(fraction=0.3, seed=11, generate_properties=False).generate(
            seed_graph, seed_analysis, 10 * seed_graph.n_edges,
            context=ctx,
        )
        rep = evaluate_veracity(seed_graph, res.graph)

        rng = np.random.default_rng(0)
        n_v = res.graph.n_vertices
        uniform = PropertyGraph.from_edge_list(
            rng.integers(0, n_v, res.graph.n_edges),
            rng.integers(0, n_v, res.graph.n_edges),
            n_vertices=n_v,
        )
        rep_uniform = evaluate_veracity(seed_graph, uniform)
        assert rep.degree_ks < rep_uniform.degree_ks
