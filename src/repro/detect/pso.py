"""Particle Swarm Optimization for threshold tuning.

The paper (Section IV) notes the Table I thresholds "can be adjusted using
a neural network or an optimization algorithm such as Particle Swarm
Optimization".  :class:`ParticleSwarmOptimizer` is a standard global-best
PSO with inertia damping and reflective bounds; :func:`tune_thresholds`
wires it to the detector, maximising F1 over labelled traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.detect.detector import NetflowAnomalyDetector
from repro.detect.report import evaluate_detections
from repro.detect.thresholds import DetectionThresholds
from repro.trace.attacks import AttackGroundTruth

__all__ = ["ParticleSwarmOptimizer", "PSOResult", "tune_thresholds"]


@dataclass(frozen=True)
class PSOResult:
    """Optimisation outcome."""

    best_position: np.ndarray
    best_value: float
    history: np.ndarray  # best value after each iteration


class ParticleSwarmOptimizer:
    """Global-best PSO maximising ``objective`` over a box domain.

    Velocity update: ``v = w v + c1 r1 (pbest - x) + c2 r2 (gbest - x)``
    with inertia ``w`` annealed linearly and positions reflected at the
    bounds so particles never evaluate outside the domain.
    """

    def __init__(
        self,
        objective: Callable[[np.ndarray], float],
        lower: np.ndarray,
        upper: np.ndarray,
        *,
        n_particles: int = 20,
        n_iterations: int = 40,
        inertia: tuple[float, float] = (0.9, 0.4),
        cognitive: float = 1.6,
        social: float = 1.6,
        seed: int = 0,
    ) -> None:
        self.objective = objective
        self.lower = np.asarray(lower, dtype=np.float64)
        self.upper = np.asarray(upper, dtype=np.float64)
        if self.lower.shape != self.upper.shape or self.lower.ndim != 1:
            raise ValueError("bounds must be matching 1-D arrays")
        if np.any(self.lower > self.upper):
            raise ValueError("lower bound exceeds upper bound")
        if n_particles < 2 or n_iterations < 1:
            raise ValueError("need >= 2 particles and >= 1 iteration")
        self.n_particles = n_particles
        self.n_iterations = n_iterations
        self.inertia = inertia
        self.cognitive = cognitive
        self.social = social
        self.rng = np.random.default_rng(seed)

    def run(self) -> PSOResult:
        dim = self.lower.size
        span = self.upper - self.lower
        x = self.lower + self.rng.random((self.n_particles, dim)) * span
        v = (self.rng.random((self.n_particles, dim)) - 0.5) * span * 0.2
        pbest = x.copy()
        pbest_val = np.asarray([self.objective(p) for p in x])
        g = int(np.argmax(pbest_val))
        gbest, gbest_val = pbest[g].copy(), float(pbest_val[g])
        history = np.empty(self.n_iterations)

        w_hi, w_lo = self.inertia
        for it in range(self.n_iterations):
            w = w_hi - (w_hi - w_lo) * it / max(1, self.n_iterations - 1)
            r1 = self.rng.random((self.n_particles, dim))
            r2 = self.rng.random((self.n_particles, dim))
            v = (
                w * v
                + self.cognitive * r1 * (pbest - x)
                + self.social * r2 * (gbest[None, :] - x)
            )
            x = x + v
            # Reflective bounds: fold overshoot back into the box.
            below = x < self.lower
            above = x > self.upper
            x = np.where(below, 2 * self.lower - x, x)
            x = np.where(above, 2 * self.upper - x, x)
            x = np.clip(x, self.lower, self.upper)
            v = np.where(below | above, -0.5 * v, v)

            vals = np.asarray([self.objective(p) for p in x])
            improved = vals > pbest_val
            pbest[improved] = x[improved]
            pbest_val[improved] = vals[improved]
            g = int(np.argmax(pbest_val))
            if pbest_val[g] > gbest_val:
                gbest, gbest_val = pbest[g].copy(), float(pbest_val[g])
            history[it] = gbest_val
        return PSOResult(
            best_position=gbest, best_value=gbest_val, history=history
        )


def tune_thresholds(
    flow_columns,
    attacks: list[AttackGroundTruth],
    *,
    initial: DetectionThresholds | None = None,
    n_particles: int = 16,
    n_iterations: int = 25,
    seed: int = 0,
) -> tuple[DetectionThresholds, PSOResult]:
    """PSO-tune the Table I thresholds to maximise F1 on labelled traffic.

    The search box spans [1/10, 10x] around the initial thresholds
    (defaulting to quantile-calibrated values would be circular on attack
    traffic, so the generic defaults are used when none are given).
    """
    init = initial or DetectionThresholds()
    center = init.as_vector()
    lower = center / 10.0
    upper = center * 10.0

    def objective(vec: np.ndarray) -> float:
        thresholds = DetectionThresholds.from_vector(vec)
        detector = NetflowAnomalyDetector(thresholds)
        report = evaluate_detections(detector.detect(flow_columns), attacks)
        return report.f1

    pso = ParticleSwarmOptimizer(
        objective,
        lower,
        upper,
        n_particles=n_particles,
        n_iterations=n_iterations,
        seed=seed,
    )
    result = pso.run()
    return DetectionThresholds.from_vector(result.best_position), result
